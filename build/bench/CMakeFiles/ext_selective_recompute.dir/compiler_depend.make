# Empty compiler generated dependencies file for ext_selective_recompute.
# This may be replaced when dependencies are built.
