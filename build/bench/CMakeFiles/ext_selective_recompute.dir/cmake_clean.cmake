file(REMOVE_RECURSE
  "CMakeFiles/ext_selective_recompute.dir/ext_selective_recompute.cpp.o"
  "CMakeFiles/ext_selective_recompute.dir/ext_selective_recompute.cpp.o.d"
  "ext_selective_recompute"
  "ext_selective_recompute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_selective_recompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
