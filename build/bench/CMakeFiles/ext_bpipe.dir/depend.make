# Empty dependencies file for ext_bpipe.
# This may be replaced when dependencies are built.
