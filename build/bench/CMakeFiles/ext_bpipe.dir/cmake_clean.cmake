file(REMOVE_RECURSE
  "CMakeFiles/ext_bpipe.dir/ext_bpipe.cpp.o"
  "CMakeFiles/ext_bpipe.dir/ext_bpipe.cpp.o.d"
  "ext_bpipe"
  "ext_bpipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bpipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
