# Empty dependencies file for ext_microbatch_sensitivity.
# This may be replaced when dependencies are built.
