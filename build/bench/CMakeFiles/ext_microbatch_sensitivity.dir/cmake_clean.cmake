file(REMOVE_RECURSE
  "CMakeFiles/ext_microbatch_sensitivity.dir/ext_microbatch_sensitivity.cpp.o"
  "CMakeFiles/ext_microbatch_sensitivity.dir/ext_microbatch_sensitivity.cpp.o.d"
  "ext_microbatch_sensitivity"
  "ext_microbatch_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_microbatch_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
