file(REMOVE_RECURSE
  "CMakeFiles/search_performance.dir/search_performance.cpp.o"
  "CMakeFiles/search_performance.dir/search_performance.cpp.o.d"
  "search_performance"
  "search_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
