# Empty dependencies file for search_performance.
# This may be replaced when dependencies are built.
