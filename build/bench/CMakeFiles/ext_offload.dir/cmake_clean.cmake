file(REMOVE_RECURSE
  "CMakeFiles/ext_offload.dir/ext_offload.cpp.o"
  "CMakeFiles/ext_offload.dir/ext_offload.cpp.o.d"
  "ext_offload"
  "ext_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
