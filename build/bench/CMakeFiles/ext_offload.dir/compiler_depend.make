# Empty compiler generated dependencies file for ext_offload.
# This may be replaced when dependencies are built.
