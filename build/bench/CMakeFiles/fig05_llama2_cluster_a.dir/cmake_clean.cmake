file(REMOVE_RECURSE
  "CMakeFiles/fig05_llama2_cluster_a.dir/fig05_llama2_cluster_a.cpp.o"
  "CMakeFiles/fig05_llama2_cluster_a.dir/fig05_llama2_cluster_a.cpp.o.d"
  "fig05_llama2_cluster_a"
  "fig05_llama2_cluster_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_llama2_cluster_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
