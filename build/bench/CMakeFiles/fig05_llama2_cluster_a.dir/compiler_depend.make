# Empty compiler generated dependencies file for fig05_llama2_cluster_a.
# This may be replaced when dependencies are built.
