# Empty compiler generated dependencies file for fig04_computation_units.
# This may be replaced when dependencies are built.
