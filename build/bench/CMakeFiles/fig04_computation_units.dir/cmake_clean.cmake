file(REMOVE_RECURSE
  "CMakeFiles/fig04_computation_units.dir/fig04_computation_units.cpp.o"
  "CMakeFiles/fig04_computation_units.dir/fig04_computation_units.cpp.o.d"
  "fig04_computation_units"
  "fig04_computation_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_computation_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
