# Empty dependencies file for fig09_stage_time.
# This may be replaced when dependencies are built.
