file(REMOVE_RECURSE
  "CMakeFiles/fig01_memory_imbalance.dir/fig01_memory_imbalance.cpp.o"
  "CMakeFiles/fig01_memory_imbalance.dir/fig01_memory_imbalance.cpp.o.d"
  "fig01_memory_imbalance"
  "fig01_memory_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_memory_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
