# Empty compiler generated dependencies file for fig01_memory_imbalance.
# This may be replaced when dependencies are built.
