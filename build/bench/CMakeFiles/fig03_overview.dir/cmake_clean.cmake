file(REMOVE_RECURSE
  "CMakeFiles/fig03_overview.dir/fig03_overview.cpp.o"
  "CMakeFiles/fig03_overview.dir/fig03_overview.cpp.o.d"
  "fig03_overview"
  "fig03_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
