# Empty compiler generated dependencies file for fig03_overview.
# This may be replaced when dependencies are built.
