# Empty compiler generated dependencies file for tab03_parallel_strategies.
# This may be replaced when dependencies are built.
