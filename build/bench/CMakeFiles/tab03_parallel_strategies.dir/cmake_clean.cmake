file(REMOVE_RECURSE
  "CMakeFiles/tab03_parallel_strategies.dir/tab03_parallel_strategies.cpp.o"
  "CMakeFiles/tab03_parallel_strategies.dir/tab03_parallel_strategies.cpp.o.d"
  "tab03_parallel_strategies"
  "tab03_parallel_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_parallel_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
