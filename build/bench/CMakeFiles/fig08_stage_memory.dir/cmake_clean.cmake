file(REMOVE_RECURSE
  "CMakeFiles/fig08_stage_memory.dir/fig08_stage_memory.cpp.o"
  "CMakeFiles/fig08_stage_memory.dir/fig08_stage_memory.cpp.o.d"
  "fig08_stage_memory"
  "fig08_stage_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_stage_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
