# Empty dependencies file for fig08_stage_memory.
# This may be replaced when dependencies are built.
