# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig06_gpt3_cluster_a.
