# Empty dependencies file for fig06_gpt3_cluster_a.
# This may be replaced when dependencies are built.
