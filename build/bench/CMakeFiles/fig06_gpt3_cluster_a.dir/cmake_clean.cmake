file(REMOVE_RECURSE
  "CMakeFiles/fig06_gpt3_cluster_a.dir/fig06_gpt3_cluster_a.cpp.o"
  "CMakeFiles/fig06_gpt3_cluster_a.dir/fig06_gpt3_cluster_a.cpp.o.d"
  "fig06_gpt3_cluster_a"
  "fig06_gpt3_cluster_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_gpt3_cluster_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
