file(REMOVE_RECURSE
  "CMakeFiles/fig02_schedules.dir/fig02_schedules.cpp.o"
  "CMakeFiles/fig02_schedules.dir/fig02_schedules.cpp.o.d"
  "fig02_schedules"
  "fig02_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
