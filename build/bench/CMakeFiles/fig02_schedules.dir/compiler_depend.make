# Empty compiler generated dependencies file for fig02_schedules.
# This may be replaced when dependencies are built.
