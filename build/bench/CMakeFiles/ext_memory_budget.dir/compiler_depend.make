# Empty compiler generated dependencies file for ext_memory_budget.
# This may be replaced when dependencies are built.
