file(REMOVE_RECURSE
  "CMakeFiles/ext_memory_budget.dir/ext_memory_budget.cpp.o"
  "CMakeFiles/ext_memory_budget.dir/ext_memory_budget.cpp.o.d"
  "ext_memory_budget"
  "ext_memory_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_memory_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
