# Empty dependencies file for ext_interleaved_1f1b.
# This may be replaced when dependencies are built.
