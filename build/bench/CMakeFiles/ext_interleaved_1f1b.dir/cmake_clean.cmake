file(REMOVE_RECURSE
  "CMakeFiles/ext_interleaved_1f1b.dir/ext_interleaved_1f1b.cpp.o"
  "CMakeFiles/ext_interleaved_1f1b.dir/ext_interleaved_1f1b.cpp.o.d"
  "ext_interleaved_1f1b"
  "ext_interleaved_1f1b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_interleaved_1f1b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
