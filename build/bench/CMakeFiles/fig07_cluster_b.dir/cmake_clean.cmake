file(REMOVE_RECURSE
  "CMakeFiles/fig07_cluster_b.dir/fig07_cluster_b.cpp.o"
  "CMakeFiles/fig07_cluster_b.dir/fig07_cluster_b.cpp.o.d"
  "fig07_cluster_b"
  "fig07_cluster_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cluster_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
