file(REMOVE_RECURSE
  "CMakeFiles/tab04_plan_configuration.dir/tab04_plan_configuration.cpp.o"
  "CMakeFiles/tab04_plan_configuration.dir/tab04_plan_configuration.cpp.o.d"
  "tab04_plan_configuration"
  "tab04_plan_configuration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_plan_configuration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
