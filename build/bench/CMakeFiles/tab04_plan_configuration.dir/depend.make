# Empty dependencies file for tab04_plan_configuration.
# This may be replaced when dependencies are built.
