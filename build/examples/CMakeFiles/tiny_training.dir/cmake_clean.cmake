file(REMOVE_RECURSE
  "CMakeFiles/tiny_training.dir/tiny_training.cpp.o"
  "CMakeFiles/tiny_training.dir/tiny_training.cpp.o.d"
  "tiny_training"
  "tiny_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiny_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
