# Empty compiler generated dependencies file for tiny_training.
# This may be replaced when dependencies are built.
