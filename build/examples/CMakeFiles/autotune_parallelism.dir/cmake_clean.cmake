file(REMOVE_RECURSE
  "CMakeFiles/autotune_parallelism.dir/autotune_parallelism.cpp.o"
  "CMakeFiles/autotune_parallelism.dir/autotune_parallelism.cpp.o.d"
  "autotune_parallelism"
  "autotune_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
