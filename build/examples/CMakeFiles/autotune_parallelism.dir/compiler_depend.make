# Empty compiler generated dependencies file for autotune_parallelism.
# This may be replaced when dependencies are built.
