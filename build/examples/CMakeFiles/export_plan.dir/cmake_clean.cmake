file(REMOVE_RECURSE
  "CMakeFiles/export_plan.dir/export_plan.cpp.o"
  "CMakeFiles/export_plan.dir/export_plan.cpp.o.d"
  "export_plan"
  "export_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
