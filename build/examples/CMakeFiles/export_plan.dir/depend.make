# Empty dependencies file for export_plan.
# This may be replaced when dependencies are built.
