file(REMOVE_RECURSE
  "CMakeFiles/long_context.dir/long_context.cpp.o"
  "CMakeFiles/long_context.dir/long_context.cpp.o.d"
  "long_context"
  "long_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
