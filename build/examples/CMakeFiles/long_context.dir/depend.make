# Empty dependencies file for long_context.
# This may be replaced when dependencies are built.
