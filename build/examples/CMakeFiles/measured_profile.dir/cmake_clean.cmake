file(REMOVE_RECURSE
  "CMakeFiles/measured_profile.dir/measured_profile.cpp.o"
  "CMakeFiles/measured_profile.dir/measured_profile.cpp.o.d"
  "measured_profile"
  "measured_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measured_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
