# Empty compiler generated dependencies file for measured_profile.
# This may be replaced when dependencies are built.
