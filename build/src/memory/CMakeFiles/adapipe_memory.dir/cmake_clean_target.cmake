file(REMOVE_RECURSE
  "libadapipe_memory.a"
)
