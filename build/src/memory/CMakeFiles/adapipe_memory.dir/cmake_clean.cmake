file(REMOVE_RECURSE
  "CMakeFiles/adapipe_memory.dir/memory_model.cpp.o"
  "CMakeFiles/adapipe_memory.dir/memory_model.cpp.o.d"
  "libadapipe_memory.a"
  "libadapipe_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapipe_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
