# Empty dependencies file for adapipe_memory.
# This may be replaced when dependencies are built.
