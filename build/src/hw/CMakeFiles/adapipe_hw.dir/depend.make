# Empty dependencies file for adapipe_hw.
# This may be replaced when dependencies are built.
