file(REMOVE_RECURSE
  "libadapipe_hw.a"
)
