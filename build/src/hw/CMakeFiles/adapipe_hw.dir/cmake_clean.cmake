file(REMOVE_RECURSE
  "CMakeFiles/adapipe_hw.dir/cluster.cpp.o"
  "CMakeFiles/adapipe_hw.dir/cluster.cpp.o.d"
  "CMakeFiles/adapipe_hw.dir/device.cpp.o"
  "CMakeFiles/adapipe_hw.dir/device.cpp.o.d"
  "CMakeFiles/adapipe_hw.dir/profile_io.cpp.o"
  "CMakeFiles/adapipe_hw.dir/profile_io.cpp.o.d"
  "CMakeFiles/adapipe_hw.dir/profiler.cpp.o"
  "CMakeFiles/adapipe_hw.dir/profiler.cpp.o.d"
  "libadapipe_hw.a"
  "libadapipe_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapipe_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
