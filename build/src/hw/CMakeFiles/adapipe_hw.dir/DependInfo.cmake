
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cluster.cpp" "src/hw/CMakeFiles/adapipe_hw.dir/cluster.cpp.o" "gcc" "src/hw/CMakeFiles/adapipe_hw.dir/cluster.cpp.o.d"
  "/root/repo/src/hw/device.cpp" "src/hw/CMakeFiles/adapipe_hw.dir/device.cpp.o" "gcc" "src/hw/CMakeFiles/adapipe_hw.dir/device.cpp.o.d"
  "/root/repo/src/hw/profile_io.cpp" "src/hw/CMakeFiles/adapipe_hw.dir/profile_io.cpp.o" "gcc" "src/hw/CMakeFiles/adapipe_hw.dir/profile_io.cpp.o.d"
  "/root/repo/src/hw/profiler.cpp" "src/hw/CMakeFiles/adapipe_hw.dir/profiler.cpp.o" "gcc" "src/hw/CMakeFiles/adapipe_hw.dir/profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/adapipe_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adapipe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
