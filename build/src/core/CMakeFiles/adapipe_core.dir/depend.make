# Empty dependencies file for adapipe_core.
# This may be replaced when dependencies are built.
