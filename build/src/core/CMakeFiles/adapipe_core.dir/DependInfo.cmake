
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/adapipe_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/adapipe_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/partition_dp.cpp" "src/core/CMakeFiles/adapipe_core.dir/partition_dp.cpp.o" "gcc" "src/core/CMakeFiles/adapipe_core.dir/partition_dp.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/core/CMakeFiles/adapipe_core.dir/plan.cpp.o" "gcc" "src/core/CMakeFiles/adapipe_core.dir/plan.cpp.o.d"
  "/root/repo/src/core/plan_io.cpp" "src/core/CMakeFiles/adapipe_core.dir/plan_io.cpp.o" "gcc" "src/core/CMakeFiles/adapipe_core.dir/plan_io.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/adapipe_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/adapipe_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/profiled_model.cpp" "src/core/CMakeFiles/adapipe_core.dir/profiled_model.cpp.o" "gcc" "src/core/CMakeFiles/adapipe_core.dir/profiled_model.cpp.o.d"
  "/root/repo/src/core/recompute_dp.cpp" "src/core/CMakeFiles/adapipe_core.dir/recompute_dp.cpp.o" "gcc" "src/core/CMakeFiles/adapipe_core.dir/recompute_dp.cpp.o.d"
  "/root/repo/src/core/stage_cost.cpp" "src/core/CMakeFiles/adapipe_core.dir/stage_cost.cpp.o" "gcc" "src/core/CMakeFiles/adapipe_core.dir/stage_cost.cpp.o.d"
  "/root/repo/src/core/strategy_search.cpp" "src/core/CMakeFiles/adapipe_core.dir/strategy_search.cpp.o" "gcc" "src/core/CMakeFiles/adapipe_core.dir/strategy_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/adapipe_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/adapipe_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/adapipe_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adapipe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
