file(REMOVE_RECURSE
  "CMakeFiles/adapipe_core.dir/cost_model.cpp.o"
  "CMakeFiles/adapipe_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/adapipe_core.dir/partition_dp.cpp.o"
  "CMakeFiles/adapipe_core.dir/partition_dp.cpp.o.d"
  "CMakeFiles/adapipe_core.dir/plan.cpp.o"
  "CMakeFiles/adapipe_core.dir/plan.cpp.o.d"
  "CMakeFiles/adapipe_core.dir/plan_io.cpp.o"
  "CMakeFiles/adapipe_core.dir/plan_io.cpp.o.d"
  "CMakeFiles/adapipe_core.dir/planner.cpp.o"
  "CMakeFiles/adapipe_core.dir/planner.cpp.o.d"
  "CMakeFiles/adapipe_core.dir/profiled_model.cpp.o"
  "CMakeFiles/adapipe_core.dir/profiled_model.cpp.o.d"
  "CMakeFiles/adapipe_core.dir/recompute_dp.cpp.o"
  "CMakeFiles/adapipe_core.dir/recompute_dp.cpp.o.d"
  "CMakeFiles/adapipe_core.dir/stage_cost.cpp.o"
  "CMakeFiles/adapipe_core.dir/stage_cost.cpp.o.d"
  "CMakeFiles/adapipe_core.dir/strategy_search.cpp.o"
  "CMakeFiles/adapipe_core.dir/strategy_search.cpp.o.d"
  "libadapipe_core.a"
  "libadapipe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapipe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
