file(REMOVE_RECURSE
  "libadapipe_core.a"
)
