# Empty compiler generated dependencies file for adapipe_sim.
# This may be replaced when dependencies are built.
