file(REMOVE_RECURSE
  "libadapipe_sim.a"
)
