file(REMOVE_RECURSE
  "CMakeFiles/adapipe_sim.dir/baseline_eval.cpp.o"
  "CMakeFiles/adapipe_sim.dir/baseline_eval.cpp.o.d"
  "CMakeFiles/adapipe_sim.dir/pipeline_sim.cpp.o"
  "CMakeFiles/adapipe_sim.dir/pipeline_sim.cpp.o.d"
  "CMakeFiles/adapipe_sim.dir/schedule.cpp.o"
  "CMakeFiles/adapipe_sim.dir/schedule.cpp.o.d"
  "CMakeFiles/adapipe_sim.dir/timeline.cpp.o"
  "CMakeFiles/adapipe_sim.dir/timeline.cpp.o.d"
  "CMakeFiles/adapipe_sim.dir/trace_export.cpp.o"
  "CMakeFiles/adapipe_sim.dir/trace_export.cpp.o.d"
  "libadapipe_sim.a"
  "libadapipe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapipe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
