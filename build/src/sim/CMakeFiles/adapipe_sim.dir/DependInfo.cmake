
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/baseline_eval.cpp" "src/sim/CMakeFiles/adapipe_sim.dir/baseline_eval.cpp.o" "gcc" "src/sim/CMakeFiles/adapipe_sim.dir/baseline_eval.cpp.o.d"
  "/root/repo/src/sim/pipeline_sim.cpp" "src/sim/CMakeFiles/adapipe_sim.dir/pipeline_sim.cpp.o" "gcc" "src/sim/CMakeFiles/adapipe_sim.dir/pipeline_sim.cpp.o.d"
  "/root/repo/src/sim/schedule.cpp" "src/sim/CMakeFiles/adapipe_sim.dir/schedule.cpp.o" "gcc" "src/sim/CMakeFiles/adapipe_sim.dir/schedule.cpp.o.d"
  "/root/repo/src/sim/timeline.cpp" "src/sim/CMakeFiles/adapipe_sim.dir/timeline.cpp.o" "gcc" "src/sim/CMakeFiles/adapipe_sim.dir/timeline.cpp.o.d"
  "/root/repo/src/sim/trace_export.cpp" "src/sim/CMakeFiles/adapipe_sim.dir/trace_export.cpp.o" "gcc" "src/sim/CMakeFiles/adapipe_sim.dir/trace_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adapipe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/adapipe_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adapipe_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/adapipe_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/adapipe_memory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
