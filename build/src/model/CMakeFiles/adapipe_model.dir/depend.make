# Empty dependencies file for adapipe_model.
# This may be replaced when dependencies are built.
