file(REMOVE_RECURSE
  "CMakeFiles/adapipe_model.dir/model_config.cpp.o"
  "CMakeFiles/adapipe_model.dir/model_config.cpp.o.d"
  "CMakeFiles/adapipe_model.dir/parallel.cpp.o"
  "CMakeFiles/adapipe_model.dir/parallel.cpp.o.d"
  "CMakeFiles/adapipe_model.dir/units.cpp.o"
  "CMakeFiles/adapipe_model.dir/units.cpp.o.d"
  "libadapipe_model.a"
  "libadapipe_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapipe_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
