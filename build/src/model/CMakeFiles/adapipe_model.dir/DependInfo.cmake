
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/model_config.cpp" "src/model/CMakeFiles/adapipe_model.dir/model_config.cpp.o" "gcc" "src/model/CMakeFiles/adapipe_model.dir/model_config.cpp.o.d"
  "/root/repo/src/model/parallel.cpp" "src/model/CMakeFiles/adapipe_model.dir/parallel.cpp.o" "gcc" "src/model/CMakeFiles/adapipe_model.dir/parallel.cpp.o.d"
  "/root/repo/src/model/units.cpp" "src/model/CMakeFiles/adapipe_model.dir/units.cpp.o" "gcc" "src/model/CMakeFiles/adapipe_model.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adapipe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
