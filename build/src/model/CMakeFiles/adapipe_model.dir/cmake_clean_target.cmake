file(REMOVE_RECURSE
  "libadapipe_model.a"
)
