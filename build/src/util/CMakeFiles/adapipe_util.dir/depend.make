# Empty dependencies file for adapipe_util.
# This may be replaced when dependencies are built.
