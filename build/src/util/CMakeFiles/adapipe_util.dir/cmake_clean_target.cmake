file(REMOVE_RECURSE
  "libadapipe_util.a"
)
