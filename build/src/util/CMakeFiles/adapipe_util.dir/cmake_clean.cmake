file(REMOVE_RECURSE
  "CMakeFiles/adapipe_util.dir/cli.cpp.o"
  "CMakeFiles/adapipe_util.dir/cli.cpp.o.d"
  "CMakeFiles/adapipe_util.dir/csv.cpp.o"
  "CMakeFiles/adapipe_util.dir/csv.cpp.o.d"
  "CMakeFiles/adapipe_util.dir/json.cpp.o"
  "CMakeFiles/adapipe_util.dir/json.cpp.o.d"
  "CMakeFiles/adapipe_util.dir/logging.cpp.o"
  "CMakeFiles/adapipe_util.dir/logging.cpp.o.d"
  "CMakeFiles/adapipe_util.dir/rng.cpp.o"
  "CMakeFiles/adapipe_util.dir/rng.cpp.o.d"
  "CMakeFiles/adapipe_util.dir/stats.cpp.o"
  "CMakeFiles/adapipe_util.dir/stats.cpp.o.d"
  "CMakeFiles/adapipe_util.dir/table.cpp.o"
  "CMakeFiles/adapipe_util.dir/table.cpp.o.d"
  "CMakeFiles/adapipe_util.dir/units.cpp.o"
  "CMakeFiles/adapipe_util.dir/units.cpp.o.d"
  "libadapipe_util.a"
  "libadapipe_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapipe_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
