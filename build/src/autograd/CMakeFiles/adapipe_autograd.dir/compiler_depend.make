# Empty compiler generated dependencies file for adapipe_autograd.
# This may be replaced when dependencies are built.
