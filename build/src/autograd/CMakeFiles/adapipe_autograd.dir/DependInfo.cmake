
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/checkpoint.cpp" "src/autograd/CMakeFiles/adapipe_autograd.dir/checkpoint.cpp.o" "gcc" "src/autograd/CMakeFiles/adapipe_autograd.dir/checkpoint.cpp.o.d"
  "/root/repo/src/autograd/module.cpp" "src/autograd/CMakeFiles/adapipe_autograd.dir/module.cpp.o" "gcc" "src/autograd/CMakeFiles/adapipe_autograd.dir/module.cpp.o.d"
  "/root/repo/src/autograd/ops.cpp" "src/autograd/CMakeFiles/adapipe_autograd.dir/ops.cpp.o" "gcc" "src/autograd/CMakeFiles/adapipe_autograd.dir/ops.cpp.o.d"
  "/root/repo/src/autograd/optim.cpp" "src/autograd/CMakeFiles/adapipe_autograd.dir/optim.cpp.o" "gcc" "src/autograd/CMakeFiles/adapipe_autograd.dir/optim.cpp.o.d"
  "/root/repo/src/autograd/tensor.cpp" "src/autograd/CMakeFiles/adapipe_autograd.dir/tensor.cpp.o" "gcc" "src/autograd/CMakeFiles/adapipe_autograd.dir/tensor.cpp.o.d"
  "/root/repo/src/autograd/trainer.cpp" "src/autograd/CMakeFiles/adapipe_autograd.dir/trainer.cpp.o" "gcc" "src/autograd/CMakeFiles/adapipe_autograd.dir/trainer.cpp.o.d"
  "/root/repo/src/autograd/variable.cpp" "src/autograd/CMakeFiles/adapipe_autograd.dir/variable.cpp.o" "gcc" "src/autograd/CMakeFiles/adapipe_autograd.dir/variable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adapipe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
