file(REMOVE_RECURSE
  "libadapipe_autograd.a"
)
