file(REMOVE_RECURSE
  "CMakeFiles/adapipe_autograd.dir/checkpoint.cpp.o"
  "CMakeFiles/adapipe_autograd.dir/checkpoint.cpp.o.d"
  "CMakeFiles/adapipe_autograd.dir/module.cpp.o"
  "CMakeFiles/adapipe_autograd.dir/module.cpp.o.d"
  "CMakeFiles/adapipe_autograd.dir/ops.cpp.o"
  "CMakeFiles/adapipe_autograd.dir/ops.cpp.o.d"
  "CMakeFiles/adapipe_autograd.dir/optim.cpp.o"
  "CMakeFiles/adapipe_autograd.dir/optim.cpp.o.d"
  "CMakeFiles/adapipe_autograd.dir/tensor.cpp.o"
  "CMakeFiles/adapipe_autograd.dir/tensor.cpp.o.d"
  "CMakeFiles/adapipe_autograd.dir/trainer.cpp.o"
  "CMakeFiles/adapipe_autograd.dir/trainer.cpp.o.d"
  "CMakeFiles/adapipe_autograd.dir/variable.cpp.o"
  "CMakeFiles/adapipe_autograd.dir/variable.cpp.o.d"
  "libadapipe_autograd.a"
  "libadapipe_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapipe_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
