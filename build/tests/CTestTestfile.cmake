# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/recompute_dp_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_eval_test[1]_include.cmake")
include("/root/repo/build/tests/stage_cost_test[1]_include.cmake")
include("/root/repo/build/tests/partition_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_ops_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/profile_io_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
