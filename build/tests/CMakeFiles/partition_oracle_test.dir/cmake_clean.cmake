file(REMOVE_RECURSE
  "CMakeFiles/partition_oracle_test.dir/partition_oracle_test.cpp.o"
  "CMakeFiles/partition_oracle_test.dir/partition_oracle_test.cpp.o.d"
  "partition_oracle_test"
  "partition_oracle_test.pdb"
  "partition_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
