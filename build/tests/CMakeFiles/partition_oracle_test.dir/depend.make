# Empty dependencies file for partition_oracle_test.
# This may be replaced when dependencies are built.
