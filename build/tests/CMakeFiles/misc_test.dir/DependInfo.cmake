
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/misc_test.cpp" "tests/CMakeFiles/misc_test.dir/misc_test.cpp.o" "gcc" "tests/CMakeFiles/misc_test.dir/misc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adapipe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adapipe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/adapipe_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/adapipe_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/adapipe_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/adapipe_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adapipe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
