# Empty dependencies file for recompute_dp_test.
# This may be replaced when dependencies are built.
