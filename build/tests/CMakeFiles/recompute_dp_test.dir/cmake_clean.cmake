file(REMOVE_RECURSE
  "CMakeFiles/recompute_dp_test.dir/recompute_dp_test.cpp.o"
  "CMakeFiles/recompute_dp_test.dir/recompute_dp_test.cpp.o.d"
  "recompute_dp_test"
  "recompute_dp_test.pdb"
  "recompute_dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recompute_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
