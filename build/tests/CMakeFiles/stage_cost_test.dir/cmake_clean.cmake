file(REMOVE_RECURSE
  "CMakeFiles/stage_cost_test.dir/stage_cost_test.cpp.o"
  "CMakeFiles/stage_cost_test.dir/stage_cost_test.cpp.o.d"
  "stage_cost_test"
  "stage_cost_test.pdb"
  "stage_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
