# Empty dependencies file for stage_cost_test.
# This may be replaced when dependencies are built.
