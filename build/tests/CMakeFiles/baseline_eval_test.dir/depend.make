# Empty dependencies file for baseline_eval_test.
# This may be replaced when dependencies are built.
