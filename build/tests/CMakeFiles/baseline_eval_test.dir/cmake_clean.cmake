file(REMOVE_RECURSE
  "CMakeFiles/baseline_eval_test.dir/baseline_eval_test.cpp.o"
  "CMakeFiles/baseline_eval_test.dir/baseline_eval_test.cpp.o.d"
  "baseline_eval_test"
  "baseline_eval_test.pdb"
  "baseline_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
