file(REMOVE_RECURSE
  "CMakeFiles/autograd_ops_test.dir/autograd_ops_test.cpp.o"
  "CMakeFiles/autograd_ops_test.dir/autograd_ops_test.cpp.o.d"
  "autograd_ops_test"
  "autograd_ops_test.pdb"
  "autograd_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
