# Empty compiler generated dependencies file for autograd_ops_test.
# This may be replaced when dependencies are built.
