/**
 * @file
 * Figure 10: loss curves of AdaPipe vs DAPPLE-Full.
 *
 * The paper validates that adaptive recomputation "only reduces the
 * repeated computation without changing the computation of each
 * operator". We train the tiny LM with real drop-and-recompute
 * checkpointing and show that (a) the AdaPipe-style mixed strategy
 * is *bit-identical* to full recomputation, and (b) curves with a
 * different parameter initialisation (the paper's explanation for
 * its residual difference: partitioning changes init order) differ
 * but converge to the same level.
 */

#include <cstdio>
#include <iostream>

#include "autograd/module.h"
#include "autograd/trainer.h"
#include "util/table.h"

using namespace adapipe;

int
main()
{
    TinyLmConfig cfg;
    cfg.vocab = 64;
    cfg.dim = 32;
    cfg.blocks = 4;
    cfg.ffnHidden = 96;
    cfg.maxSeq = 64;

    TrainOptions opts;
    opts.steps = 200;
    opts.seqLen = 32;
    opts.lr = 4e-3f;

    auto run = [&](std::uint64_t seed,
                   std::vector<BlockRecompute> modes) {
        TinyLmConfig c = cfg;
        c.seed = seed;
        TinyLM model(c);
        TrainOptions o = opts;
        o.recompute = std::move(modes);
        return trainTinyLM(model, o);
    };

    std::cout << "Figure 10: loss curves (tiny LM on the synthetic "
                 "bigram task, 200 steps)\n\n";

    // DAPPLE-Full = every block fully recomputed; AdaPipe = the
    // mixed strategy its knapsack would pick (front blocks
    // recompute, back blocks save).
    const TrainStats dapple =
        run(42, std::vector<BlockRecompute>(cfg.blocks,
                                            BlockRecompute::Full));
    const TrainStats adapipe =
        run(42, {BlockRecompute::Full, BlockRecompute::AttentionOnly,
                 BlockRecompute::AttentionOnly,
                 BlockRecompute::None});
    const TrainStats reinit =
        run(43, {BlockRecompute::Full, BlockRecompute::AttentionOnly,
                 BlockRecompute::AttentionOnly,
                 BlockRecompute::None});

    Table table({"Step", "DAPPLE-Full", "AdaPipe", "AdaPipe (other "
                 "init)"});
    for (int step = 0; step < opts.steps; step += 20) {
        char a[32];
        char b[32];
        char c[32];
        std::snprintf(a, sizeof(a), "%.6f", dapple.losses[step]);
        std::snprintf(b, sizeof(b), "%.6f", adapipe.losses[step]);
        std::snprintf(c, sizeof(c), "%.6f", reinit.losses[step]);
        table.addRow({std::to_string(step), a, b, c});
    }
    table.print(std::cout);

    bool identical = true;
    for (std::size_t i = 0; i < dapple.losses.size(); ++i)
        identical = identical && dapple.losses[i] == adapipe.losses[i];
    std::cout << "\nSame-init curves bit-identical across all "
              << dapple.losses.size() << " steps: "
              << (identical ? "YES" : "NO")
              << "\nPeak activation floats: DAPPLE-Full "
              << dapple.peakActivationFloats << ", AdaPipe "
              << adapipe.peakActivationFloats
              << " (AdaPipe spends the memory it saves from skipped "
                 "recomputation on kept activations)\n"
              << "Shape check vs paper: recomputation does not "
                 "change the math; residual curve differences come "
                 "from initialisation only.\n";
    return identical ? 0 : 1;
}
