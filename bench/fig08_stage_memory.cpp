/**
 * @file
 * Figure 8: peak memory usage of each stage for GPT-3, sequence
 * length 16384, strategy (t, p, d) = (8, 8, 1) on cluster A.
 *
 * Expected shape: DAPPLE-Full flat around 50 GiB (30+ GiB wasted),
 * first/last stages slightly higher (embedding / decoding head);
 * DAPPLE-Non heavily imbalanced (stage 0 over the 80 GiB capacity,
 * roughly 2.3x stage 7); Chimera variants exceed DAPPLE-Full via
 * duplicated parameters, their *-Non middles highest; AdaPipe and
 * Even Partitioning balanced around the 70 GiB DP constraint.
 */

#include <iostream>

#include "common.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;
using namespace adapipe::bench;

int
main()
{
    const ModelConfig model = gpt3_175b();
    const ClusterSpec cluster = clusterA(8);
    TrainConfig train;
    train.seqLen = 16384;
    train.globalBatch = 32;

    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 8;
    par.data = 1;

    std::cout << "Figure 8: peak memory per stage, " << model.name
              << ", seq " << train.seqLen << ", strategy "
              << par.toString() << ", capacity "
              << formatBytes(cluster.device.memCapacity, 0) << "\n"
              << "(OOM methods report their estimated requirement; "
                 "'*' marks cells above capacity)\n\n";

    Table table({"Method", "s0", "s1", "s2", "s3", "s4", "s5", "s6",
                 "s7"});
    for (const Method &m : clusterAMethods()) {
        const CellResult cell =
            evaluateMethod(model, train, par, cluster, m);
        std::vector<std::string> row{m.name};
        if (cell.details.deviceMem.empty()) {
            row.push_back("infeasible schedule");
            table.addRow(std::move(row));
            continue;
        }
        for (Bytes b : cell.details.deviceMem) {
            std::string text = formatBytes(b, 1);
            if (b > cluster.device.memCapacity)
                text += " *";
            row.push_back(std::move(text));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    return 0;
}
