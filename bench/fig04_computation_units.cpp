/**
 * @file
 * Figure 4: the computation-unit division of the Attention and
 * Feed-Forward layers, printed as tables (the paper draws the same
 * decomposition as a diagram).
 *
 * Shows, for GPT-3 and Llama 2 at the headline configuration, every
 * unit with its forward/backward time, saved-activation bytes, the
 * always-saved boundary flag (Sec. 4.2) and the value density
 * (saved forward time per MiB) that drives the knapsack's choices.
 */

#include <iostream>

#include "core/profiled_model.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

namespace {

void
showModel(const ModelConfig &model, int tensor)
{
    TrainConfig train;
    train.seqLen = 8192;
    train.globalBatch = 32;
    ParallelConfig par;
    par.tensor = tensor;
    par.pipeline = 8;
    par.data = 1;
    const ProfiledModel pm =
        buildProfiledModel(model, train, par, clusterA(8));

    std::cout << model.name << " (seq " << train.seqLen << ", t = "
              << tensor << "), per computation unit:\n";
    Table table({"Layer", "Unit", "Kind", "Fwd", "Bwd", "Saved mem",
                 "Always", "Value (ms/100MiB)"});
    // One attention + one feed-forward layer (all blocks identical).
    for (int l : {1, 2}) {
        const ProfiledLayer &layer = pm.layers[l];
        for (const UnitProfile &u : layer.units) {
            const double density =
                u.memSaved > 0
                    ? u.timeFwd * 1e3 /
                          (static_cast<double>(u.memSaved) /
                           (100.0 * 1024 * 1024))
                    : 0.0;
            table.addRow({layerKindName(layer.kind), u.name,
                          unitKindName(u.kind),
                          formatSeconds(u.timeFwd),
                          formatSeconds(u.timeBwd),
                          formatBytes(u.memSaved),
                          u.alwaysSaved ? "yes" : "",
                          formatDouble(density, 2)});
        }
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "Figure 4: computation-unit division (Sec. 4.1)\n"
              << "Units group operators whose intermediates are "
                 "never materialised; the last GEMM\nof each layer "
                 "is always saved (Sec. 4.2), bounding the "
                 "rematerialisation buffer.\n\n";
    showModel(gpt3_175b(), 8);
    showModel(llama2_70b(), 4);
    std::cout
        << "Shape check vs paper: high value-density units (cheap "
           "memory, expensive forward,\ne.g. flash attention) are "
           "saved first by the knapsack; wide FFN activations are\n"
           "the cheapest to recompute per byte and go first when "
           "memory is tight.\n";
    return 0;
}
