/**
 * @file
 * Figure 5: end-to-end performance of Llama 2 70B on cluster A
 * (32 A100 GPUs) for sequence lengths 4096 / 8192 / 16384.
 *
 * Expected shape: DAPPLE-Non beats DAPPLE-Full while it fits and
 * OOMs at 16384; Chimera trails DAPPLE when n > p; ChimeraD-Non OOMs
 * from 8192; AdaPipe and Even Partitioning win overall, with up to
 * ~1.2x over the best DAPPLE variant at long sequences.
 */

#include "common.h"
#include "hw/cluster.h"
#include "model/model_config.h"

using namespace adapipe;

int
main(int argc, char **argv)
{
    bench::MetricsSession metrics(argc, argv);
    bench::runClusterAFigure(
        llama2_70b(), clusterA(4),
        {{4096, 128}, {8192, 64}, {16384, 32}});
    return 0;
}
