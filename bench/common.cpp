#include "common.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>

#include "obs/macros.h"
#include "obs/sinks.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/units.h"

namespace adapipe {
namespace bench {

MetricsSession::MetricsSession(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::string prefix = "--metrics-out";
        if (arg == prefix && i + 1 < argc) {
            path_ = argv[i + 1];
            break;
        }
        if (arg.rfind(prefix + "=", 0) == 0) {
            path_ = arg.substr(prefix.size() + 1);
            break;
        }
    }
    if (path_.empty()) {
        if (const char *env = std::getenv("ADAPIPE_METRICS_OUT"))
            path_ = env;
    }
    if (!path_.empty()) {
        obs::install(&registry_);
        installed_ = true;
    }
}

MetricsSession::~MetricsSession()
{
    if (!installed_)
        return;
    obs::install(nullptr);
    std::ofstream out(path_);
    if (!out.good()) {
        std::cerr << "warning: cannot write metrics to " << path_
                  << "\n";
        return;
    }
    const bool csv = path_.size() >= 4 &&
                     path_.compare(path_.size() - 4, 4, ".csv") == 0;
    if (csv)
        obs::writeCsvSummary(registry_, out);
    else
        obs::writeJsonLines(registry_, out);
}

std::vector<Method>
clusterAMethods()
{
    return {
        {"DAPPLE-Full", {}, BaselineSchedule::Dapple, true},
        {"DAPPLE-Non", {}, BaselineSchedule::Dapple, false},
        {"Chimera-Full", {}, BaselineSchedule::Chimera, true},
        {"Chimera-Non", {}, BaselineSchedule::Chimera, false},
        {"ChimeraD-Full", {}, BaselineSchedule::ChimeraD, true},
        {"ChimeraD-Non", {}, BaselineSchedule::ChimeraD, false},
        {"Even Partitioning", PlanMethod::EvenPartition, {}, false},
        {"AdaPipe", PlanMethod::AdaPipe, {}, false},
    };
}

std::vector<Method>
clusterBMethods()
{
    return {
        {"DAPPLE-Full", {}, BaselineSchedule::Dapple, true},
        {"DAPPLE-Non", {}, BaselineSchedule::Dapple, false},
        {"Even Partitioning", PlanMethod::EvenPartition, {}, false},
        {"AdaPipe", PlanMethod::AdaPipe, {}, false},
    };
}

CellResult
evaluateMethod(const ModelConfig &model, const TrainConfig &train,
               const ParallelConfig &par, const ClusterSpec &cluster,
               const Method &method)
{
    ADAPIPE_OBS_SPAN(obs_span, "bench.evaluate_method");
    ADAPIPE_OBS_COUNT("bench.cells", 1);
    CellResult cell;
    cell.method = method.name;
    cell.strategy = par;

    // Chimera variants need even pipelines and micro-batch counts.
    const int n = train.microBatches(par);
    if (method.schedule) {
        const bool chimera =
            *method.schedule == BaselineSchedule::Chimera ||
            *method.schedule == BaselineSchedule::ChimeraD;
        if (chimera && (par.pipeline % 2 != 0 || n % 2 != 0)) {
            cell.oomReason = "schedule needs even p and n";
            return cell;
        }
        if (*method.schedule == BaselineSchedule::ChimeraD &&
            n % 4 != 0) {
            cell.oomReason = "forward doubling needs n % 4 == 0";
            return cell;
        }
    }

    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);
    if (method.plan) {
        const PlanResult r = makePlan(pm, *method.plan);
        if (!r.ok) {
            cell.oomReason = r.oomReason;
            return cell;
        }
        cell.plan = r.plan;
        cell.details = simulatePlan(pm, r.plan);
        cell.feasible = true;
        cell.iterationTime = cell.details.iterationTime;
        return cell;
    }

    cell.details = evaluateBaseline(pm, *method.schedule,
                                    method.fullRecompute);
    cell.feasible = cell.details.feasible;
    cell.oomReason = cell.details.oomReason;
    cell.iterationTime = cell.details.iterationTime;
    return cell;
}

CellResult
bestOverStrategies(const ModelConfig &model, const TrainConfig &train,
                   const ClusterSpec &cluster, const Method &method,
                   const StrategySearchOptions &opts)
{
    ADAPIPE_OBS_SPAN(obs_span, "bench.best_over_strategies");
    CellResult best;
    best.method = method.name;
    best.oomReason = "all strategies OOM";
    Seconds best_time = std::numeric_limits<double>::infinity();
    for (const ParallelConfig &par :
         enumerateStrategies(model, train, cluster, opts)) {
        CellResult cell =
            evaluateMethod(model, train, par, cluster, method);
        if (!cell.feasible)
            continue;
        if (cell.iterationTime < best_time) {
            best_time = cell.iterationTime;
            best = std::move(cell);
        }
    }
    return best;
}

std::string
cellTime(const CellResult &cell)
{
    if (!cell.feasible)
        return "OOM";
    return formatSeconds(cell.iterationTime);
}

void
runClusterAFigure(const ModelConfig &model, const ClusterSpec &cluster,
                  const std::vector<std::pair<int, int>> &configs)
{
    std::cout << "End-to-end performance of " << model.name << " on "
              << cluster.name << " (" << cluster.totalDevices()
              << " devices)\n"
              << "Each cell: best iteration time over all (t, p, d) "
                 "strategies; speedups vs DAPPLE-Full/-Non.\n\n";

    // With ADAPIPE_CSV_DIR set, machine-readable copies of every
    // row are written for plotting.
    const char *csv_dir = std::getenv("ADAPIPE_CSV_DIR");
    std::ofstream csv_file;
    std::unique_ptr<CsvWriter> csv;
    if (csv_dir) {
        std::string name = model.name;
        for (char &c : name) {
            if (c == ' ' || c == '.')
                c = '_';
        }
        const std::string path =
            std::string(csv_dir) + "/cluster_a_" + name + ".csv";
        csv_file.open(path);
        if (csv_file.good()) {
            csv = std::make_unique<CsvWriter>(
                csv_file,
                std::vector<std::string>{"seq", "global_batch",
                                         "method", "feasible",
                                         "iteration_s", "tensor",
                                         "pipeline", "data"});
        } else {
            std::cerr << "warning: cannot write " << path << "\n";
        }
    }

    for (const auto &[seq, gbs] : configs) {
        TrainConfig train;
        train.seqLen = seq;
        train.globalBatch = gbs;

        std::cout << "Sequence length " << seq << ", global batch "
                  << gbs << ":\n";
        Table table({"Method", "Iteration", "Strategy (t,p,d)",
                     "Speedup (vs Full/Non)"});

        std::vector<CellResult> cells;
        for (const Method &m : clusterAMethods())
            cells.push_back(
                bestOverStrategies(model, train, cluster, m));

        const Seconds full = cells[0].feasible
                                 ? cells[0].iterationTime
                                 : 0;
        const Seconds non = cells[1].feasible ? cells[1].iterationTime
                                              : 0;
        for (const CellResult &cell : cells) {
            table.addRow(
                {cell.method, cellTime(cell),
                 cell.feasible ? cell.strategy.toString() : "-",
                 full > 0 ? speedupLabel(cell, full, non) : "-"});
            if (csv) {
                csv->writeRow(
                    {std::to_string(seq), std::to_string(gbs),
                     cell.method, cell.feasible ? "1" : "0",
                     cell.feasible
                         ? formatDouble(cell.iterationTime, 4)
                         : "",
                     std::to_string(cell.strategy.tensor),
                     std::to_string(cell.strategy.pipeline),
                     std::to_string(cell.strategy.data)});
            }
        }
        table.print(std::cout);
        std::cout << "\n";
    }
}

std::string
speedupLabel(const CellResult &cell, Seconds dapple_full,
             Seconds dapple_non)
{
    if (!cell.feasible)
        return "-";
    std::string label =
        formatDouble(dapple_full / cell.iterationTime) + "x/";
    if (dapple_non > 0)
        label += formatDouble(dapple_non / cell.iterationTime) + "x";
    else
        label += "OOM";
    return label;
}

} // namespace bench
} // namespace adapipe
