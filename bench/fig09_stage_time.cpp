/**
 * @file
 * Figure 9: computation time (micro-step = forward + backward of one
 * micro-batch) of each stage for GPT-3, sequence length 16384,
 * strategy (8, 8, 1).
 *
 * Expected shape: the *-Full baselines are flat around 2x the
 * no-recompute micro-step; Even Partitioning decreases with the
 * stage id (front stages recompute more; slowest/fastest ~1.15x);
 * AdaPipe is flat again because adaptive partitioning re-balances.
 */

#include <iostream>

#include "common.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;
using namespace adapipe::bench;

int
main()
{
    const ModelConfig model = gpt3_175b();
    const ClusterSpec cluster = clusterA(8);
    TrainConfig train;
    train.seqLen = 16384;
    train.globalBatch = 32;

    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 8;
    par.data = 1;

    std::cout << "Figure 9: micro-step (F+B) time per stage, "
              << model.name << ", seq " << train.seqLen
              << ", strategy " << par.toString() << "\n\n";

    const std::vector<Method> methods = {
        {"DAPPLE-Full", {}, BaselineSchedule::Dapple, true},
        {"Chimera-Full", {}, BaselineSchedule::Chimera, true},
        {"ChimeraD-Full", {}, BaselineSchedule::ChimeraD, true},
        {"Even Partitioning", PlanMethod::EvenPartition, {}, false},
        {"AdaPipe", PlanMethod::AdaPipe, {}, false},
    };

    Table table({"Method", "s0", "s1", "s2", "s3", "s4", "s5", "s6",
                 "s7", "max/min"});
    for (const Method &m : methods) {
        const CellResult cell =
            evaluateMethod(model, train, par, cluster, m);
        std::vector<std::string> row{m.name};
        if (cell.details.microStepTime.empty()) {
            row.push_back("infeasible");
            table.addRow(std::move(row));
            continue;
        }
        Seconds lo = cell.details.microStepTime.front();
        Seconds hi = lo;
        for (Seconds t : cell.details.microStepTime) {
            row.push_back(formatSeconds(t));
            lo = std::min(lo, t);
            hi = std::max(hi, t);
        }
        row.push_back(formatDouble(hi / lo) + "x");
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    return 0;
}
