/**
 * @file
 * Figure 7: end-to-end performance on cluster B (Ascend 910 32GB).
 *
 * Small scale: Llama 2 on 128 NPUs, GPT-3 on 256 NPUs; large scale:
 * 1024 / 2048 NPUs with the global batch scaled linearly with the
 * data-parallel size (weak scaling). As on the real cluster, the
 * parallel strategy is fixed per model (compilation on MindSpore
 * takes an hour per strategy, so the paper does not sweep):
 * GPT-3 (t, p) = (8, 8), Llama 2 (t, p) = (4, 8).
 *
 * Expected shape: DAPPLE-Non OOMs everywhere (32 GB devices);
 * AdaPipe up to ~1.2x over DAPPLE-Full; flat weak scaling.
 */

#include <iostream>

#include "common.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;
using namespace adapipe::bench;

namespace {

struct Workload
{
    ModelConfig model;
    int nodes;
    ParallelConfig par;
    int globalBatch;
};

} // namespace

int
main(int argc, char **argv)
{
    MetricsSession metrics(argc, argv);
    std::vector<Workload> workloads;
    {
        Workload w{llama2_70b(), 16, {}, 256};
        w.par.tensor = 4;
        w.par.pipeline = 8;
        w.par.data = 4;
        workloads.push_back(w);
    }
    {
        Workload w{llama2_70b(), 128, {}, 2048};
        w.par.tensor = 4;
        w.par.pipeline = 8;
        w.par.data = 32;
        workloads.push_back(w);
    }
    {
        Workload w{gpt3_175b(), 32, {}, 256};
        w.par.tensor = 8;
        w.par.pipeline = 8;
        w.par.data = 4;
        workloads.push_back(w);
    }
    {
        Workload w{gpt3_175b(), 256, {}, 2048};
        w.par.tensor = 8;
        w.par.pipeline = 8;
        w.par.data = 32;
        workloads.push_back(w);
    }

    std::cout << "Figure 7: end-to-end performance on cluster B "
                 "(Ascend 910 32GB), seq 4096\n\n";
    Table table({"Model (#dev)", "Method", "Iteration",
                 "Speedup (vs Full/Non)"});

    for (const Workload &w : workloads) {
        const ClusterSpec cluster = clusterB(w.nodes);
        TrainConfig train;
        train.seqLen = 4096;
        train.globalBatch = w.globalBatch;

        std::vector<CellResult> cells;
        for (const Method &m : clusterBMethods())
            cells.push_back(evaluateMethod(w.model, train, w.par,
                                           cluster, m));
        const Seconds full =
            cells[0].feasible ? cells[0].iterationTime : 0;
        const Seconds non =
            cells[1].feasible ? cells[1].iterationTime : 0;

        const std::string label =
            w.model.name + " (" +
            std::to_string(cluster.totalDevices()) + ")";
        for (const CellResult &cell : cells) {
            table.addRow({label, cell.method, cellTime(cell),
                          full > 0 ? speedupLabel(cell, full, non)
                                   : "-"});
        }
    }
    table.print(std::cout);
    std::cout << "\nShape check vs paper: DAPPLE-Non OOMs on the "
                 "32 GB devices; AdaPipe ~1.2x over\n"
              << "DAPPLE-Full; iteration time is flat from 128/256 "
                 "to 1024/2048 devices (weak scaling).\n";
    return 0;
}
