/**
 * @file
 * Extension study: the recomputation-strategy ladder of Sec. 2.2 on
 * the *unfused* attention path (the pre-flash-attention era).
 *
 * Without flash attention the O(s^2) score/softmax tensors dominate
 * activation memory. Selective recomputation (Korthikanti et al.)
 * drops exactly those; full recomputation drops everything; AdaPipe
 * subsumes both by choosing per stage. With flash attention enabled
 * the selective strategy degenerates to no-recompute ("superseded",
 * Sec. 2.2), which the last table demonstrates.
 */

#include <cstdio>
#include <iostream>

#include "core/planner.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "sim/baseline_eval.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

namespace {

void
runLadder(const ModelConfig &model, const ClusterSpec &cluster,
          bool flash, int seq)
{
    TrainConfig train;
    train.seqLen = seq;
    train.globalBatch = 32;
    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 4;
    par.data = 1;
    par.flashAttention = flash;

    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);

    std::cout << (flash ? "With" : "Without") << " flash attention, "
              << "seq " << seq << ":\n";
    Table table(
        {"Method", "Iteration", "Stage-0 mem", "Backward overhead"});

    const PlanResult non = makePlan(pm, PlanMethod::DappleNon);
    const Seconds base_bwd =
        non.ok ? non.plan.stages.front().timeBwd : 0;

    for (PlanMethod m :
         {PlanMethod::DappleNon, PlanMethod::DappleSelective,
          PlanMethod::DappleFull, PlanMethod::EvenPartition,
          PlanMethod::AdaPipe}) {
        const PlanResult r = makePlan(pm, m);
        if (!r.ok) {
            table.addRow({planMethodName(m), "OOM", "-", "-"});
            continue;
        }
        const StagePlan &s0 = r.plan.stages.front();
        std::string overhead = "-";
        if (base_bwd > 0) {
            const double pct =
                100.0 * (s0.timeBwd - base_bwd) / base_bwd;
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%+.1f%%", pct);
            overhead = buf;
        }
        table.addRow({planMethodName(m),
                      formatSeconds(r.plan.timing.total),
                      formatBytes(s0.memPeak), overhead});
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    const ModelConfig model = gpt3_13b();
    ClusterSpec cluster = clusterA(4);

    std::cout << "Extension: recomputation-strategy ladder ("
              << model.name << ", 32 GPUs)\n\n";

    runLadder(model, cluster, /*flash=*/false, 8192);
    runLadder(model, cluster, /*flash=*/false, 16384);
    runLadder(model, cluster, /*flash=*/true, 16384);

    std::cout
        << "Shape check vs paper Sec. 2.2: selective recomputation "
           "removes most of the\nmemory gap at a small backward "
           "overhead on the unfused path; with flash\nattention it "
           "coincides with no-recompute; AdaPipe dominates both on "
           "either path.\n";
    return 0;
}
