/**
 * @file
 * Figure 2: GPipe vs 1F1B scheduling, rendered as ASCII timelines
 * with bubble counts and per-stage peak in-flight micro-batches
 * (the background facts Sec. 2.1 builds on).
 */

#include <iostream>

#include "sim/baseline_eval.h"
#include "sim/pipeline_sim.h"
#include "sim/schedule.h"
#include "sim/timeline.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

int
main()
{
    const int p = 3;
    const int n = 6;
    // Backward is twice the forward time, as in the paper's figure.
    const std::vector<StageTimes> stages(p, StageTimes{1.0, 2.0});

    std::cout << "Figure 2: schedules with p=" << p << ", n=" << n
              << ", F=1, B=2\n\n";

    Table summary({"Schedule", "Iteration", "Bubble total",
                   "Peak in-flight (per stage)"});

    for (const Schedule &sched : {buildGPipe(p, n), build1F1B(p, n)}) {
        const SimResult sim = simulate(sched, stages, {});
        std::cout << renderTimeline(sched, sim, 90) << "\n";

        std::string alive;
        for (int s = 0; s < p; ++s) {
            if (s)
                alive += " ";
            alive += std::to_string(sim.peakAlive[s]);
        }
        summary.addRow({sched.name,
                        formatDouble(sim.iterationTime, 1),
                        formatDouble(sim.totalBubbleTime(), 1),
                        alive});
    }
    summary.print(std::cout);
    std::cout
        << "\nShape check vs paper: both schedules have 2(p-1) "
           "bubbles; 1F1B cuts peak in-flight\n"
        << "micro-batches from n (GPipe) to p - s per stage.\n";
    return 0;
}
