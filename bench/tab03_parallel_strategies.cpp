/**
 * @file
 * Table 3: iteration time of GPT-3 (seq 4096, global batch 128) on
 * cluster A under every 3D parallelism strategy, for DAPPLE-Full,
 * DAPPLE-Non, Even Partitioning and AdaPipe.
 *
 * Expected shape: (1, 32, 2) OOMs for the AdaPipe methods (output
 * tensors of Attention/FFN are always saved and huge at t = 1);
 * DAPPLE-Non only fits at t = 8; mid-size tensor parallelism
 * (t = 4) wins for the recomputation-aware methods; the best cell
 * per column is marked with '*'.
 */

#include <iostream>
#include <limits>

#include "common.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;
using namespace adapipe::bench;

int
main(int argc, char **argv)
{
    MetricsSession metrics(argc, argv);
    const ModelConfig model = gpt3_175b();
    const ClusterSpec cluster = clusterA(8);
    TrainConfig train;
    train.seqLen = 4096;
    train.globalBatch = 128;

    const std::vector<Method> methods = {
        {"DAPPLE-Full", {}, BaselineSchedule::Dapple, true},
        {"DAPPLE-Non", {}, BaselineSchedule::Dapple, false},
        {"Even Partitioning", PlanMethod::EvenPartition, {}, false},
        {"AdaPipe", PlanMethod::AdaPipe, {}, false},
    };

    std::cout << "Table 3: GPT-3, seq 4096, cluster A (64 GPUs), "
                 "iteration time per (t, p, d) strategy\n\n";

    StrategySearchOptions opts;
    const auto strategies =
        enumerateStrategies(model, train, cluster, opts);

    // Collect all cells; remember each method's best.
    std::vector<std::vector<CellResult>> cells(strategies.size());
    std::vector<Seconds> best(methods.size(),
                              std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < strategies.size(); ++i) {
        for (std::size_t m = 0; m < methods.size(); ++m) {
            CellResult cell = evaluateMethod(model, train,
                                             strategies[i], cluster,
                                             methods[m]);
            if (cell.feasible)
                best[m] = std::min(best[m], cell.iterationTime);
            cells[i].push_back(std::move(cell));
        }
    }

    Table table({"(t, p, d)", "DAPPLE-Full", "DAPPLE-Non",
                 "Even Partitioning", "AdaPipe"});
    for (std::size_t i = 0; i < strategies.size(); ++i) {
        bool any = false;
        std::vector<std::string> row{strategies[i].toString()};
        for (std::size_t m = 0; m < methods.size(); ++m) {
            const CellResult &cell = cells[i][m];
            std::string text = cellTime(cell);
            if (cell.feasible) {
                any = true;
                if (cell.iterationTime == best[m])
                    text += " *";
            }
            row.push_back(std::move(text));
        }
        // The paper omits strategies that OOM for every method.
        if (any)
            table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n(* = best strategy for that method)\n";
    return 0;
}
