/**
 * @file
 * Sec. 3's sensitivity claim: "When the number of micro-batches is
 * small, adaptive recomputation contributes more ... since it
 * significantly improves the warmup and the ending phases. On the
 * contrary, if more micro-batches are presented in one iteration,
 * adaptive partitioning will show its effectiveness in the steady
 * phase."
 *
 * Sweeps n for GPT-3 under tight memory and decomposes the speedup
 * into the two optimisations: Opt1 = Even Partitioning over
 * DAPPLE-Full (adaptive recomputation alone), Opt2 = AdaPipe over
 * Even Partitioning (partitioning on top).
 */

#include <iostream>

#include "core/planner.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

int
main()
{
    const ModelConfig model = gpt3_175b();
    ClusterSpec cluster = clusterA(8);
    // Tight memory so partitioning has an imbalance to fix.
    cluster.device.memCapacity = GiB(64);
    TrainConfig train;
    train.seqLen = 16384;
    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 8;
    par.data = 1;

    std::cout << "Sec. 3 sensitivity: contribution of the two "
                 "optimisations vs micro-batch count\n(" << model.name
              << ", seq " << train.seqLen << ", strategy "
              << par.toString() << ", "
              << formatBytes(cluster.device.memCapacity, 0)
              << " devices)\n\n";

    Table table({"n", "DAPPLE-Full", "Even Part.", "AdaPipe",
                 "Opt1 speedup", "Opt2 extra", "Steady share "
                 "(AdaPipe)"});

    for (int n : {8, 16, 32, 64, 128}) {
        train.globalBatch = n;
        const ProfiledModel pm =
            buildProfiledModel(model, train, par, cluster);
        const PlanResult full = makePlan(pm, PlanMethod::DappleFull);
        const PlanResult even =
            makePlan(pm, PlanMethod::EvenPartition);
        const PlanResult ada = makePlan(pm, PlanMethod::AdaPipe);
        if (!full.ok || !even.ok || !ada.ok) {
            table.addRow({std::to_string(n), "OOM"});
            continue;
        }
        const Seconds t_full = full.plan.timing.total;
        const Seconds t_even = even.plan.timing.total;
        const Seconds t_ada = ada.plan.timing.total;
        const double steady_share =
            (t_ada - ada.plan.timing.warmup -
             ada.plan.timing.ending) /
            t_ada;
        table.addRow({std::to_string(n), formatSeconds(t_full),
                      formatSeconds(t_even), formatSeconds(t_ada),
                      formatDouble(t_full / t_even, 3) + "x",
                      formatDouble(t_even / t_ada, 3) + "x",
                      formatDouble(100 * steady_share, 1) + "%"});
    }
    table.print(std::cout);
    std::cout
        << "\nShape check vs paper Sec. 3: adaptive recomputation "
           "(Opt1) contributes most at small n,\nwhere warmup/ending "
           "dominate; adaptive partitioning's extra gain (Opt2) "
           "grows with n as\nthe steady phase takes over (at n = 8 "
           "the partition DP instead reshapes warmup/ending,\nwhich "
           "is the same mechanism applied to the phases that "
           "matter there).\n";
    return 0;
}
