/**
 * @file
 * Extension study of the Sec. 7.4 remark: "This is due to the
 * conservative setting of the memory constraint at 70GB ... The
 * memory constraint can be elevated for better performance."
 *
 * Sweeps the planner's memory-budget fraction for GPT-3 at sequence
 * length 16384 and reports iteration time, the saved-unit counts and
 * the realised stage-0 memory — the knob's full trade-off curve.
 */

#include <iostream>

#include "core/planner.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

int
main()
{
    const ModelConfig model = gpt3_175b();
    const ClusterSpec cluster = clusterA(8);
    TrainConfig train;
    train.seqLen = 16384;
    train.globalBatch = 32;
    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 8;
    par.data = 1;

    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);

    std::cout << "Extension: memory-budget sweep (" << model.name
              << ", seq " << train.seqLen << ", strategy "
              << par.toString() << ", usable capacity "
              << formatBytes(pm.memCapacity, 0) << ")\n\n";

    Table table({"Budget fraction", "Budget", "Iteration",
                 "Saved units (s0)", "Stage-0 mem", "Speedup vs "
                 "DAPPLE-Full"});

    const PlanResult full = makePlan(pm, PlanMethod::DappleFull);
    const Seconds full_time =
        full.ok ? full.plan.timing.total : 0;

    for (double fraction :
         {0.60, 0.70, 0.80, 0.875, 0.95, 1.00}) {
        StageCostOptions opts;
        opts.memBudgetFraction = fraction;
        const PlanResult r = makePlan(pm, PlanMethod::AdaPipe, opts);
        if (!r.ok) {
            table.addRow({formatDouble(fraction), "-", "OOM", "-",
                          "-", "-"});
            continue;
        }
        const StagePlan &s0 = r.plan.stages.front();
        table.addRow(
            {formatDouble(fraction),
             formatBytes(static_cast<Bytes>(
                             fraction *
                             static_cast<double>(pm.memCapacity)),
                         1),
             formatSeconds(r.plan.timing.total),
             std::to_string(s0.savedUnits) + "/" +
                 std::to_string(s0.totalUnits),
             formatBytes(s0.memPeak),
             full_time > 0
                 ? formatDouble(full_time / r.plan.timing.total) + "x"
                 : "-"});
    }
    table.print(std::cout);
    std::cout << "\nShape check vs paper Sec. 7.4: raising the DP "
                 "budget converts unused memory into\nsaved units "
                 "and iteration-time gains, with diminishing returns "
                 "near capacity.\n";
    return 0;
}
