/**
 * @file
 * Table 4: the recomputation and partitioning configuration AdaPipe
 * and Even Partitioning produce for GPT-3, sequence 16384, strategy
 * (8, 8, 1): saved computation units and layer counts per stage.
 *
 * Expected shape: saved units increase with the stage id (later
 * stages keep fewer in-flight micro-batches); AdaPipe moves layers
 * from early to late stages (e.g. 23..26 vs the uniform 24/25).
 */

#include <iostream>

#include "core/planner.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

int
main()
{
    const ModelConfig model = gpt3_175b();
    const ClusterSpec cluster = clusterA(8);
    TrainConfig train;
    train.seqLen = 16384;
    train.globalBatch = 32;

    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 8;
    par.data = 1;

    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);

    std::cout << "Table 4: plan configuration, " << model.name
              << ", seq " << train.seqLen << ", strategy "
              << par.toString() << "\n\n";

    Table table({"Method", "Metric", "s0", "s1", "s2", "s3", "s4",
                 "s5", "s6", "s7"});
    for (PlanMethod method :
         {PlanMethod::AdaPipe, PlanMethod::EvenPartition}) {
        const PlanResult r = makePlan(pm, method);
        if (!r.ok) {
            table.addRow({planMethodName(method), "OOM"});
            continue;
        }
        std::vector<std::string> saved{planMethodName(method),
                                       "Saved units"};
        std::vector<std::string> layers{"", "# Layers"};
        for (const StagePlan &sp : r.plan.stages) {
            saved.push_back(std::to_string(sp.savedUnits));
            layers.push_back(std::to_string(sp.numLayers()));
        }
        table.addRow(std::move(saved));
        table.addRow(std::move(layers));
    }
    table.print(std::cout);
    std::cout << "\nNote: layer counts include the embedding (stage "
                 "0) and decoding head (stage 7), as in the paper.\n";
    return 0;
}
