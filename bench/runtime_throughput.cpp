/**
 * @file
 * Runtime throughput benchmark: tiny-LM pipeline training across
 * 1/2/4 stages x none/attn/full recompute, on the real
 * multithreaded runtime, emitting machine-readable
 * BENCH_runtime.json to seed the repo's performance trajectory.
 *
 * Per configuration it records tokens/s, per-stage forward /
 * backward / checkpoint-replay compute time, blocked-channel and
 * recv-wait time, and the tensor pool's allocation counters
 * (heap allocations vs freelist reuses) so pool regressions show
 * up as numbers, not vibes.
 *
 * Every configuration runs at intra_stage_threads 1 and 4 (the
 * backward-engine worker count per stage), with overlapped
 * recomputation off and on, and with host activation offload off
 * and on (every other block staged to host by the worker's
 * HostStager and prefetched back before its backward). The
 * engine's reduction is bit-deterministic, eager replay computes
 * the same floats as lazy replay, and a fetched-back activation is
 * the same bytes that were evicted, so all sibling runs must
 * report the same final_loss — CI asserts that — while bwd_seconds
 * records the intra-stage speedup, replay_hidden_us the replay
 * time moved off the backward critical path into recv/send
 * bubbles, and offload_bytes_evicted the host-staging traffic.
 *
 * Usage:
 *   runtime_throughput                 # full grid, BENCH_runtime.json
 *   runtime_throughput --smoke         # CI-sized, same schema
 *   runtime_throughput --out my.json
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "autograd/tensor_pool.h"
#include "autograd/trainer.h"
#include "core/planner.h"
#include "hw/cluster.h"
#include "runtime/fault_injector.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/plan_mapping.h"
#include "runtime/recovery.h"
#include "util/cli.h"
#include "util/file_io.h"
#include "util/json.h"

using namespace adapipe;

namespace {

struct ConfigResult
{
    int stages = 0;
    int virtualStages = 1;
    int intraStageThreads = 1;
    bool overlap = false;
    bool offload = false;
    std::string recompute;
    double tokensPerSecond = 0;
    double wallSeconds = 0;
    double finalLoss = 0;
    TensorPool::Stats pool; // deltas over the run
    std::vector<StageMetrics> stageMetrics;
};

JsonValue
stageJson(const StageMetrics &sm)
{
    JsonValue stage = JsonValue::object();
    stage.set("chain_pos", JsonValue::integer(sm.chainPos));
    stage.set("first_block", JsonValue::integer(sm.firstBlock));
    stage.set("last_block", JsonValue::integer(sm.lastBlock));
    stage.set("fwd_ops", JsonValue::integer(sm.fwdOps));
    stage.set("bwd_ops", JsonValue::integer(sm.bwdOps));
    stage.set("fwd_seconds", JsonValue::number(sm.fwdSeconds));
    stage.set("bwd_seconds", JsonValue::number(sm.bwdSeconds));
    stage.set("replay_ops", JsonValue::integer(sm.replayOps));
    stage.set("replay_seconds", JsonValue::number(sm.replaySeconds));
    stage.set("bwd_compute_seconds",
              JsonValue::number(sm.bwdComputeSeconds()));
    stage.set("replay_hidden_seconds",
              JsonValue::number(sm.replayHiddenSeconds));
    stage.set("replay_critical_seconds",
              JsonValue::number(sm.replayCriticalSeconds()));
    stage.set("send_blocked_seconds",
              JsonValue::number(sm.sendBlockedSeconds));
    stage.set("recv_wait_seconds",
              JsonValue::number(sm.recvWaitSeconds));
    stage.set("peak_activation_floats",
              JsonValue::integer(sm.peakActivationFloats));
    stage.set("offload_evictions",
              JsonValue::integer(sm.offloadEvictions));
    stage.set("offload_fetches",
              JsonValue::integer(sm.offloadFetches));
    stage.set("offload_fetch_misses",
              JsonValue::integer(sm.offloadFetchMisses));
    stage.set("offload_bytes_evicted",
              JsonValue::integer(static_cast<std::int64_t>(
                  sm.offloadBytesEvicted)));
    stage.set("offload_bytes_fetched",
              JsonValue::integer(static_cast<std::int64_t>(
                  sm.offloadBytesFetched)));
    return stage;
}

/**
 * Flags every other block (globally even positions) for host
 * offload — the tight-memory configuration: half the pipeline's
 * activations live on the host between forward and backward.
 */
std::vector<StageSpec>
withAlternatingOffload(std::vector<StageSpec> specs)
{
    int b = 0;
    for (StageSpec &spec : specs) {
        spec.offload.assign(spec.numBlocks(), false);
        for (int i = 0; i < spec.numBlocks(); ++i, ++b)
            if (b % 2 == 0)
                spec.offload[i] = true;
    }
    return specs;
}

JsonValue
configJson(const ConfigResult &r)
{
    JsonValue cfg = JsonValue::object();
    cfg.set("stages", JsonValue::integer(r.stages));
    cfg.set("virtual_stages", JsonValue::integer(r.virtualStages));
    cfg.set("intra_stage_threads",
            JsonValue::integer(r.intraStageThreads));
    cfg.set("overlap", JsonValue::boolean(r.overlap));
    cfg.set("offload", JsonValue::boolean(r.offload));
    cfg.set("recompute", JsonValue::string(r.recompute));
    cfg.set("tokens_per_second",
            JsonValue::number(r.tokensPerSecond));
    cfg.set("wall_seconds", JsonValue::number(r.wallSeconds));
    cfg.set("final_loss", JsonValue::number(r.finalLoss));
    // Aggregates over the stages, in microseconds, for the release
    // gate: overlap runs on enough stages must report hidden > 0.
    double hidden = 0, critical = 0;
    for (const StageMetrics &sm : r.stageMetrics) {
        hidden += sm.replayHiddenSeconds;
        critical += sm.replayCriticalSeconds();
    }
    cfg.set("replay_hidden_us", JsonValue::number(hidden * 1e6));
    cfg.set("replay_critical_us", JsonValue::number(critical * 1e6));
    // Host-staging aggregates for the release gate: offload runs
    // must actually move bytes, non-offload runs must move none.
    std::int64_t evictions = 0, fetch_misses = 0;
    std::uint64_t bytes_evicted = 0, bytes_fetched = 0;
    for (const StageMetrics &sm : r.stageMetrics) {
        evictions += sm.offloadEvictions;
        fetch_misses += sm.offloadFetchMisses;
        bytes_evicted += sm.offloadBytesEvicted;
        bytes_fetched += sm.offloadBytesFetched;
    }
    cfg.set("offload_evictions", JsonValue::integer(evictions));
    cfg.set("offload_fetch_misses",
            JsonValue::integer(fetch_misses));
    cfg.set("offload_bytes_evicted",
            JsonValue::integer(
                static_cast<std::int64_t>(bytes_evicted)));
    cfg.set("offload_bytes_fetched",
            JsonValue::integer(
                static_cast<std::int64_t>(bytes_fetched)));

    JsonValue pool = JsonValue::object();
    pool.set("heap_allocs", JsonValue::integer(r.pool.heapAllocs));
    pool.set("reuses", JsonValue::integer(r.pool.reuses));
    pool.set("releases", JsonValue::integer(r.pool.releases));
    pool.set("heap_bytes", JsonValue::integer(r.pool.heapBytes));
    cfg.set("pool", std::move(pool));

    JsonValue stages = JsonValue::array();
    for (const StageMetrics &sm : r.stageMetrics)
        stages.push(stageJson(sm));
    cfg.set("stage_metrics", std::move(stages));
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("runtime_throughput");
    cli.addInt("blocks", 8, "transformer blocks");
    cli.addInt("dim", 64, "model width");
    cli.addInt("ffn-hidden", 128, "feed-forward inner width");
    cli.addInt("vocab", 64, "vocabulary size");
    cli.addInt("seq", 32, "tokens per micro-batch");
    cli.addInt("steps", 10, "optimizer steps per configuration");
    cli.addInt("micro-batches", 4, "micro-batches per step");
    cli.addInt("seed", 42, "model-init seed");
    cli.addString("out", "BENCH_runtime.json", "output JSON path");
    cli.addFlag("smoke",
                "CI-sized run (tiny model, 3 steps); same schema");
    cli.parse(argc, argv);

    TinyLmConfig cfg;
    cfg.vocab = static_cast<int>(cli.getInt("vocab"));
    cfg.dim = static_cast<int>(cli.getInt("dim"));
    cfg.blocks = static_cast<int>(cli.getInt("blocks"));
    cfg.ffnHidden = static_cast<int>(cli.getInt("ffn-hidden"));
    cfg.maxSeq = static_cast<int>(cli.getInt("seq"));
    cfg.seed = static_cast<std::uint64_t>(cli.getInt("seed"));

    RuntimeOptions opts;
    opts.steps = static_cast<int>(cli.getInt("steps"));
    opts.seqLen = static_cast<int>(cli.getInt("seq"));
    opts.microBatches =
        static_cast<int>(cli.getInt("micro-batches"));

    if (cli.getFlag("smoke")) {
        cfg.blocks = 4;
        cfg.dim = 32;
        cfg.ffnHidden = 64;
        opts.steps = 3;
        opts.microBatches = 2;
    }

    const int stage_counts[] = {1, 2, 4};
    const int virtual_counts[] = {1, 2};
    const int thread_counts[] = {1, 4};
    const BlockRecompute modes[] = {BlockRecompute::None,
                                    BlockRecompute::AttentionOnly,
                                    BlockRecompute::Full};
    const char *const mode_names[] = {"none", "attn", "full"};

    TensorPool &pool = TensorPool::instance();
    std::vector<ConfigResult> results;
    for (const int p : stage_counts) {
        if (p > cfg.blocks)
            continue;
        for (const int v : virtual_counts) {
            // Interleaving needs n % p == 0 (Megatron's constraint)
            // and one block per chunk; skip the configs that cannot
            // run instead of recording failures.
            if (v > 1 && (opts.microBatches % p != 0 ||
                          v * p > cfg.blocks)) {
                continue;
            }
            for (std::size_t mi = 0; mi < 3; ++mi) {
                for (const int t : thread_counts) {
                for (const bool ov : {false, true}) {
                for (const bool off : {false, true}) {
                    std::vector<StageSpec> specs =
                        evenStageSpecs(cfg.blocks, v * p, modes[mi]);
                    if (off)
                        specs = withAlternatingOffload(
                            std::move(specs));
                    RuntimeOptions run_opts = opts;
                    run_opts.virtualStages = v;
                    run_opts.intraStageThreads = t;
                    run_opts.overlapReplay = ov;
                    TinyLM model(cfg);

                    const TensorPool::Stats before = pool.stats();
                    const RuntimeResult run =
                        runPipeline(model, specs, run_opts);
                    const TensorPool::Stats after = pool.stats();
                    if (!run.ok) {
                        std::cerr << "runtime_throughput: run "
                                     "failed (p="
                                  << p << " v=" << v
                                  << " recompute=" << mode_names[mi]
                                  << " threads=" << t
                                  << " overlap=" << ov
                                  << " offload=" << off
                                  << "): " << run.error << "\n";
                        return 1;
                    }

                    ConfigResult r;
                    r.stages = p;
                    r.virtualStages = v;
                    r.intraStageThreads = t;
                    r.overlap = ov;
                    r.offload = off;
                    r.recompute = mode_names[mi];
                    r.wallSeconds = run.wallSeconds;
                    const double tokens =
                        static_cast<double>(opts.steps) *
                        opts.microBatches * opts.seqLen;
                    r.tokensPerSecond =
                        run.wallSeconds > 0
                            ? tokens / run.wallSeconds
                            : 0;
                    r.finalLoss =
                        run.losses.empty() ? 0 : run.losses.back();
                    r.pool.heapAllocs =
                        after.heapAllocs - before.heapAllocs;
                    r.pool.reuses = after.reuses - before.reuses;
                    r.pool.releases =
                        after.releases - before.releases;
                    r.pool.heapBytes =
                        after.heapBytes - before.heapBytes;
                    r.stageMetrics = run.stages;
                    results.push_back(std::move(r));

                    std::cout
                        << "p=" << p << " v=" << v
                        << " recompute=" << mode_names[mi]
                        << " threads=" << t
                        << " overlap=" << (ov ? "on" : "off")
                        << " offload=" << (off ? "on" : "off")
                        << ": "
                        << static_cast<long long>(r.tokensPerSecond)
                        << " tok/s, " << r.pool.heapAllocs
                        << " heap allocs / " << r.pool.reuses
                        << " reuses, final loss " << r.finalLoss
                        << "\n";
                }
                }
                }
            }
        }
    }

    // --- Recovery-time section: the same job clean vs killed at
    // iteration crash_step and recovered (watchdog detection ->
    // replan to fewer stages -> snapshot restore -> resume). The
    // recovered job must reproduce the clean losses bit-for-bit;
    // what recovery costs is wall clock, split into its parts. ---
    const int rec_stages = 2;
    const int rec_steps = opts.steps >= 4 ? opts.steps : 4;
    const int crash_step = 3;
    const int snapshot_every = 2;
    JsonValue recovery = JsonValue::object();
    {
        const std::vector<StageSpec> specs = evenStageSpecs(
            cfg.blocks, rec_stages, BlockRecompute::None);
        RuntimeOptions run_opts = opts;
        run_opts.steps = rec_steps;

        TinyLM clean_model(cfg);
        const RuntimeResult clean =
            runPipeline(clean_model, specs, run_opts);
        if (!clean.ok) {
            std::cerr << "runtime_throughput: clean recovery "
                         "baseline failed: "
                      << clean.error << "\n";
            return 1;
        }

        RuntimeFaultSpec faults;
        faults.crash.worker = 1;
        faults.crash.step = crash_step;
        faults.crash.afterOps = 1;
        faults.crash.hang = true;
        run_opts.faults = &faults;
        run_opts.watchdog.enabled = true;
        run_opts.watchdog.stallTimeoutUs = 3e5;
        run_opts.watchdog.pollIntervalUs = 2e4;
        const std::string snap_path =
            cli.getString("out") + ".snap";
        std::remove(snap_path.c_str());
        run_opts.snapshot.every = snapshot_every;
        run_opts.snapshot.path = snap_path;

        TrainConfig train;
        train.seqLen = opts.seqLen;
        train.microBatch = 1;
        train.globalBatch = opts.microBatches;
        ParallelConfig par;
        par.tensor = 1;
        par.pipeline = rec_stages;
        par.data = 1;
        const ProfiledModel pm = buildProfiledModel(
            tinyLmModelConfig(cfg), train, par, clusterA(1));
        RecoveryOptions rec;
        rec.replanOnFault = true;
        rec.pm = &pm;

        TinyLM model(cfg);
        const RecoveryResult res = runPipelineWithRecovery(
            model, specs, run_opts, rec);
        std::remove(snap_path.c_str());
        if (!res.ok || res.attempts.empty()) {
            std::cerr << "runtime_throughput: recovery run failed: "
                      << res.error << "\n";
            return 1;
        }
        const RecoveryAttempt &attempt = res.attempts.front();
        const bool losses_match = res.losses == clean.losses;

        recovery.set("stages", JsonValue::integer(rec_stages));
        recovery.set("crash_step", JsonValue::integer(crash_step));
        recovery.set("snapshot_every",
                     JsonValue::integer(snapshot_every));
        recovery.set("clean_wall_seconds",
                     JsonValue::number(clean.wallSeconds));
        recovery.set("recovered_wall_seconds",
                     JsonValue::number(res.wallSeconds));
        recovery.set("detect_seconds",
                     JsonValue::number(attempt.detectSeconds));
        recovery.set("replan_seconds",
                     JsonValue::number(attempt.replanSeconds));
        recovery.set("restore_seconds",
                     JsonValue::number(attempt.restoreSeconds));
        recovery.set("lost_iterations",
                     JsonValue::integer(attempt.lostIterations));
        recovery.set("resumed_from_step",
                     JsonValue::integer(attempt.resumedFromStep));
        recovery.set("final_stages",
                     JsonValue::integer(res.finalStages));
        recovery.set("losses_match",
                     JsonValue::boolean(losses_match));

        std::cout << "recovery: clean "
                  << clean.wallSeconds << " s, recovered "
                  << res.wallSeconds << " s (detect "
                  << attempt.detectSeconds << " s, replan "
                  << attempt.replanSeconds << " s, restore "
                  << attempt.restoreSeconds << " s, "
                  << attempt.lostIterations
                  << " iterations lost), losses_match="
                  << (losses_match ? "true" : "false") << "\n";
    }

    JsonValue doc = JsonValue::object();
    doc.set("benchmark", JsonValue::string("runtime_throughput"));
    JsonValue model_obj = JsonValue::object();
    model_obj.set("blocks", JsonValue::integer(cfg.blocks));
    model_obj.set("dim", JsonValue::integer(cfg.dim));
    model_obj.set("ffn_hidden", JsonValue::integer(cfg.ffnHidden));
    model_obj.set("vocab", JsonValue::integer(cfg.vocab));
    model_obj.set("seq_len", JsonValue::integer(opts.seqLen));
    model_obj.set("steps", JsonValue::integer(opts.steps));
    model_obj.set("micro_batches",
                  JsonValue::integer(opts.microBatches));
    doc.set("workload", std::move(model_obj));
    JsonValue arr = JsonValue::array();
    for (const ConfigResult &r : results)
        arr.push(configJson(r));
    doc.set("configs", std::move(arr));
    doc.set("recovery", std::move(recovery));

    const std::string out_path = cli.getString("out");
    const ParseStatus wrote =
        writeTextFile(out_path, doc.dump(2) + "\n");
    if (!wrote.ok()) {
        std::cerr << "runtime_throughput: error: " << wrote.error()
                  << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << " (" << results.size()
              << " configs)\n";
    return 0;
}
