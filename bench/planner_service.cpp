/**
 * @file
 * Plan-service load benchmark: start an in-process PlanServer, drive
 * it with concurrent TCP clients through a cold sweep (every request
 * distinct), a warm sweep (the same requests repeated) and a
 * fault-report series, and emit BENCH_planner_service.json with
 * throughput and p50/p99 latency split cold vs warm, plus the
 * server's own cache/memo counters from a stats request.
 *
 * Usage:
 *   planner_service                    # full load, BENCH_planner_service.json
 *   planner_service --smoke            # CI-sized, same schema
 *   planner_service --out my.json --threads 8 --warm-iters 16
 */

#include <atomic>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/server.h"
#include "util/cli.h"
#include "util/file_io.h"
#include "util/json.h"
#include "util/stats.h"

using namespace adapipe;

namespace {

double
nowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
planRequestLine(const std::string &model, int nodes, int tensor,
                int pipeline, int seq, int global_batch)
{
    JsonValue root = JsonValue::object();
    root.set("kind", JsonValue::string("plan"));
    JsonValue plan = JsonValue::object();
    plan.set("model", JsonValue::string(model));
    JsonValue cluster = JsonValue::object();
    cluster.set("name", JsonValue::string("a"));
    cluster.set("nodes", JsonValue::integer(nodes));
    plan.set("cluster", std::move(cluster));
    JsonValue train = JsonValue::object();
    train.set("seq_len", JsonValue::integer(seq));
    train.set("global_batch", JsonValue::integer(global_batch));
    plan.set("train", std::move(train));
    JsonValue par = JsonValue::object();
    par.set("tensor", JsonValue::integer(tensor));
    par.set("pipeline", JsonValue::integer(pipeline));
    plan.set("parallel", std::move(par));
    root.set("plan", std::move(plan));
    return root.dump(0);
}

/** Latencies (us) of one sweep, executed by @p threads clients. */
struct SweepResult
{
    std::vector<double> latenciesUs;
    double wallSeconds = 0;
    int failures = 0;
};

SweepResult
runSweep(int port, const std::vector<std::string> &requests,
         int threads)
{
    SweepResult result;
    result.latenciesUs.resize(requests.size());
    std::atomic<std::size_t> next{0};
    std::atomic<int> failures{0};
    const double start = nowUs();
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            PlanClient client;
            if (!client.connect("127.0.0.1", port).ok()) {
                failures.fetch_add(1);
                return;
            }
            for (;;) {
                const std::size_t i = next.fetch_add(1);
                if (i >= requests.size())
                    return;
                const double t0 = nowUs();
                const ParseResult<std::string> response =
                    client.request(requests[i]);
                const double t1 = nowUs();
                if (!response.ok() ||
                    response.value().rfind("{\"ok\":true", 0) != 0) {
                    failures.fetch_add(1);
                }
                result.latenciesUs[i] = t1 - t0;
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
    result.wallSeconds = (nowUs() - start) / 1e6;
    result.failures = failures.load();
    return result;
}

JsonValue
sweepJson(const SweepResult &sweep)
{
    JsonValue out = JsonValue::object();
    const std::size_t n = sweep.latenciesUs.size();
    out.set("requests",
            JsonValue::integer(static_cast<std::int64_t>(n)));
    out.set("failures", JsonValue::integer(sweep.failures));
    out.set("seconds", JsonValue::number(sweep.wallSeconds));
    out.set("throughput_rps",
            JsonValue::number(sweep.wallSeconds > 0
                                  ? static_cast<double>(n) /
                                        sweep.wallSeconds
                                  : 0));
    if (!n) {
        out.set("p50_us", JsonValue::number(0));
        out.set("p99_us", JsonValue::number(0));
        return out;
    }
    out.set("p50_us",
            JsonValue::number(quantile(sweep.latenciesUs, 0.5)));
    out.set("p99_us",
            JsonValue::number(quantile(sweep.latenciesUs, 0.99)));
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("planner_service");
    cli.addInt("threads", 4, "concurrent client connections");
    cli.addInt("warm-iters", 8,
               "repetitions of the request set in the warm sweep");
    cli.addString("out", "BENCH_planner_service.json",
                  "output JSON path");
    cli.addFlag("smoke", "CI-sized run (tiny model); same schema");
    cli.parse(argc, argv);

    const bool smoke = cli.getFlag("smoke");
    const int threads = static_cast<int>(cli.getInt("threads"));
    const int warm_iters =
        static_cast<int>(cli.getInt("warm-iters"));
    if (threads < 1 || warm_iters < 1) {
        std::cerr << "planner_service: error: threads and "
                     "warm-iters must be >= 1\n";
        return 1;
    }

    // Distinct planning problems for the cold sweep. The smoke set
    // plans the test model; the full set exercises the mid-size
    // presets across sequence lengths and pipeline depths.
    std::vector<std::string> base;
    if (smoke) {
        for (const int p : {1, 2})
            for (const int seq : {64, 128})
                base.push_back(planRequestLine("tiny-test", 1, 1, p,
                                               seq, 8));
    } else {
        for (const char *model : {"gpt3-13b", "llama2-13b"})
            for (const int p : {2, 4})
                for (const int seq : {2048, 4096})
                    base.push_back(planRequestLine(model, 2, 4, p,
                                                   seq, 32));
    }

    PlanServerOptions opts;
    opts.threads = threads;
    PlanServer server(opts);
    const ParseStatus started = server.start();
    if (!started.ok()) {
        std::cerr << "planner_service: error: " << started.error()
                  << "\n";
        return 1;
    }
    const int port = server.port();

    const SweepResult cold = runSweep(port, base, threads);

    std::vector<std::string> warm;
    warm.reserve(base.size() * static_cast<std::size_t>(warm_iters));
    for (int i = 0; i < warm_iters; ++i)
        warm.insert(warm.end(), base.begin(), base.end());
    const SweepResult warm_sweep = runSweep(port, warm, threads);

    // Fault-report series: the same straggler scenarios against the
    // first (already cached) base request. Distinct factors dodge
    // the response cache, so this measures incremental replanning
    // with a hot knapsack memo.
    std::vector<std::string> replans;
    const double factors_smoke[] = {1.5, 2.0, 3.0};
    const double factors_full[] = {1.2, 1.5, 1.8, 2.0, 2.5,
                                   3.0, 3.5, 4.0};
    const double *factors = smoke ? factors_smoke : factors_full;
    const std::size_t num_factors = smoke ? 3 : 8;
    for (std::size_t i = 0; i < num_factors; ++i) {
        ParseResult<JsonValue> root = JsonValue::tryParse(base[0]);
        JsonValue req = std::move(root).value();
        req.set("kind", JsonValue::string("replan"));
        JsonValue fault = JsonValue::object();
        fault.set("straggler_stage", JsonValue::integer(0));
        fault.set("straggler_factor",
                  JsonValue::number(factors[i]));
        req.set("fault", std::move(fault));
        replans.push_back(req.dump(0));
    }
    const SweepResult replan_sweep = runSweep(port, replans, threads);

    const ParseResult<std::string> stats_line =
        serviceRequest("127.0.0.1", port, "{\"kind\":\"stats\"}");
    const ParseResult<std::string> shutdown_line = serviceRequest(
        "127.0.0.1", port, "{\"kind\":\"shutdown\"}");
    (void)shutdown_line;
    server.wait();

    JsonValue doc = JsonValue::object();
    doc.set("benchmark", JsonValue::string("planner_service"));
    JsonValue workload = JsonValue::object();
    workload.set("smoke", JsonValue::boolean(smoke));
    workload.set("threads", JsonValue::integer(threads));
    workload.set("distinct_requests",
                 JsonValue::integer(
                     static_cast<std::int64_t>(base.size())));
    workload.set("warm_iters", JsonValue::integer(warm_iters));
    doc.set("workload", std::move(workload));
    doc.set("cold", sweepJson(cold));
    doc.set("warm", sweepJson(warm_sweep));
    doc.set("replan", sweepJson(replan_sweep));

    double speedup = 0;
    if (!cold.latenciesUs.empty() &&
        !warm_sweep.latenciesUs.empty()) {
        const double warm_p50 =
            quantile(warm_sweep.latenciesUs, 0.5);
        if (warm_p50 > 0) {
            speedup =
                quantile(cold.latenciesUs, 0.5) / warm_p50;
        }
    }
    doc.set("warm_speedup_p50", JsonValue::number(speedup));

    double hit_rate = 0;
    if (stats_line.ok()) {
        const ParseResult<JsonValue> stats =
            JsonValue::tryParse(stats_line.value());
        if (stats.ok()) {
            doc.set("server_stats", stats.value());
            const JsonValue &cache = stats.value().at("cache");
            const double hits = cache.at("hits").asNumber();
            const double misses = cache.at("misses").asNumber();
            if (hits + misses > 0)
                hit_rate = hits / (hits + misses);
        }
    }
    doc.set("cache_hit_rate", JsonValue::number(hit_rate));

    const int total_failures = cold.failures +
                               warm_sweep.failures +
                               replan_sweep.failures;
    doc.set("failures", JsonValue::integer(total_failures));

    const std::string out_path = cli.getString("out");
    const ParseStatus wrote =
        writeTextFile(out_path, doc.dump(2) + "\n");
    if (!wrote.ok()) {
        std::cerr << "planner_service: error: " << wrote.error()
                  << "\n";
        return 1;
    }
    std::cout << "cold p50 "
              << (cold.latenciesUs.empty()
                      ? 0
                      : quantile(cold.latenciesUs, 0.5))
              << " us, warm p50 "
              << (warm_sweep.latenciesUs.empty()
                      ? 0
                      : quantile(warm_sweep.latenciesUs, 0.5))
              << " us (speedup " << speedup << "x), cache hit rate "
              << hit_rate << ", failures " << total_failures
              << "\nwrote " << out_path << "\n";
    return total_failures == 0 ? 0 : 1;
}
