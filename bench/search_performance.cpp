/**
 * @file
 * Sec. 5.3 claim: "for typical models like GPT-3 and Llama 2, the
 * entire search process takes only seconds."
 *
 * google-benchmark microbenchmarks of the search engine: the
 * recomputation knapsack, the full two-level AdaPipe search for both
 * evaluated models, and the scaling of the partitioning DP with the
 * pipeline size.
 */

#include <benchmark/benchmark.h>

#include "core/partition_dp.h"
#include "core/planner.h"
#include "core/profiled_model.h"
#include "core/recompute_dp.h"
#include "core/strategy_search.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "util/rng.h"

namespace adapipe {
namespace {

ProfiledModel
makeProfiled(const ModelConfig &model, int tensor, int pipeline,
             int seq)
{
    TrainConfig train;
    train.seqLen = seq;
    train.globalBatch = 64;
    ParallelConfig par;
    par.tensor = tensor;
    par.pipeline = pipeline;
    par.data = 1;
    return buildProfiledModel(model, train, par, clusterA(8));
}

void
BM_RecomputeKnapsack(benchmark::State &state)
{
    const auto units_per_stage = static_cast<int>(state.range(0));
    Rng rng(7);
    std::vector<UnitProfile> units;
    for (int i = 0; i < units_per_stage; ++i) {
        UnitProfile u;
        u.timeFwd = rng.uniform(1e-4, 5e-3);
        u.timeBwd = 2 * u.timeFwd;
        u.memSaved = MiB(rng.uniformInt(1, 256));
        units.push_back(std::move(u));
    }
    const std::int64_t budget = static_cast<std::int64_t>(
        GiB(4));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            solveRecomputeKnapsack(units, budget));
    }
}
BENCHMARK(BM_RecomputeKnapsack)->Arg(32)->Arg(128)->Arg(512);

void
BM_AdaPipeSearchGpt3(benchmark::State &state)
{
    const ProfiledModel pm = makeProfiled(gpt3_175b(), 8, 8, 16384);
    for (auto _ : state)
        benchmark::DoNotOptimize(makePlan(pm, PlanMethod::AdaPipe));
}
BENCHMARK(BM_AdaPipeSearchGpt3)->Unit(benchmark::kMillisecond);

void
BM_AdaPipeSearchLlama2(benchmark::State &state)
{
    const ProfiledModel pm = makeProfiled(llama2_70b(), 8, 8, 16384);
    for (auto _ : state)
        benchmark::DoNotOptimize(makePlan(pm, PlanMethod::AdaPipe));
}
BENCHMARK(BM_AdaPipeSearchLlama2)->Unit(benchmark::kMillisecond);

void
BM_PartitionDpScaling(benchmark::State &state)
{
    const int p = static_cast<int>(state.range(0));
    const ProfiledModel pm = makeProfiled(gpt3_175b(), 8, p, 8192);
    const int n = pm.train.microBatches(pm.par);
    for (auto _ : state) {
        StageCostCalculator calc(pm, p, n);
        benchmark::DoNotOptimize(
            solveAdaptivePartition(calc, pm.numLayers(), p, n));
    }
}
BENCHMARK(BM_PartitionDpScaling)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void
BM_SweepStrategies(benchmark::State &state)
{
    // The full cluster-A strategy sweep for GPT-3; Arg is the worker
    // count (1 = the serial reference). This is the wall-time gate
    // for observability overhead: with ADAPIPE_OBS off it must match
    // the pre-instrumentation baseline, and with it on but no
    // registry installed (as here) the cost is one thread-local load
    // per counter site.
    StrategySearchOptions opts;
    opts.threads = static_cast<unsigned>(state.range(0));
    const ModelConfig model = gpt3_175b();
    TrainConfig train;
    train.seqLen = 4096;
    train.globalBatch = 128;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sweepStrategies(model, train, clusterA(8),
                            PlanMethod::AdaPipe, opts));
    }
}
BENCHMARK(BM_SweepStrategies)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_ProfileModel(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            makeProfiled(gpt3_175b(), 8, 8, 16384));
    }
}
BENCHMARK(BM_ProfileModel)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace adapipe

BENCHMARK_MAIN();
