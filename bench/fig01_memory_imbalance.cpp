/**
 * @file
 * Figure 1: simulated per-stage memory consumption of GPT-3 with
 * sequences of 4096 / 8192 / 16384 tokens under full vs no
 * recomputation. (t, p, d) = (8, 8, 1); the 80 GB line is the
 * hardware limit of an A100.
 *
 * Expected shape: no-recomputation memory decreases linearly with
 * the stage id (stage s holds p - s micro-batches) and exceeds the
 * limit at early stages for long sequences; full recomputation is
 * flat, low, and wastes most of the device.
 */

#include <iostream>

#include "core/partition_dp.h"
#include "core/profiled_model.h"
#include "core/stage_cost.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

int
main()
{
    const ModelConfig model = gpt3_175b();
    const ClusterSpec cluster = clusterA(8);

    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 8;
    par.data = 1;

    std::cout << "Figure 1: per-stage memory for " << model.name
              << ", strategy " << par.toString() << ", limit "
              << formatBytes(cluster.device.memCapacity, 0) << "\n\n";

    Table table({"Seq", "Recompute", "s0", "s1", "s2", "s3", "s4",
                 "s5", "s6", "s7"});

    for (int seq : {4096, 8192, 16384}) {
        TrainConfig train;
        train.seqLen = seq;
        train.globalBatch = 64;

        const ProfiledModel pm =
            buildProfiledModel(model, train, par, cluster);
        const int n = train.microBatches(par);
        StageCostCalculator calc(pm, par.pipeline, n);

        for (bool full : {true, false}) {
            std::vector<std::string> row{
                std::to_string(seq), full ? "Full" : "No"};
            const auto ranges =
                evenPartition(pm.numLayers(), par.pipeline);
            for (int s = 0; s < par.pipeline; ++s) {
                const StageCost c = calc.baselineCost(
                    s, ranges[s].first, ranges[s].second, full);
                std::string mem = formatBytes(c.memPeak, 1);
                if (c.memPeak > pm.memCapacity)
                    mem += " *";
                row.push_back(mem);
            }
            table.addRow(std::move(row));
        }
    }
    table.print(std::cout);
    std::cout << "\n(* = exceeds the 80 GiB device limit)\n"
              << "Shape check vs paper: No-recompute decreases with "
                 "stage id and tops 80 GiB at seq >= 8192;\n"
              << "Full recompute stays flat around 50 GiB leaving "
                 ">25 GiB unused.\n";
    return 0;
}
