/**
 * @file
 * Extension study: BPipe-style memory balancing (related work,
 * Sec. 8) vs recomputation-based approaches.
 *
 * BPipe transfers overflowing activations from early stages to their
 * late-stage partners instead of recomputing; the paper notes "this
 * method incurs extra communication, and the tensor parallel size is
 * limited as the first stage needs to be placed on the same node as
 * the last stage". This bench reproduces the comparison: BPipe can
 * rescue DAPPLE-Non from OOM, but AdaPipe reaches a similar or
 * better iteration time without the transfer traffic.
 */

#include <iostream>

#include "core/planner.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "sim/baseline_eval.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

int
main()
{
    const ModelConfig model = gpt3_175b();
    const ClusterSpec cluster = clusterA(8);
    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 8;
    par.data = 1;

    std::cout << "Extension: BPipe-style activation balancing vs "
                 "recomputation (" << model.name << ", strategy "
              << par.toString() << ")\n\n";

    Table table({"Seq", "Method", "Iteration", "Max device mem",
                 "Note"});
    for (int seq : {4096, 8192, 16384}) {
        TrainConfig train;
        train.seqLen = seq;
        train.globalBatch = 131072 / seq;
        const ProfiledModel pm =
            buildProfiledModel(model, train, par, cluster);

        auto add_row = [&](const std::string &name, bool feasible,
                           Seconds time, Bytes mem,
                           const std::string &note) {
            table.addRow({std::to_string(seq), name,
                          feasible ? formatSeconds(time)
                                   : std::string("OOM"),
                          mem > 0 ? formatBytes(mem) : std::string("-"),
                          note});
        };

        const auto non = evaluateBaseline(
            pm, BaselineSchedule::Dapple, RecomputeBaseline::None);
        Bytes non_mem = 0;
        for (Bytes b : non.deviceMem)
            non_mem = std::max(non_mem, b);
        add_row("DAPPLE-Non", non.feasible, non.iterationTime,
                non_mem, non.feasible ? "" : non.oomReason);

        const auto bpipe =
            evaluateBPipe(pm, RecomputeBaseline::None);
        Bytes bpipe_mem = 0;
        for (Bytes b : bpipe.deviceMem)
            bpipe_mem = std::max(bpipe_mem, b);
        add_row("BPipe-Non", bpipe.feasible, bpipe.iterationTime,
                bpipe_mem,
                bpipe.feasible ? "activation transfers between "
                                 "paired stages"
                               : bpipe.oomReason);

        const PlanResult ada = makePlan(pm, PlanMethod::AdaPipe);
        if (ada.ok) {
            const auto sim = simulatePlan(pm, ada.plan);
            Bytes mem = 0;
            for (Bytes b : sim.deviceMem)
                mem = std::max(mem, b);
            add_row("AdaPipe", true, sim.iterationTime, mem, "");
        } else {
            add_row("AdaPipe", false, 0, 0, ada.oomReason);
        }
    }
    table.print(std::cout);
    std::cout << "\nShape check vs paper Sec. 8: balancing memory "
                 "across stages extends the no-recompute\nregime, "
                 "but pays per-micro-batch transfer time; adaptive "
                 "recomputation stays local\nand wins once memory "
                 "pressure is real.\n";
    return 0;
}
