/**
 * @file
 * Figure 3: the walkthrough of AdaPipe's two optimisations (the
 * paper draws it with two stages; we use four so the layer moves
 * are visible at layer granularity).
 *
 * Starting from full recomputation everywhere, Opt. 1 (adaptive
 * recomputation) shortens backward passes within the memory budget;
 * Opt. 2 (adaptive partitioning) moves layers from early to late
 * stages to re-balance the steady phase. The bench prints the per-stage
 * F/B, the warmup/steady/ending decomposition and a timeline per
 * step.
 */

#include <iostream>

#include "core/planner.h"
#include "core/profiled_model.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "sim/baseline_eval.h"
#include "sim/schedule.h"
#include "sim/timeline.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

namespace {

void
showStep(const char *label, const ProfiledModel &pm,
         const PipelinePlan &plan)
{
    std::cout << label << "\n";
    Table t({"Stage", "Layers", "Saved units", "F", "B", "Mem"});
    std::vector<StageTimes> times;
    for (std::size_t s = 0; s < plan.stages.size(); ++s) {
        const StagePlan &sp = plan.stages[s];
        t.addRow({std::to_string(s),
                  std::to_string(sp.numLayers()),
                  std::to_string(sp.savedUnits) + "/" +
                      std::to_string(sp.totalUnits),
                  formatSeconds(sp.timeFwd), formatSeconds(sp.timeBwd),
                  formatBytes(sp.memPeak)});
        times.push_back({sp.timeFwd, sp.timeBwd});
    }
    t.print(std::cout);
    std::cout << "warmup " << formatSeconds(plan.timing.warmup)
              << ", steady/mb " << formatSeconds(plan.timing.steadyPerMb)
              << ", ending " << formatSeconds(plan.timing.ending)
              << ", total " << formatSeconds(plan.timing.total) << "\n";
    const Schedule sched =
        build1F1B(static_cast<int>(plan.stages.size()),
                  plan.microBatches);
    std::cout << renderTimeline(sched, simulate(sched, times, {}), 90)
              << "\n";
}

} // namespace

int
main()
{
    // The figure's walkthrough, scaled to four stages so the layer
    // moves are visible at layer granularity: GPT-3 13B on small
    // devices so that recomputation decisions actually matter.
    const ModelConfig model = gpt3_13b();
    ClusterSpec cluster = clusterA(1);
    cluster.device = genericDevice24gb();
    // Tight enough that early stages must recompute much more than
    // late ones, making the partitioning step visible.
    cluster.device.memCapacity = GiB(12);

    TrainConfig train;
    train.seqLen = 16384;
    train.globalBatch = 32;

    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 4;
    par.data = 1;

    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);

    std::cout << "Figure 3: " << model.name << " on "
              << par.pipeline << "x "
              << cluster.device.name << " stages, seq " << train.seqLen
              << ", n = " << train.microBatches(par) << "\n\n";

    const PlanResult full = makePlan(pm, PlanMethod::DappleFull);
    const PlanResult even = makePlan(pm, PlanMethod::EvenPartition);
    const PlanResult ada = makePlan(pm, PlanMethod::AdaPipe);
    if (!full.ok || !even.ok || !ada.ok) {
        std::cout << "configuration infeasible: " << full.oomReason
                  << even.oomReason << ada.oomReason << "\n";
        return 1;
    }

    showStep("Original: full recomputation for all stages",
             pm, full.plan);
    showStep("Opt. 1: adaptive recomputation (reduces backward time; "
             "later stages save more)",
             pm, even.plan);
    showStep("Opt. 2: + adaptive partitioning (moves layers toward "
             "later stages, removes the imbalance bubble)",
             pm, ada.plan);

    std::cout << "Speedup: Opt1 "
              << formatDouble(full.plan.timing.total /
                                  even.plan.timing.total,
                              3)
              << "x, Opt1+Opt2 "
              << formatDouble(full.plan.timing.total /
                                  ada.plan.timing.total,
                              3)
              << "x over full recomputation; steady phase "
              << formatSeconds(even.plan.timing.steadyPerMb) << " -> "
              << formatSeconds(ada.plan.timing.steadyPerMb)
              << " per micro-batch\n";
    return 0;
}
