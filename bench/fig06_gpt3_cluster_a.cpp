/**
 * @file
 * Figure 6: end-to-end performance of GPT-3 175B on cluster A
 * (64 A100 GPUs) for sequence lengths 4096 / 8192 / 16384.
 *
 * Expected shape: every no-recomputation baseline OOMs at 8192 and
 * 16384; AdaPipe and Even Partitioning exploit the freed memory and
 * reach up to ~1.3x over DAPPLE-Full, with AdaPipe ahead of Even
 * Partitioning especially at long sequences.
 */

#include "common.h"
#include "hw/cluster.h"
#include "model/model_config.h"

using namespace adapipe;

int
main(int argc, char **argv)
{
    bench::MetricsSession metrics(argc, argv);
    bench::runClusterAFigure(
        gpt3_175b(), clusterA(8),
        {{4096, 128}, {8192, 64}, {16384, 32}});
    return 0;
}
