/**
 * @file
 * Shared experiment runner for the benchmark harnesses.
 *
 * Reproduces the paper's measurement methodology: for each method,
 * iterate all valid 3D parallelism strategies (cluster A) or use the
 * paper's fixed strategy (cluster B), execute the winning
 * configuration in the event-driven simulator and report iteration
 * time or an OOM marker.
 */

#ifndef ADAPIPE_BENCH_COMMON_H
#define ADAPIPE_BENCH_COMMON_H

#include <optional>
#include <string>
#include <vector>

#include "core/planner.h"
#include "core/strategy_search.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "obs/registry.h"
#include "sim/baseline_eval.h"

namespace adapipe {
namespace bench {

/**
 * RAII observability session for the bench harnesses.
 *
 * Scans argv for "--metrics-out <path>" / "--metrics-out=<path>"
 * (falling back to the ADAPIPE_METRICS_OUT environment variable),
 * installs a registry on the calling thread for the session's
 * lifetime and writes it out on destruction: JSON-lines by default,
 * or a CSV summary when the path ends in ".csv". Without a path the
 * session is inert, so harness mains can construct one
 * unconditionally.
 */
class MetricsSession
{
  public:
    MetricsSession(int argc, const char *const *argv);
    ~MetricsSession();

    MetricsSession(const MetricsSession &) = delete;
    MetricsSession &operator=(const MetricsSession &) = delete;

    /** @return the session's registry (empty when inert). */
    obs::Registry &registry() { return registry_; }

    /** @return the output path; empty when the session is inert. */
    const std::string &path() const { return path_; }

  private:
    obs::Registry registry_;
    std::string path_;
    bool installed_ = false;
};

/** Identifier of one evaluated method (planner- or schedule-based). */
struct Method
{
    std::string name;
    /** Set for planner-routed methods. */
    std::optional<PlanMethod> plan;
    /** Set for schedule-routed baselines. */
    std::optional<BaselineSchedule> schedule;
    /** Full (true) or no (false) recomputation for baselines. */
    bool fullRecompute = true;
};

/** The paper's method line-ups. */
std::vector<Method> clusterAMethods();  ///< Figs. 5/6: 8 methods
std::vector<Method> clusterBMethods();  ///< Fig. 7: 4 methods

/** Outcome of one (method, workload) cell. */
struct CellResult
{
    std::string method;
    bool feasible = false;
    std::string oomReason;
    /** Simulated iteration time of the best strategy. */
    Seconds iterationTime = 0;
    /** Winning strategy (t, p, d). */
    ParallelConfig strategy;
    /** End-to-end details of the winning strategy. */
    EndToEndResult details;
    /** The plan, for planner-routed methods. */
    std::optional<PipelinePlan> plan;
};

/**
 * Evaluate @p method under one fixed strategy.
 */
CellResult evaluateMethod(const ModelConfig &model,
                          const TrainConfig &train,
                          const ParallelConfig &par,
                          const ClusterSpec &cluster,
                          const Method &method);

/**
 * Evaluate @p method under every valid strategy and keep the best
 * feasible one (the paper's cluster-A methodology).
 */
CellResult bestOverStrategies(const ModelConfig &model,
                              const TrainConfig &train,
                              const ClusterSpec &cluster,
                              const Method &method,
                              const StrategySearchOptions &opts = {});

/** Format an iteration time or "OOM" for table cells. */
std::string cellTime(const CellResult &cell);

/**
 * Run and print a full cluster-A end-to-end figure (Figs. 5/6): for
 * each (sequence length, global batch) pair evaluate all eight
 * methods, each under its best strategy.
 */
void runClusterAFigure(const ModelConfig &model,
                       const ClusterSpec &cluster,
                       const std::vector<std::pair<int, int>> &configs);

/**
 * Format the paper's speedup annotation relative to the DAPPLE
 * baselines, e.g. "1.25x/1.08x" (vs -Full / vs -Non).
 */
std::string speedupLabel(const CellResult &cell, Seconds dapple_full,
                         Seconds dapple_non);

} // namespace bench
} // namespace adapipe

#endif // ADAPIPE_BENCH_COMMON_H
