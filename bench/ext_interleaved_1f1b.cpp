/**
 * @file
 * Extension study: Megatron's interleaved 1F1B (Sec. 2.1 background)
 * vs plain 1F1B and AdaPipe.
 *
 * The paper notes interleaving "reduces the bubble ratio while
 * bringing more communication overhead" (and more in-flight
 * activations). This bench quantifies that trade-off on GPT-3 and
 * shows where AdaPipe's recomputation-aware planning sits.
 */

#include <iostream>

#include "core/planner.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "sim/baseline_eval.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

int
main()
{
    const ModelConfig model = gpt3_175b();
    const ClusterSpec cluster = clusterA(8);
    TrainConfig train;
    train.seqLen = 8192;
    train.globalBatch = 64;
    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 8;
    par.data = 1;

    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);

    std::cout << "Extension: interleaved 1F1B on " << model.name
              << ", seq " << train.seqLen << ", strategy "
              << par.toString() << "\n\n";

    Table table({"Schedule", "Recompute", "Iteration",
                 "Idle/device", "Peak mem (dev 0)", "Peak in-flight"});

    for (int v : {1, 2, 4}) {
        for (RecomputeBaseline mode :
             {RecomputeBaseline::Full, RecomputeBaseline::None}) {
            const EndToEndResult r =
                evaluateInterleaved(pm, v, mode);
            const std::string name =
                v == 1 ? "1F1B"
                       : "Interleaved (v=" + std::to_string(v) + ")";
            if (!r.feasible) {
                table.addRow({name,
                              mode == RecomputeBaseline::Full
                                  ? "Full"
                                  : "None",
                              "OOM", "-", formatBytes(r.deviceMem[0]),
                              std::to_string(r.peakAlive[0])});
                continue;
            }
            table.addRow(
                {name,
                 mode == RecomputeBaseline::Full ? "Full" : "None",
                 formatSeconds(r.iterationTime),
                 formatSeconds(r.bubbleTime /
                               static_cast<double>(par.pipeline)),
                 formatBytes(r.deviceMem[0]),
                 std::to_string(r.peakAlive[0])});
        }
    }

    const PlanResult ada = makePlan(pm, PlanMethod::AdaPipe);
    if (ada.ok) {
        const EndToEndResult r = simulatePlan(pm, ada.plan);
        table.addRow({"AdaPipe (1F1B)", "Adaptive",
                      formatSeconds(r.iterationTime),
                      formatSeconds(r.bubbleTime /
                                    static_cast<double>(par.pipeline)),
                      formatBytes(r.deviceMem[0]),
                      std::to_string(r.peakAlive[0])});
    }
    table.print(std::cout);
    std::cout
        << "\nInterleaving shrinks bubbles by ~v but pins ~v-times "
           "more in-flight chunk\nactivations, so its no-recompute "
           "variants OOM even sooner; AdaPipe attacks the\nsame "
           "bubble time through cheaper backward passes within the "
           "memory budget.\n";
    return 0;
}
