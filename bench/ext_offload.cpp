/**
 * @file
 * Extension study: hybrid recomputation + host offloading
 * (SuperNeurons / MPress, Sec. 8 related work).
 *
 * AdaPipe's knapsack extends naturally: an unsaved unit pays
 * min(recompute time, PCIe evict+fetch time). With a healthy host
 * link the hybrid beats pure recomputation; as the link degrades (or
 * compute gets faster, the paper's "harder to overlap" argument) the
 * benefit vanishes and pure recomputation wins again.
 */

#include <iostream>

#include "core/planner.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

int
main()
{
    const ModelConfig model = gpt3_175b();
    const ClusterSpec cluster = clusterA(8);
    TrainConfig train;
    train.seqLen = 16384;
    train.globalBatch = 32;
    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 8;
    par.data = 1;

    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);

    std::cout << "Extension: recompute-or-offload hybrid ("
              << model.name << ", seq " << train.seqLen
              << ", strategy " << par.toString() << ")\n\n";

    Table table({"Planner", "Host link", "Iteration",
                 "Stage-0 B time", "Speedup vs DAPPLE-Full"});

    const PlanResult full = makePlan(pm, PlanMethod::DappleFull);
    const Seconds base = full.ok ? full.plan.timing.total : 0;

    auto add = [&](const std::string &name, const std::string &link,
                   const PlanResult &r) {
        if (!r.ok) {
            table.addRow({name, link, "OOM", "-", "-"});
            return;
        }
        table.addRow({name, link,
                      formatSeconds(r.plan.timing.total),
                      formatSeconds(r.plan.stages.front().timeBwd),
                      base > 0 ? formatDouble(
                                     base / r.plan.timing.total) +
                                     "x"
                               : "-"});
    };

    // Two memory regimes: at the default budget only low-value units
    // go unsaved (offload is marginal); under a tight budget the
    // knapsack must drop expensive GEMM activations, and routing
    // them over PCIe instead of recomputing pays off.
    for (const double fraction : {0.875, 0.60}) {
        StageCostOptions plain;
        plain.memBudgetFraction = fraction;
        add("AdaPipe (recompute only), budget " +
                formatDouble(fraction),
            "-", makePlan(pm, PlanMethod::AdaPipe, plain));

        for (const auto &[label, bw, overlap] :
             {std::tuple{"PCIe 4.0 x16, 50% overlap", 25.0e9, 0.5},
              std::tuple{"PCIe 3.0 x8, 50% overlap", 6.0e9, 0.5},
              std::tuple{"degraded link (1 GB/s)", 1.0e9, 0.5}}) {
            StageCostOptions opts;
            opts.memBudgetFraction = fraction;
            opts.offload.enabled = true;
            opts.offload.bandwidth = bw;
            opts.offload.overlapFraction = overlap;
            add("AdaPipe + offload, budget " +
                    formatDouble(fraction),
                label, makePlan(pm, PlanMethod::AdaPipe, opts));
        }
    }
    table.print(std::cout);
    std::cout
        << "\nShape check vs paper Sec. 8: offloading helps while "
           "the host link keeps up; with a\nslow link the hybrid "
           "collapses to pure recomputation (identical rows), "
           "matching the\npaper's observation that growing compute "
           "throughput makes offload overlap hard.\n";
    return 0;
}
