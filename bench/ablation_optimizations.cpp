/**
 * @file
 * Ablation of the Sec. 5.3 search optimisations: isomorphism caching
 * of f/b[s,i,j] and GCD quantisation of the knapsack.
 *
 * Reports knapsack executions, cache hits and wall time for the full
 * AdaPipe search with each optimisation toggled, plus the resulting
 * plan quality (which must not change).
 */

#include <chrono>
#include <iostream>

#include "core/partition_dp.h"
#include "core/profiled_model.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

namespace {

struct AblationRow
{
    std::string label;
    double millis = 0;
    std::size_t knapsacks = 0;
    std::size_t hits = 0;
    Seconds planTime = 0;
};

AblationRow
runSearch(const ProfiledModel &pm, const std::string &label,
          bool isomorphism, bool gcd, int max_buckets)
{
    const int p = pm.par.pipeline;
    const int n = pm.train.microBatches(pm.par);
    StageCostOptions opts;
    opts.useIsomorphism = isomorphism;
    opts.dp.useGcd = gcd;
    opts.dp.maxBuckets = max_buckets;

    const auto start = std::chrono::steady_clock::now();
    StageCostCalculator calc(pm, p, n, opts);
    const PartitionDpResult r =
        solveAdaptivePartition(calc, pm.numLayers(), p, n);
    const auto end = std::chrono::steady_clock::now();

    AblationRow row;
    row.label = label;
    row.millis = std::chrono::duration<double, std::milli>(end - start)
                     .count();
    row.knapsacks = calc.knapsackRuns();
    row.hits = calc.cacheHits();
    row.planTime = r.feasible ? r.timing.total : -1;
    return row;
}

} // namespace

int
main()
{
    const ModelConfig model = gpt3_175b();
    const ClusterSpec cluster = clusterA(8);
    TrainConfig train;
    train.seqLen = 16384;
    train.globalBatch = 32;
    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 8;
    par.data = 1;

    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);

    std::cout << "Ablation: Sec. 5.3 search optimisations ("
              << model.name << ", seq " << train.seqLen
              << ", strategy " << par.toString() << ")\n\n";

    Table table({"Configuration", "Search time", "Knapsack runs",
                 "Cache hits", "Plan iteration time"});
    for (const auto &[label, iso, gcd, buckets] :
         {std::tuple{"AdaPipe defaults (isomorphism + GCD, 16Ki "
                     "buckets)",
                     true, true, 1 << 14},
          std::tuple{"no isomorphism caching", false, true, 1 << 14},
          std::tuple{"coarse DP granularity (512 buckets)", true,
                     true, 512},
          std::tuple{"fine DP granularity (128Ki buckets)", true,
                     true, 1 << 17},
          std::tuple{"no GCD, fine granularity", true, false,
                     1 << 17}}) {
        const AblationRow row =
            runSearch(pm, label, iso, gcd, buckets);
        table.addRow({row.label,
                      formatSeconds(row.millis / 1e3),
                      std::to_string(row.knapsacks),
                      std::to_string(row.hits),
                      formatSeconds(row.planTime)});
    }
    table.print(std::cout);
    std::cout
        << "\nShape check vs paper: isomorphism caching removes the "
           "O(L) redundant knapsack\n"
        << "executions per range length (Sec. 5.3); memory-cost "
           "quantisation (the GCD trick,\n"
        << "generalised to a bucket budget) trades DP resolution "
           "for time with negligible\n"
        << "plan-quality impact. The full search finishes in "
           "seconds.\n";
    return 0;
}
