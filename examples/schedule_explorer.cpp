/**
 * @file
 * Schedule explorer: render the four pipeline schedules as ASCII
 * timelines for a configurable (p, n, F, B).
 *
 * Usage: schedule_explorer [p] [n] [fwd] [bwd]
 * Defaults: p=4, n=8, F=1, B=2.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/pipeline_sim.h"
#include "sim/schedule.h"
#include "sim/timeline.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

int
main(int argc, char **argv)
{
    static const char usage[] =
        "usage: schedule_explorer [p>=2] [n>=1] [fwd>0] [bwd>0]\n";
    if (argc == 2 && std::string(argv[1]) == "--help") {
        std::cout << usage;
        return 0;
    }
    const int p = argc > 1 ? std::atoi(argv[1]) : 4;
    const int n = argc > 2 ? std::atoi(argv[2]) : 8;
    const double fwd = argc > 3 ? std::atof(argv[3]) : 1.0;
    const double bwd = argc > 4 ? std::atof(argv[4]) : 2.0;
    if (p < 2 || n < 1 || fwd <= 0 || bwd <= 0) {
        std::cerr << usage;
        return 1;
    }

    const std::vector<StageTimes> stages(p, StageTimes{fwd, bwd});

    std::cout << "Pipeline schedules for p=" << p << ", n=" << n
              << ", F=" << fwd << ", B=" << bwd << "\n\n";

    Table summary({"Schedule", "Iteration", "Bubble/device",
                   "Peak in-flight"});

    std::vector<Schedule> schedules;
    schedules.push_back(buildGPipe(p, n));
    schedules.push_back(build1F1B(p, n));
    if (p % 2 == 0 && n % 2 == 0)
        schedules.push_back(buildChimera(p, n));
    if (p % 2 == 0 && n % 4 == 0)
        schedules.push_back(buildChimeraD(p, n));

    for (const Schedule &sched : schedules) {
        const SimResult sim = simulate(sched, stages, {});
        std::cout << renderTimeline(sched, sim, 100) << "\n";

        int peak = 0;
        for (int alive : sim.peakAlive)
            peak = std::max(peak, alive);
        summary.addRow(
            {sched.name, formatDouble(sim.iterationTime, 1),
             formatDouble(sim.totalBubbleTime() / p, 2),
             std::to_string(peak)});
    }
    summary.print(std::cout);
    std::cout << "\nForward passes print the micro-batch digit, "
                 "backward passes a letter, idle '.'.\n";
    return 0;
}
