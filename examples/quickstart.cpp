/**
 * @file
 * Quickstart: plan GPT-3 175B training on a 64-GPU A100 cluster with
 * AdaPipe and compare against the DAPPLE baselines.
 *
 * Demonstrates the core public API:
 *   ModelConfig / TrainConfig / ParallelConfig / ClusterSpec
 *   -> buildProfiledModel -> makePlan -> PipelinePlan.
 */

#include <iostream>

#include "core/planner.h"
#include "core/profiled_model.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

int
main()
{
    const ModelConfig model = gpt3_175b();
    const ClusterSpec cluster = clusterA(8); // 64 GPUs

    TrainConfig train;
    train.microBatch = 1;
    train.seqLen = 16384;
    train.globalBatch = 32;

    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 8;
    par.data = 1;

    std::cout << "Planning " << model.name << " (seq "
              << train.seqLen << ", strategy " << par.toString()
              << ") on " << cluster.name << "\n\n";

    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);

    Table table({"Method", "Iteration", "Warmup", "Steady/mb",
                 "Stage0 mem", "Note"});
    for (PlanMethod method :
         {PlanMethod::DappleFull, PlanMethod::DappleNon,
          PlanMethod::EvenPartition, PlanMethod::AdaPipe}) {
        const PlanResult res = makePlan(pm, method);
        if (!res.ok) {
            table.addRow({planMethodName(method), "OOM", "-", "-", "-",
                          res.oomReason});
            continue;
        }
        const PipelinePlan &plan = res.plan;
        table.addRow({planMethodName(method),
                      formatSeconds(plan.timing.total),
                      formatSeconds(plan.timing.warmup),
                      formatSeconds(plan.timing.steadyPerMb),
                      formatBytes(plan.stages.front().memPeak),
                      ""});
    }
    table.print(std::cout);

    // Show the AdaPipe plan in detail.
    const PlanResult ada = makePlan(pm, PlanMethod::AdaPipe);
    if (ada.ok) {
        std::cout << "\nAdaPipe per-stage plan:\n";
        Table stages({"Stage", "Layers", "#Layers", "Saved units",
                      "F (ms)", "B (ms)", "Peak mem"});
        for (std::size_t s = 0; s < ada.plan.stages.size(); ++s) {
            const StagePlan &sp = ada.plan.stages[s];
            stages.addRow(
                {std::to_string(s),
                 std::to_string(sp.firstLayer) + "-" +
                     std::to_string(sp.lastLayer),
                 std::to_string(sp.numLayers()),
                 std::to_string(sp.savedUnits) + "/" +
                     std::to_string(sp.totalUnits),
                 formatSeconds(sp.timeFwd),
                 formatSeconds(sp.timeBwd),
                 formatBytes(sp.memPeak)});
        }
        stages.print(std::cout);
    }
    return 0;
}
