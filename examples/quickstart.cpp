/**
 * @file
 * Quickstart: plan GPT-3 175B training on a 64-GPU A100 cluster with
 * AdaPipe, compare against the DAPPLE baselines, sweep all (t, p, d)
 * strategies for the best configuration and simulate the winning
 * plan.
 *
 * Demonstrates the core public API:
 *   ModelConfig / TrainConfig / ParallelConfig / ClusterSpec
 *   -> buildProfiledModel -> makePlan -> PipelinePlan
 *   -> bestStrategy -> simulatePlan
 * and the observability subsystem: pass --metrics-out to dump what
 * the search explored (see docs/observability.md).
 */

#include <iostream>
#include <sstream>

#include "core/planner.h"
#include "core/profiled_model.h"
#include "core/strategy_search.h"
#include "hw/cluster.h"
#include "hw/profile_io.h"
#include "model/model_config.h"
#include "obs/registry.h"
#include "obs/sinks.h"
#include "sim/baseline_eval.h"
#include "util/cli.h"
#include "util/file_io.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

namespace {

/** Write @p content to @p path or exit with a clean diagnostic. */
int
writeSink(const std::string &path, const std::string &content)
{
    const ParseStatus wrote = writeTextFile(path, content);
    if (!wrote.ok()) {
        std::cerr << "quickstart: error: " << wrote.error() << "\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("quickstart");
    cli.addInt("seq", 16384, "sequence length");
    cli.addInt("global-batch", 32, "global batch size");
    cli.addInt("nodes", 8, "cluster A nodes (8 GPUs each)");
    cli.addInt("threads", 1, "strategy sweep workers (0 = all cores)");
    cli.addString("profile", "",
                  "measured unit-profile table JSON (hw/profile_io)");
    cli.addString("metrics-out", "",
                  "write search metrics as JSON-lines");
    cli.addString("metrics-csv", "", "write search metrics CSV summary");
    cli.addString("metrics-trace", "",
                  "write search spans as a Chrome trace");
    cli.parse(argc, argv);

    // One registry observes everything this run explores; the sinks
    // below write it out at the end.
    obs::Registry metrics;
    obs::ScopedRegistry obs_scope(&metrics);

    const ModelConfig model = gpt3_175b();
    const ClusterSpec cluster =
        clusterA(static_cast<int>(cli.getInt("nodes")));

    TrainConfig train;
    train.microBatch = 1;
    train.seqLen = static_cast<int>(cli.getInt("seq"));
    train.globalBatch = static_cast<int>(cli.getInt("global-batch"));

    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 8;
    par.data = cluster.totalDevices() / (par.tensor * par.pipeline);
    if (par.data < 1) {
        std::cerr << "error: the fixed (t=8, p=8) reference strategy "
                     "needs at least 8 nodes; got --nodes "
                  << cli.getInt("nodes") << "\n";
        return 1;
    }

    std::cout << "Planning " << model.name << " (seq "
              << train.seqLen << ", strategy " << par.toString()
              << ") on " << cluster.name << "\n\n";

    ProfiledModel pm = buildProfiledModel(model, train, par, cluster);

    // Substitute user-measured unit costs; a missing or malformed
    // table is a clean error naming the offending path/field, not an
    // abort.
    const std::string profile_path = cli.getString("profile");
    if (!profile_path.empty()) {
        const ParseResult<ProfileTable> table =
            loadProfileTableFile(profile_path);
        if (!table.ok()) {
            std::cerr << "quickstart: error: " << table.error()
                      << "\n";
            return 1;
        }
        const ParseStatus applied =
            tryApplyProfileTable(pm, table.value());
        if (!applied.ok()) {
            std::cerr << "quickstart: error: " << profile_path << ": "
                      << applied.error() << "\n";
            return 1;
        }
        std::cout << "using measured profile '"
                  << table.value().source << "' from " << profile_path
                  << "\n";
    }

    Table table({"Method", "Iteration", "Warmup", "Steady/mb",
                 "Stage0 mem", "Note"});
    for (PlanMethod method :
         {PlanMethod::DappleFull, PlanMethod::DappleNon,
          PlanMethod::EvenPartition, PlanMethod::AdaPipe}) {
        const PlanResult res = makePlan(pm, method);
        if (!res.ok) {
            table.addRow({planMethodName(method), "OOM", "-", "-", "-",
                          res.oomReason});
            continue;
        }
        const PipelinePlan &plan = res.plan;
        table.addRow({planMethodName(method),
                      formatSeconds(plan.timing.total),
                      formatSeconds(plan.timing.warmup),
                      formatSeconds(plan.timing.steadyPerMb),
                      formatBytes(plan.stages.front().memPeak),
                      ""});
    }
    table.print(std::cout);

    // Show the AdaPipe plan in detail.
    const PlanResult ada = makePlan(pm, PlanMethod::AdaPipe);
    if (ada.ok) {
        std::cout << "\nAdaPipe per-stage plan:\n";
        Table stages({"Stage", "Layers", "#Layers", "Saved units",
                      "F (ms)", "B (ms)", "Peak mem"});
        for (std::size_t s = 0; s < ada.plan.stages.size(); ++s) {
            const StagePlan &sp = ada.plan.stages[s];
            stages.addRow(
                {std::to_string(s),
                 std::to_string(sp.firstLayer) + "-" +
                     std::to_string(sp.lastLayer),
                 std::to_string(sp.numLayers()),
                 std::to_string(sp.savedUnits) + "/" +
                     std::to_string(sp.totalUnits),
                 formatSeconds(sp.timeFwd),
                 formatSeconds(sp.timeBwd),
                 formatBytes(sp.memPeak)});
        }
        stages.print(std::cout);
    }

    // Sweep every valid (t, p, d) strategy and simulate the winner
    // in the event-driven engine.
    StrategySearchOptions sweep_opts;
    sweep_opts.threads =
        static_cast<unsigned>(cli.getInt("threads"));
    const auto best = bestStrategy(model, train, cluster,
                                   PlanMethod::AdaPipe, sweep_opts);
    if (best) {
        const ProfiledModel best_pm = buildProfiledModel(
            model, train, best->par, cluster);
        const EndToEndResult sim =
            simulatePlan(best_pm, best->result.plan);
        std::cout << "\nBest strategy over the full sweep: "
                  << best->par.toString() << " — cost model "
                  << formatSeconds(best->iterationTime())
                  << ", simulated "
                  << formatSeconds(sim.iterationTime) << "\n";
    } else {
        std::cout << "\nNo feasible strategy found in the sweep.\n";
    }

    const std::string metrics_out = cli.getString("metrics-out");
    if (!metrics_out.empty()) {
        if (writeSink(metrics_out, obs::toJsonLines(metrics)) != 0)
            return 1;
        std::cout << "metrics -> " << metrics_out << "\n";
    }
    const std::string metrics_csv = cli.getString("metrics-csv");
    if (!metrics_csv.empty()) {
        std::ostringstream csv;
        obs::writeCsvSummary(metrics, csv);
        if (writeSink(metrics_csv, csv.str()) != 0)
            return 1;
        std::cout << "metrics summary -> " << metrics_csv << "\n";
    }
    const std::string metrics_trace = cli.getString("metrics-trace");
    if (!metrics_trace.empty()) {
        if (writeSink(metrics_trace,
                      obs::spansToChromeTrace(metrics)) != 0)
            return 1;
        std::cout << "span trace -> " << metrics_trace << "\n";
    }
    return 0;
}
