/**
 * @file
 * Pipeline training CLI: execute an AdaPipe plan on the multithreaded
 * runtime (src/runtime) and compare the cost model's predictions with
 * the measured execution.
 *
 * The stage specs come from one of three sources, in order:
 *   --recompute none|attn|full  even split, uniform recompute, no
 *                               planner (and thus no predictions)
 *   --plan plan.json            a plan exported by export_plan
 *                               --model tiny-lm
 *   (default)                   plan in-process with --method
 *
 * The predicted-vs-measured table is sourced from the runtime's obs
 * registry: step time against the plan's Sec. 5.1 timing, per-stage
 * peak activation bytes against the plan's memory model.
 *
 * Usage:
 *   pipeline_training --stages 2 --steps 20 --micro-batches 4 \
 *       --method adapipe --seed 42
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "autograd/trainer.h"
#include "core/plan_io.h"
#include "core/planner.h"
#include "hw/cluster.h"
#include "sim/interleaved_planner.h"
#include "memory/memory_model.h"
#include "obs/sinks.h"
#include "runtime/fault_injector.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/plan_mapping.h"
#include "runtime/recovery.h"
#include "runtime/snapshot.h"
#include "util/cli.h"
#include "util/file_io.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

namespace {

std::string
fmt(const char *format, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, value);
    return buf;
}

/** Short per-stage recompute summary, e.g. "none x2" or "full,attn". */
std::string
recomputeLabel(const StageSpec &spec)
{
    if (spec.numBlocks() == 0)
        return "-";
    auto key = [](BlockRecompute mode) {
        for (const RecomputeStrategy &s : recomputeStrategyTable()) {
            if (s.mode == mode)
                return s.key;
        }
        return "?";
    };
    bool uniform = true;
    for (const BlockRecompute mode : spec.recompute)
        uniform = uniform && mode == spec.recompute.front();
    if (uniform) {
        std::ostringstream oss;
        oss << key(spec.recompute.front()) << " x"
            << spec.numBlocks();
        return oss.str();
    }
    std::string out;
    for (std::size_t i = 0; i < spec.recompute.size(); ++i) {
        if (i)
            out += ",";
        out += key(spec.recompute[i]);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("pipeline_training");
    cli.addInt("stages", 2, "pipeline stages (worker threads)");
    cli.addInt("blocks", 6, "transformer blocks");
    cli.addInt("dim", 32, "model width");
    cli.addInt("ffn-hidden", 96, "feed-forward inner width");
    cli.addInt("vocab", 64, "vocabulary size");
    cli.addInt("heads", 1, "attention heads");
    cli.addInt("seq", 32, "tokens per micro-batch");
    cli.addInt("steps", 20, "optimizer steps");
    cli.addInt("micro-batches", 0,
               "micro-batches per step (0 = plan's n, else 4)");
    cli.addString("lr", "4e-3", "learning rate");
    cli.addInt("seed", 42,
               "model-init seed (identical across stage counts)");
    cli.addInt("data-seed", 7, "data-stream seed");
    cli.addInt("channel-capacity", 2,
               "bounded-channel depth per pipeline edge");
    cli.addInt("virtual-stages", 0,
               "model chunks per worker (interleaved 1F1B; 0 = "
               "plan's value, else 1)");
    cli.addInt("intra-stage-threads", 1,
               "backward-engine workers per stage (bit-identical "
               "losses at any value)");
    cli.addFlag("overlap",
                "overlapped recomputation: plan with the "
                "bubble-discounted knapsack (in-process planning) and "
                "warm checkpoint replays inside recv/send waits "
                "(bit-identical losses)");
    cli.addString("plan", "", "exported plan JSON (export_plan)");
    cli.addString("method", "adapipe",
                  "in-process planning method: adapipe|even|"
                  "dapple-full|dapple-non|dapple-selective");
    cli.addInt("mem-cap-mb", 0,
               "planner memory capacity override in MiB (forces "
               "recompute decisions; 0 = cluster default)");
    cli.addString("recompute", "",
                  "skip planning: even split with uniform "
                  "none|attn|full recompute");
    cli.addString("metrics-out", "",
                  "write runtime metrics as JSON-lines");
    cli.addString("fault-spec", "",
                  "runtime fault-injection spec JSON (seeded "
                  "slowdowns/stalls/send delays/one-shot crash)");
    cli.addInt("stall-timeout-ms", 0,
               "enable the watchdog: a worker silent this long is "
               "declared stalled (0 = watchdog off)");
    cli.addInt("snapshot-every", 0,
               "write a training-state snapshot every N steps "
               "(0 = off)");
    cli.addString("snapshot-path", "pipeline_snapshot.bin",
                  "snapshot target file");
    cli.addString("resume-from", "",
                  "restore a snapshot and resume; --steps counts "
                  "the whole job including the snapshotted part");
    cli.addFlag("recover",
                "on a detected fault, replan onto fewer stages, "
                "restore the latest snapshot and resume");
    cli.addInt("max-recoveries", 1,
               "replan-and-resume rounds before giving up");
    cli.addString("degraded-plan-out", "",
                  "write each recovery round's degraded plan (with "
                  "provenance) to this JSON file");
    cli.addFlag("reference",
                "also train single-threaded and compare losses");
    cli.addFlag("quiet", "suppress the tables");
    cli.parse(argc, argv);

    TinyLmConfig cfg;
    cfg.vocab = static_cast<int>(cli.getInt("vocab"));
    cfg.dim = static_cast<int>(cli.getInt("dim"));
    cfg.blocks = static_cast<int>(cli.getInt("blocks"));
    cfg.ffnHidden = static_cast<int>(cli.getInt("ffn-hidden"));
    cfg.numHeads = static_cast<int>(cli.getInt("heads"));
    cfg.maxSeq = static_cast<int>(cli.getInt("seq"));
    cfg.seed = static_cast<std::uint64_t>(cli.getInt("seed"));

    RuntimeOptions opts;
    opts.steps = static_cast<int>(cli.getInt("steps"));
    opts.seqLen = static_cast<int>(cli.getInt("seq"));
    opts.lr = std::stof(cli.getString("lr"));
    opts.dataSeed = static_cast<std::uint64_t>(cli.getInt("data-seed"));
    opts.channelCapacity =
        static_cast<int>(cli.getInt("channel-capacity"));
    int micro_batches = static_cast<int>(cli.getInt("micro-batches"));

    const int stages_flag = static_cast<int>(cli.getInt("stages"));
    const int vs_flag =
        static_cast<int>(cli.getInt("virtual-stages"));
    std::vector<StageSpec> specs;
    std::vector<std::string> notes;
    bool have_plan = false;
    PipelinePlan plan;

    const std::string recompute_key = cli.getString("recompute");
    const std::string plan_path = cli.getString("plan");
    if (!recompute_key.empty()) {
        const RecomputeStrategy *strategy =
            findRecomputeStrategy(recompute_key);
        if (!strategy) {
            std::cerr << "pipeline_training: error: unknown "
                         "recompute strategy '"
                      << recompute_key
                      << "' (expected none|attn|full)\n";
            return 1;
        }
        const int v = vs_flag > 0 ? vs_flag : 1;
        specs = evenStageSpecs(cfg.blocks, stages_flag * v,
                               strategy->mode);
        opts.virtualStages = v;
        notes.push_back("manual mode: no plan, no predictions");
    } else if (!plan_path.empty()) {
        const ParseResult<PipelinePlan> loaded =
            loadPlanFile(plan_path);
        if (!loaded.ok()) {
            std::cerr << "pipeline_training: error: "
                      << loaded.error() << "\n";
            return 1;
        }
        plan = loaded.value();
        have_plan = true;
    } else {
        PlanMethod method;
        const std::string method_name = cli.getString("method");
        if (method_name == "adapipe") {
            method = PlanMethod::AdaPipe;
        } else if (method_name == "even") {
            method = PlanMethod::EvenPartition;
        } else if (method_name == "dapple-full") {
            method = PlanMethod::DappleFull;
        } else if (method_name == "dapple-non") {
            method = PlanMethod::DappleNon;
        } else if (method_name == "dapple-selective") {
            method = PlanMethod::DappleSelective;
        } else {
            std::cerr << "pipeline_training: error: unknown method '"
                      << method_name
                      << "' (expected adapipe|even|dapple-full|"
                         "dapple-non|dapple-selective)\n";
            return 1;
        }

        if (micro_batches == 0)
            micro_batches = 4;
        TrainConfig train;
        train.seqLen = opts.seqLen;
        train.microBatch = 1;
        train.globalBatch = micro_batches; // d = 1: n micro-batches
        ParallelConfig par;
        par.tensor = 1;
        par.pipeline = stages_flag;
        par.data = 1;
        const ClusterSpec cluster =
            clusterA((stages_flag + 7) / 8);
        const ProfiledModel pm = buildProfiledModel(
            tinyLmModelConfig(cfg), train, par, cluster);
        StageCostOptions cost_opts;
        const long long cap_mb = cli.getInt("mem-cap-mb");
        if (cap_mb > 0)
            cost_opts.memCapacityOverride =
                static_cast<Bytes>(cap_mb) * 1024 * 1024;
        const int v = vs_flag > 0 ? vs_flag : 1;
        const PlanResult result =
            cli.getFlag("overlap")
                ? makeOverlapPlan(pm, method, v, cost_opts)
                : makeInterleavedPlan(pm, method, v, cost_opts);
        if (!result.ok) {
            std::cerr << "pipeline_training: plan infeasible: "
                      << result.oomReason << "\n";
            return 1;
        }
        plan = result.plan;
        have_plan = true;
    }

    const int intra_threads =
        static_cast<int>(cli.getInt("intra-stage-threads"));
    if (intra_threads < 1) {
        std::cerr << "pipeline_training: error: --intra-stage-threads "
                     "must be >= 1\n";
        return 1;
    }
    opts.intraStageThreads = intra_threads;

    // Eager replay follows the plan's annotation (a loaded overlap
    // plan turns it on) or the explicit flag (manual/lazy-plan runs).
    opts.overlapReplay = cli.getFlag("overlap");
    if (have_plan) {
        StageMapping mapping = stageSpecsFromPlan(plan, cfg);
        mapping.intraStageThreads = intra_threads;
        specs = std::move(mapping.stages);
        opts.virtualStages = mapping.virtualStages;
        opts.intraStageThreads = mapping.intraStageThreads;
        opts.overlapReplay = opts.overlapReplay || mapping.overlap;
        notes.insert(notes.end(), mapping.notes.begin(),
                     mapping.notes.end());
        if (micro_batches == 0)
            micro_batches = plan.microBatches > 0 ? plan.microBatches
                                                  : 4;
    }
    if (micro_batches == 0)
        micro_batches = 4;
    opts.microBatches = micro_batches;

    RuntimeFaultSpec faults;
    const std::string fault_path = cli.getString("fault-spec");
    if (!fault_path.empty()) {
        const ParseResult<RuntimeFaultSpec> loaded =
            loadRuntimeFaultSpecFile(fault_path);
        if (!loaded.ok()) {
            std::cerr << "pipeline_training: error: "
                      << loaded.error() << "\n";
            return 1;
        }
        faults = loaded.value();
        if (!faults.empty())
            opts.faults = &faults;
    }
    const long long stall_ms = cli.getInt("stall-timeout-ms");
    if (stall_ms > 0) {
        opts.watchdog.enabled = true;
        opts.watchdog.stallTimeoutUs =
            static_cast<double>(stall_ms) * 1000.0;
    }
    const int snapshot_every =
        static_cast<int>(cli.getInt("snapshot-every"));
    if (snapshot_every > 0) {
        opts.snapshot.every = snapshot_every;
        opts.snapshot.path = cli.getString("snapshot-path");
    }

    TrainingSnapshot resume;
    const std::string resume_path = cli.getString("resume-from");
    if (!resume_path.empty()) {
        const ParseResult<TrainingSnapshot> loaded =
            loadSnapshotFile(resume_path);
        if (!loaded.ok()) {
            std::cerr << "pipeline_training: error: "
                      << loaded.error() << "\n";
            return 1;
        }
        resume = loaded.value();
        if (resume.dataSeed != opts.dataSeed) {
            std::cerr << "pipeline_training: error: snapshot was "
                         "trained on data-seed "
                      << resume.dataSeed
                      << " but this run uses --data-seed "
                      << opts.dataSeed
                      << " (resuming would change the stream)\n";
            return 1;
        }
        if (resume.step >= opts.steps) {
            std::cerr << "pipeline_training: error: snapshot "
                         "already holds "
                      << resume.step << " steps; --steps "
                      << opts.steps << " adds nothing\n";
            return 1;
        }
        opts.firstStep = static_cast<int>(resume.step);
        opts.steps -= opts.firstStep;
        opts.restore = &resume;
    }

    const int p = static_cast<int>(specs.size());
    const int workers = p / opts.virtualStages;
    std::cout << "Training a " << cfg.blocks
              << "-block transformer LM (dim " << cfg.dim << ") on "
              << workers << " pipeline stages";
    if (opts.virtualStages > 1) {
        std::cout << " x " << opts.virtualStages
                  << " virtual chunks (interleaved 1F1B)";
    }
    std::cout << ", " << opts.steps << " steps x "
              << opts.microBatches << " micro-batches";
    if (opts.intraStageThreads > 1) {
        std::cout << ", " << opts.intraStageThreads
                  << " backward threads per stage";
    }
    if (opts.overlapReplay)
        std::cout << ", overlapped recomputation";
    std::cout << "\n";
    for (const std::string &note : notes)
        std::cout << "note: " << note << "\n";
    std::cout << "\n";

    TinyLM model(cfg);
    if (opts.restore) {
        const ParseStatus applied = restoreTinyLM(model, resume);
        if (!applied.ok()) {
            std::cerr << "pipeline_training: error: "
                      << applied.error() << "\n";
            return 1;
        }
        std::cout << "resumed from " << resume_path << " at step "
                  << opts.firstStep << "\n";
    }

    obs::Registry metrics;
    RuntimeResult run;
    std::vector<double> losses;
    std::vector<RecoveryAttempt> attempts;
    if (cli.getFlag("recover")) {
        // Recovery replans against a healthy profile of the current
        // job, whichever way the stage specs were sourced.
        TrainConfig train;
        train.seqLen = opts.seqLen;
        train.microBatch = 1;
        train.globalBatch = opts.microBatches;
        ParallelConfig par;
        par.tensor = 1;
        par.pipeline = workers;
        par.data = 1;
        const ProfiledModel recovery_pm = buildProfiledModel(
            tinyLmModelConfig(cfg), train, par,
            clusterA((workers + 7) / 8));
        RecoveryOptions rec;
        rec.replanOnFault = true;
        rec.maxRecoveries =
            static_cast<int>(cli.getInt("max-recoveries"));
        rec.pm = &recovery_pm;
        rec.degradedPlanOut = cli.getString("degraded-plan-out");
        if (have_plan)
            rec.originalPlan = &plan;
        const RecoveryResult res = runPipelineWithRecovery(
            model, specs, opts, rec, &metrics);
        attempts = res.attempts;
        for (const RecoveryAttempt &a : attempts) {
            std::cout
                << "recovery: worker " << a.failedWorker
                << (a.kind == RuntimeFailureKind::WatchdogStall
                        ? " went silent (watchdog, detected after "
                        : " failed (detected after ")
                << fmt("%.0f", a.detectSeconds * 1e3)
                << " ms); replanned onto " << a.newStages
                << " stages, ";
            if (a.restoredFromSnapshot) {
                std::cout << "restored snapshot at step "
                          << a.resumedFromStep;
            } else {
                std::cout << "fresh restart (no snapshot yet)";
            }
            std::cout << ", " << a.lostIterations
                      << " iterations lost\n";
        }
        if (!res.ok) {
            std::cerr << "pipeline_training: runtime failed: "
                      << res.error << "\n";
            return 1;
        }
        run = res.finalRun;
        specs = res.finalSpecs;
        opts.virtualStages = res.finalVirtualStages;
        losses = res.losses;
    } else {
        run = runPipeline(model, specs, opts, &metrics);
        if (!run.ok) {
            std::cerr << "pipeline_training: runtime failed";
            if (run.failedWorker >= 0)
                std::cerr << " (worker " << run.failedWorker << ")";
            std::cerr << ": " << run.error << "\n";
            return 1;
        }
        losses = run.losses;
    }

    // Recovery may have finished on a different partition.
    const int pf = static_cast<int>(specs.size());

    // Predicted per-stage activation bytes: the plan's peak minus its
    // static (parameter/gradient/optimizer) part, which the runtime
    // meter does not count.
    std::vector<double> predicted_act(
        static_cast<std::size_t>(pf), -1.0);
    if (have_plan &&
        static_cast<int>(plan.stages.size()) == pf) {
        const ModelConfig model_cfg = tinyLmModelConfig(cfg);
        const MemoryModel mm(model_cfg, plan.train, plan.par);
        const std::vector<Layer> layers = buildLayerSequence(
            model_cfg, plan.train, plan.par);
        for (int s = 0; s < pf; ++s) {
            const StagePlan &sp =
                plan.stages[static_cast<std::size_t>(s)];
            std::uint64_t params = 0;
            for (int l = sp.firstLayer; l <= sp.lastLayer; ++l)
                params +=
                    layers[static_cast<std::size_t>(l)].params;
            const double static_bytes = static_cast<double>(
                mm.staticMemory(params).total());
            predicted_act[static_cast<std::size_t>(s)] =
                static_cast<double>(sp.memPeak) - static_bytes;
        }
    }

    if (!cli.getFlag("quiet")) {
        // Bwd comp and Replay are disjoint: the backward timer's
        // replay share (lazy replays fire inside the engine) is
        // metered out via the checkpoint.replay_us counter, and
        // replay warmed inside recv/send waits (Hidden) never touches
        // the backward timer at all.
        Table table({"Stage", "Blocks", "Recompute", "Fwd",
                     "Bwd comp", "Replay", "Hidden", "Blocked",
                     "Waited", "Peak act (meas)", "Peak act (pred)"});
        for (int s = 0; s < pf; ++s) {
            const StageMetrics &sm =
                run.stages[static_cast<std::size_t>(s)];
            const StageSpec &spec =
                specs[static_cast<std::size_t>(s)];
            std::ostringstream range;
            if (spec.numBlocks() > 0)
                range << spec.firstBlock << "-" << spec.lastBlock;
            else
                range << "-";
            if (spec.embedding)
                range << " +emb";
            if (spec.head)
                range << " +head";
            const double measured_bytes =
                static_cast<double>(sm.peakActivationFloats) * 4;
            const double predicted =
                predicted_act[static_cast<std::size_t>(s)];
            table.addRow(
                {std::to_string(s), range.str(),
                 recomputeLabel(spec), formatSeconds(sm.fwdSeconds),
                 formatSeconds(sm.bwdComputeSeconds()),
                 formatSeconds(sm.replaySeconds),
                 formatSeconds(sm.replayHiddenSeconds),
                 formatSeconds(sm.sendBlockedSeconds),
                 formatSeconds(sm.recvWaitSeconds),
                 formatBytes(static_cast<Bytes>(measured_bytes)),
                 predicted >= 0
                     ? formatBytes(static_cast<Bytes>(predicted))
                     : "-"});
        }
        table.print(std::cout);

        std::cout << "\nmeasured step time "
                  << formatSeconds(run.stepSeconds(opts.steps));
        if (have_plan) {
            std::cout << ", predicted "
                      << formatSeconds(plan.timing.total)
                      << " (cost model scale-free: ordering, not "
                         "wall clock)";
        }
        std::cout << "\n";
        if (have_plan && plan.overlap &&
            static_cast<int>(plan.stages.size()) == pf) {
            double hidden = 0, critical = 0;
            for (const StagePlan &sp : plan.stages) {
                hidden += sp.timeReplayHidden;
                critical += sp.timeReplayCritical;
            }
            std::cout << "plan budgeted replay (per micro-batch, all "
                         "stages): hidden "
                      << formatSeconds(hidden) << ", critical "
                      << formatSeconds(critical) << "\n";
        }
    }

    // Exact (round-trippable) final loss, printed even with --quiet
    // so kill-and-restore harnesses can compare runs bit-for-bit.
    std::cout << "final loss " << fmt("%.17g", losses.back())
              << " after " << (opts.firstStep + opts.steps)
              << " steps\n";

    if (cli.getFlag("reference")) {
        if (opts.firstStep > 0) {
            std::cout << "reference comparison skipped: the run "
                         "resumed at step "
                      << opts.firstStep << "\n";
        } else {
            TinyLM ref(cfg); // same seed: identical initialisation
            TrainOptions ref_opts;
            ref_opts.steps = opts.steps;
            ref_opts.seqLen = opts.seqLen;
            ref_opts.lr = opts.lr;
            ref_opts.dataSeed = opts.dataSeed;
            ref_opts.microBatches = opts.microBatches;
            ref_opts.recompute.clear();
            for (const StageSpec &spec : specs)
                ref_opts.recompute.insert(ref_opts.recompute.end(),
                                          spec.recompute.begin(),
                                          spec.recompute.end());
            const TrainStats ref_stats = trainTinyLM(ref, ref_opts);
            double max_delta = 0;
            for (std::size_t i = 0; i < losses.size(); ++i) {
                const double delta =
                    std::abs(losses[i] - ref_stats.losses[i]);
                if (delta > max_delta)
                    max_delta = delta;
            }
            std::cout
                << "reference (single-threaded) max loss delta "
                << fmt("%.3g", max_delta) << " over "
                << losses.size() << " steps\n";
        }
    }

    const std::string metrics_out = cli.getString("metrics-out");
    if (!metrics_out.empty()) {
        const ParseStatus wrote = writeTextFile(
            metrics_out, obs::toJsonLines(metrics));
        if (!wrote.ok()) {
            std::cerr << "pipeline_training: error: "
                      << wrote.error() << "\n";
            return 1;
        }
        std::cout << "metrics -> " << metrics_out << "\n";
    }
    return 0;
}
