/**
 * @file
 * Measured-profile workflow: export the analytic unit-cost table,
 * perturb it the way a real profiling run would (per-unit noise and
 * a slower attention kernel), re-import it and re-plan.
 *
 * This is the paper's intended deployment loop: the search engine
 * consumes whatever per-unit times the profiler measured; nothing in
 * the DP code knows where they came from.
 */

#include <iostream>

#include "core/planner.h"
#include "core/profiled_model.h"
#include "hw/cluster.h"
#include "hw/profile_io.h"
#include "model/model_config.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

int
main()
{
    const ModelConfig model = gpt3_175b();
    const ClusterSpec cluster = clusterA(8);
    TrainConfig train;
    train.seqLen = 16384;
    train.globalBatch = 32;
    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 8;
    par.data = 1;

    ProfiledModel pm = buildProfiledModel(model, train, par, cluster);

    std::cout << "Measured-profile workflow for " << model.name
              << "\n\n1. Export the analytic table (JSON, "
              << "hw/profile_io)\n";
    ProfileTable table = extractProfileTable(pm);
    const std::string json = profileTableToJsonString(table, 0);
    std::cout << "   " << table.layers.size() << " layers, "
              << json.size() << " bytes of JSON\n";

    std::cout << "2. Pretend we measured: +-10% per-unit noise, "
                 "attention kernels 25% slower\n";
    Rng rng(2024);
    table.source = "measured:synthetic";
    for (auto &layer : table.layers) {
        for (auto &u : layer) {
            const double noise = rng.uniform(0.9, 1.1);
            double factor = noise;
            if (u.kind == UnitKind::FlashAttention)
                factor *= 1.25;
            u.timeFwd *= factor;
            u.timeBwd *= factor;
        }
    }

    std::cout << "3. Re-import (round-tripped through JSON) and "
                 "re-plan\n\n";
    const ProfileTable back =
        profileTableFromJsonString(profileTableToJsonString(table));

    Table results({"Profile", "AdaPipe iteration", "Stage-0 saved",
                   "Stage-0 B time"});
    auto report = [&](const char *label) {
        const PlanResult r = makePlan(pm, PlanMethod::AdaPipe);
        if (!r.ok) {
            results.addRow({label, "OOM"});
            return;
        }
        const StagePlan &s0 = r.plan.stages.front();
        results.addRow({label, formatSeconds(r.plan.timing.total),
                        std::to_string(s0.savedUnits) + "/" +
                            std::to_string(s0.totalUnits),
                        formatSeconds(s0.timeBwd)});
    };
    report("analytic roofline");
    applyProfileTable(pm, back);
    report("measured (synthetic)");
    results.print(std::cout);

    std::cout << "\nThe plan adapts to the measured costs — slower "
                 "attention raises its value\ndensity, so the "
                 "knapsack prioritises saving attention units.\n";
    return 0;
}
