/**
 * @file
 * Parallelism auto-tuner: sweep every (t, p, d) strategy for a model
 * and cluster, plan each with AdaPipe, and print the ranked results
 * (a Table-3-style report for arbitrary configurations).
 *
 * Usage: autotune_parallelism [gpt3|llama2|gpt3-13b] [seq] [nodes]
 *            [--threads N] [--metrics-out m.jsonl]
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/strategy_search.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "obs/registry.h"
#include "obs/sinks.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

int
main(int argc, char **argv)
{
    CliParser cli("autotune_parallelism");
    cli.addInt("threads", 1, "sweep workers (0 = all cores)");
    cli.addString("metrics-out", "",
                  "write search metrics as JSON-lines");
    cli.parse(argc, argv);
    const auto &pos = cli.positional();

    const std::string which = !pos.empty() ? pos[0] : "gpt3";
    const int seq = pos.size() > 1 ? std::atoi(pos[1].c_str()) : 8192;
    const int nodes = pos.size() > 2 ? std::atoi(pos[2].c_str()) : 8;

    ModelConfig model;
    if (which == "gpt3") {
        model = gpt3_175b();
    } else if (which == "llama2") {
        model = llama2_70b();
    } else if (which == "gpt3-13b") {
        model = gpt3_13b();
    } else {
        std::cerr << "unknown model '" << which
                  << "' (gpt3|llama2|gpt3-13b)\n";
        return 1;
    }

    const ClusterSpec cluster = clusterA(nodes);
    TrainConfig train;
    train.seqLen = seq;
    train.globalBatch = std::max(32, 2 * cluster.totalDevices());

    std::cout << "Auto-tuning " << model.name << " at seq " << seq
              << " on " << cluster.totalDevices() << " GPUs (global "
              << "batch " << train.globalBatch << ")\n\n";

    obs::Registry metrics;
    obs::ScopedRegistry obs_scope(&metrics);

    StrategySearchOptions opts;
    opts.threads = static_cast<unsigned>(cli.getInt("threads"));
    auto results = sweepStrategies(model, train, cluster,
                                   PlanMethod::AdaPipe, opts);
    std::sort(results.begin(), results.end(),
              [](const StrategyResult &a, const StrategyResult &b) {
                  return a.iterationTime() < b.iterationTime();
              });

    Table table({"Rank", "(t, p, d)", "n", "Iteration", "Warmup",
                 "Steady/mb", "Stage-0 mem"});
    int rank = 1;
    for (const StrategyResult &r : results) {
        if (!r.result.ok) {
            table.addRow({"-", r.par.toString(), "-", "OOM", "-", "-",
                          "-"});
            continue;
        }
        const PipelinePlan &plan = r.result.plan;
        table.addRow({std::to_string(rank++), r.par.toString(),
                      std::to_string(plan.microBatches),
                      formatSeconds(plan.timing.total),
                      formatSeconds(plan.timing.warmup),
                      formatSeconds(plan.timing.steadyPerMb),
                      formatBytes(plan.stages.front().memPeak)});
    }
    table.print(std::cout);

    const std::string metrics_out = cli.getString("metrics-out");
    if (!metrics_out.empty()) {
        std::ofstream out(metrics_out);
        ADAPIPE_ASSERT(out.good(), "cannot write ", metrics_out);
        obs::writeJsonLines(metrics, out);
        std::cout << "\nmetrics -> " << metrics_out << "\n";
    }
    return 0;
}
