/**
 * @file
 * Parallelism auto-tuner: sweep every (t, p, d) strategy for a model
 * and cluster, plan each with AdaPipe, and print the ranked results
 * (a Table-3-style report for arbitrary configurations).
 *
 * Usage: autotune_parallelism [gpt3|llama2|gpt3-13b] [seq] [nodes]
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/strategy_search.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

int
main(int argc, char **argv)
{
    const std::string which = argc > 1 ? argv[1] : "gpt3";
    const int seq = argc > 2 ? std::atoi(argv[2]) : 8192;
    const int nodes = argc > 3 ? std::atoi(argv[3]) : 8;

    ModelConfig model;
    if (which == "gpt3") {
        model = gpt3_175b();
    } else if (which == "llama2") {
        model = llama2_70b();
    } else if (which == "gpt3-13b") {
        model = gpt3_13b();
    } else {
        std::cerr << "unknown model '" << which
                  << "' (gpt3|llama2|gpt3-13b)\n";
        return 1;
    }

    const ClusterSpec cluster = clusterA(nodes);
    TrainConfig train;
    train.seqLen = seq;
    train.globalBatch = std::max(32, 2 * cluster.totalDevices());

    std::cout << "Auto-tuning " << model.name << " at seq " << seq
              << " on " << cluster.totalDevices() << " GPUs (global "
              << "batch " << train.globalBatch << ")\n\n";

    auto results = sweepStrategies(model, train, cluster,
                                   PlanMethod::AdaPipe);
    std::sort(results.begin(), results.end(),
              [](const StrategyResult &a, const StrategyResult &b) {
                  return a.iterationTime() < b.iterationTime();
              });

    Table table({"Rank", "(t, p, d)", "n", "Iteration", "Warmup",
                 "Steady/mb", "Stage-0 mem"});
    int rank = 1;
    for (const StrategyResult &r : results) {
        if (!r.result.ok) {
            table.addRow({"-", r.par.toString(), "-", "OOM", "-", "-",
                          "-"});
            continue;
        }
        const PipelinePlan &plan = r.result.plan;
        table.addRow({std::to_string(rank++), r.par.toString(),
                      std::to_string(plan.microBatches),
                      formatSeconds(plan.timing.total),
                      formatSeconds(plan.timing.warmup),
                      formatSeconds(plan.timing.steadyPerMb),
                      formatBytes(plan.stages.front().memPeak)});
    }
    table.print(std::cout);
    return 0;
}
