/**
 * @file
 * Long-context training: sweep the sequence length and watch the
 * memory wall close in.
 *
 * Shows how adaptive recomputation keeps long-context training
 * feasible and fast where fixed strategies either OOM (no
 * recomputation) or waste compute (full recomputation) — the
 * motivation of the paper's introduction.
 */

#include <iostream>

#include "core/planner.h"
#include "core/profiled_model.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

int
main()
{
    const ModelConfig model = llama2_70b();
    const ClusterSpec cluster = clusterA(4); // 32 GPUs

    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 4;
    par.data = 1;

    std::cout << "Long-context sweep: " << model.name << " on 32x "
              << cluster.device.name << ", strategy " << par.toString()
              << "\n(number of tokens per iteration held constant)\n\n";

    Table table({"Seq len", "DAPPLE-Non", "DAPPLE-Full", "AdaPipe",
                 "AdaPipe stage-0 saved", "Speedup vs best baseline"});

    for (int seq : {2048, 4096, 8192, 16384, 32768}) {
        TrainConfig train;
        train.seqLen = seq;
        train.globalBatch = 65536 / seq;

        const ProfiledModel pm =
            buildProfiledModel(model, train, par, cluster);
        const PlanResult non = makePlan(pm, PlanMethod::DappleNon);
        const PlanResult full = makePlan(pm, PlanMethod::DappleFull);
        const PlanResult ada = makePlan(pm, PlanMethod::AdaPipe);

        auto cell = [](const PlanResult &r) {
            return r.ok ? formatSeconds(r.plan.timing.total)
                        : std::string("OOM");
        };

        std::string saved = "-";
        std::string speedup = "-";
        if (ada.ok) {
            const StagePlan &s0 = ada.plan.stages.front();
            saved = std::to_string(s0.savedUnits) + "/" +
                    std::to_string(s0.totalUnits) + " units";
            double baseline = -1;
            if (non.ok)
                baseline = non.plan.timing.total;
            if (full.ok &&
                (baseline < 0 || full.plan.timing.total < baseline))
                baseline = full.plan.timing.total;
            if (baseline > 0) {
                speedup =
                    formatDouble(baseline / ada.plan.timing.total) +
                    "x";
            }
        }
        table.addRow({std::to_string(seq), cell(non), cell(full),
                      cell(ada), saved, speedup});
    }
    table.print(std::cout);
    std::cout << "\nAdaPipe keeps training as the context grows: it "
                 "recomputes just enough at the\nfront stages to fit, "
                 "instead of recomputing everything or giving up.\n";
    return 0;
}
