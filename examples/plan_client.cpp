/**
 * @file
 * Command-line client for the plan server.
 *
 * Builds a request from flags (mirroring export_plan's vocabulary)
 * or sends a raw JSON line, and prints the response. One process =
 * one connection = one request, which keeps it scriptable:
 *
 *   plan_client --port 7421 --model gpt3-13b --pipeline 4 --tensor 4
 *   plan_client --port 7421 --kind replan --straggler-stage 1 \
 *       --straggler-factor 2.0
 *   plan_client --port 7421 --kind stats
 *   plan_client --port 7421 --raw '{"kind":"shutdown"}'
 */

#include <iostream>

#include "service/client.h"
#include "util/cli.h"
#include "util/json.h"

using namespace adapipe;

int
main(int argc, char **argv)
{
    CliParser cli("plan_client");
    cli.addString("host", "127.0.0.1", "server address");
    cli.addInt("port", 7421, "server port");
    cli.addString("kind", "plan",
                  "request kind: plan|explain|replan|stats|shutdown");
    cli.addString("raw", "",
                  "send this JSON line verbatim (overrides all "
                  "request flags)");
    cli.addString("model", "gpt3-13b",
                  "model: gpt3|llama2|gpt3-13b|gpt3-6.7b|"
                  "llama2-13b|tiny-test");
    cli.addString("cluster", "a", "cluster preset: a|b");
    cli.addInt("nodes", 1, "cluster nodes");
    cli.addInt("seq", 4096, "sequence length");
    cli.addInt("micro-batch", 1, "micro-batch size");
    cli.addInt("global-batch", 32, "global batch size");
    cli.addInt("tensor", 4, "tensor-parallel size");
    cli.addInt("pipeline", 2, "pipeline-parallel size");
    cli.addInt("data", 1, "data-parallel size");
    cli.addString("method", "adapipe",
                  "adapipe|even|dapple-full|dapple-non");
    cli.addString("family", "1f1b",
                  "schedule family: 1f1b|interleaved|best");
    cli.addInt("virtual-stages", 2,
               "virtual stages (interleaved family)");
    cli.addInt("straggler-stage", -1,
               "replan: straggling stage (-1 = none)");
    cli.addString("straggler-factor", "1.0",
                  "replan: straggler slowdown factor");
    cli.addString("mem-factor", "1.0",
                  "replan: usable-memory factor (0, 1]");
    cli.addInt("lost-stages", 0, "replan: stages lost to failure");
    cli.parse(argc, argv);

    std::string line = cli.getString("raw");
    if (line.empty()) {
        const std::string kind = cli.getString("kind");
        JsonValue root = JsonValue::object();
        root.set("kind", JsonValue::string(kind));
        if (kind == "plan" || kind == "explain" ||
            kind == "replan") {
            JsonValue plan = JsonValue::object();
            plan.set("model",
                     JsonValue::string(cli.getString("model")));
            JsonValue cluster = JsonValue::object();
            cluster.set("name",
                        JsonValue::string(cli.getString("cluster")));
            cluster.set("nodes",
                        JsonValue::integer(cli.getInt("nodes")));
            plan.set("cluster", std::move(cluster));
            JsonValue train = JsonValue::object();
            train.set("micro_batch",
                      JsonValue::integer(cli.getInt("micro-batch")));
            train.set("seq_len",
                      JsonValue::integer(cli.getInt("seq")));
            train.set("global_batch",
                      JsonValue::integer(
                          cli.getInt("global-batch")));
            plan.set("train", std::move(train));
            JsonValue par = JsonValue::object();
            par.set("tensor",
                    JsonValue::integer(cli.getInt("tensor")));
            par.set("pipeline",
                    JsonValue::integer(cli.getInt("pipeline")));
            par.set("data", JsonValue::integer(cli.getInt("data")));
            plan.set("parallel", std::move(par));
            plan.set("method",
                     JsonValue::string(cli.getString("method")));
            JsonValue schedule = JsonValue::object();
            schedule.set("family",
                         JsonValue::string(cli.getString("family")));
            schedule.set("virtual_stages",
                         JsonValue::integer(
                             cli.getInt("virtual-stages")));
            plan.set("schedule", std::move(schedule));
            root.set("plan", std::move(plan));
        }
        if (kind == "replan") {
            JsonValue fault = JsonValue::object();
            fault.set("straggler_stage",
                      JsonValue::integer(
                          cli.getInt("straggler-stage")));
            fault.set("straggler_factor",
                      JsonValue::number(std::stod(
                          cli.getString("straggler-factor"))));
            fault.set("mem_factor",
                      JsonValue::number(
                          std::stod(cli.getString("mem-factor"))));
            fault.set("lost_stages",
                      JsonValue::integer(cli.getInt("lost-stages")));
            root.set("fault", std::move(fault));
        }
        line = root.dump(0);
    }

    const ParseResult<std::string> response =
        serviceRequest(cli.getString("host"),
                       static_cast<int>(cli.getInt("port")), line);
    if (!response.ok()) {
        std::cerr << "plan_client: error: " << response.error()
                  << "\n";
        return 1;
    }
    std::cout << response.value() << "\n";

    // Exit non-zero when the service reported a failure, so shell
    // scripts and CI can branch on it without parsing JSON.
    const ParseResult<JsonValue> parsed =
        JsonValue::tryParse(response.value());
    if (parsed.ok() && parsed.value().isObject() &&
        parsed.value().contains("ok") &&
        parsed.value().at("ok").isBool() &&
        !parsed.value().at("ok").asBool()) {
        return 2;
    }
    return 0;
}
