/**
 * @file
 * Train the tiny transformer LM with the autograd engine and show
 * the recomputation trade-off live: same losses, different peak
 * activation memory and step time for each strategy.
 */

#include <chrono>
#include <iostream>

#include "autograd/module.h"
#include "autograd/trainer.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

int
main()
{
    TinyLmConfig cfg;
    cfg.vocab = 64;
    cfg.dim = 32;
    cfg.blocks = 6;
    cfg.ffnHidden = 96;
    cfg.maxSeq = 64;

    TrainOptions opts;
    opts.steps = 60;
    opts.seqLen = 32;
    opts.lr = 4e-3f;

    std::cout << "Training a " << cfg.blocks
              << "-block transformer LM (dim " << cfg.dim
              << ") on the synthetic bigram task, " << opts.steps
              << " steps per strategy\n\n";

    struct Strategy
    {
        const char *name;
        BlockRecompute mode;
    };
    const Strategy strategies[] = {
        {"No recompute (save all)", BlockRecompute::None},
        {"Attention-only recompute", BlockRecompute::AttentionOnly},
        {"Full recompute", BlockRecompute::Full},
    };

    Table table({"Strategy", "Final loss", "Peak act. floats",
                 "Wall time"});
    for (const Strategy &s : strategies) {
        TinyLM model(cfg); // same seed: identical initialisation
        TrainOptions o = opts;
        o.recompute.assign(cfg.blocks, s.mode);

        const auto start = std::chrono::steady_clock::now();
        const TrainStats stats = trainTinyLM(model, o);
        const auto end = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(end - start).count();

        char loss[32];
        std::snprintf(loss, sizeof(loss), "%.6f",
                      stats.losses.back());
        table.addRow({s.name, loss,
                      std::to_string(stats.peakActivationFloats),
                      formatSeconds(secs)});
    }
    table.print(std::cout);
    std::cout << "\nIdentical losses (recomputation never changes "
                 "the math), decreasing memory,\nincreasing time — "
                 "the trade-off AdaPipe's knapsack optimises at "
                 "scale.\n";
    return 0;
}
