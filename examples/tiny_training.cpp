/**
 * @file
 * Train the tiny transformer LM with the autograd engine and show
 * the recomputation trade-off live: same losses, different peak
 * activation memory and step time for each strategy.
 */

#include <chrono>
#include <iostream>

#include "autograd/module.h"
#include "autograd/trainer.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

int
main(int argc, char **argv)
{
    CliParser cli("tiny_training");
    cli.addInt("steps", 60, "optimizer steps per strategy");
    cli.addInt("seq", 32, "tokens per step");
    cli.addInt("seed", 42,
               "model-init seed (shared with pipeline_training)");
    cli.addInt("data-seed", 7, "data-stream seed");
    cli.addString("lr", "4e-3", "learning rate");
    cli.parse(argc, argv);

    TinyLmConfig cfg;
    cfg.vocab = 64;
    cfg.dim = 32;
    cfg.blocks = 6;
    cfg.ffnHidden = 96;
    cfg.maxSeq = 64;
    cfg.seed = static_cast<std::uint64_t>(cli.getInt("seed"));

    TrainOptions opts;
    opts.steps = static_cast<int>(cli.getInt("steps"));
    opts.seqLen = static_cast<int>(cli.getInt("seq"));
    opts.lr = std::stof(cli.getString("lr"));
    opts.dataSeed = static_cast<std::uint64_t>(cli.getInt("data-seed"));

    std::cout << "Training a " << cfg.blocks
              << "-block transformer LM (dim " << cfg.dim
              << ") on the synthetic bigram task, " << opts.steps
              << " steps per strategy\n\n";

    Table table({"Strategy", "Final loss", "Peak act. floats",
                 "Wall time"});
    for (const RecomputeStrategy &s : recomputeStrategyTable()) {
        TinyLM model(cfg); // same seed: identical initialisation
        TrainOptions o = opts;
        o.recompute.assign(cfg.blocks, s.mode);

        const auto start = std::chrono::steady_clock::now();
        const TrainStats stats = trainTinyLM(model, o);
        const auto end = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(end - start).count();

        char loss[32];
        std::snprintf(loss, sizeof(loss), "%.6f",
                      stats.losses.back());
        table.addRow({s.name, loss,
                      std::to_string(stats.peakActivationFloats),
                      formatSeconds(secs)});
    }
    table.print(std::cout);
    std::cout << "\nIdentical losses (recomputation never changes "
                 "the math), decreasing memory,\nincreasing time — "
                 "the trade-off AdaPipe's knapsack optimises at "
                 "scale.\n";
    return 0;
}
