/**
 * @file
 * Plan + trace export tool: search a plan, save it as JSON (the
 * hand-off format an execution engine would consume) and dump a
 * chrome://tracing-compatible timeline of its simulated execution.
 *
 * Usage:
 *   export_plan --model gpt3 --seq 16384 --nodes 8 \
 *       --tensor 8 --pipeline 8 --data 1 --global-batch 32 \
 *       --method adapipe --plan-out plan.json --trace-out trace.json
 */

#include <iostream>

#include "core/plan_io.h"
#include "core/planner.h"
#include "hw/cluster.h"
#include "hw/profile_io.h"
#include "model/model_config.h"
#include "runtime/plan_mapping.h"
#include "sim/pipeline_sim.h"
#include "sim/schedule.h"
#include "sim/trace_export.h"
#include "util/cli.h"
#include "util/file_io.h"
#include "util/units.h"

using namespace adapipe;

int
main(int argc, char **argv)
{
    CliParser cli("export_plan");
    cli.addString("model", "gpt3",
                  "model: gpt3|llama2|gpt3-13b|tiny-lm");
    cli.addInt("seq", 16384, "sequence length");
    cli.addInt("nodes", 8, "cluster A nodes (8 devices each)");
    cli.addInt("tensor", 8, "tensor-parallel size");
    cli.addInt("pipeline", 8, "pipeline-parallel size");
    cli.addInt("data", 1, "data-parallel size");
    cli.addInt("global-batch", 32, "global batch size");
    cli.addString("method", "adapipe",
                  "adapipe|even|dapple-full|dapple-non");
    cli.addString("profile", "",
                  "measured unit-profile table JSON (hw/profile_io)");
    cli.addString("plan-out", "plan.json", "plan JSON output path");
    cli.addString("trace-out", "", "chrome trace output path");
    cli.addFlag("quiet", "suppress the summary");
    cli.parse(argc, argv);

    ModelConfig model;
    const std::string which = cli.getString("model");
    if (which == "gpt3") {
        model = gpt3_175b();
    } else if (which == "llama2") {
        model = llama2_70b();
    } else if (which == "gpt3-13b") {
        model = gpt3_13b();
    } else if (which == "tiny-lm") {
        // The 6-block model pipeline_training executes for real;
        // plans exported here feed straight into the runtime.
        TinyLmConfig tiny;
        tiny.blocks = 6;
        tiny.ffnHidden = 96;
        model = tinyLmModelConfig(tiny);
    } else {
        std::cerr << "export_plan: error: unknown model '" << which
                  << "' (expected gpt3|llama2|gpt3-13b|tiny-lm)\n";
        return 1;
    }

    PlanMethod method;
    const std::string method_name = cli.getString("method");
    if (method_name == "adapipe") {
        method = PlanMethod::AdaPipe;
    } else if (method_name == "even") {
        method = PlanMethod::EvenPartition;
    } else if (method_name == "dapple-full") {
        method = PlanMethod::DappleFull;
    } else if (method_name == "dapple-non") {
        method = PlanMethod::DappleNon;
    } else {
        std::cerr << "export_plan: error: unknown method '"
                  << method_name
                  << "' (expected adapipe|even|dapple-full|"
                     "dapple-non)\n";
        return 1;
    }

    TrainConfig train;
    train.seqLen = static_cast<int>(cli.getInt("seq"));
    train.globalBatch = static_cast<int>(cli.getInt("global-batch"));
    ParallelConfig par;
    par.tensor = static_cast<int>(cli.getInt("tensor"));
    par.pipeline = static_cast<int>(cli.getInt("pipeline"));
    par.data = static_cast<int>(cli.getInt("data"));
    const ClusterSpec cluster =
        clusterA(static_cast<int>(cli.getInt("nodes")));

    ProfiledModel pm = buildProfiledModel(model, train, par, cluster);

    const std::string profile_path = cli.getString("profile");
    if (!profile_path.empty()) {
        const ParseResult<ProfileTable> table =
            loadProfileTableFile(profile_path);
        if (!table.ok()) {
            std::cerr << "export_plan: error: " << table.error()
                      << "\n";
            return 1;
        }
        const ParseStatus applied =
            tryApplyProfileTable(pm, table.value());
        if (!applied.ok()) {
            std::cerr << "export_plan: error: " << profile_path
                      << ": " << applied.error() << "\n";
            return 1;
        }
    }

    const PlanResult result = makePlan(pm, method);
    if (!result.ok) {
        std::cerr << "plan infeasible: " << result.oomReason << "\n";
        return 1;
    }

    const std::string plan_path = cli.getString("plan-out");
    {
        const ParseStatus wrote = writeTextFile(
            plan_path, planToJsonString(result.plan) + "\n");
        if (!wrote.ok()) {
            std::cerr << "export_plan: error: " << wrote.error()
                      << "\n";
            return 1;
        }
    }

    const std::string trace_path = cli.getString("trace-out");
    if (!trace_path.empty()) {
        std::vector<StageTimes> times;
        for (const auto &sp : result.plan.stages)
            times.push_back({sp.timeFwd, sp.timeBwd});
        const Schedule sched =
            build1F1B(par.pipeline, result.plan.microBatches);
        const SimResult sim = simulate(sched, times, {});
        const ParseStatus wrote =
            writeTextFile(trace_path, toChromeTrace(sched, sim) + "\n");
        if (!wrote.ok()) {
            std::cerr << "export_plan: error: " << wrote.error()
                      << "\n";
            return 1;
        }
    }

    if (!cli.getFlag("quiet")) {
        std::cout << "planned " << model.name << " with "
                  << planMethodName(method) << ": iteration "
                  << formatSeconds(result.plan.timing.total)
                  << ", plan -> " << plan_path;
        if (!trace_path.empty())
            std::cout << ", trace -> " << trace_path;
        std::cout << "\n";
    }
    return 0;
}
