/**
 * @file
 * Plan explainer: read a plan JSON (from export_plan or your own
 * tooling) and print a human-readable analysis — per-stage balance,
 * recomputation intensity, the 1F1B phase decomposition and the
 * bubble ratio.
 *
 * Usage: explain_plan <plan.json>
 */

#include <cmath>
#include <iostream>
#include <string>

#include "core/cost_model.h"
#include "core/plan_io.h"
#include "util/table.h"
#include "util/units.h"

using namespace adapipe;

int
main(int argc, char **argv)
{
    static const char usage[] = "usage: explain_plan <plan.json>\n";
    if (argc == 2 && std::string(argv[1]) == "--help") {
        std::cout << usage;
        return 0;
    }
    if (argc != 2) {
        std::cerr << usage;
        return 1;
    }
    const ParseResult<PipelinePlan> loaded = loadPlanFile(argv[1]);
    if (!loaded.ok()) {
        std::cerr << "explain_plan: error: " << loaded.error() << "\n";
        return 1;
    }
    const PipelinePlan &plan = loaded.value();

    std::cout << "Plan: " << planMethodName(plan.method)
              << ", strategy " << plan.par.toString() << ", seq "
              << plan.train.seqLen << ", n = " << plan.microBatches
              << " micro-batches\n\n";

    Table stages({"Stage", "Layers", "#Layers", "Saved units",
                  "F", "B", "F+B", "Peak mem"});
    Seconds min_step = 1e30;
    Seconds max_step = 0;
    for (std::size_t s = 0; s < plan.stages.size(); ++s) {
        const StagePlan &sp = plan.stages[s];
        const Seconds step = sp.timeFwd + sp.timeBwd;
        min_step = std::min(min_step, step);
        max_step = std::max(max_step, step);
        stages.addRow({std::to_string(s),
                       std::to_string(sp.firstLayer) + "-" +
                           std::to_string(sp.lastLayer),
                       std::to_string(sp.numLayers()),
                       std::to_string(sp.savedUnits) + "/" +
                           std::to_string(sp.totalUnits),
                       formatSeconds(sp.timeFwd),
                       formatSeconds(sp.timeBwd),
                       formatSeconds(step), formatBytes(sp.memPeak)});
    }
    stages.print(std::cout);

    // Recompute the phase decomposition from the stage times to
    // cross-check the stored timing.
    std::vector<StageTimes> times;
    for (const auto &sp : plan.stages)
        times.push_back({sp.timeFwd, sp.timeBwd});
    const PipelineTiming t = evaluate1F1B(times, plan.microBatches);

    Seconds busy = 0;
    for (const auto &sp : plan.stages)
        busy += (sp.timeFwd + sp.timeBwd);

    std::cout << "\n1F1B decomposition: warmup "
              << formatSeconds(t.warmup) << " + steady "
              << formatSeconds(t.total - t.warmup - t.ending) << " ("
              << formatSeconds(t.steadyPerMb)
              << "/micro-batch) + ending " << formatSeconds(t.ending)
              << " = " << formatSeconds(t.total) << "\n"
              << "Stage balance (slowest/fastest micro-step): "
              << formatDouble(max_step / min_step) << "x\n"
              << "Stored prediction: " << formatSeconds(plan.timing.total)
              << (std::abs(plan.timing.total - t.total) <
                          1e-6 * t.total
                      ? " (consistent)"
                      : " (MISMATCH with stage times!)")
              << "\n";
    return 0;
}
