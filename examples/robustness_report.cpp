/**
 * @file
 * Robustness report: plan a model with AdaPipe, then quantify how the
 * plan degrades under a straggling device and how much degraded-mode
 * replanning (src/robust) recovers.
 *
 * For each severity in the sweep the tool simulates one 1F1B
 * iteration of (a) the original plan and (b) the replanned plan under
 * the same seeded fault scenario, and prints the sensitivity table.
 * An explicit --fault-spec JSON (stalls, jitter, hard failure) can be
 * layered on top of the straggler sweep.
 *
 * Usage:
 *   robustness_report --model gpt3 --seq 16384 --nodes 8 \
 *       --tensor 8 --pipeline 8 --data 1 --global-batch 32 \
 *       --straggler 1 --severities 1.1,1.25,1.5,2.0 --seed 42 \
 *       --report-out report.json
 */

#include <iostream>
#include <sstream>

#include "core/planner.h"
#include "core/profiled_model.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "obs/registry.h"
#include "obs/sinks.h"
#include "robust/fault_spec.h"
#include "robust/replan.h"
#include "sim/pipeline_sim.h"
#include "sim/schedule.h"
#include "util/cli.h"
#include "util/file_io.h"
#include "util/units.h"

using namespace adapipe;

namespace {

[[nodiscard]] int
fail(const std::string &msg)
{
    std::cerr << "robustness_report: error: " << msg << "\n";
    return 1;
}

/** Parse a comma-separated severity list like "1.1,1.5,2.0". */
ParseResult<std::vector<double>>
parseSeverities(const std::string &text)
{
    using Result = ParseResult<std::vector<double>>;
    std::vector<double> out;
    std::istringstream in(text);
    std::string item;
    while (std::getline(in, item, ',')) {
        std::size_t used = 0;
        double value = 0;
        try {
            value = std::stod(item, &used);
        } catch (const std::exception &) {
            used = 0;
        }
        if (used != item.size() || item.empty())
            return Result::failure("--severities: '" + item +
                                   "' is not a number");
        if (value < 1.0)
            return Result::failure("--severities: factor " + item +
                                   " must be >= 1");
        out.push_back(value);
    }
    if (out.empty())
        return Result::failure("--severities: empty list");
    return Result::success(std::move(out));
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("robustness_report");
    cli.addString("model", "gpt3", "model: gpt3|llama2|gpt3-13b");
    cli.addInt("seq", 16384, "sequence length");
    cli.addInt("nodes", 8, "cluster A nodes (8 devices each)");
    cli.addInt("tensor", 8, "tensor-parallel size");
    cli.addInt("pipeline", 8, "pipeline-parallel size");
    cli.addInt("data", 1, "data-parallel size");
    cli.addInt("global-batch", 32, "global batch size");
    cli.addInt("straggler", 1, "stage hit by the straggler");
    cli.addString("severities", "1.1,1.25,1.5,2.0",
                  "comma-separated slowdown factors (each >= 1)");
    cli.addInt("seed", 42, "fault-scenario seed");
    cli.addString("fault-spec", "",
                  "JSON fault spec to additionally simulate verbatim");
    cli.addString("report-out", "", "write the report JSON here");
    cli.addString("metrics-out", "",
                  "write search metrics as JSON-lines");
    cli.parse(argc, argv);

    obs::Registry metrics;
    obs::ScopedRegistry obs_scope(&metrics);

    ModelConfig model;
    const std::string which = cli.getString("model");
    if (which == "gpt3") {
        model = gpt3_175b();
    } else if (which == "llama2") {
        model = llama2_70b();
    } else if (which == "gpt3-13b") {
        model = gpt3_13b();
    } else {
        return fail("unknown model '" + which +
                    "' (expected gpt3|llama2|gpt3-13b)");
    }

    const ParseResult<std::vector<double>> severities =
        parseSeverities(cli.getString("severities"));
    if (!severities.ok())
        return fail(severities.error());

    TrainConfig train;
    train.seqLen = static_cast<int>(cli.getInt("seq"));
    train.globalBatch = static_cast<int>(cli.getInt("global-batch"));
    ParallelConfig par;
    par.tensor = static_cast<int>(cli.getInt("tensor"));
    par.pipeline = static_cast<int>(cli.getInt("pipeline"));
    par.data = static_cast<int>(cli.getInt("data"));
    const ClusterSpec cluster =
        clusterA(static_cast<int>(cli.getInt("nodes")));

    const int straggler = static_cast<int>(cli.getInt("straggler"));
    if (straggler < 0 || straggler >= par.pipeline)
        return fail("--straggler must be in [0, pipeline)");
    const auto seed =
        static_cast<std::uint64_t>(cli.getInt("seed"));

    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);
    const PlanResult original = makePlan(pm, PlanMethod::AdaPipe);
    if (!original.ok)
        return fail("healthy plan infeasible: " + original.oomReason);

    // Optional verbatim scenario first: report what one iteration of
    // the original plan looks like under the full fault spec.
    const std::string spec_path = cli.getString("fault-spec");
    if (!spec_path.empty()) {
        const ParseResult<FaultSpec> spec =
            loadFaultSpecFile(spec_path);
        if (!spec.ok())
            return fail(spec.error());
        const std::vector<StageTimes> times =
            planStageTimes(original.plan);
        const Schedule sched = build1F1B(
            static_cast<int>(times.size()),
            original.plan.microBatches);
        SimOptions sim_opts;
        sim_opts.faults = spec.value();
        const SimResult sim = simulate(sched, times, sim_opts);
        std::cout << "Fault spec " << spec_path << ": ";
        if (sim.completed) {
            std::cout << "iteration "
                      << formatSeconds(sim.iterationTime)
                      << " (stall time "
                      << formatSeconds(sim.stallTime) << ")\n\n";
        } else {
            std::cout << "iteration did not complete — device "
                      << sim.failedDevice << " failed; last op ended "
                      << formatSeconds(sim.iterationTime) << "\n\n";
        }
    }

    const RobustnessReport report = buildSensitivityReport(
        pm, original.plan, straggler, severities.value(), seed);
    printReport(report, std::cout);

    const std::string report_out = cli.getString("report-out");
    if (!report_out.empty()) {
        const ParseStatus wrote = writeTextFile(
            report_out, reportToJson(report).dump(2) + "\n");
        if (!wrote.ok())
            return fail(wrote.error());
        std::cout << "\nreport -> " << report_out << "\n";
    }
    const std::string metrics_out = cli.getString("metrics-out");
    if (!metrics_out.empty()) {
        const ParseStatus wrote =
            writeTextFile(metrics_out, obs::toJsonLines(metrics));
        if (!wrote.ok())
            return fail(wrote.error());
        std::cout << "metrics -> " << metrics_out << "\n";
    }
    return 0;
}
