/**
 * @file
 * Planner-as-a-service entry point: serve plan/explain/replan/stats
 * requests over newline-delimited JSON on TCP (see docs/service.md
 * for the protocol).
 *
 * Usage:
 *   plan_server --port 7421 --threads 4 \
 *       --cache-mb 64 --persist-dir plans/
 *
 * With --port 0 (the default) an ephemeral port is chosen and
 * printed, which is what the tests and CI use to avoid collisions.
 * The server runs until a {"kind": "shutdown"} request arrives.
 */

#include <iostream>

#include "service/server.h"
#include "util/cli.h"

using namespace adapipe;

int
main(int argc, char **argv)
{
    CliParser cli("plan_server");
    cli.addString("host", "127.0.0.1", "bind address");
    cli.addInt("port", 0, "bind port (0 = ephemeral, printed)");
    cli.addInt("threads", 4, "worker threads");
    cli.addInt("cache-mb", 64, "response cache budget in MiB");
    cli.addString("persist-dir", "",
                  "directory for persisted plan documents "
                  "(must exist; empty = memory only)");
    cli.addFlag("quiet", "suppress the startup banner");
    cli.parse(argc, argv);

    PlanServerOptions opts;
    opts.host = cli.getString("host");
    opts.port = static_cast<int>(cli.getInt("port"));
    opts.threads = static_cast<int>(cli.getInt("threads"));
    const long long cache_mb = cli.getInt("cache-mb");
    if (opts.port < 0 || opts.port > 65535 || opts.threads < 1 ||
        cache_mb < 1) {
        std::cerr << "plan_server: error: port must be in "
                     "[0, 65535], threads and cache-mb >= 1\n";
        return 1;
    }
    opts.service.cacheBytes =
        static_cast<std::size_t>(cache_mb) << 20;
    opts.service.persistDir = cli.getString("persist-dir");

    PlanServer server(opts);
    const ParseStatus started = server.start();
    if (!started.ok()) {
        std::cerr << "plan_server: error: " << started.error()
                  << "\n";
        return 1;
    }
    if (!cli.getFlag("quiet")) {
        std::cout << "plan_server listening on " << opts.host << ":"
                  << server.port() << " (" << opts.threads
                  << " workers, " << cache_mb << " MiB cache)"
                  << std::endl;
    }
    server.wait();
    if (!cli.getFlag("quiet"))
        std::cout << "plan_server: shutdown complete\n";
    return 0;
}
