/**
 * @file
 * Search observability: named counters/gauges and nested spans.
 *
 * The planner's value is its DP search; this registry records where
 * that search spends its time and what the DPs actually explore
 * (states visited, knapsack cells, strategies pruned, simulator
 * events). Design constraints, in order:
 *
 *  1. Zero hot-path synchronisation. A Registry is single-threaded
 *     by construction; parallel code gives each worker its own
 *     Registry and merges into the parent after join (see
 *     sweepStrategies). Merged counters are therefore bit-identical
 *     regardless of the worker count.
 *  2. Near-zero cost when idle. Instrumentation routes through a
 *     thread-local `current()` pointer; with no registry installed
 *     every macro is one load and a branch. Building with
 *     -DADAPIPE_OBS=OFF compiles the macros out entirely.
 *  3. No clocks in data structures. Span timestamps are microseconds
 *     since a process-wide epoch, so spans recorded on different
 *     threads land on one comparable timeline for Chrome traces.
 *
 * Sinks (JSON-lines, CSV summary, Chrome trace) live in
 * obs/sinks.h; the metric name catalogue is docs/observability.md.
 */

#ifndef ADAPIPE_OBS_REGISTRY_H
#define ADAPIPE_OBS_REGISTRY_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace adapipe {
namespace obs {

/** One completed span (scoped timer). */
struct SpanRecord
{
    /** Dotted span name, e.g. "partition_dp.solve". */
    std::string name;
    /** Start, microseconds since the process obs epoch. */
    double startUs = 0;
    /** Duration in microseconds. */
    double durUs = 0;
    /** Nesting depth at the recording thread (0 = top level). */
    int depth = 0;
    /** Sequential id of the recording thread. */
    std::uint32_t thread = 0;
};

/**
 * A bag of named counters, gauges and spans.
 *
 * Not thread-safe; see the file comment for the per-worker +
 * merge-on-join discipline.
 */
class Registry
{
  public:
    /** Add @p delta to counter @p name (created at zero). */
    void add(const std::string &name, std::int64_t delta = 1);

    /** Set gauge @p name to @p value (last writer wins). */
    void set(const std::string &name, double value);

    /** Append a completed span. */
    void record(SpanRecord span);

    /** @return counter value; zero when never touched. */
    std::int64_t counter(const std::string &name) const;

    /** @return gauge value; zero when never set. */
    double gauge(const std::string &name) const;

    /** Counters in name order (deterministic for sinks). */
    const std::map<std::string, std::int64_t> &counters() const
    {
        return counters_;
    }

    /** Gauges in name order. */
    const std::map<std::string, double> &gauges() const
    {
        return gauges_;
    }

    /** Spans in recording order. */
    const std::vector<SpanRecord> &spans() const { return spans_; }

    /**
     * Fold @p other into this registry: counters add, gauges
     * overwrite, spans append. Used by thread pools on join.
     */
    void merge(const Registry &other);

    /** Drop all recorded data. */
    void clear();

    /** @return whether nothing has been recorded. */
    bool empty() const
    {
        return counters_.empty() && gauges_.empty() && spans_.empty();
    }

  private:
    std::map<std::string, std::int64_t> counters_;
    std::map<std::string, double> gauges_;
    std::vector<SpanRecord> spans_;
};

namespace detail {
/** The calling thread's sink; exposed only to inline current(). */
extern thread_local Registry *tl_registry;
} // namespace detail

/**
 * @return the calling thread's installed registry, or nullptr.
 *
 * Inline on purpose: instrumentation macros in DP inner loops
 * compile down to this thread-local load plus a branch, so it must
 * not cost a function call.
 */
inline Registry *
current()
{
    return detail::tl_registry;
}

/**
 * Install @p registry as the calling thread's sink (nullptr
 * disables instrumentation on this thread). Prefer ScopedRegistry.
 */
inline void
install(Registry *registry)
{
    detail::tl_registry = registry;
}

/** @return microseconds since the process-wide obs epoch. */
double nowUs();

/** @return a small sequential id for the calling thread. */
std::uint32_t threadId();

/**
 * RAII install/restore of the calling thread's registry.
 */
class ScopedRegistry
{
  public:
    explicit ScopedRegistry(Registry *registry);
    ~ScopedRegistry();

    ScopedRegistry(const ScopedRegistry &) = delete;
    ScopedRegistry &operator=(const ScopedRegistry &) = delete;

  private:
    Registry *prev_;
};

/**
 * RAII scoped timer: records a SpanRecord into the registry that was
 * current at construction. A no-op when no registry is installed.
 */
class ScopedSpan
{
  public:
    /** @param name span name; must outlive the span (string literal) */
    explicit ScopedSpan(const char *name);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    Registry *registry_;
    const char *name_;
    double startUs_ = 0;
    int depth_ = 0;
};

} // namespace obs
} // namespace adapipe

#endif // ADAPIPE_OBS_REGISTRY_H
