/**
 * @file
 * Compile-time gated instrumentation macros.
 *
 * ADAPIPE_OBS is defined (0 or 1) by the build system; the default
 * build compiles instrumentation in, and -DADAPIPE_OBS=OFF at
 * configure time compiles every macro down to nothing so the search
 * hot paths carry zero observability cost. Even when compiled in,
 * a macro is one thread-local load and a branch unless a Registry
 * is installed on the calling thread.
 *
 * Counter conventions: names are dotted, "<subsystem>.<metric>",
 * e.g. "partition_dp.states_visited". Hot loops accumulate into a
 * local variable and flush once per call; see docs/observability.md
 * for the catalogue.
 */

#ifndef ADAPIPE_OBS_MACROS_H
#define ADAPIPE_OBS_MACROS_H

#if defined(ADAPIPE_OBS) && ADAPIPE_OBS
#define ADAPIPE_OBS_ENABLED 1
#else
#define ADAPIPE_OBS_ENABLED 0
#endif

#if ADAPIPE_OBS_ENABLED

#include "obs/registry.h"

/** Add @p delta to counter @p name on the installed registry. */
#define ADAPIPE_OBS_COUNT(name, delta)                                  \
    do {                                                                \
        if (::adapipe::obs::Registry *obs_reg_ =                        \
                ::adapipe::obs::current()) {                            \
            obs_reg_->add((name),                                       \
                          static_cast<std::int64_t>(delta));            \
        }                                                               \
    } while (false)

/** Set gauge @p name to @p value on the installed registry. */
#define ADAPIPE_OBS_GAUGE(name, value)                                  \
    do {                                                                \
        if (::adapipe::obs::Registry *obs_reg_ =                        \
                ::adapipe::obs::current()) {                            \
            obs_reg_->set((name), static_cast<double>(value));          \
        }                                                               \
    } while (false)

/** Open a scoped span named @p name for the rest of the block. */
#define ADAPIPE_OBS_SPAN(var, name) ::adapipe::obs::ScopedSpan var(name)

#else // !ADAPIPE_OBS_ENABLED

// Arguments are discarded unevaluated-in-effect but still named so
// locals that only feed instrumentation do not warn as unused. Call
// sites must not pass side-effecting expressions.
#define ADAPIPE_OBS_COUNT(name, delta)                                  \
    do {                                                                \
        (void)(name);                                                   \
        (void)(delta);                                                  \
    } while (false)
#define ADAPIPE_OBS_GAUGE(name, value)                                  \
    do {                                                                \
        (void)(name);                                                   \
        (void)(value);                                                  \
    } while (false)
#define ADAPIPE_OBS_SPAN(var, name)                                     \
    do {                                                                \
        (void)(name);                                                   \
    } while (false)

#endif // ADAPIPE_OBS_ENABLED

#endif // ADAPIPE_OBS_MACROS_H
