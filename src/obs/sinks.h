/**
 * @file
 * Pluggable output sinks for the observability registry.
 *
 * Three formats, one source of truth:
 *  - JSON-lines: one self-describing object per line ("counter",
 *    "gauge" or "span"); the format benches and tests consume.
 *  - CSV summary via util/csv: counters and gauges verbatim, spans
 *    aggregated per name (count + total duration).
 *  - Chrome trace: spans as complete ("X") events on the search
 *    threads' timeline, loadable in chrome://tracing / Perfetto next
 *    to the simulator traces from sim/trace_export.
 */

#ifndef ADAPIPE_OBS_SINKS_H
#define ADAPIPE_OBS_SINKS_H

#include <ostream>
#include <string>

#include "obs/registry.h"
#include "util/json.h"

namespace adapipe {
namespace obs {

/** Render the registry as JSON-lines (one object per line). */
std::string toJsonLines(const Registry &registry);

/** Write JSON-lines to @p os. */
void writeJsonLines(const Registry &registry, std::ostream &os);

/**
 * Write a CSV summary to @p os. Columns: kind, name, count, value.
 * Counters/gauges carry count 1 and their value; spans aggregate per
 * name with count = occurrences and value = total microseconds.
 */
void writeCsvSummary(const Registry &registry, std::ostream &os);

/**
 * Append the registry's spans to a Chrome-trace events array
 * (shared with sim/trace_export so planner spans and simulated
 * timelines can land in one trace).
 *
 * @param registry source of spans
 * @param events JSON array of trace events to append to
 * @param pid trace process id to file the spans under
 */
void appendSpanTraceEvents(const Registry &registry, JsonValue &events,
                           int pid);

/** Render the registry's spans as a standalone Chrome trace. */
std::string spansToChromeTrace(const Registry &registry);

} // namespace obs
} // namespace adapipe

#endif // ADAPIPE_OBS_SINKS_H
