#include "obs/sinks.h"

#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "util/csv.h"

namespace adapipe {
namespace obs {

std::string
toJsonLines(const Registry &registry)
{
    std::ostringstream oss;
    writeJsonLines(registry, oss);
    return oss.str();
}

void
writeJsonLines(const Registry &registry, std::ostream &os)
{
    for (const auto &[name, value] : registry.counters()) {
        JsonValue line = JsonValue::object();
        line.set("type", JsonValue::string("counter"));
        line.set("name", JsonValue::string(name));
        line.set("value", JsonValue::integer(value));
        os << line.dump(0) << "\n";
    }
    for (const auto &[name, value] : registry.gauges()) {
        JsonValue line = JsonValue::object();
        line.set("type", JsonValue::string("gauge"));
        line.set("name", JsonValue::string(name));
        line.set("value", JsonValue::number(value));
        os << line.dump(0) << "\n";
    }
    for (const SpanRecord &span : registry.spans()) {
        JsonValue line = JsonValue::object();
        line.set("type", JsonValue::string("span"));
        line.set("name", JsonValue::string(span.name));
        line.set("start_us", JsonValue::number(span.startUs));
        line.set("dur_us", JsonValue::number(span.durUs));
        line.set("depth", JsonValue::integer(span.depth));
        line.set("thread", JsonValue::integer(span.thread));
        os << line.dump(0) << "\n";
    }
}

void
writeCsvSummary(const Registry &registry, std::ostream &os)
{
    CsvWriter csv(os, {"kind", "name", "count", "value"});
    for (const auto &[name, value] : registry.counters())
        csv.writeRow({"counter", name, "1", std::to_string(value)});
    for (const auto &[name, value] : registry.gauges()) {
        std::ostringstream v;
        v << value;
        csv.writeRow({"gauge", name, "1", v.str()});
    }
    // Spans aggregate per name: occurrences + total microseconds.
    std::map<std::string, std::pair<std::size_t, double>> agg;
    for (const SpanRecord &span : registry.spans()) {
        auto &[count, total] = agg[span.name];
        ++count;
        total += span.durUs;
    }
    for (const auto &[name, stat] : agg) {
        std::ostringstream v;
        v << stat.second;
        csv.writeRow(
            {"span", name, std::to_string(stat.first), v.str()});
    }
}

void
appendSpanTraceEvents(const Registry &registry, JsonValue &events,
                      int pid)
{
    std::set<std::uint32_t> threads;
    for (const SpanRecord &span : registry.spans()) {
        threads.insert(span.thread);
        JsonValue ev = JsonValue::object();
        ev.set("name", JsonValue::string(span.name));
        ev.set("cat", JsonValue::string("search"));
        ev.set("ph", JsonValue::string("X"));
        ev.set("ts", JsonValue::number(span.startUs));
        ev.set("dur", JsonValue::number(span.durUs));
        ev.set("pid", JsonValue::integer(pid));
        ev.set("tid", JsonValue::integer(span.thread));
        JsonValue args = JsonValue::object();
        args.set("depth", JsonValue::integer(span.depth));
        ev.set("args", std::move(args));
        events.push(std::move(ev));
    }
    for (std::uint32_t tid : threads) {
        JsonValue meta = JsonValue::object();
        meta.set("name", JsonValue::string("thread_name"));
        meta.set("ph", JsonValue::string("M"));
        meta.set("pid", JsonValue::integer(pid));
        meta.set("tid", JsonValue::integer(tid));
        JsonValue args = JsonValue::object();
        args.set("name", JsonValue::string("search thread " +
                                           std::to_string(tid)));
        meta.set("args", std::move(args));
        events.push(std::move(meta));
    }
}

std::string
spansToChromeTrace(const Registry &registry)
{
    JsonValue events = JsonValue::array();
    appendSpanTraceEvents(registry, events, 0);
    JsonValue root = JsonValue::object();
    root.set("traceEvents", std::move(events));
    root.set("displayTimeUnit", JsonValue::string("ms"));
    return root.dump(0);
}

} // namespace obs
} // namespace adapipe
