#include "obs/registry.h"

#include <atomic>
#include <chrono>

namespace adapipe {
namespace obs {

namespace detail {
thread_local Registry *tl_registry = nullptr;
} // namespace detail

namespace {

thread_local int tl_depth = 0;

using Clock = std::chrono::steady_clock;

/** Process-wide epoch so all threads share one timeline. */
Clock::time_point
epoch()
{
    static const Clock::time_point e = Clock::now();
    return e;
}

} // namespace

void
Registry::add(const std::string &name, std::int64_t delta)
{
    counters_[name] += delta;
}

void
Registry::set(const std::string &name, double value)
{
    gauges_[name] = value;
}

void
Registry::record(SpanRecord span)
{
    spans_.push_back(std::move(span));
}

std::int64_t
Registry::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
Registry::gauge(const std::string &name) const
{
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

void
Registry::merge(const Registry &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
    for (const auto &[name, value] : other.gauges_)
        gauges_[name] = value;
    spans_.insert(spans_.end(), other.spans_.begin(),
                  other.spans_.end());
}

void
Registry::clear()
{
    counters_.clear();
    gauges_.clear();
    spans_.clear();
}

double
nowUs()
{
    return std::chrono::duration<double, std::micro>(Clock::now() -
                                                     epoch())
        .count();
}

std::uint32_t
threadId()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

ScopedRegistry::ScopedRegistry(Registry *registry)
    : prev_(detail::tl_registry)
{
    detail::tl_registry = registry;
}

ScopedRegistry::~ScopedRegistry()
{
    detail::tl_registry = prev_;
}

ScopedSpan::ScopedSpan(const char *name)
    : registry_(detail::tl_registry), name_(name)
{
    if (!registry_)
        return;
    startUs_ = nowUs();
    depth_ = tl_depth++;
}

ScopedSpan::~ScopedSpan()
{
    if (!registry_)
        return;
    --tl_depth;
    SpanRecord span;
    span.name = name_;
    span.startUs = startUs_;
    span.durUs = nowUs() - startUs_;
    span.depth = depth_;
    span.thread = threadId();
    registry_->record(std::move(span));
}

} // namespace obs
} // namespace adapipe
