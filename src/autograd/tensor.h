/**
 * @file
 * Dense row-major float tensor used by the autograd engine.
 *
 * Deliberately minimal: the convergence study (Fig. 10) needs a real
 * training loop with real gradients, not a fast one.
 */

#ifndef ADAPIPE_AUTOGRAD_TENSOR_H
#define ADAPIPE_AUTOGRAD_TENSOR_H

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace adapipe {

/**
 * A dense float tensor with up to rank-2 semantics (the engine
 * flattens batch dimensions into rows).
 */
class Tensor
{
  public:
    /** Empty tensor. */
    Tensor() = default;

    /** Zero-initialised tensor of the given shape. */
    explicit Tensor(std::vector<int> shape);

    /**
     * Storage is recycled through TensorPool: destruction returns
     * the buffer to a freelist and construction prefers a recycled
     * buffer of the same element count over the heap, so the
     * shape-repetitive training loop stops hitting the allocator.
     */
    ~Tensor();
    Tensor(const Tensor &other);
    Tensor &operator=(const Tensor &other);
    Tensor(Tensor &&other) noexcept = default;
    Tensor &operator=(Tensor &&other) noexcept;

    /**
     * @return tensor of the shape with UNSPECIFIED contents (stale
     * values from a recycled buffer). Only for kernels that
     * overwrite every element before any read.
     */
    static Tensor uninitialized(std::vector<int> shape);

    /** @return tensor of the shape filled with @p value. */
    static Tensor full(std::vector<int> shape, float value);

    /** @return tensor with N(0, stddev^2) entries from @p rng. */
    static Tensor randn(std::vector<int> shape, Rng &rng,
                        float stddev = 1.0f);

    /** @return number of elements. */
    std::int64_t numel() const
    {
        return static_cast<std::int64_t>(data_.size());
    }

    /** @return the shape vector. */
    const std::vector<int> &shape() const { return shape_; }

    /** @return rows for rank-2 tensors (rank-1: 1). */
    int rows() const;

    /** @return columns for rank-2 tensors (rank-1: size). */
    int cols() const;

    /** @return mutable flat element access. */
    float &operator[](std::int64_t i) { return data_[i]; }

    /** @return flat element access. */
    float operator[](std::int64_t i) const { return data_[i]; }

    /** @return mutable 2D element access (row-major). */
    float &at(int r, int c);

    /** @return 2D element access (row-major). */
    float at(int r, int c) const;

    /** @return raw storage. */
    std::vector<float> &data() { return data_; }
    const std::vector<float> &data() const { return data_; }

    /** In-place element-wise accumulate; shapes must match. */
    void add_(const Tensor &other);

    /** In-place scalar multiply. */
    void scale_(float factor);

    /** Set every element to zero. */
    void zero_();

    /** @return true if shape is identical to @p other's. */
    bool sameShape(const Tensor &other) const
    {
        return shape_ == other.shape_;
    }

  private:
    struct Uninit
    {};
    Tensor(std::vector<int> shape, Uninit);

    std::vector<int> shape_;
    std::vector<float> data_;
};

} // namespace adapipe

#endif // ADAPIPE_AUTOGRAD_TENSOR_H
