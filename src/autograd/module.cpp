#include "autograd/module.h"

#include <cmath>

#include "util/logging.h"

namespace adapipe {

namespace {

/** Collect parameter vectors. */
void
append(std::vector<Variable> &into, const std::vector<Variable> &from)
{
    into.insert(into.end(), from.begin(), from.end());
}

} // namespace

Linear::Linear(int in, int out, Rng &rng)
    : w_(Tensor::randn({in, out}, rng, 0.02f), true),
      b_(Tensor({out}), true)
{}

Variable
Linear::forward(const Variable &x) const
{
    return ops::linearBias(x, w_, b_);
}

Variable
Linear::forwardGelu(const Variable &x) const
{
    return ops::linearBiasGelu(x, w_, b_);
}

LayerNormModule::LayerNormModule(int dim, bool rms)
    : rms_(rms), gamma_(Tensor::full({dim}, 1.0f), true)
{
    if (!rms_)
        beta_ = Variable(Tensor({dim}), true);
}

Variable
LayerNormModule::forward(const Variable &x) const
{
    if (rms_)
        return ops::rmsNorm(x, gamma_);
    return ops::layerNorm(x, gamma_, beta_);
}

std::vector<Variable>
LayerNormModule::params() const
{
    if (rms_)
        return {gamma_};
    return {gamma_, beta_};
}

CausalSelfAttention::CausalSelfAttention(int dim, int num_heads,
                                         Rng &rng)
    : dim_(dim), numHeads_(num_heads), q_(dim, dim, rng),
      k_(dim, dim, rng), v_(dim, dim, rng), out_(dim, dim, rng)
{
    ADAPIPE_ASSERT(num_heads >= 1 && dim % num_heads == 0,
                   "dim ", dim, " not divisible by heads ", num_heads);
}

namespace {

/** Differentiable transpose (the op set keeps it local to here). */
Variable
transpose(const Variable &a)
{
    const Tensor &av = a.value();
    Tensor at({av.cols(), av.rows()});
    for (int i = 0; i < av.rows(); ++i) {
        for (int j = 0; j < av.cols(); ++j)
            at.at(j, i) = av.at(i, j);
    }
    return Variable::makeNode(
        std::move(at), {a}, [](Variable::Impl &node) {
            autograd_detail::BackwardResult result(1);
            const auto &pa = node.parents[0];
            if (!pa)
                return result;
            Tensor da(pa->value.shape());
            for (int i = 0; i < da.rows(); ++i) {
                for (int j = 0; j < da.cols(); ++j)
                    da.at(i, j) += node.grad.at(j, i);
            }
            result[0].push_back(std::move(da));
            return result;
        });
}

} // namespace

Variable
CausalSelfAttention::forward(const Variable &x) const
{
    const Variable q = q_.forward(x);
    const Variable k = k_.forward(x);
    const Variable v = v_.forward(x);

    const int head_dim = dim_ / numHeads_;
    const float inv_sqrt_d =
        1.0f / std::sqrt(static_cast<float>(head_dim));

    std::vector<Variable> contexts;
    contexts.reserve(numHeads_);
    for (int h = 0; h < numHeads_; ++h) {
        const int off = h * head_dim;
        Variable qh = numHeads_ == 1
                          ? q
                          : ops::sliceCols(q, off, head_dim);
        Variable kh = numHeads_ == 1
                          ? k
                          : ops::sliceCols(k, off, head_dim);
        Variable vh = numHeads_ == 1
                          ? v
                          : ops::sliceCols(v, off, head_dim);
        Variable scores =
            ops::scale(ops::matmul(qh, transpose(kh)), inv_sqrt_d);
        Variable probs = ops::softmaxRows(scores, /*causal=*/true);
        contexts.push_back(ops::matmul(probs, vh));
    }
    Variable ctx = numHeads_ == 1 ? contexts.front()
                                  : ops::concatCols(contexts);
    return out_.forward(ctx);
}

std::vector<Variable>
CausalSelfAttention::params() const
{
    std::vector<Variable> p;
    append(p, q_.params());
    append(p, k_.params());
    append(p, v_.params());
    append(p, out_.params());
    return p;
}

FeedForwardModule::FeedForwardModule(int dim, int hidden, bool gated,
                                     Rng &rng)
    : gated_(gated), up_(dim, hidden, rng), down_(hidden, dim, rng)
{
    if (gated_)
        gate_.emplace(dim, hidden, rng);
}

Variable
FeedForwardModule::forward(const Variable &x) const
{
    if (gated_) {
        return down_.forward(
            ops::mul(ops::silu(gate_->forward(x)), up_.forward(x)));
    }
    return down_.forward(up_.forwardGelu(x));
}

std::vector<Variable>
FeedForwardModule::params() const
{
    std::vector<Variable> p;
    append(p, up_.params());
    append(p, down_.params());
    if (gated_)
        append(p, gate_->params());
    return p;
}

TransformerBlock::TransformerBlock(const BlockConfig &config, Rng &rng)
    : ln1_(config.dim, config.rmsNorm),
      attn_(config.dim, config.numHeads, rng),
      ln2_(config.dim, config.rmsNorm),
      ffn_(config.dim, config.ffnHidden, config.gatedFfn, rng)
{}

Variable
TransformerBlock::attnPart(const Variable &x) const
{
    return ops::add(x, attn_.forward(ln1_.forward(x)));
}

Variable
TransformerBlock::ffnPart(const Variable &x) const
{
    return ops::add(x, ffn_.forward(ln2_.forward(x)));
}

Variable
TransformerBlock::forward(const Variable &x,
                          BlockRecompute recompute) const
{
    switch (recompute) {
      case BlockRecompute::None:
        return ffnPart(attnPart(x));
      case BlockRecompute::AttentionOnly: {
        Variable h = checkpoint(
            [this](const Variable &in) { return attnPart(in); }, x,
            params());
        return ffnPart(h);
      }
      case BlockRecompute::Full:
        return checkpoint(
            [this](const Variable &in) {
                return ffnPart(attnPart(in));
            },
            x, params());
    }
    ADAPIPE_PANIC("unreachable recompute mode");
}

Variable
TransformerBlock::forwardOffload(const Variable &x) const
{
    return checkpointResident(
        [this](const Variable &in) { return ffnPart(attnPart(in)); },
        x, params());
}

std::vector<Variable>
TransformerBlock::params() const
{
    std::vector<Variable> p;
    append(p, ln1_.params());
    append(p, attn_.params());
    append(p, ln2_.params());
    append(p, ffn_.params());
    return p;
}

TinyLM::TinyLM(const TinyLmConfig &config)
    : config_(config), finalNorm_(config.dim, config.rmsNorm)
{
    Rng rng(config.seed);
    tokenTable_ =
        Variable(Tensor::randn({config.vocab, config.dim}, rng, 0.02f),
                 true);
    posTable_ =
        Variable(Tensor::randn({config.maxSeq, config.dim}, rng, 0.02f),
                 true);
    BlockConfig block;
    block.dim = config.dim;
    block.ffnHidden = config.ffnHidden;
    block.numHeads = config.numHeads;
    block.gatedFfn = config.gatedFfn;
    block.rmsNorm = config.rmsNorm;
    blocks_.reserve(config.blocks);
    for (int i = 0; i < config.blocks; ++i)
        blocks_.emplace_back(block, rng);
    headW_ = Variable(
        Tensor::randn({config.dim, config.vocab}, rng, 0.02f), true);
}

Variable
TinyLM::loss(const std::vector<int> &tokens,
             const std::vector<int> &targets,
             const std::vector<BlockRecompute> &recompute) const
{
    ADAPIPE_ASSERT(tokens.size() == targets.size(),
                   "tokens/targets length mismatch");
    ADAPIPE_ASSERT(recompute.empty() ||
                       recompute.size() == blocks_.size(),
                   "one recompute mode per block required");

    Variable h = embed(tokens);
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        const BlockRecompute mode =
            recompute.empty() ? BlockRecompute::None : recompute[b];
        h = blockForward(static_cast<int>(b), h, mode);
    }
    return headLoss(h, targets);
}

Variable
TinyLM::embed(const std::vector<int> &tokens) const
{
    ADAPIPE_ASSERT(static_cast<int>(tokens.size()) <= config_.maxSeq,
                   "sequence longer than maxSeq");
    std::vector<int> positions(tokens.size());
    for (std::size_t i = 0; i < positions.size(); ++i)
        positions[i] = static_cast<int>(i);
    return ops::add(ops::embedding(tokenTable_, tokens),
                    ops::embedding(posTable_, positions));
}

Variable
TinyLM::blockForward(int b, const Variable &h,
                     BlockRecompute recompute) const
{
    ADAPIPE_ASSERT(b >= 0 && b < static_cast<int>(blocks_.size()),
                   "block index ", b, " out of range");
    return blocks_[static_cast<std::size_t>(b)].forward(h, recompute);
}

Variable
TinyLM::blockForwardOffload(int b, const Variable &h) const
{
    ADAPIPE_ASSERT(b >= 0 && b < static_cast<int>(blocks_.size()),
                   "block index ", b, " out of range");
    return blocks_[static_cast<std::size_t>(b)].forwardOffload(h);
}

Variable
TinyLM::headLoss(const Variable &h,
                 const std::vector<int> &targets) const
{
    Variable normed = finalNorm_.forward(h);
    Variable logits = ops::matmul(normed, headW_);
    return ops::crossEntropy(logits, targets);
}

std::vector<Variable>
TinyLM::embedParams() const
{
    return {tokenTable_, posTable_};
}

std::vector<Variable>
TinyLM::blockParams(int b) const
{
    ADAPIPE_ASSERT(b >= 0 && b < static_cast<int>(blocks_.size()),
                   "block index ", b, " out of range");
    return blocks_[static_cast<std::size_t>(b)].params();
}

std::vector<Variable>
TinyLM::headParams() const
{
    std::vector<Variable> p = finalNorm_.params();
    p.push_back(headW_);
    return p;
}

std::vector<Variable>
TinyLM::params() const
{
    std::vector<Variable> p{tokenTable_, posTable_};
    for (const auto &blk : blocks_)
        append(p, blk.params());
    append(p, finalNorm_.params());
    p.push_back(headW_);
    return p;
}

} // namespace adapipe
