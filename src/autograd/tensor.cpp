#include "autograd/tensor.h"

#include <cstddef>
#include <numeric>

#include "util/logging.h"

namespace adapipe {

namespace {

std::int64_t
shapeNumel(const std::vector<int> &shape)
{
    std::int64_t n = 1;
    for (int d : shape) {
        ADAPIPE_ASSERT(d > 0, "non-positive tensor dimension ", d);
        n *= d;
    }
    return n;
}

} // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shapeNumel(shape_)), 0.0f)
{
    ADAPIPE_ASSERT(shape_.size() <= 2, "tensors are rank <= 2");
}

Tensor
Tensor::full(std::vector<int> shape, float value)
{
    Tensor t(std::move(shape));
    for (auto &x : t.data_)
        x = value;
    return t;
}

Tensor
Tensor::randn(std::vector<int> shape, Rng &rng, float stddev)
{
    Tensor t(std::move(shape));
    for (auto &x : t.data_)
        x = static_cast<float>(rng.normal(0.0, stddev));
    return t;
}

int
Tensor::rows() const
{
    if (shape_.size() < 2)
        return 1;
    return shape_[0];
}

int
Tensor::cols() const
{
    if (shape_.empty())
        return 0;
    return shape_.back();
}

float &
Tensor::at(int r, int c)
{
    return data_[static_cast<std::size_t>(r) * cols() + c];
}

float
Tensor::at(int r, int c) const
{
    return data_[static_cast<std::size_t>(r) * cols() + c];
}

void
Tensor::add_(const Tensor &other)
{
    ADAPIPE_ASSERT(sameShape(other), "add_ shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
}

void
Tensor::scale_(float factor)
{
    for (auto &x : data_)
        x *= factor;
}

void
Tensor::zero_()
{
    for (auto &x : data_)
        x = 0.0f;
}

} // namespace adapipe
