#include "autograd/tensor.h"

#include <algorithm>
#include <cstddef>
#include <numeric>

#include "autograd/tensor_pool.h"
#include "util/logging.h"

namespace adapipe {

namespace {

std::int64_t
shapeNumel(const std::vector<int> &shape)
{
    std::int64_t n = 1;
    for (int d : shape) {
        ADAPIPE_ASSERT(d > 0, "non-positive tensor dimension ", d);
        n *= d;
    }
    return n;
}

} // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)),
      data_(TensorPool::instance().acquire(
          static_cast<std::size_t>(shapeNumel(shape_)),
          /*zero_fill=*/true))
{
    ADAPIPE_ASSERT(shape_.size() <= 2, "tensors are rank <= 2");
}

Tensor::Tensor(std::vector<int> shape, Uninit)
    : shape_(std::move(shape)),
      data_(TensorPool::instance().acquire(
          static_cast<std::size_t>(shapeNumel(shape_)),
          /*zero_fill=*/false))
{
    ADAPIPE_ASSERT(shape_.size() <= 2, "tensors are rank <= 2");
}

Tensor::~Tensor()
{
    TensorPool::instance().release(std::move(data_));
}

Tensor::Tensor(const Tensor &other)
    : shape_(other.shape_),
      data_(TensorPool::instance().acquire(other.data_.size(),
                                           /*zero_fill=*/false))
{
    std::copy(other.data_.begin(), other.data_.end(), data_.begin());
}

Tensor &
Tensor::operator=(const Tensor &other)
{
    if (this == &other)
        return *this;
    shape_ = other.shape_;
    if (data_.size() != other.data_.size()) {
        TensorPool::instance().release(std::move(data_));
        data_ = TensorPool::instance().acquire(other.data_.size(),
                                               /*zero_fill=*/false);
    }
    std::copy(other.data_.begin(), other.data_.end(), data_.begin());
    return *this;
}

Tensor &
Tensor::operator=(Tensor &&other) noexcept
{
    if (this == &other)
        return *this;
    // A plain vector move-assign would free our buffer behind the
    // pool's back; recycle it instead.
    TensorPool::instance().release(std::move(data_));
    shape_ = std::move(other.shape_);
    data_ = std::move(other.data_);
    return *this;
}

Tensor
Tensor::uninitialized(std::vector<int> shape)
{
    return Tensor(std::move(shape), Uninit{});
}

Tensor
Tensor::full(std::vector<int> shape, float value)
{
    Tensor t(std::move(shape), Uninit{});
    for (auto &x : t.data_)
        x = value;
    return t;
}

Tensor
Tensor::randn(std::vector<int> shape, Rng &rng, float stddev)
{
    Tensor t(std::move(shape), Uninit{});
    for (auto &x : t.data_)
        x = static_cast<float>(rng.normal(0.0, stddev));
    return t;
}

int
Tensor::rows() const
{
    if (shape_.size() < 2)
        return 1;
    return shape_[0];
}

int
Tensor::cols() const
{
    if (shape_.empty())
        return 0;
    return shape_.back();
}

float &
Tensor::at(int r, int c)
{
    return data_[static_cast<std::size_t>(r) * cols() + c];
}

float
Tensor::at(int r, int c) const
{
    return data_[static_cast<std::size_t>(r) * cols() + c];
}

void
Tensor::add_(const Tensor &other)
{
    ADAPIPE_ASSERT(sameShape(other), "add_ shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
}

void
Tensor::scale_(float factor)
{
    for (auto &x : data_)
        x *= factor;
}

void
Tensor::zero_()
{
    for (auto &x : data_)
        x = 0.0f;
}

} // namespace adapipe
