#include "autograd/checkpoint.h"

#include <algorithm>
#include <mutex>
#include <unordered_set>
#include <utility>

#include "autograd/engine.h"
#include "obs/macros.h"
#include "obs/registry.h"
#include "util/logging.h"

namespace adapipe {

namespace checkpoint_detail {

/**
 * Shared replay state of one checkpointed segment: what the lazy
 * replay needs (segment + saved input) plus, once warmed, the rebuilt
 * recorded sub-graph the backward differentiates.
 */
struct ReplayState
{
    Segment segment;
    Variable input;
    bool warmed = false;
    /** Recorded leaf copy of the input (grad routes through it). */
    Variable warmIn;
    /** Recorded segment output; root of the rebuilt sub-graph. */
    Variable warmOut;

    /** @name Host-offload tier (checkpointResident() only)
     *  @{ */
    /** Marks a resident checkpoint eligible for evict()/fetch(). Set
     *  before the state is published, immutable afterwards, so the
     *  plain checkpoint() path never takes the mutex below. */
    bool offloadable = false;
    /** Guards everything below. Held across a *whole* evict or
     *  fetch, so the backward closure (which locks it first) either
     *  sees a fully resident graph or a fully evicted one. */
    std::mutex mu;
    /** Backward consumed (or dropped) the graph; transfers no-op. */
    bool consumed = false;
    /** Interior activations currently live in hostStage, not on
     *  the graph nodes. */
    bool evicted = false;
    /** One staged interior tensor: owning node, shape, host copy. */
    struct HostTensor
    {
        std::shared_ptr<Variable::Impl> node;
        std::vector<int> shape;
        std::vector<float> data;
    };
    std::vector<HostTensor> hostStage;
    /** @} */
};

namespace {

thread_local ReplayCollector *g_collector = nullptr;
thread_local OffloadCollector *g_offload_collector = nullptr;

/**
 * Interior nodes of the warm graph: every non-leaf reachable from
 * warmOut via parent edges, excluding warmOut itself (its value is
 * also the checkpoint node's output and must stay on device). Leaves
 * (the recorded input copy, parameters) are excluded too — the 1F1B
 * schedule keeps boundary activations and weights resident.
 */
std::vector<std::shared_ptr<Variable::Impl>>
interiorNodes(const ReplayState &st)
{
    std::vector<std::shared_ptr<Variable::Impl>> out;
    if (!st.warmOut.defined())
        return out;
    std::unordered_set<const Variable::Impl *> seen;
    std::vector<std::shared_ptr<Variable::Impl>> stack;
    stack.push_back(st.warmOut.impl());
    seen.insert(st.warmOut.impl().get());
    while (!stack.empty()) {
        std::shared_ptr<Variable::Impl> node =
            std::move(stack.back());
        stack.pop_back();
        if (!node->isLeaf && node.get() != st.warmOut.impl().get())
            out.push_back(node);
        for (const auto &parent : node->parents) {
            if (parent && seen.insert(parent.get()).second)
                stack.push_back(parent);
        }
    }
    return out;
}

/**
 * Run the forward replay once. Emits the same "checkpoint.replays"
 * count whether the replay fires eagerly (warm) or lazily (backward),
 * so replay totals stay comparable across modes, plus a
 * "checkpoint.replay_us" counter the runtime uses to meter replay
 * time out of the backward timer exactly (per-chunk, merge-safe).
 */
void
ensureWarm(ReplayState &st)
{
    if (st.warmed)
        return;
    st.warmed = true;
    ADAPIPE_OBS_COUNT("checkpoint.replays", 1);
    const double start_us = obs::nowUs();
    {
        ADAPIPE_OBS_SPAN(replay_span, "checkpoint.replay");
        st.warmIn = st.input.detach(true);
        st.warmOut = st.segment(st.warmIn);
    }
    ADAPIPE_OBS_COUNT(
        "checkpoint.replay_us",
        static_cast<std::int64_t>(obs::nowUs() - start_us));
    // The saved input stays alive through warmIn / the node's parent
    // list; drop this extra reference.
    st.input = Variable();
}

/**
 * Build the checkpoint output node over @p state. Shared by
 * checkpoint() and checkpointResident(): the backward closure is the
 * same graph-consuming differentiation either way; resident states
 * additionally gate it on residency (consume the warm graph, or drop
 * it and fall back to a replay when the activations are still on
 * host).
 */
Variable
makeCheckpointNode(std::shared_ptr<ReplayState> state,
                   Tensor out_value, std::vector<Variable> parents)
{
    return Variable::makeNode(
        std::move(out_value), std::move(parents),
        [state](Variable::Impl &node) {
            // Recompute the segment with recording enabled (unless a
            // warm() already did), then backpropagate the downstream
            // gradient through the rebuilt sub-graph — entirely on
            // this thread, with leaf accumulation redirected into a
            // private capture map so concurrent replays never touch
            // shared parameter grads. The captured addends come back
            // as ordered lists the outer engine applies in its
            // deterministic reduction, reproducing the eager engine's
            // float sequence exactly (a replayed parameter used twice
            // yields two addends, added one after the other as before
            // — summing them here first would reassociate the
            // floats).
            if (state->offloadable) {
                // Consume-or-fallback gate. The lock orders this
                // against any in-flight transfer: a fetch holding
                // the mutex finishes first and we consume the
                // restored graph; an unfinished (or never issued)
                // fetch leaves the segment evicted and we drop the
                // cold graph, falling back to a recompute replay
                // from the kept input. Both paths perform
                // bit-identical float operations.
                std::lock_guard<std::mutex> lock(state->mu);
                state->consumed = true;
                if (state->evicted) {
                    state->hostStage.clear();
                    state->warmIn = Variable();
                    state->warmOut = Variable();
                    state->warmed = false;
                    ADAPIPE_OBS_COUNT("offload.fetch_miss", 1);
                }
            }
            ensureWarm(*state);
            // Resident states keep the input for the fallback
            // replay; it is no longer needed once the graph is
            // consumed (ensureWarm already cleared it on replay).
            state->input = Variable();
            Variable in_copy = std::move(state->warmIn);
            Variable out = std::move(state->warmOut);
            state->warmIn = Variable();
            state->warmOut = Variable();
            ADAPIPE_ASSERT(out.value().sameShape(node.value),
                           "checkpoint recompute shape mismatch");

            engine_detail::GradCapture capture;
            capture[in_copy.impl().get()];
            for (std::size_t i = 1; i < node.parents.size(); ++i) {
                if (node.parents[i])
                    capture[node.parents[i].get()];
            }
            engine_detail::backwardInline(out.impl(), node.grad,
                                          &capture);

            autograd_detail::BackwardResult result(
                node.parents.size());
            // Input slot: the eager engine accumulated the replay's
            // input gradient into one zero-initialised buffer and
            // added it to the real parent once; fold the captured
            // list the same way.
            if (node.parents[0]) {
                Tensor folded(in_copy.value().shape());
                for (const Tensor &part :
                     capture[in_copy.impl().get()])
                    folded.add_(part);
                result[0].push_back(std::move(folded));
            }
            // Parameter slots receive their captured lists verbatim;
            // a parameter listed in several slots routes everything
            // through its first slot (the map holds one list per
            // leaf).
            std::unordered_set<Variable::Impl *> routed;
            for (std::size_t i = 1; i < node.parents.size(); ++i) {
                Variable::Impl *param = node.parents[i].get();
                if (!param || !routed.insert(param).second)
                    continue;
                result[i] = std::move(capture[param]);
            }
            return result;
        });
}

} // namespace

} // namespace checkpoint_detail

ReplayHandle::ReplayHandle() = default;
ReplayHandle::~ReplayHandle() = default;
ReplayHandle::ReplayHandle(const ReplayHandle &) = default;
ReplayHandle &ReplayHandle::operator=(const ReplayHandle &) = default;
ReplayHandle::ReplayHandle(ReplayHandle &&) noexcept = default;
ReplayHandle &
ReplayHandle::operator=(ReplayHandle &&) noexcept = default;

ReplayHandle::ReplayHandle(
    std::shared_ptr<checkpoint_detail::ReplayState> state)
    : state_(std::move(state))
{
}

bool
ReplayHandle::warm() const
{
    if (!state_ || state_->warmed)
        return false;
    checkpoint_detail::ensureWarm(*state_);
    return true;
}

bool
ReplayHandle::warmed() const
{
    return state_ && state_->warmed;
}

ReplayCollector::ReplayCollector()
    : previous_(checkpoint_detail::g_collector)
{
    checkpoint_detail::g_collector = this;
}

ReplayCollector::~ReplayCollector()
{
    checkpoint_detail::g_collector = previous_;
}

std::vector<ReplayHandle>
ReplayCollector::take()
{
    std::vector<ReplayHandle> out = std::move(handles_);
    handles_.clear();
    return out;
}

Variable
checkpoint(const Segment &segment, const Variable &input)
{
    return checkpoint(segment, input, {});
}

Variable
checkpoint(const Segment &segment, const Variable &input,
           const std::vector<Variable> &params)
{
    ADAPIPE_ASSERT(input.defined(), "checkpoint needs a defined input");

    // Forward without recording: none of the segment's intermediates
    // survive this scope.
    Tensor out_value;
    {
        NoGradGuard guard;
        Variable detached = input.detach(false);
        Variable out = segment(detached);
        out_value = out.value();
    }

    std::vector<Variable> parents;
    parents.push_back(input);
    for (const auto &p : params)
        parents.push_back(p);

    auto state =
        std::make_shared<checkpoint_detail::ReplayState>();
    state->segment = segment;
    state->input = input;

    Variable result = checkpoint_detail::makeCheckpointNode(
        state, std::move(out_value), std::move(parents));

    // Only differentiable nodes can ever replay; constant results
    // (grads disabled, no parent requiring them) need no handle.
    if (checkpoint_detail::g_collector && result.impl() &&
        result.impl()->backwardFn) {
        checkpoint_detail::g_collector->handles_.push_back(
            ReplayHandle(state));
    }
    return result;
}

OffloadHandle::OffloadHandle() = default;
OffloadHandle::~OffloadHandle() = default;
OffloadHandle::OffloadHandle(const OffloadHandle &) = default;
OffloadHandle &
OffloadHandle::operator=(const OffloadHandle &) = default;
OffloadHandle::OffloadHandle(OffloadHandle &&) noexcept = default;
OffloadHandle &
OffloadHandle::operator=(OffloadHandle &&) noexcept = default;

OffloadHandle::OffloadHandle(
    std::shared_ptr<checkpoint_detail::ReplayState> state)
    : state_(std::move(state))
{
}

std::size_t
OffloadHandle::evict() const
{
    if (!state_ || !state_->offloadable)
        return 0;
    checkpoint_detail::ReplayState &st = *state_;
    std::lock_guard<std::mutex> lock(st.mu);
    if (st.consumed || st.evicted || !st.warmed)
        return 0;
    std::size_t bytes = 0;
    for (auto &node : checkpoint_detail::interiorNodes(st)) {
        Tensor &value = node->value;
        if (value.numel() == 0)
            continue;
        checkpoint_detail::ReplayState::HostTensor ht;
        ht.shape = value.shape();
        ht.data.assign(value.data().begin(), value.data().end());
        bytes += ht.data.size() * sizeof(float);
        // The device buffer goes back to the pool; the meter must
        // follow (VarImpl's destructor subtracts whatever the node
        // holds at death, which is nothing until fetch()).
        autograd_detail::meterAdjust(-value.numel());
        value = Tensor();
        ht.node = std::move(node);
        st.hostStage.push_back(std::move(ht));
    }
    st.evicted = true;
    return bytes;
}

std::size_t
OffloadHandle::fetch() const
{
    if (!state_)
        return 0;
    checkpoint_detail::ReplayState &st = *state_;
    std::lock_guard<std::mutex> lock(st.mu);
    if (st.consumed || !st.evicted)
        return 0;
    std::size_t bytes = 0;
    for (auto &ht : st.hostStage) {
        Tensor value = Tensor::uninitialized(ht.shape);
        std::copy(ht.data.begin(), ht.data.end(),
                  value.data().begin());
        bytes += ht.data.size() * sizeof(float);
        autograd_detail::meterAdjust(value.numel());
        ht.node->value = std::move(value);
    }
    st.hostStage.clear();
    st.evicted = false;
    return bytes;
}

bool
OffloadHandle::resident() const
{
    if (!state_)
        return false;
    std::lock_guard<std::mutex> lock(state_->mu);
    return !state_->evicted;
}

OffloadCollector::OffloadCollector()
    : previous_(checkpoint_detail::g_offload_collector)
{
    checkpoint_detail::g_offload_collector = this;
}

OffloadCollector::~OffloadCollector()
{
    checkpoint_detail::g_offload_collector = previous_;
}

std::vector<OffloadHandle>
OffloadCollector::take()
{
    std::vector<OffloadHandle> out = std::move(handles_);
    handles_.clear();
    return out;
}

Variable
checkpointResident(const Segment &segment, const Variable &input,
                   const std::vector<Variable> &params)
{
    ADAPIPE_ASSERT(input.defined(),
                   "checkpointResident needs a defined input");

    auto state =
        std::make_shared<checkpoint_detail::ReplayState>();
    state->segment = segment;
    // Kept until backward (unlike checkpoint(), which drops it on
    // replay): the fetch-miss fallback replays from it.
    state->input = input;
    state->offloadable = true;

    // Record the segment *with* gradients: the graph built here is
    // float-identical to the one a warm() replay would rebuild, so
    // backward can consume it directly — or drop it and replay when
    // the staged activations miss their fetch deadline.
    state->warmed = true;
    state->warmIn = input.detach(true);
    state->warmOut = segment(state->warmIn);
    Tensor out_value = state->warmOut.value();

    std::vector<Variable> parents;
    parents.push_back(input);
    for (const auto &p : params)
        parents.push_back(p);

    Variable result = checkpoint_detail::makeCheckpointNode(
        state, std::move(out_value), std::move(parents));

    if (checkpoint_detail::g_offload_collector && result.impl() &&
        result.impl()->backwardFn) {
        checkpoint_detail::g_offload_collector->handles_.push_back(
            OffloadHandle(state));
    }
    return result;
}

} // namespace adapipe
