#include "autograd/checkpoint.h"

#include "obs/macros.h"
#include "util/logging.h"

namespace adapipe {

Variable
checkpoint(const Segment &segment, const Variable &input)
{
    return checkpoint(segment, input, {});
}

Variable
checkpoint(const Segment &segment, const Variable &input,
           const std::vector<Variable> &params)
{
    ADAPIPE_ASSERT(input.defined(), "checkpoint needs a defined input");

    // Forward without recording: none of the segment's intermediates
    // survive this scope.
    Tensor out_value;
    {
        NoGradGuard guard;
        Variable detached = input.detach(false);
        Variable out = segment(detached);
        out_value = out.value();
    }

    std::vector<Variable> parents;
    parents.push_back(input);
    for (const auto &p : params)
        parents.push_back(p);

    return Variable::makeNode(
        std::move(out_value), std::move(parents),
        [segment, input](Variable::Impl &node) {
            // Recompute the segment with recording enabled, then
            // backpropagate the downstream gradient through the
            // rebuilt sub-graph. Parameters captured by the segment
            // receive their gradients directly.
            ADAPIPE_OBS_COUNT("checkpoint.replays", 1);
            ADAPIPE_OBS_SPAN(replay_span, "checkpoint.replay");
            Variable in_copy = input.detach(true);
            in_copy.zeroGrad();
            Variable out = segment(in_copy);
            ADAPIPE_ASSERT(out.value().sameShape(node.value),
                           "checkpoint recompute shape mismatch");
            out.backward(node.grad);
            // Route the input gradient into the real parent.
            if (node.parents[0])
                node.parents[0]->grad.add_(in_copy.grad());
        });
}

} // namespace adapipe
