#include "autograd/checkpoint.h"

#include <unordered_set>
#include <utility>

#include "autograd/engine.h"
#include "obs/macros.h"
#include "util/logging.h"

namespace adapipe {

Variable
checkpoint(const Segment &segment, const Variable &input)
{
    return checkpoint(segment, input, {});
}

Variable
checkpoint(const Segment &segment, const Variable &input,
           const std::vector<Variable> &params)
{
    ADAPIPE_ASSERT(input.defined(), "checkpoint needs a defined input");

    // Forward without recording: none of the segment's intermediates
    // survive this scope.
    Tensor out_value;
    {
        NoGradGuard guard;
        Variable detached = input.detach(false);
        Variable out = segment(detached);
        out_value = out.value();
    }

    std::vector<Variable> parents;
    parents.push_back(input);
    for (const auto &p : params)
        parents.push_back(p);

    return Variable::makeNode(
        std::move(out_value), std::move(parents),
        [segment, input](Variable::Impl &node) {
            // Recompute the segment with recording enabled, then
            // backpropagate the downstream gradient through the
            // rebuilt sub-graph — entirely on this thread, with leaf
            // accumulation redirected into a private capture map so
            // concurrent replays never touch shared parameter grads.
            // The captured addends come back as ordered lists the
            // outer engine applies in its deterministic reduction,
            // reproducing the eager engine's float sequence exactly
            // (a replayed parameter used twice yields two addends,
            // added one after the other as before — summing them
            // here first would reassociate the floats).
            ADAPIPE_OBS_COUNT("checkpoint.replays", 1);
            ADAPIPE_OBS_SPAN(replay_span, "checkpoint.replay");
            Variable in_copy = input.detach(true);
            Variable out = segment(in_copy);
            ADAPIPE_ASSERT(out.value().sameShape(node.value),
                           "checkpoint recompute shape mismatch");

            engine_detail::GradCapture capture;
            capture[in_copy.impl().get()];
            for (std::size_t i = 1; i < node.parents.size(); ++i) {
                if (node.parents[i])
                    capture[node.parents[i].get()];
            }
            engine_detail::backwardInline(out.impl(), node.grad,
                                          &capture);

            autograd_detail::BackwardResult result(
                node.parents.size());
            // Input slot: the eager engine accumulated the replay's
            // input gradient into one zero-initialised buffer and
            // added it to the real parent once; fold the captured
            // list the same way.
            if (node.parents[0]) {
                Tensor folded(in_copy.value().shape());
                for (const Tensor &part :
                     capture[in_copy.impl().get()])
                    folded.add_(part);
                result[0].push_back(std::move(folded));
            }
            // Parameter slots receive their captured lists verbatim;
            // a parameter listed in several slots routes everything
            // through its first slot (the map holds one list per
            // leaf).
            std::unordered_set<Variable::Impl *> routed;
            for (std::size_t i = 1; i < node.parents.size(); ++i) {
                Variable::Impl *param = node.parents[i].get();
                if (!param || !routed.insert(param).second)
                    continue;
                result[i] = std::move(capture[param]);
            }
            return result;
        });
}

} // namespace adapipe
