#include "autograd/checkpoint.h"

#include <unordered_set>
#include <utility>

#include "autograd/engine.h"
#include "obs/macros.h"
#include "obs/registry.h"
#include "util/logging.h"

namespace adapipe {

namespace checkpoint_detail {

/**
 * Shared replay state of one checkpointed segment: what the lazy
 * replay needs (segment + saved input) plus, once warmed, the rebuilt
 * recorded sub-graph the backward differentiates.
 */
struct ReplayState
{
    Segment segment;
    Variable input;
    bool warmed = false;
    /** Recorded leaf copy of the input (grad routes through it). */
    Variable warmIn;
    /** Recorded segment output; root of the rebuilt sub-graph. */
    Variable warmOut;
};

namespace {

thread_local ReplayCollector *g_collector = nullptr;

/**
 * Run the forward replay once. Emits the same "checkpoint.replays"
 * count whether the replay fires eagerly (warm) or lazily (backward),
 * so replay totals stay comparable across modes, plus a
 * "checkpoint.replay_us" counter the runtime uses to meter replay
 * time out of the backward timer exactly (per-chunk, merge-safe).
 */
void
ensureWarm(ReplayState &st)
{
    if (st.warmed)
        return;
    st.warmed = true;
    ADAPIPE_OBS_COUNT("checkpoint.replays", 1);
    const double start_us = obs::nowUs();
    {
        ADAPIPE_OBS_SPAN(replay_span, "checkpoint.replay");
        st.warmIn = st.input.detach(true);
        st.warmOut = st.segment(st.warmIn);
    }
    ADAPIPE_OBS_COUNT(
        "checkpoint.replay_us",
        static_cast<std::int64_t>(obs::nowUs() - start_us));
    // The saved input stays alive through warmIn / the node's parent
    // list; drop this extra reference.
    st.input = Variable();
}

} // namespace

} // namespace checkpoint_detail

ReplayHandle::ReplayHandle() = default;
ReplayHandle::~ReplayHandle() = default;
ReplayHandle::ReplayHandle(const ReplayHandle &) = default;
ReplayHandle &ReplayHandle::operator=(const ReplayHandle &) = default;
ReplayHandle::ReplayHandle(ReplayHandle &&) noexcept = default;
ReplayHandle &
ReplayHandle::operator=(ReplayHandle &&) noexcept = default;

ReplayHandle::ReplayHandle(
    std::shared_ptr<checkpoint_detail::ReplayState> state)
    : state_(std::move(state))
{
}

bool
ReplayHandle::warm() const
{
    if (!state_ || state_->warmed)
        return false;
    checkpoint_detail::ensureWarm(*state_);
    return true;
}

bool
ReplayHandle::warmed() const
{
    return state_ && state_->warmed;
}

ReplayCollector::ReplayCollector()
    : previous_(checkpoint_detail::g_collector)
{
    checkpoint_detail::g_collector = this;
}

ReplayCollector::~ReplayCollector()
{
    checkpoint_detail::g_collector = previous_;
}

std::vector<ReplayHandle>
ReplayCollector::take()
{
    std::vector<ReplayHandle> out = std::move(handles_);
    handles_.clear();
    return out;
}

Variable
checkpoint(const Segment &segment, const Variable &input)
{
    return checkpoint(segment, input, {});
}

Variable
checkpoint(const Segment &segment, const Variable &input,
           const std::vector<Variable> &params)
{
    ADAPIPE_ASSERT(input.defined(), "checkpoint needs a defined input");

    // Forward without recording: none of the segment's intermediates
    // survive this scope.
    Tensor out_value;
    {
        NoGradGuard guard;
        Variable detached = input.detach(false);
        Variable out = segment(detached);
        out_value = out.value();
    }

    std::vector<Variable> parents;
    parents.push_back(input);
    for (const auto &p : params)
        parents.push_back(p);

    auto state =
        std::make_shared<checkpoint_detail::ReplayState>();
    state->segment = segment;
    state->input = input;

    Variable result = Variable::makeNode(
        std::move(out_value), std::move(parents),
        [state](Variable::Impl &node) {
            // Recompute the segment with recording enabled (unless a
            // warm() already did), then backpropagate the downstream
            // gradient through the rebuilt sub-graph — entirely on
            // this thread, with leaf accumulation redirected into a
            // private capture map so concurrent replays never touch
            // shared parameter grads. The captured addends come back
            // as ordered lists the outer engine applies in its
            // deterministic reduction, reproducing the eager engine's
            // float sequence exactly (a replayed parameter used twice
            // yields two addends, added one after the other as before
            // — summing them here first would reassociate the
            // floats).
            checkpoint_detail::ensureWarm(*state);
            Variable in_copy = std::move(state->warmIn);
            Variable out = std::move(state->warmOut);
            state->warmIn = Variable();
            state->warmOut = Variable();
            ADAPIPE_ASSERT(out.value().sameShape(node.value),
                           "checkpoint recompute shape mismatch");

            engine_detail::GradCapture capture;
            capture[in_copy.impl().get()];
            for (std::size_t i = 1; i < node.parents.size(); ++i) {
                if (node.parents[i])
                    capture[node.parents[i].get()];
            }
            engine_detail::backwardInline(out.impl(), node.grad,
                                          &capture);

            autograd_detail::BackwardResult result(
                node.parents.size());
            // Input slot: the eager engine accumulated the replay's
            // input gradient into one zero-initialised buffer and
            // added it to the real parent once; fold the captured
            // list the same way.
            if (node.parents[0]) {
                Tensor folded(in_copy.value().shape());
                for (const Tensor &part :
                     capture[in_copy.impl().get()])
                    folded.add_(part);
                result[0].push_back(std::move(folded));
            }
            // Parameter slots receive their captured lists verbatim;
            // a parameter listed in several slots routes everything
            // through its first slot (the map holds one list per
            // leaf).
            std::unordered_set<Variable::Impl *> routed;
            for (std::size_t i = 1; i < node.parents.size(); ++i) {
                Variable::Impl *param = node.parents[i].get();
                if (!param || !routed.insert(param).second)
                    continue;
                result[i] = std::move(capture[param]);
            }
            return result;
        });

    // Only differentiable nodes can ever replay; constant results
    // (grads disabled, no parent requiring them) need no handle.
    if (checkpoint_detail::g_collector && result.impl() &&
        result.impl()->backwardFn) {
        checkpoint_detail::g_collector->handles_.push_back(
            ReplayHandle(state));
    }
    return result;
}

} // namespace adapipe
