/**
 * @file
 * Differentiable operations of the autograd engine.
 *
 * All binary ops require exact shape matches (the engine works in
 * flattened [rows, cols] form); matmul is standard rank-2. Every op
 * registers a backward closure when gradient recording is enabled.
 */

#ifndef ADAPIPE_AUTOGRAD_OPS_H
#define ADAPIPE_AUTOGRAD_OPS_H

#include <vector>

#include "autograd/variable.h"

namespace adapipe {
namespace ops {

/** C = A . B for A [m,k], B [k,n]. */
Variable matmul(const Variable &a, const Variable &b);

/** Element-wise sum of two same-shape tensors. */
Variable add(const Variable &a, const Variable &b);

/** Add a [n] bias row-wise to a [m,n] tensor. */
Variable addBias(const Variable &a, const Variable &bias);

/**
 * Fused x . W + bias as a single graph node. Bit-identical to
 * addBias(matmul(x, w), bias) — the bias joins after the complete
 * k-summation — while saving one node and one tensor copy.
 */
Variable linearBias(const Variable &x, const Variable &w,
                    const Variable &bias);

/**
 * Fused gelu(x . W + bias) as a single graph node. Bit-identical
 * to gelu(addBias(matmul(x, w), bias)); the pre-activation is kept
 * for the backward pass in place of the intermediate node.
 */
Variable linearBiasGelu(const Variable &x, const Variable &w,
                        const Variable &bias);

/** Multiply by a compile-time constant. */
Variable scale(const Variable &a, float factor);

/** Element-wise product of two same-shape tensors. */
Variable mul(const Variable &a, const Variable &b);

/** GELU activation (tanh approximation). */
Variable gelu(const Variable &a);

/** SiLU (swish) activation, x * sigmoid(x) — Llama-style FFNs. */
Variable silu(const Variable &a);

/**
 * RMS normalisation over the last dimension with a scale parameter
 * (no mean subtraction, no bias) — Llama-style norms.
 */
Variable rmsNorm(const Variable &a, const Variable &gamma,
                 float eps = 1e-5f);

/** Columns [start, start+len) of a [m, n] tensor. */
Variable sliceCols(const Variable &a, int start, int len);

/** Concatenate same-row-count tensors along columns. */
Variable concatCols(const std::vector<Variable> &parts);

/** Layer normalisation over the last dimension with affine params. */
Variable layerNorm(const Variable &a, const Variable &gamma,
                   const Variable &beta, float eps = 1e-5f);

/**
 * Row lookup: output row i = table row ids[i]. Gradients flow into
 * the table.
 */
Variable embedding(const Variable &table, const std::vector<int> &ids);

/**
 * Row-wise softmax with an optional causal mask (entry (i, j) with
 * j > i is excluded). Numerically stabilised.
 */
Variable softmaxRows(const Variable &a, bool causal = false);

/**
 * Mean token-level cross entropy of logits [T, V] against integer
 * targets; the returned variable is scalar-shaped [1].
 */
Variable crossEntropy(const Variable &logits,
                      const std::vector<int> &targets);

} // namespace ops
} // namespace adapipe

#endif // ADAPIPE_AUTOGRAD_OPS_H
