/**
 * @file
 * Neural-network modules on top of the autograd engine: enough of a
 * transformer to run the paper's convergence validation (Fig. 10)
 * with real recomputation.
 */

#ifndef ADAPIPE_AUTOGRAD_MODULE_H
#define ADAPIPE_AUTOGRAD_MODULE_H

#include <optional>
#include <vector>

#include "autograd/checkpoint.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "util/rng.h"

namespace adapipe {

/** Recomputation strategy of one transformer block. */
enum class BlockRecompute {
    None,          ///< save everything
    AttentionOnly, ///< checkpoint the attention sub-layer
    Full,          ///< checkpoint the whole block
};

/** Dense layer y = x W + b. */
class Linear
{
  public:
    /**
     * @param in input width
     * @param out output width
     * @param rng initialiser (N(0, 0.02) weights, zero bias)
     */
    Linear(int in, int out, Rng &rng);

    /** Apply to [rows, in]. */
    Variable forward(const Variable &x) const;

    /**
     * Apply followed by GELU as one fused graph node (bit-identical
     * to gelu(forward(x))).
     */
    Variable forwardGelu(const Variable &x) const;

    /** @return trainable parameters. */
    std::vector<Variable> params() const { return {w_, b_}; }

  private:
    Variable w_;
    Variable b_;
};

/** Layer normalisation with affine parameters. */
class LayerNormModule
{
  public:
    /**
     * @param dim normalised width
     * @param rms use RMSNorm (scale only, Llama-style) instead of
     *        LayerNorm
     */
    explicit LayerNormModule(int dim, bool rms = false);

    Variable forward(const Variable &x) const;

    std::vector<Variable> params() const;

  private:
    bool rms_;
    Variable gamma_;
    Variable beta_; // undefined when rms_
};

/** Multi-head causal self-attention. */
class CausalSelfAttention
{
  public:
    /**
     * @param dim model width
     * @param num_heads attention heads (dim % num_heads == 0)
     * @param rng parameter initialiser
     */
    CausalSelfAttention(int dim, int num_heads, Rng &rng);

    /** Apply to [T, dim]. */
    Variable forward(const Variable &x) const;

    std::vector<Variable> params() const;

  private:
    int dim_;
    int numHeads_;
    Linear q_;
    Linear k_;
    Linear v_;
    Linear out_;
};

/** Feed-forward network: GELU MLP or gated SwiGLU (Llama-style). */
class FeedForwardModule
{
  public:
    /**
     * @param dim model width
     * @param hidden inner width
     * @param gated use silu(gate(x)) * up(x) instead of gelu(up(x))
     * @param rng parameter initialiser
     */
    FeedForwardModule(int dim, int hidden, bool gated, Rng &rng);

    Variable forward(const Variable &x) const;

    std::vector<Variable> params() const;

  private:
    bool gated_;
    Linear up_;
    Linear down_;
    std::optional<Linear> gate_;
};

/** Architecture knobs of one block (GPT-style vs Llama-style). */
struct BlockConfig
{
    int dim = 32;
    int ffnHidden = 64;
    int numHeads = 1;
    bool gatedFfn = false;
    bool rmsNorm = false;
};

/** Pre-norm transformer block with selectable recomputation. */
class TransformerBlock
{
  public:
    TransformerBlock(const BlockConfig &config, Rng &rng);

    /**
     * @param x [T, dim] input
     * @param recompute which sub-layers to checkpoint
     */
    Variable forward(const Variable &x, BlockRecompute recompute) const;

    /**
     * Forward with the whole block recorded as one resident
     * checkpoint whose interior activations can be staged to host
     * (checkpointResident / OffloadHandle). Bit-identical floats to
     * forward(x, BlockRecompute::None).
     */
    Variable forwardOffload(const Variable &x) const;

    std::vector<Variable> params() const;

  private:
    Variable attnPart(const Variable &x) const;
    Variable ffnPart(const Variable &x) const;

    LayerNormModule ln1_;
    CausalSelfAttention attn_;
    LayerNormModule ln2_;
    FeedForwardModule ffn_;
};

/** Tiny decoder-only language model. */
struct TinyLmConfig
{
    int vocab = 64;
    int dim = 32;
    int blocks = 2;
    int ffnHidden = 64;
    int maxSeq = 64;
    /** Attention heads per block (dim % numHeads == 0). */
    int numHeads = 1;
    /** SwiGLU feed-forward (Llama-style). */
    bool gatedFfn = false;
    /** RMSNorm instead of LayerNorm (Llama-style). */
    bool rmsNorm = false;
    std::uint64_t seed = 42;
};

class TinyLM
{
  public:
    explicit TinyLM(const TinyLmConfig &config);

    /**
     * @param tokens input token ids, |tokens| <= maxSeq
     * @param targets next-token targets, same length
     * @param recompute per-block strategy (empty = no recompute)
     * @return scalar mean cross-entropy loss
     */
    Variable loss(const std::vector<int> &tokens,
                  const std::vector<int> &targets,
                  const std::vector<BlockRecompute> &recompute) const;

    /** @name Stage-partial execution (pipeline runtime)
     *
     * loss() composes exactly these three pieces, so a pipeline of
     * stages running embed -> blockForward... -> headLoss over the
     * same block ranges computes bit-identical floats to the
     * monolithic forward.
     *  @{
     */

    /** Token + position embedding: the stream entering block 0. */
    Variable embed(const std::vector<int> &tokens) const;

    /** Forward of block @p b on activation @p h. */
    Variable blockForward(int b, const Variable &h,
                          BlockRecompute recompute) const;

    /** Forward of block @p b as a host-offloadable resident
     *  checkpoint (see TransformerBlock::forwardOffload). */
    Variable blockForwardOffload(int b, const Variable &h) const;

    /** Final norm + vocabulary head + mean cross-entropy. */
    Variable headLoss(const Variable &h,
                      const std::vector<int> &targets) const;

    /** Parameters of the embedding partition (token + pos tables). */
    std::vector<Variable> embedParams() const;

    /** Parameters of block @p b. */
    std::vector<Variable> blockParams(int b) const;

    /** Parameters of the head partition (final norm + projection). */
    std::vector<Variable> headParams() const;
    /** @} */

    /** @return all trainable parameters. */
    std::vector<Variable> params() const;

    const TinyLmConfig &config() const { return config_; }

  private:
    TinyLmConfig config_;
    Variable tokenTable_;
    Variable posTable_;
    std::vector<TransformerBlock> blocks_;
    LayerNormModule finalNorm_;
    Variable headW_;
};

} // namespace adapipe

#endif // ADAPIPE_AUTOGRAD_MODULE_H
