/**
 * @file
 * Thread-safe recycling pool for tensor storage.
 *
 * The autograd engine allocates a fresh buffer for every
 * intermediate tensor, and checkpoint replays re-pay all of that
 * churn each backward pass — exactly the recompute cost the
 * AdaPipe knapsack minimizes. Training loops are shape-repetitive,
 * so released buffers are kept on freelists keyed by element count
 * and handed back on the next request of the same size instead of
 * going through the allocator.
 *
 * Layout: each thread owns a small cache (no locking on the hot
 * path); overflow and cross-thread reuse go through a mutex-guarded
 * global freelist. Stage worker threads flush their caches into the
 * global list when they exit, so buffers survive across pipeline
 * runs. The pool itself is a leaky singleton — it outlives every
 * thread-local cache, so shutdown order cannot dangle.
 */

#ifndef ADAPIPE_AUTOGRAD_TENSOR_POOL_H
#define ADAPIPE_AUTOGRAD_TENSOR_POOL_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adapipe {

class TensorPool
{
  public:
    /** Monotonic counters; snapshot via stats(). */
    struct Stats
    {
        /** Buffers that had to come from the heap. */
        std::int64_t heapAllocs = 0;
        /** Buffers served from a freelist instead. */
        std::int64_t reuses = 0;
        /** Buffers returned to the pool. */
        std::int64_t releases = 0;
        /** Total bytes of the heap allocations. */
        std::int64_t heapBytes = 0;
    };

    /** @return the process-wide pool (never destroyed). */
    static TensorPool &instance();

    /**
     * @return a buffer of exactly @p n elements. Zero-filled when
     * @p zero_fill; otherwise contents are unspecified (recycled
     * buffers carry stale values) — callers must overwrite every
     * element.
     */
    std::vector<float> acquire(std::size_t n, bool zero_fill = true);

    /** Return a buffer to the pool (empty buffers are dropped). */
    void release(std::vector<float> &&buf);

    /** @return a snapshot of the counters (cheap, lock-free). */
    Stats stats() const;

    /**
     * Flush the calling thread's cache into the global freelist
     * (uncapped), leaving the cache usable. Worker threads that are
     * about to exit call this — and the cache destructor performs
     * the same uncapped flush — so repeated worker churn (a new
     * backward engine per run) recycles buffers across generations
     * instead of re-allocating them, keeping heap_bytes flat after
     * warmup.
     */
    void drainThreadCache();

    /**
     * Drop every cached buffer (current thread's cache + the global
     * freelist) and reset no counters. Test/bench hook for
     * measuring cold-start behaviour.
     */
    void trim();

  private:
    TensorPool() = default;
};

} // namespace adapipe

#endif // ADAPIPE_AUTOGRAD_TENSOR_POOL_H
