/**
 * @file
 * Segment checkpointing: the recomputation primitive.
 *
 * checkpoint(fn, input) runs fn's forward pass with gradient
 * recording disabled, so none of fn's intermediates are retained;
 * during backward the segment is re-executed with recording enabled
 * and differentiated. Because the recomputed forward performs
 * bit-identical float operations, gradients are bit-identical to the
 * non-checkpointed run — the invariant behind the paper's Fig. 10.
 *
 * Overlapped replay: the forward re-execution is a pure function of
 * the saved input value and the parameters, neither of which changes
 * between a micro-batch's forward and its backward (the optimizer
 * steps only after the whole iteration). It can therefore run *early*
 * — during a pipeline bubble — and produce the exact floats the lazy
 * replay would. A ReplayCollector installed on the thread that runs
 * checkpoint() hands out one ReplayHandle per checkpointed segment;
 * warming a handle performs the forward replay immediately and leaves
 * only the cheap differentiation of the rebuilt sub-graph for
 * backward time (Chen et al., "Optimizing Large Model Training
 * through Overlapped Activation Recomputation").
 */

#ifndef ADAPIPE_AUTOGRAD_CHECKPOINT_H
#define ADAPIPE_AUTOGRAD_CHECKPOINT_H

#include <functional>
#include <memory>
#include <vector>

#include "autograd/variable.h"

namespace adapipe {

/** A differentiable segment: maps one activation to the next. */
using Segment = std::function<Variable(const Variable &)>;

namespace checkpoint_detail {
struct ReplayState;
}

/**
 * Handle to one pending checkpoint replay.
 *
 * warm() runs the segment's forward replay (recording enabled) right
 * away and stashes the rebuilt sub-graph; the node's backward then
 * differentiates the stashed graph instead of re-running the
 * forward. Warming is idempotent — the replay runs exactly once, on
 * whichever side gets there first — and changes no floats: the warm
 * graph holds the same values the lazy replay would compute, so
 * gradients stay bit-identical.
 *
 * Threading contract: warm() must run on the thread that owns the
 * checkpointed graph, and never concurrently with a backward pass
 * over it. The pipeline runtime honours this by warming only from
 * the stage worker's own channel-wait loops, which cannot overlap
 * its BackwardEngine::run calls; the engine's internal job handoff
 * then orders the warm writes before any helper-thread read.
 */
class ReplayHandle
{
  public:
    ReplayHandle();
    ~ReplayHandle();
    ReplayHandle(const ReplayHandle &);
    ReplayHandle &operator=(const ReplayHandle &);
    ReplayHandle(ReplayHandle &&) noexcept;
    ReplayHandle &operator=(ReplayHandle &&) noexcept;

    /**
     * Run the forward replay now (no-op when already warmed).
     * @return whether this call performed the replay.
     */
    bool warm() const;

    /** @return whether the replay has already run. */
    bool warmed() const;

    /** @return whether the handle points at a live replay. */
    bool valid() const { return state_ != nullptr; }

  private:
    friend Variable checkpoint(const Segment &, const Variable &,
                               const std::vector<Variable> &);
    explicit ReplayHandle(
        std::shared_ptr<checkpoint_detail::ReplayState> state);

    std::shared_ptr<checkpoint_detail::ReplayState> state_;
};

/**
 * RAII collector of ReplayHandles. While one is installed on a
 * thread, every checkpoint() call on that thread that produces a
 * differentiable node registers a handle with the innermost
 * collector; take() drains them in creation order. Collectors nest
 * (the previous one is restored on destruction) and are strictly
 * thread-local.
 */
class ReplayCollector
{
  public:
    ReplayCollector();
    ~ReplayCollector();

    ReplayCollector(const ReplayCollector &) = delete;
    ReplayCollector &operator=(const ReplayCollector &) = delete;

    /** Handles registered since the last take(), creation order. */
    std::vector<ReplayHandle> take();

  private:
    friend Variable checkpoint(const Segment &, const Variable &,
                               const std::vector<Variable> &);
    std::vector<ReplayHandle> handles_;
    ReplayCollector *previous_;
};

/**
 * Run @p segment with recomputation: only the segment's input and
 * output survive the forward pass.
 *
 * @param segment the function to checkpoint; it may capture module
 *        parameters (their gradients are accumulated on recompute)
 * @param input segment input
 * @return the segment output, wired into the surrounding graph
 */
Variable checkpoint(const Segment &segment, const Variable &input);

/**
 * Parameters the segment touches must be registered so the
 * recomputed backward can route gradients into them. Convenience
 * overload taking them explicitly.
 */
Variable checkpoint(const Segment &segment, const Variable &input,
                    const std::vector<Variable> &params);

} // namespace adapipe

#endif // ADAPIPE_AUTOGRAD_CHECKPOINT_H
