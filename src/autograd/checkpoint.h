/**
 * @file
 * Segment checkpointing: the recomputation primitive.
 *
 * checkpoint(fn, input) runs fn's forward pass with gradient
 * recording disabled, so none of fn's intermediates are retained;
 * during backward the segment is re-executed with recording enabled
 * and differentiated. Because the recomputed forward performs
 * bit-identical float operations, gradients are bit-identical to the
 * non-checkpointed run — the invariant behind the paper's Fig. 10.
 */

#ifndef ADAPIPE_AUTOGRAD_CHECKPOINT_H
#define ADAPIPE_AUTOGRAD_CHECKPOINT_H

#include <functional>
#include <vector>

#include "autograd/variable.h"

namespace adapipe {

/** A differentiable segment: maps one activation to the next. */
using Segment = std::function<Variable(const Variable &)>;

/**
 * Run @p segment with recomputation: only the segment's input and
 * output survive the forward pass.
 *
 * @param segment the function to checkpoint; it may capture module
 *        parameters (their gradients are accumulated on recompute)
 * @param input segment input
 * @return the segment output, wired into the surrounding graph
 */
Variable checkpoint(const Segment &segment, const Variable &input);

/**
 * Parameters the segment touches must be registered so the
 * recomputed backward can route gradients into them. Convenience
 * overload taking them explicitly.
 */
Variable checkpoint(const Segment &segment, const Variable &input,
                    const std::vector<Variable> &params);

} // namespace adapipe

#endif // ADAPIPE_AUTOGRAD_CHECKPOINT_H
