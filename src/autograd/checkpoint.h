/**
 * @file
 * Segment checkpointing: the recomputation primitive.
 *
 * checkpoint(fn, input) runs fn's forward pass with gradient
 * recording disabled, so none of fn's intermediates are retained;
 * during backward the segment is re-executed with recording enabled
 * and differentiated. Because the recomputed forward performs
 * bit-identical float operations, gradients are bit-identical to the
 * non-checkpointed run — the invariant behind the paper's Fig. 10.
 *
 * Overlapped replay: the forward re-execution is a pure function of
 * the saved input value and the parameters, neither of which changes
 * between a micro-batch's forward and its backward (the optimizer
 * steps only after the whole iteration). It can therefore run *early*
 * — during a pipeline bubble — and produce the exact floats the lazy
 * replay would. A ReplayCollector installed on the thread that runs
 * checkpoint() hands out one ReplayHandle per checkpointed segment;
 * warming a handle performs the forward replay immediately and leaves
 * only the cheap differentiation of the rebuilt sub-graph for
 * backward time (Chen et al., "Optimizing Large Model Training
 * through Overlapped Activation Recomputation").
 *
 * Host offload: checkpointResident() is the third per-unit choice.
 * It records the segment's graph at forward time (warm from birth)
 * and hands out an OffloadHandle whose evict() stages every interior
 * activation to host memory — releasing the device buffers to the
 * tensor pool — and whose fetch() copies them back bit-exactly. A
 * backward that arrives while the activations are still on host
 * (the prefetch missed its deadline) drops the cold graph and falls
 * back to a plain recompute replay from the kept input, so losses
 * never depend on transfer timing.
 */

#ifndef ADAPIPE_AUTOGRAD_CHECKPOINT_H
#define ADAPIPE_AUTOGRAD_CHECKPOINT_H

#include <functional>
#include <memory>
#include <vector>

#include "autograd/variable.h"

namespace adapipe {

/** A differentiable segment: maps one activation to the next. */
using Segment = std::function<Variable(const Variable &)>;

namespace checkpoint_detail {
struct ReplayState;
}

/**
 * Handle to one pending checkpoint replay.
 *
 * warm() runs the segment's forward replay (recording enabled) right
 * away and stashes the rebuilt sub-graph; the node's backward then
 * differentiates the stashed graph instead of re-running the
 * forward. Warming is idempotent — the replay runs exactly once, on
 * whichever side gets there first — and changes no floats: the warm
 * graph holds the same values the lazy replay would compute, so
 * gradients stay bit-identical.
 *
 * Threading contract: warm() must run on the thread that owns the
 * checkpointed graph, and never concurrently with a backward pass
 * over it. The pipeline runtime honours this by warming only from
 * the stage worker's own channel-wait loops, which cannot overlap
 * its BackwardEngine::run calls; the engine's internal job handoff
 * then orders the warm writes before any helper-thread read.
 */
class ReplayHandle
{
  public:
    ReplayHandle();
    ~ReplayHandle();
    ReplayHandle(const ReplayHandle &);
    ReplayHandle &operator=(const ReplayHandle &);
    ReplayHandle(ReplayHandle &&) noexcept;
    ReplayHandle &operator=(ReplayHandle &&) noexcept;

    /**
     * Run the forward replay now (no-op when already warmed).
     * @return whether this call performed the replay.
     */
    bool warm() const;

    /** @return whether the replay has already run. */
    bool warmed() const;

    /** @return whether the handle points at a live replay. */
    bool valid() const { return state_ != nullptr; }

  private:
    friend Variable checkpoint(const Segment &, const Variable &,
                               const std::vector<Variable> &);
    explicit ReplayHandle(
        std::shared_ptr<checkpoint_detail::ReplayState> state);

    std::shared_ptr<checkpoint_detail::ReplayState> state_;
};

/**
 * RAII collector of ReplayHandles. While one is installed on a
 * thread, every checkpoint() call on that thread that produces a
 * differentiable node registers a handle with the innermost
 * collector; take() drains them in creation order. Collectors nest
 * (the previous one is restored on destruction) and are strictly
 * thread-local.
 */
class ReplayCollector
{
  public:
    ReplayCollector();
    ~ReplayCollector();

    ReplayCollector(const ReplayCollector &) = delete;
    ReplayCollector &operator=(const ReplayCollector &) = delete;

    /** Handles registered since the last take(), creation order. */
    std::vector<ReplayHandle> take();

  private:
    friend Variable checkpoint(const Segment &, const Variable &,
                               const std::vector<Variable> &);
    std::vector<ReplayHandle> handles_;
    ReplayCollector *previous_;
};

/**
 * Handle to one resident (host-offloadable) checkpoint segment,
 * produced by checkpointResident() via an OffloadCollector.
 *
 * Threading contract: evict() and fetch() may run on any thread
 * (the runtime's host-stager thread); each holds the segment's
 * state mutex across the whole transfer, and the backward closure
 * takes the same mutex before touching the graph, so a backward
 * racing a transfer either sees the fully restored graph or takes
 * the recompute fallback — never a half-staged graph.
 */
class OffloadHandle
{
  public:
    OffloadHandle();
    ~OffloadHandle();
    OffloadHandle(const OffloadHandle &);
    OffloadHandle &operator=(const OffloadHandle &);
    OffloadHandle(OffloadHandle &&) noexcept;
    OffloadHandle &operator=(OffloadHandle &&) noexcept;

    /**
     * Stage the segment's interior activations to host memory,
     * releasing their device buffers to the tensor pool.
     * @return bytes moved (0 when already evicted, already consumed
     *         by backward, or the handle is empty)
     */
    std::size_t evict() const;

    /**
     * Copy staged activations back into their graph nodes
     * (bit-exact float round-trip).
     * @return bytes moved (0 unless the segment is currently evicted)
     */
    std::size_t fetch() const;

    /** @return whether the activations currently live on device. */
    bool resident() const;

    /** @return whether the handle points at a live segment. */
    bool valid() const { return state_ != nullptr; }

  private:
    friend Variable checkpointResident(const Segment &,
                                       const Variable &,
                                       const std::vector<Variable> &);
    explicit OffloadHandle(
        std::shared_ptr<checkpoint_detail::ReplayState> state);

    std::shared_ptr<checkpoint_detail::ReplayState> state_;
};

/**
 * RAII collector of OffloadHandles, mirroring ReplayCollector:
 * while one is installed on a thread, every checkpointResident()
 * call on that thread that produces a differentiable node registers
 * a handle with the innermost collector. Nests; strictly
 * thread-local.
 */
class OffloadCollector
{
  public:
    OffloadCollector();
    ~OffloadCollector();

    OffloadCollector(const OffloadCollector &) = delete;
    OffloadCollector &operator=(const OffloadCollector &) = delete;

    /** Handles registered since the last take(), creation order. */
    std::vector<OffloadHandle> take();

  private:
    friend Variable checkpointResident(const Segment &,
                                       const Variable &,
                                       const std::vector<Variable> &);
    std::vector<OffloadHandle> handles_;
    OffloadCollector *previous_;
};

/**
 * Run @p segment with recomputation: only the segment's input and
 * output survive the forward pass.
 *
 * @param segment the function to checkpoint; it may capture module
 *        parameters (their gradients are accumulated on recompute)
 * @param input segment input
 * @return the segment output, wired into the surrounding graph
 */
Variable checkpoint(const Segment &segment, const Variable &input);

/**
 * Parameters the segment touches must be registered so the
 * recomputed backward can route gradients into them. Convenience
 * overload taking them explicitly.
 */
Variable checkpoint(const Segment &segment, const Variable &input,
                    const std::vector<Variable> &params);

/**
 * Run @p segment as a *resident* checkpoint: the segment's graph is
 * recorded during the forward pass (warm from birth) so its interior
 * activations stay on device — until an OffloadHandle evicts them to
 * host. Backward differentiates the recorded graph when it is
 * resident and falls back to a recompute replay from the kept input
 * when it is not; both paths perform bit-identical float operations,
 * so gradients match checkpoint() and the plain forward exactly.
 *
 * @param segment the function to record; may capture parameters
 * @param input segment input (retained for the fallback replay)
 * @param params parameters the segment touches (gradient routing)
 * @return the segment output, wired into the surrounding graph
 */
Variable checkpointResident(const Segment &segment,
                            const Variable &input,
                            const std::vector<Variable> &params);

} // namespace adapipe

#endif // ADAPIPE_AUTOGRAD_CHECKPOINT_H
