#include "autograd/engine.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "autograd/tensor_pool.h"
#include "obs/macros.h"
#include "obs/registry.h"
#include "util/logging.h"

#if ADAPIPE_OBS_ENABLED
#include <chrono>
#endif

namespace adapipe {

namespace {

using autograd_detail::BackwardResult;
using autograd_detail::GradParts;
using autograd_detail::VarImpl;
using engine_detail::GradCapture;

struct NodeState;

/**
 * One unit of backward work. slot == -1 runs the node's whole
 * backwardFn (or nothing, for fn-less nodes) and deposits to every
 * parent; slot >= 0 runs slotBackwardFn for that parent only.
 */
struct Task
{
    NodeState *state = nullptr;
    int slot = -1;
};

/** Where one (consumer, parent-slot) contribution lands. */
struct DepositTarget
{
    NodeState *state = nullptr;
    int index = -1;
};

struct NodeState
{
    VarImpl *node = nullptr;
    /** Node executes backward work (reachable non-leaf, or root). */
    bool interior = false;
    /** Tasks to enqueue once the grad is fully reduced. */
    int numTasks = 0;
    /** Pre-pass accumulator for outstanding (plain; single thread). */
    int pending = 0;
    /**
     * Contribution buffer, one entry per (consumer, parent-slot)
     * pair in deterministic (consumer topo index, slot) order. Each
     * index is written by exactly one task; the last depositor
     * reduces the whole buffer in index order.
     */
    std::vector<GradParts> slots;
    /** Per-parent-slot deposit target (state null for null parent). */
    std::vector<DepositTarget> deposit;
    /** Contributions not yet deposited; last one reduces. */
    std::atomic<int> outstanding{0};
};

struct WorkerQueue
{
    std::mutex mu;
    std::deque<Task> q;
};

/** Per-worker counters, flushed to the worker's registry on exit. */
struct WorkerStats
{
    std::int64_t tasks = 0;
    std::int64_t nodes = 0;
    std::int64_t enqueues = 0;
    std::int64_t steals = 0;
    double busySeconds = 0;
};

/** One backward pass's shared state; lives on the caller's stack. */
struct Job
{
    std::deque<NodeState> states;
    std::unordered_map<VarImpl *, NodeState *> index;
    GradCapture *capture = nullptr;

    std::deque<WorkerQueue> queues;
    /** Tasks not yet finished (counted in full by the pre-pass). */
    std::atomic<std::int64_t> remaining{0};
    /** Tasks currently sitting in queues. */
    std::atomic<std::int64_t> queued{0};
    /** High-water mark of queued (engine.ready_peak gauge). */
    std::atomic<std::int64_t> readyPeak{0};

    std::atomic<bool> failed{false};
    std::mutex errMu;
    std::exception_ptr error;

    std::mutex waitMu;
    std::condition_variable waitCv;
};

NodeState &
stateFor(Job &job, VarImpl *node)
{
    auto it = job.index.find(node);
    if (it != job.index.end())
        return *it->second;
    job.states.emplace_back();
    NodeState &st = job.states.back();
    st.node = node;
    job.index.emplace(node, &st);
    return st;
}

/**
 * Walk the graph exactly like the historical eager sweep (iterative
 * DFS over non-leaf parents, reversed post-order) and register every
 * contribution slot in that order. Reproducing the old traversal
 * verbatim is what makes the reduction order — and therefore every
 * gradient bit — identical to the original single-threaded engine.
 */
void
buildJob(Job &job, VarImpl *root)
{
    std::vector<VarImpl *> order;
    std::unordered_set<VarImpl *> visited;
    std::vector<std::pair<VarImpl *, std::size_t>> stack;
    stack.emplace_back(root, 0);
    visited.insert(root);
    while (!stack.empty()) {
        auto &[node, child] = stack.back();
        if (child < node->parents.size()) {
            VarImpl *next = node->parents[child].get();
            ++child;
            if (next && !next->isLeaf && !visited.count(next)) {
                visited.insert(next);
                stack.emplace_back(next, 0);
            }
        } else {
            order.push_back(node);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());

    for (VarImpl *node : order)
        stateFor(job, node).interior = true;

    std::int64_t total_tasks = 0;
    for (VarImpl *node : order) {
        NodeState &cs = *job.index.at(node);
        cs.deposit.resize(node->parents.size());
        int live_parents = 0;
        for (std::size_t s = 0; s < node->parents.size(); ++s) {
            VarImpl *parent = node->parents[s].get();
            if (!parent)
                continue;
            NodeState &ps = stateFor(job, parent);
            cs.deposit[s] = {&ps, static_cast<int>(ps.slots.size())};
            ps.slots.emplace_back();
            ++ps.pending;
            ++live_parents;
        }
        if (node->slotBackwardFn)
            cs.numTasks = live_parents;
        else if (node->backwardFn)
            cs.numTasks = 1;
        else
            cs.numTasks = live_parents > 0 ? 1 : 0;
        total_tasks += cs.numTasks;
    }

    for (NodeState &st : job.states)
        st.outstanding.store(st.pending, std::memory_order_relaxed);
    job.remaining.store(total_tasks, std::memory_order_relaxed);
}

void
pushTasks(Job &job, int me, NodeState &st, WorkerStats &stats)
{
    WorkerQueue &own = job.queues[static_cast<std::size_t>(me)];
    const int pushed = st.numTasks;
    if (pushed == 0)
        return;
    {
        std::lock_guard<std::mutex> lock(own.mu);
        if (st.node->slotBackwardFn) {
            for (std::size_t s = 0; s < st.deposit.size(); ++s) {
                if (st.deposit[s].state)
                    own.q.push_back({&st, static_cast<int>(s)});
            }
        } else {
            own.q.push_back({&st, -1});
        }
    }
    stats.enqueues += pushed;
    const std::int64_t now =
        job.queued.fetch_add(pushed, std::memory_order_relaxed) +
        pushed;
    std::int64_t peak = job.readyPeak.load(std::memory_order_relaxed);
    while (now > peak &&
           !job.readyPeak.compare_exchange_weak(
               peak, now, std::memory_order_relaxed)) {
    }
    // Empty critical section: a worker that evaluated the park
    // predicate before our fetch_add is guaranteed to be inside
    // wait() by the time we notify, so the wakeup cannot be lost.
    { std::lock_guard<std::mutex> lock(job.waitMu); }
    if (pushed == 1)
        job.waitCv.notify_one();
    else
        job.waitCv.notify_all();
}

/**
 * Reduce @p st's fully-deposited contribution buffer in index order
 * and, for interior nodes, release the node's own tasks. Captured
 * leaves divert their addend stream into the capture map unreduced.
 */
void
finishNode(Job &job, int me, NodeState &st, WorkerStats &stats)
{
    VarImpl &node = *st.node;
    ++stats.nodes;

    if (job.capture && node.isLeaf) {
        auto it = job.capture->find(&node);
        if (it != job.capture->end()) {
            for (GradParts &slot : st.slots) {
                for (Tensor &part : slot)
                    it->second.push_back(std::move(part));
            }
            st.slots.clear();
            return;
        }
    }

    autograd_detail::ensureGradBuffer(node);
    for (GradParts &slot : st.slots) {
        for (const Tensor &part : slot)
            node.grad.add_(part);
        slot.clear();
    }
    st.slots.clear();

    if (st.interior)
        pushTasks(job, me, st, stats);
}

void
deposit(Job &job, int me, const DepositTarget &target, GradParts parts,
        WorkerStats &stats)
{
    NodeState &ps = *target.state;
    ps.slots[static_cast<std::size_t>(target.index)] =
        std::move(parts);
    if (ps.outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1)
        finishNode(job, me, ps, stats);
}

void
runTask(Job &job, int me, const Task &task, WorkerStats &stats)
{
    NodeState &st = *task.state;
    VarImpl &node = *st.node;
    ++stats.tasks;

    if (task.slot >= 0) {
        GradParts parts = node.slotBackwardFn(
            node, task.slot);
        deposit(job, me,
                st.deposit[static_cast<std::size_t>(task.slot)],
                std::move(parts), stats);
        return;
    }

    BackwardResult result;
    if (node.backwardFn)
        result = node.backwardFn(node);
    for (std::size_t s = 0; s < st.deposit.size(); ++s) {
        if (!st.deposit[s].state)
            continue;
        GradParts parts =
            s < result.size() ? std::move(result[s]) : GradParts{};
        deposit(job, me, st.deposit[s], std::move(parts), stats);
    }
}

bool
popTask(Job &job, int me, Task &out, WorkerStats &stats)
{
    const int workers = static_cast<int>(job.queues.size());
    {
        WorkerQueue &own = job.queues[static_cast<std::size_t>(me)];
        std::lock_guard<std::mutex> lock(own.mu);
        if (!own.q.empty()) {
            out = own.q.front();
            own.q.pop_front();
            job.queued.fetch_sub(1, std::memory_order_relaxed);
            return true;
        }
    }
    for (int i = 1; i < workers; ++i) {
        WorkerQueue &victim =
            job.queues[static_cast<std::size_t>((me + i) % workers)];
        std::lock_guard<std::mutex> lock(victim.mu);
        if (!victim.q.empty()) {
            out = victim.q.back();
            victim.q.pop_back();
            job.queued.fetch_sub(1, std::memory_order_relaxed);
            ++stats.steals;
            return true;
        }
    }
    return false;
}

void
notifyAllWorkers(Job &job)
{
    { std::lock_guard<std::mutex> lock(job.waitMu); }
    job.waitCv.notify_all();
}

void
recordFailure(Job &job)
{
    {
        std::lock_guard<std::mutex> lock(job.errMu);
        if (!job.error)
            job.error = std::current_exception();
    }
    job.failed.store(true, std::memory_order_release);
    notifyAllWorkers(job);
}

/** Flush a worker's local counters to its installed registry. */
void
flushStats(int me, const WorkerStats &stats)
{
#if ADAPIPE_OBS_ENABLED
    if (!obs::current())
        return;
    ADAPIPE_OBS_COUNT("engine.tasks", stats.tasks);
    ADAPIPE_OBS_COUNT("engine.nodes", stats.nodes);
    ADAPIPE_OBS_COUNT("engine.enqueues", stats.enqueues);
    ADAPIPE_OBS_COUNT("engine.steals", stats.steals);
    ADAPIPE_OBS_GAUGE("engine.thread." + std::to_string(me) +
                          ".busy_seconds",
                      stats.busySeconds);
#else
    (void)me;
    (void)stats;
#endif
}

void
workerLoop(Job &job, int me)
{
    WorkerStats stats;
    for (;;) {
        if (job.failed.load(std::memory_order_acquire))
            break;
        Task task;
        if (popTask(job, me, task, stats)) {
#if ADAPIPE_OBS_ENABLED
            const auto t0 = std::chrono::steady_clock::now();
#endif
            try {
                runTask(job, me, task, stats);
            } catch (...) {
                recordFailure(job);
            }
#if ADAPIPE_OBS_ENABLED
            stats.busySeconds +=
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
#endif
            if (job.remaining.fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                notifyAllWorkers(job);
                break;
            }
            continue;
        }
        if (job.remaining.load(std::memory_order_acquire) == 0)
            break;
        if (job.queues.size() == 1) {
            // Single worker, empty queue, work outstanding: the
            // dependency graph broke an invariant. Fail loudly
            // instead of parking forever.
            ADAPIPE_ASSERT(false,
                           "backward engine stalled with ",
                           job.remaining.load(), " tasks remaining");
        }
        std::unique_lock<std::mutex> lock(job.waitMu);
        job.waitCv.wait(lock, [&job] {
            return job.queued.load(std::memory_order_relaxed) > 0 ||
                   job.remaining.load(std::memory_order_relaxed) ==
                       0 ||
                   job.failed.load(std::memory_order_relaxed);
        });
    }
    flushStats(me, stats);
}

/**
 * Seed the root (buffer + seed add, like the eager engine's
 * epilogue) and enqueue its tasks onto queue 0.
 */
void
seedRoot(Job &job, VarImpl *root, const Tensor &seed)
{
    if (job.capture && root->isLeaf) {
        // Degenerate captured graph (e.g. an identity checkpoint
        // segment): the seed IS the leaf's contribution.
        auto it = job.capture->find(root);
        if (it != job.capture->end()) {
            it->second.push_back(seed);
            return;
        }
    }
    autograd_detail::ensureGradBuffer(*root);
    root->grad.add_(seed);
    NodeState &rs = *job.index.at(root);
    WorkerStats seed_stats;
    if (rs.numTasks > 0)
        pushTasks(job, 0, rs, seed_stats);
    ADAPIPE_OBS_COUNT("engine.enqueues", seed_stats.enqueues);
}

void
rethrowJobError(Job &job)
{
    if (job.error)
        std::rethrow_exception(job.error);
}

} // namespace

namespace engine_detail {

void
backwardInline(const std::shared_ptr<autograd_detail::VarImpl> &root,
               const Tensor &seed, GradCapture *capture)
{
    ADAPIPE_ASSERT(root, "backward on undefined variable");
    ADAPIPE_ASSERT(seed.sameShape(root->value),
                   "backward seed shape mismatch");
    Job job;
    job.capture = capture;
    job.queues.emplace_back();
    buildJob(job, root.get());
    ADAPIPE_OBS_COUNT("engine.runs", 1);
    seedRoot(job, root.get(), seed);
    workerLoop(job, 0);
    ADAPIPE_OBS_GAUGE("engine.ready_peak",
                      job.readyPeak.load(std::memory_order_relaxed));
    rethrowJobError(job);
}

} // namespace engine_detail

struct BackwardEngine::Shared
{
    std::mutex mu;
    std::condition_variable cv;
    std::condition_variable doneCv;
    Job *job = nullptr;
    std::uint64_t seq = 0;
    int active = 0;
    bool shutdown = false;
    std::vector<std::thread> helpers;
    /** One scratch registry per helper; merged after quiescence. */
    std::deque<obs::Registry> registries;
};

BackwardEngine::BackwardEngine(EngineOptions opts)
    : threads_(std::max(1, opts.threads)),
      shared_(std::make_unique<Shared>())
{
    Shared &sh = *shared_;
    for (int i = 1; i < threads_; ++i) {
        sh.registries.emplace_back();
        obs::Registry *scratch = &sh.registries.back();
        sh.helpers.emplace_back([this, i, scratch] {
            Shared &s = *shared_;
            std::uint64_t last_seen = 0;
            for (;;) {
                Job *job = nullptr;
                {
                    std::unique_lock<std::mutex> lock(s.mu);
                    s.cv.wait(lock, [&] {
                        return s.shutdown ||
                               (s.job && s.seq != last_seen);
                    });
                    if (s.shutdown)
                        break;
                    job = s.job;
                    last_seen = s.seq;
                    ++s.active;
                }
                {
                    obs::ScopedRegistry scope(scratch);
                    workerLoop(*job, i);
                }
                {
                    std::lock_guard<std::mutex> lock(s.mu);
                    if (--s.active == 0)
                        s.doneCv.notify_all();
                }
            }
            // Return this worker's cached buffers to the global
            // freelist so engine teardown never strands pool memory.
            TensorPool::instance().drainThreadCache();
        });
    }
}

BackwardEngine::~BackwardEngine()
{
    Shared &sh = *shared_;
    {
        std::lock_guard<std::mutex> lock(sh.mu);
        sh.shutdown = true;
    }
    sh.cv.notify_all();
    for (std::thread &t : sh.helpers)
        t.join();
}

void
BackwardEngine::run(const Variable &root, const Tensor &seed)
{
    ADAPIPE_ASSERT(root.defined(), "backward on undefined variable");
    if (threads_ == 1) {
        engine_detail::backwardInline(root.impl(), seed, nullptr);
        return;
    }

    Shared &sh = *shared_;
    Job job;
    for (int i = 0; i < threads_; ++i)
        job.queues.emplace_back();
    buildJob(job, root.impl().get());
    ADAPIPE_OBS_COUNT("engine.runs", 1);
    for (obs::Registry &reg : sh.registries)
        reg.clear();
    seedRoot(job, root.impl().get(), seed);

    {
        std::lock_guard<std::mutex> lock(sh.mu);
        sh.job = &job;
        ++sh.seq;
    }
    sh.cv.notify_all();

    workerLoop(job, 0);

    {
        std::unique_lock<std::mutex> lock(sh.mu);
        sh.job = nullptr;
        sh.doneCv.wait(lock, [&sh] { return sh.active == 0; });
    }

    if (obs::Registry *current = obs::current()) {
        for (const obs::Registry &reg : sh.registries)
            current->merge(reg);
    }
    ADAPIPE_OBS_GAUGE("engine.ready_peak",
                      job.readyPeak.load(std::memory_order_relaxed));
    rethrowJobError(job);
}

} // namespace adapipe
