/**
 * @file
 * Optimizers for the autograd engine.
 */

#ifndef ADAPIPE_AUTOGRAD_OPTIM_H
#define ADAPIPE_AUTOGRAD_OPTIM_H

#include <vector>

#include "autograd/variable.h"

namespace adapipe {

/** Plain SGD with optional momentum. */
class Sgd
{
  public:
    /**
     * @param params trainable parameters (leaf variables)
     * @param lr learning rate
     * @param momentum momentum coefficient (0 disables)
     */
    Sgd(std::vector<Variable> params, float lr, float momentum = 0.0f);

    /** Apply one update from the accumulated gradients. */
    void step();

    /** Zero all parameter gradients. */
    void zeroGrad();

    /** @return the parameters in construction order (snapshots). */
    const std::vector<Variable> &params() const { return params_; }

  private:
    std::vector<Variable> params_;
    std::vector<Tensor> velocity_;
    float lr_;
    float momentum_;
};

/**
 * Rescale gradients so their global L2 norm does not exceed
 * @p max_norm (the standard stabiliser in LLM training loops).
 *
 * @param params parameters whose gradients participate
 * @param max_norm clipping threshold (> 0)
 * @return the pre-clip global norm
 */
float clipGradNorm(const std::vector<Variable> &params,
                   float max_norm);

/** Adam / AdamW (the paper trains with FP32 Adam). */
class Adam
{
  public:
    /**
     * @param params trainable parameters
     * @param lr learning rate
     * @param beta1 first-moment decay
     * @param beta2 second-moment decay
     * @param eps numerical floor
     * @param weight_decay decoupled (AdamW-style) weight decay
     */
    Adam(std::vector<Variable> params, float lr, float beta1 = 0.9f,
         float beta2 = 0.999f, float eps = 1e-8f,
         float weight_decay = 0.0f);

    /** Apply one update from the accumulated gradients. */
    void step();

    /** Zero all parameter gradients. */
    void zeroGrad();

    /** @name Training-state export/import (checkpoints)
     *
     * Adam's update depends on the moment tensors and the step
     * counter (bias correction), so a bit-exact restore must carry
     * all three. Indices follow the construction-order params()
     * vector.
     *  @{
     */

    /** @return the parameters in construction order. */
    const std::vector<Variable> &params() const { return params_; }

    /** @return completed step() calls (bias-correction t). */
    int stepCount() const { return t_; }

    /** Set the step counter (restore); @p t must be >= 0. */
    void setStepCount(int t);

    /** @return first moment of parameter @p i. */
    const Tensor &moment1(std::size_t i) const;

    /** @return second moment of parameter @p i. */
    const Tensor &moment2(std::size_t i) const;

    /**
     * Overwrite both moments of parameter @p i (restore); shapes
     * must match the parameter's.
     */
    void setMoments(std::size_t i, const Tensor &m, const Tensor &v);
    /** @} */

  private:
    std::vector<Variable> params_;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
    float lr_;
    float beta1_;
    float beta2_;
    float eps_;
    float weightDecay_;
    int t_ = 0;
};

} // namespace adapipe

#endif // ADAPIPE_AUTOGRAD_OPTIM_H
