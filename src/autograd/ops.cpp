#include "autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "util/logging.h"

namespace adapipe {
namespace ops {

namespace {

using Impl = Variable::Impl;
using autograd_detail::BackwardResult;
using autograd_detail::GradParts;

/** Single-addend contribution list. */
GradParts
one(Tensor t)
{
    GradParts parts;
    parts.push_back(std::move(t));
    return parts;
}

/**
 * Cache-blocked matmul kernels.
 *
 * Blocking runs over the output (m/n) tile only: for every output
 * element the k-summation order — and the exact-zero skip — is
 * identical to the naive triple loop, so every result is
 * bit-identical to it. The pipeline runtime's loss bit-equality
 * contract (pipeline == single-threaded trainer) depends on that,
 * which is why none of these kernels reassociates the reduction.
 */
constexpr int kTileRows = 32;
constexpr int kTileCols = 128;

/** out += A . B for A [m,k], B [k,n]; out must start zeroed. */
void
matmulForward(const Tensor &av, const Tensor &bv, Tensor &out)
{
    const int m = av.rows();
    const int k = av.cols();
    const int n = bv.cols();
    const float *A = av.data().data();
    const float *B = bv.data().data();
    float *O = out.data().data();
    for (int i0 = 0; i0 < m; i0 += kTileRows) {
        const int i1 = std::min(i0 + kTileRows, m);
        for (int j0 = 0; j0 < n; j0 += kTileCols) {
            const int j1 = std::min(j0 + kTileCols, n);
            for (int i = i0; i < i1; ++i) {
                const float *arow =
                    A + static_cast<std::size_t>(i) * k;
                float *orow = O + static_cast<std::size_t>(i) * n;
                for (int kk = 0; kk < k; ++kk) {
                    const float aik = arow[kk];
                    if (aik == 0.0f)
                        continue;
                    const float *brow =
                        B + static_cast<std::size_t>(kk) * n;
                    for (int j = j0; j < j1; ++j)
                        orow[j] += aik * brow[j];
                }
            }
        }
    }
}

/**
 * da += g . B^T for g [m,n], B [k,n]; da must start zeroed. B is
 * transposed once into a scratch tensor so the inner loop runs
 * unit-stride instead of striding down B's columns.
 */
void
matmulBackwardA(const Tensor &g, const Tensor &bv, Tensor &da)
{
    const int m = g.rows();
    const int n = g.cols();
    const int k = bv.rows();
    Tensor bt = Tensor::uninitialized({n, k});
    {
        const float *B = bv.data().data();
        float *BT = bt.data().data();
        for (int kk = 0; kk < k; ++kk) {
            const float *brow = B + static_cast<std::size_t>(kk) * n;
            for (int j = 0; j < n; ++j)
                BT[static_cast<std::size_t>(j) * k + kk] = brow[j];
        }
    }
    const float *G = g.data().data();
    const float *BT = bt.data().data();
    float *DA = da.data().data();
    for (int i0 = 0; i0 < m; i0 += kTileRows) {
        const int i1 = std::min(i0 + kTileRows, m);
        for (int k0 = 0; k0 < k; k0 += kTileCols) {
            const int k1 = std::min(k0 + kTileCols, k);
            for (int i = i0; i < i1; ++i) {
                const float *grow =
                    G + static_cast<std::size_t>(i) * n;
                float *darow = DA + static_cast<std::size_t>(i) * k;
                for (int j = 0; j < n; ++j) {
                    const float gij = grow[j];
                    if (gij == 0.0f)
                        continue;
                    const float *btrow =
                        BT + static_cast<std::size_t>(j) * k;
                    for (int kk = k0; kk < k1; ++kk)
                        darow[kk] += gij * btrow[kk];
                }
            }
        }
    }
}

/** db += A^T . g for A [m,k], g [m,n]; db must start zeroed. */
void
matmulBackwardB(const Tensor &av, const Tensor &g, Tensor &db)
{
    const int m = av.rows();
    const int k = av.cols();
    const int n = g.cols();
    const float *A = av.data().data();
    const float *G = g.data().data();
    float *DB = db.data().data();
    for (int k0 = 0; k0 < k; k0 += kTileRows) {
        const int k1 = std::min(k0 + kTileRows, k);
        for (int j0 = 0; j0 < n; j0 += kTileCols) {
            const int j1 = std::min(j0 + kTileCols, n);
            // i stays the reduction loop: each db element sums its
            // contributions in ascending-i order, as before.
            for (int i = 0; i < m; ++i) {
                const float *arow =
                    A + static_cast<std::size_t>(i) * k;
                const float *grow =
                    G + static_cast<std::size_t>(i) * n;
                for (int kk = k0; kk < k1; ++kk) {
                    const float aik = arow[kk];
                    if (aik == 0.0f)
                        continue;
                    float *dbrow =
                        DB + static_cast<std::size_t>(kk) * n;
                    for (int j = j0; j < j1; ++j)
                        dbrow[j] += aik * grow[j];
                }
            }
        }
    }
}

/** db[j] += sum_i g(i, j), ascending i — the addBias reduction. */
void
biasGrad(const Tensor &g, Tensor &db)
{
    const int m = g.rows();
    const int n = g.cols();
    const float *G = g.data().data();
    float *DB = db.data().data();
    for (int i = 0; i < m; ++i) {
        const float *grow = G + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j)
            DB[j] += grow[j];
    }
}

} // namespace

Variable
matmul(const Variable &a, const Variable &b)
{
    const Tensor &av = a.value();
    const Tensor &bv = b.value();
    ADAPIPE_ASSERT(av.cols() == bv.rows(), "matmul shape mismatch: [",
                   av.rows(), ",", av.cols(), "] x [", bv.rows(), ",",
                   bv.cols(), "]");
    const int m = av.rows();
    const int k = av.cols();
    const int n = bv.cols();

    Tensor out({m, n});
    matmulForward(av, bv, out);

    // Slotwise: dA and dB are independent kernels, so the engine can
    // run them on different workers.
    return Variable::makeNodeSlotwise(
        std::move(out), {a, b},
        [m, k, n](Impl &node, int slot) -> GradParts {
            const Tensor &g = node.grad;
            if (slot == 0) {
                Tensor da({m, k});
                matmulBackwardA(g, node.parents[1]->value, da);
                return one(std::move(da));
            }
            Tensor db({k, n});
            matmulBackwardB(node.parents[0]->value, g, db);
            return one(std::move(db));
        });
}

Variable
add(const Variable &a, const Variable &b)
{
    ADAPIPE_ASSERT(a.value().sameShape(b.value()), "add shape mismatch");
    Tensor out = a.value();
    out.add_(b.value());
    return Variable::makeNode(
        std::move(out), {a, b}, [](Impl &node) {
            BackwardResult result(2);
            if (node.parents[0])
                result[0] = one(node.grad);
            if (node.parents[1])
                result[1] = one(node.grad);
            return result;
        });
}

Variable
addBias(const Variable &a, const Variable &bias)
{
    const Tensor &av = a.value();
    const Tensor &bv = bias.value();
    ADAPIPE_ASSERT(av.cols() == static_cast<int>(bv.numel()),
                   "bias width mismatch");
    Tensor out = av;
    const int m = av.rows();
    const int n = av.cols();
    for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j)
            out.at(i, j) += bv[j];
    }
    return Variable::makeNode(
        std::move(out), {a, bias}, [](Impl &node) {
            BackwardResult result(2);
            if (node.parents[0])
                result[0] = one(node.grad);
            if (const auto &pb = node.parents[1]) {
                Tensor db(pb->value.shape());
                biasGrad(node.grad, db);
                result[1] = one(std::move(db));
            }
            return result;
        });
}

Variable
linearBias(const Variable &x, const Variable &w, const Variable &bias)
{
    const Tensor &av = x.value();
    const Tensor &wv = w.value();
    const Tensor &bv = bias.value();
    ADAPIPE_ASSERT(av.cols() == wv.rows(),
                   "linearBias shape mismatch: [", av.rows(), ",",
                   av.cols(), "] x [", wv.rows(), ",", wv.cols(),
                   "]");
    ADAPIPE_ASSERT(wv.cols() == static_cast<int>(bv.numel()),
                   "bias width mismatch");
    const int m = av.rows();
    const int k = av.cols();
    const int n = wv.cols();

    Tensor out({m, n});
    matmulForward(av, wv, out);
    // Bias joins after the full k-sum, exactly as the two-node
    // addBias(matmul(x, w), b) graph would add it.
    {
        float *O = out.data().data();
        const float *B = bv.data().data();
        for (int i = 0; i < m; ++i) {
            float *orow = O + static_cast<std::size_t>(i) * n;
            for (int j = 0; j < n; ++j)
                orow[j] += B[j];
        }
    }

    return Variable::makeNodeSlotwise(
        std::move(out), {x, w, bias},
        [m, k, n](Impl &node, int slot) -> GradParts {
            const Tensor &g = node.grad;
            if (slot == 0) {
                Tensor da({m, k});
                matmulBackwardA(g, node.parents[1]->value, da);
                return one(std::move(da));
            }
            if (slot == 1) {
                Tensor dw({k, n});
                matmulBackwardB(node.parents[0]->value, g, dw);
                return one(std::move(dw));
            }
            Tensor db(node.parents[2]->value.shape());
            biasGrad(g, db);
            return one(std::move(db));
        });
}

Variable
linearBiasGelu(const Variable &x, const Variable &w,
               const Variable &bias)
{
    const Tensor &av = x.value();
    const Tensor &wv = w.value();
    const Tensor &bv = bias.value();
    ADAPIPE_ASSERT(av.cols() == wv.rows(),
                   "linearBiasGelu shape mismatch: [", av.rows(), ",",
                   av.cols(), "] x [", wv.rows(), ",", wv.cols(),
                   "]");
    ADAPIPE_ASSERT(wv.cols() == static_cast<int>(bv.numel()),
                   "bias width mismatch");
    const int m = av.rows();
    const int k = av.cols();
    const int n = wv.cols();

    // The pre-activation must survive for the backward pass (the
    // GELU derivative is a function of it), mirroring the tensor
    // the separate addBias node would have kept.
    Tensor pre({m, n});
    matmulForward(av, wv, pre);
    {
        float *P = pre.data().data();
        const float *B = bv.data().data();
        for (int i = 0; i < m; ++i) {
            float *prow = P + static_cast<std::size_t>(i) * n;
            for (int j = 0; j < n; ++j)
                prow[j] += B[j];
        }
    }

    const float c = 0.7978845608028654f; // sqrt(2/pi)
    Tensor out = Tensor::uninitialized({m, n});
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        const float xv = pre[i];
        const float inner = c * (xv + 0.044715f * xv * xv * xv);
        out[i] = 0.5f * xv * (1.0f + std::tanh(inner));
    }

    return Variable::makeNodeSlotwise(
        std::move(out), {x, w, bias},
        [m, k, n, c, pre = std::move(pre)](Impl &node,
                                           int slot) -> GradParts {
            // Every slot recomputes dpre from the saved
            // pre-activation: the elementwise work is cheap next to
            // the matmuls, and it keeps the three slot tasks free of
            // shared mutable state (pre is read-only here).
            Tensor dpre = node.grad;
            for (std::int64_t i = 0; i < dpre.numel(); ++i) {
                const float xv = pre[i];
                const float inner =
                    c * (xv + 0.044715f * xv * xv * xv);
                const float t = std::tanh(inner);
                const float sech2 = 1.0f - t * t;
                const float d =
                    0.5f * (1.0f + t) +
                    0.5f * xv * sech2 * c *
                        (1.0f + 3.0f * 0.044715f * xv * xv);
                dpre[i] *= d;
            }

            if (slot == 0) {
                Tensor da({m, k});
                matmulBackwardA(dpre, node.parents[1]->value, da);
                return one(std::move(da));
            }
            if (slot == 1) {
                Tensor dw({k, n});
                matmulBackwardB(node.parents[0]->value, dpre, dw);
                return one(std::move(dw));
            }
            Tensor db(node.parents[2]->value.shape());
            biasGrad(dpre, db);
            return one(std::move(db));
        });
}

Variable
scale(const Variable &a, float factor)
{
    Tensor out = a.value();
    out.scale_(factor);
    return Variable::makeNode(
        std::move(out), {a}, [factor](Impl &node) {
            BackwardResult result(1);
            if (node.parents[0]) {
                Tensor da = node.grad;
                da.scale_(factor);
                result[0] = one(std::move(da));
            }
            return result;
        });
}

Variable
mul(const Variable &a, const Variable &b)
{
    ADAPIPE_ASSERT(a.value().sameShape(b.value()), "mul shape mismatch");
    Tensor out = a.value();
    for (std::int64_t i = 0; i < out.numel(); ++i)
        out[i] *= b.value()[i];
    return Variable::makeNode(
        std::move(out), {a, b}, [](Impl &node) {
            const auto &pa = node.parents[0];
            const auto &pb = node.parents[1];
            BackwardResult result(2);
            if (pa) {
                Tensor da = node.grad;
                for (std::int64_t i = 0; i < da.numel(); ++i)
                    da[i] *= pb->value[i];
                result[0] = one(std::move(da));
            }
            if (pb) {
                Tensor db = node.grad;
                for (std::int64_t i = 0; i < db.numel(); ++i)
                    db[i] *= pa->value[i];
                result[1] = one(std::move(db));
            }
            return result;
        });
}

Variable
gelu(const Variable &a)
{
    // tanh-approximate GELU, matching common transformer stacks.
    const float c = 0.7978845608028654f; // sqrt(2/pi)
    Tensor out = a.value();
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        const float x = out[i];
        const float inner = c * (x + 0.044715f * x * x * x);
        out[i] = 0.5f * x * (1.0f + std::tanh(inner));
    }
    return Variable::makeNode(std::move(out), {a}, [c](Impl &node) {
        BackwardResult result(1);
        const auto &pa = node.parents[0];
        if (!pa)
            return result;
        Tensor da = node.grad;
        for (std::int64_t i = 0; i < da.numel(); ++i) {
            const float x = pa->value[i];
            const float inner = c * (x + 0.044715f * x * x * x);
            const float t = std::tanh(inner);
            const float sech2 = 1.0f - t * t;
            const float d =
                0.5f * (1.0f + t) +
                0.5f * x * sech2 * c * (1.0f + 3.0f * 0.044715f * x * x);
            da[i] *= d;
        }
        result[0] = one(std::move(da));
        return result;
    });
}

Variable
silu(const Variable &a)
{
    Tensor out = a.value();
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        const float x = out[i];
        out[i] = x / (1.0f + std::exp(-x));
    }
    return Variable::makeNode(std::move(out), {a}, [](Impl &node) {
        BackwardResult result(1);
        const auto &pa = node.parents[0];
        if (!pa)
            return result;
        Tensor da = node.grad;
        for (std::int64_t i = 0; i < da.numel(); ++i) {
            const float x = pa->value[i];
            const float s = 1.0f / (1.0f + std::exp(-x));
            da[i] *= s * (1.0f + x * (1.0f - s));
        }
        result[0] = one(std::move(da));
        return result;
    });
}

Variable
rmsNorm(const Variable &a, const Variable &gamma, float eps)
{
    const Tensor &av = a.value();
    const int m = av.rows();
    const int n = av.cols();
    ADAPIPE_ASSERT(static_cast<int>(gamma.value().numel()) == n,
                   "rmsNorm scale shape mismatch");

    Tensor out({m, n});
    std::vector<float> rms(m);
    for (int i = 0; i < m; ++i) {
        float sq = 0.0f;
        for (int j = 0; j < n; ++j)
            sq += av.at(i, j) * av.at(i, j);
        const float r = 1.0f / std::sqrt(sq / n + eps);
        rms[i] = r;
        for (int j = 0; j < n; ++j)
            out.at(i, j) = av.at(i, j) * r * gamma.value()[j];
    }

    return Variable::makeNode(
        std::move(out), {a, gamma},
        [m, n, rms = std::move(rms)](Impl &node) {
            const auto &pa = node.parents[0];
            const auto &pg = node.parents[1];
            const Tensor &g = node.grad;
            BackwardResult result(2);
            if (pg) {
                Tensor dg(pg->value.shape());
                for (int i = 0; i < m; ++i) {
                    for (int j = 0; j < n; ++j) {
                        dg[j] += g.at(i, j) * pa->value.at(i, j) *
                                 rms[i];
                    }
                }
                result[1] = one(std::move(dg));
            }
            if (pa) {
                Tensor da({m, n});
                for (int i = 0; i < m; ++i) {
                    // d/dx_k of x_j * r(x): r * delta_jk -
                    // x_j x_k r^3 / n.
                    float dot = 0.0f;
                    for (int j = 0; j < n; ++j) {
                        dot += g.at(i, j) * pg->value[j] *
                               pa->value.at(i, j);
                    }
                    const float r = rms[i];
                    for (int k = 0; k < n; ++k) {
                        da.at(i, k) =
                            g.at(i, k) * pg->value[k] * r -
                            pa->value.at(i, k) * dot * r * r * r /
                                static_cast<float>(n);
                    }
                }
                result[0] = one(std::move(da));
            }
            return result;
        });
}

Variable
sliceCols(const Variable &a, int start, int len)
{
    const Tensor &av = a.value();
    const int m = av.rows();
    const int n = av.cols();
    ADAPIPE_ASSERT(start >= 0 && len > 0 && start + len <= n,
                   "bad column slice [", start, ", ", start + len,
                   ") of width ", n);
    Tensor out({m, len});
    for (int i = 0; i < m; ++i) {
        for (int j = 0; j < len; ++j)
            out.at(i, j) = av.at(i, start + j);
    }
    return Variable::makeNode(
        std::move(out), {a}, [m, len, start](Impl &node) {
            BackwardResult result(1);
            const auto &pa = node.parents[0];
            if (!pa)
                return result;
            Tensor da(pa->value.shape());
            for (int i = 0; i < m; ++i) {
                for (int j = 0; j < len; ++j)
                    da.at(i, start + j) = node.grad.at(i, j);
            }
            result[0] = one(std::move(da));
            return result;
        });
}

Variable
concatCols(const std::vector<Variable> &parts)
{
    ADAPIPE_ASSERT(!parts.empty(), "concat of nothing");
    const int m = parts.front().value().rows();
    int total = 0;
    for (const auto &p : parts) {
        ADAPIPE_ASSERT(p.value().rows() == m,
                       "concat row count mismatch");
        total += p.value().cols();
    }
    Tensor out({m, total});
    std::vector<int> offsets;
    int off = 0;
    for (const auto &p : parts) {
        offsets.push_back(off);
        const Tensor &pv = p.value();
        for (int i = 0; i < m; ++i) {
            for (int j = 0; j < pv.cols(); ++j)
                out.at(i, off + j) = pv.at(i, j);
        }
        off += pv.cols();
    }
    return Variable::makeNode(
        std::move(out), parts,
        [m, offsets = std::move(offsets)](Impl &node) {
            BackwardResult result(node.parents.size());
            for (std::size_t k = 0; k < node.parents.size(); ++k) {
                const auto &p = node.parents[k];
                if (!p)
                    continue;
                Tensor dp(p->value.shape());
                const int cols = dp.cols();
                for (int i = 0; i < m; ++i) {
                    for (int j = 0; j < cols; ++j)
                        dp.at(i, j) = node.grad.at(i, offsets[k] + j);
                }
                result[k] = one(std::move(dp));
            }
            return result;
        });
}

Variable
layerNorm(const Variable &a, const Variable &gamma, const Variable &beta,
          float eps)
{
    const Tensor &av = a.value();
    const int m = av.rows();
    const int n = av.cols();
    ADAPIPE_ASSERT(static_cast<int>(gamma.value().numel()) == n &&
                       static_cast<int>(beta.value().numel()) == n,
                   "layerNorm affine shape mismatch");

    Tensor out({m, n});
    Tensor xhat({m, n});
    std::vector<float> rstd(m);
    for (int i = 0; i < m; ++i) {
        float mean = 0.0f;
        for (int j = 0; j < n; ++j)
            mean += av.at(i, j);
        mean /= n;
        float var = 0.0f;
        for (int j = 0; j < n; ++j) {
            const float d = av.at(i, j) - mean;
            var += d * d;
        }
        var /= n;
        const float r = 1.0f / std::sqrt(var + eps);
        rstd[i] = r;
        for (int j = 0; j < n; ++j) {
            const float xh = (av.at(i, j) - mean) * r;
            xhat.at(i, j) = xh;
            out.at(i, j) =
                xh * gamma.value()[j] + beta.value()[j];
        }
    }

    return Variable::makeNode(
        std::move(out), {a, gamma, beta},
        [m, n, xhat = std::move(xhat),
         rstd = std::move(rstd)](Impl &node) {
            const auto &pa = node.parents[0];
            const auto &pg = node.parents[1];
            const auto &pb = node.parents[2];
            const Tensor &g = node.grad;
            BackwardResult result(3);

            if (pg) {
                Tensor dg(pg->value.shape());
                for (int i = 0; i < m; ++i) {
                    for (int j = 0; j < n; ++j)
                        dg[j] += g.at(i, j) * xhat.at(i, j);
                }
                result[1] = one(std::move(dg));
            }
            if (pb) {
                Tensor db(pb->value.shape());
                for (int i = 0; i < m; ++i) {
                    for (int j = 0; j < n; ++j)
                        db[j] += g.at(i, j);
                }
                result[2] = one(std::move(db));
            }
            if (pa) {
                Tensor da({m, n});
                for (int i = 0; i < m; ++i) {
                    // dxhat_j = g_j * gamma_j
                    float sum_dx = 0.0f;
                    float sum_dx_xhat = 0.0f;
                    for (int j = 0; j < n; ++j) {
                        const float dx = g.at(i, j) * pg->value[j];
                        sum_dx += dx;
                        sum_dx_xhat += dx * xhat.at(i, j);
                    }
                    for (int j = 0; j < n; ++j) {
                        const float dx = g.at(i, j) * pg->value[j];
                        da.at(i, j) =
                            rstd[i] *
                            (dx - sum_dx / n -
                             xhat.at(i, j) * sum_dx_xhat / n);
                    }
                }
                result[0] = one(std::move(da));
            }
            return result;
        });
}

Variable
embedding(const Variable &table, const std::vector<int> &ids)
{
    const Tensor &tv = table.value();
    const int dim = tv.cols();
    const int rows = static_cast<int>(ids.size());
    Tensor out({rows, dim});
    for (int i = 0; i < rows; ++i) {
        ADAPIPE_ASSERT(ids[i] >= 0 && ids[i] < tv.rows(),
                       "token id out of vocabulary: ", ids[i]);
        for (int j = 0; j < dim; ++j)
            out.at(i, j) = tv.at(ids[i], j);
    }
    return Variable::makeNode(
        std::move(out), {table}, [ids, rows, dim](Impl &node) {
            BackwardResult result(1);
            const auto &pt = node.parents[0];
            if (!pt)
                return result;
            Tensor dt(pt->value.shape());
            for (int i = 0; i < rows; ++i) {
                for (int j = 0; j < dim; ++j)
                    dt.at(ids[i], j) += node.grad.at(i, j);
            }
            result[0] = one(std::move(dt));
            return result;
        });
}

Variable
softmaxRows(const Variable &a, bool causal)
{
    const Tensor &av = a.value();
    const int m = av.rows();
    const int n = av.cols();
    if (causal) {
        ADAPIPE_ASSERT(m == n, "causal softmax needs a square matrix");
    }

    Tensor out({m, n});
    for (int i = 0; i < m; ++i) {
        const int limit = causal ? i + 1 : n;
        float max_v = -1e30f;
        for (int j = 0; j < limit; ++j)
            max_v = std::max(max_v, av.at(i, j));
        float denom = 0.0f;
        for (int j = 0; j < limit; ++j) {
            const float e = std::exp(av.at(i, j) - max_v);
            out.at(i, j) = e;
            denom += e;
        }
        for (int j = 0; j < limit; ++j)
            out.at(i, j) /= denom;
        // masked entries stay exactly zero
    }

    // Keep a copy of the probabilities for the backward pass.
    Tensor probs = out;
    return Variable::makeNode(
        std::move(out), {a},
        [m, n, causal, probs = std::move(probs)](Impl &node) {
            BackwardResult result(1);
            const auto &pa = node.parents[0];
            if (!pa)
                return result;
            Tensor da({m, n});
            for (int i = 0; i < m; ++i) {
                const int limit = causal ? i + 1 : n;
                float dot = 0.0f;
                for (int j = 0; j < limit; ++j)
                    dot += node.grad.at(i, j) * probs.at(i, j);
                for (int j = 0; j < limit; ++j) {
                    da.at(i, j) = probs.at(i, j) *
                                  (node.grad.at(i, j) - dot);
                }
            }
            result[0] = one(std::move(da));
            return result;
        });
}

Variable
crossEntropy(const Variable &logits, const std::vector<int> &targets)
{
    const Tensor &lv = logits.value();
    const int m = lv.rows();
    const int v = lv.cols();
    ADAPIPE_ASSERT(static_cast<int>(targets.size()) == m,
                   "one target per logits row required");

    Tensor probs({m, v});
    double loss = 0.0;
    for (int i = 0; i < m; ++i) {
        ADAPIPE_ASSERT(targets[i] >= 0 && targets[i] < v,
                       "target out of vocabulary: ", targets[i]);
        float max_v = -1e30f;
        for (int j = 0; j < v; ++j)
            max_v = std::max(max_v, lv.at(i, j));
        double denom = 0.0;
        for (int j = 0; j < v; ++j)
            denom += std::exp(static_cast<double>(lv.at(i, j)) - max_v);
        const double log_denom = std::log(denom) + max_v;
        loss += log_denom - lv.at(i, targets[i]);
        for (int j = 0; j < v; ++j) {
            probs.at(i, j) = static_cast<float>(
                std::exp(static_cast<double>(lv.at(i, j)) - log_denom));
        }
    }

    Tensor out({1});
    out[0] = static_cast<float>(loss / m);
    return Variable::makeNode(
        std::move(out), {logits},
        [m, v, targets, probs = std::move(probs)](Impl &node) {
            BackwardResult result(1);
            const auto &pl = node.parents[0];
            if (!pl)
                return result;
            const float g = node.grad[0] / static_cast<float>(m);
            Tensor dl({m, v});
            for (int i = 0; i < m; ++i) {
                for (int j = 0; j < v; ++j)
                    dl.at(i, j) = g * probs.at(i, j);
                dl.at(i, targets[i]) -= g;
            }
            result[0] = one(std::move(dl));
            return result;
        });
}

} // namespace ops
} // namespace adapipe
