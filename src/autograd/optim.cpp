#include "autograd/optim.h"

#include <cmath>

#include "util/logging.h"

namespace adapipe {

Sgd::Sgd(std::vector<Variable> params, float lr, float momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum)
{
    velocity_.reserve(params_.size());
    for (auto &p : params_) {
        ADAPIPE_ASSERT(p.requiresGrad(),
                       "optimizer parameter without requiresGrad");
        velocity_.emplace_back(p.value().shape());
    }
}

void
Sgd::step()
{
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Tensor &value = params_[i].mutableValue();
        const Tensor &grad = params_[i].grad();
        if (grad.numel() != value.numel())
            continue; // never touched by backward
        for (std::int64_t j = 0; j < value.numel(); ++j) {
            float v = momentum_ * velocity_[i][j] + grad[j];
            velocity_[i][j] = v;
            value[j] -= lr_ * v;
        }
    }
}

void
Sgd::zeroGrad()
{
    for (auto &p : params_)
        p.zeroGrad();
}

float
clipGradNorm(const std::vector<Variable> &params, float max_norm)
{
    ADAPIPE_ASSERT(max_norm > 0, "max_norm must be positive");
    double sq = 0.0;
    for (const auto &p : params) {
        const Tensor &g = p.grad();
        for (std::int64_t i = 0; i < g.numel(); ++i)
            sq += static_cast<double>(g[i]) * g[i];
    }
    const float norm = static_cast<float>(std::sqrt(sq));
    if (norm > max_norm) {
        const float scale = max_norm / norm;
        for (const auto &p : params) {
            // Gradients live in the shared impl; scale in place.
            auto impl = p.impl();
            impl->grad.scale_(scale);
        }
    }
    return norm;
}

Adam::Adam(std::vector<Variable> params, float lr, float beta1,
           float beta2, float eps, float weight_decay)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps), weightDecay_(weight_decay)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (auto &p : params_) {
        ADAPIPE_ASSERT(p.requiresGrad(),
                       "optimizer parameter without requiresGrad");
        m_.emplace_back(p.value().shape());
        v_.emplace_back(p.value().shape());
    }
}

void
Adam::step()
{
    ++t_;
    const float bc1 =
        1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 =
        1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Tensor &value = params_[i].mutableValue();
        const Tensor &grad = params_[i].grad();
        if (grad.numel() != value.numel())
            continue;
        for (std::int64_t j = 0; j < value.numel(); ++j) {
            const float g = grad[j];
            m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g;
            v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g * g;
            const float mhat = m_[i][j] / bc1;
            const float vhat = v_[i][j] / bc2;
            value[j] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) +
                               weightDecay_ * value[j]);
        }
    }
}

void
Adam::zeroGrad()
{
    for (auto &p : params_)
        p.zeroGrad();
}

void
Adam::setStepCount(int t)
{
    ADAPIPE_ASSERT(t >= 0, "Adam step counter must be >= 0, got ", t);
    t_ = t;
}

const Tensor &
Adam::moment1(std::size_t i) const
{
    ADAPIPE_ASSERT(i < m_.size(), "Adam moment index out of range");
    return m_[i];
}

const Tensor &
Adam::moment2(std::size_t i) const
{
    ADAPIPE_ASSERT(i < v_.size(), "Adam moment index out of range");
    return v_[i];
}

void
Adam::setMoments(std::size_t i, const Tensor &m, const Tensor &v)
{
    ADAPIPE_ASSERT(i < params_.size(),
                   "Adam moment index out of range");
    ADAPIPE_ASSERT(m.sameShape(params_[i].value()) &&
                       v.sameShape(params_[i].value()),
                   "Adam moment shape mismatch for parameter ", i);
    m_[i] = m;
    v_[i] = v;
}

} // namespace adapipe
