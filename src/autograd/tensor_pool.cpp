#include "autograd/tensor_pool.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>

#include "obs/macros.h"

namespace adapipe {

namespace {

/**
 * Per-bucket caps keep a pathological shape mix from hoarding
 * memory: beyond them a released buffer just frees normally.
 */
constexpr std::size_t kThreadBucketCap = 8;
constexpr std::size_t kGlobalBucketCap = 64;

using Freelist =
    std::unordered_map<std::size_t, std::vector<std::vector<float>>>;

/** All pool state; leaked so it outlives thread-local caches. */
struct PoolState
{
    std::mutex mu;
    Freelist global;
    std::atomic<std::int64_t> heap_allocs{0};
    std::atomic<std::int64_t> reuses{0};
    std::atomic<std::int64_t> releases{0};
    std::atomic<std::int64_t> heap_bytes{0};

    /**
     * Move @p from into the global freelist. Uncapped on purpose:
     * this runs when a thread's cache is flushed (worker exit,
     * explicit drain), and dropping the overflow there is exactly
     * the bug that made pool.heap_bytes grow without bound — every
     * generation of short-lived engine workers re-allocated the
     * buffers its predecessor's exit flush had thrown away. The
     * per-release caps in release() still bound steady-state
     * hoarding; the exit flush merely preserves what was already
     * cached.
     */
    void
    absorb(Freelist &from)
    {
        std::lock_guard<std::mutex> lock(mu);
        for (auto &[n, bufs] : from) {
            auto &bucket = global[n];
            for (auto &buf : bufs)
                bucket.push_back(std::move(buf));
        }
        from.clear();
    }
};

struct ThreadCache
{
    Freelist free;
    ~ThreadCache();
};

/**
 * Null outside the cache's lifetime. Stage worker threads die at
 * the end of every pipeline run; after the cache's destructor has
 * flushed to the global freelist, late tensor destructions on that
 * thread bypass the cache instead of resurrecting it.
 */
thread_local ThreadCache *tl_cache = nullptr;
thread_local bool tl_cache_dead = false;

PoolState &
poolImpl()
{
    static PoolState *state = new PoolState; // leaky
    return *state;
}

ThreadCache::~ThreadCache()
{
    poolImpl().absorb(free);
    tl_cache = nullptr;
    tl_cache_dead = true;
}

ThreadCache *
threadCache()
{
    if (tl_cache_dead)
        return nullptr;
    static thread_local ThreadCache cache;
    if (!tl_cache)
        tl_cache = &cache;
    return tl_cache;
}

} // namespace

TensorPool &
TensorPool::instance()
{
    static TensorPool pool;
    return pool;
}

std::vector<float>
TensorPool::acquire(std::size_t n, bool zero_fill)
{
    if (n == 0)
        return {};
    PoolState &pool = poolImpl();

    std::vector<float> buf;
    bool reused = false;
    if (ThreadCache *cache = threadCache()) {
        auto it = cache->free.find(n);
        if (it != cache->free.end() && !it->second.empty()) {
            buf = std::move(it->second.back());
            it->second.pop_back();
            reused = true;
        }
    }
    if (!reused) {
        std::lock_guard<std::mutex> lock(pool.mu);
        auto it = pool.global.find(n);
        if (it != pool.global.end() && !it->second.empty()) {
            buf = std::move(it->second.back());
            it->second.pop_back();
            reused = true;
        }
    }

    if (reused) {
        pool.reuses.fetch_add(1, std::memory_order_relaxed);
        ADAPIPE_OBS_COUNT("pool.reuses", 1);
        if (zero_fill)
            std::fill(buf.begin(), buf.end(), 0.0f);
        return buf;
    }

    pool.heap_allocs.fetch_add(1, std::memory_order_relaxed);
    pool.heap_bytes.fetch_add(
        static_cast<std::int64_t>(n * sizeof(float)),
        std::memory_order_relaxed);
    ADAPIPE_OBS_COUNT("pool.heap_allocs", 1);
    ADAPIPE_OBS_COUNT("pool.heap_bytes",
                      static_cast<std::int64_t>(n * sizeof(float)));
    return std::vector<float>(n, 0.0f);
}

void
TensorPool::release(std::vector<float> &&buf)
{
    const std::size_t n = buf.size();
    if (n == 0)
        return; // moved-from or empty: nothing to recycle
    PoolState &pool = poolImpl();
    pool.releases.fetch_add(1, std::memory_order_relaxed);

    if (ThreadCache *cache = threadCache()) {
        auto &bucket = cache->free[n];
        if (bucket.size() < kThreadBucketCap) {
            bucket.push_back(std::move(buf));
            return;
        }
    }
    std::lock_guard<std::mutex> lock(pool.mu);
    auto &bucket = pool.global[n];
    if (bucket.size() < kGlobalBucketCap)
        bucket.push_back(std::move(buf));
    // else: fall through, buf frees on scope exit
}

TensorPool::Stats
TensorPool::stats() const
{
    PoolState &pool = poolImpl();
    Stats s;
    s.heapAllocs = pool.heap_allocs.load(std::memory_order_relaxed);
    s.reuses = pool.reuses.load(std::memory_order_relaxed);
    s.releases = pool.releases.load(std::memory_order_relaxed);
    s.heapBytes = pool.heap_bytes.load(std::memory_order_relaxed);
    return s;
}

void
TensorPool::drainThreadCache()
{
    if (ThreadCache *cache = threadCache())
        poolImpl().absorb(cache->free);
}

void
TensorPool::trim()
{
    if (ThreadCache *cache = threadCache())
        cache->free.clear();
    PoolState &pool = poolImpl();
    std::lock_guard<std::mutex> lock(pool.mu);
    pool.global.clear();
}

} // namespace adapipe
