/**
 * @file
 * Reverse-mode automatic differentiation: variables and the tape.
 *
 * A Variable is a shared handle to a value plus (when gradients are
 * enabled) its position in the computation graph. Calling
 * Variable::backward() runs the dependency-counting ready-queue
 * executor (autograd/engine.h) on the calling thread, accumulating
 * gradients into leaves; BackwardEngine runs the same executor over
 * multiple worker threads with bit-identical results. A thread-local
 * GradMode switch lets the checkpointing machinery run segments
 * without recording the graph, exactly like the recomputation the
 * paper performs at scale.
 *
 * Deterministic reduction rule: a node's backward produces, for each
 * parent slot, an ORDERED list of gradient addends instead of adding
 * into the parent directly. The engine applies every parent's
 * contributions in (consumer topological index, parent-slot index)
 * order — the exact order the historical eager sweep performed its
 * in-place accumulations — so gradients are bit-identical at any
 * worker count, regardless of execution interleaving.
 */

#ifndef ADAPIPE_AUTOGRAD_VARIABLE_H
#define ADAPIPE_AUTOGRAD_VARIABLE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "autograd/tensor.h"

namespace adapipe {

class Variable;

namespace autograd_detail {

/**
 * Ordered gradient addends for one parent slot. Usually a single
 * tensor; checkpoint replay emits one addend per inner accumulation
 * so the reduction replays the eager engine's exact float order. An
 * empty list means the node contributes nothing to that slot.
 */
using GradParts = std::vector<Tensor>;

/** One contribution list per parent slot, slot order. */
using BackwardResult = std::vector<GradParts>;

/** Shared state of one graph node. */
struct VarImpl
{
    Tensor value;
    Tensor grad;
    bool requiresGrad = false;
    bool isLeaf = true;
    /** Parents whose gradients this node contributes to. */
    std::vector<std::shared_ptr<VarImpl>> parents;
    /**
     * Whole-node backward: maps this node's grad to one contribution
     * list per parent slot (result size == parents.size()). Exactly
     * one of backwardFn / slotBackwardFn is set on interior nodes.
     */
    std::function<BackwardResult(VarImpl &)> backwardFn;
    /**
     * Per-slot backward: computes the contribution for one parent
     * slot independently of the others, so the engine can run the
     * slots of one node on different workers (e.g. a matmul's dA and
     * dB). Must be safe to call concurrently for distinct slots.
     */
    std::function<GradParts(VarImpl &, int)> slotBackwardFn;

    VarImpl();
    ~VarImpl();

    VarImpl(const VarImpl &) = delete;
    VarImpl &operator=(const VarImpl &) = delete;
};

/**
 * Allocate @p node's grad buffer (zeros, metered) when its shape
 * does not match the value; otherwise keep the existing buffer so
 * gradients accumulate across backward calls (micro-batching).
 */
void ensureGradBuffer(VarImpl &node);

/**
 * Adjust the activation meters by @p n floats (negative to release).
 * Host-offload eviction moves a live node's value storage off the
 * "device" and fetch moves it back; VarImpl's destructor subtracts
 * whatever the node holds at death, so those moves must re-meter
 * explicitly to keep live/peak counts exact.
 */
void meterAdjust(std::int64_t n);

} // namespace autograd_detail

/**
 * RAII guard disabling gradient recording in its scope (used by
 * checkpointed forward passes).
 */
class NoGradGuard
{
  public:
    NoGradGuard();
    ~NoGradGuard();

    NoGradGuard(const NoGradGuard &) = delete;
    NoGradGuard &operator=(const NoGradGuard &) = delete;

  private:
    bool previous_;
};

/** @return whether operations currently record the graph. */
bool gradEnabled();

/**
 * Peak number of floats held alive by graph nodes since the last
 * resetActivationMeter() call — the engine's measure of activation
 * memory, used to demonstrate that checkpointing really frees
 * intermediates.
 */
std::int64_t peakActivationFloats();

/** @return floats currently held alive by graph nodes. */
std::int64_t liveActivationFloats();

/** Reset the peak watermark to the current live count. */
void resetActivationMeter();

/**
 * Per-thread activation accounting, used by the pipeline runtime to
 * attribute peak activation memory to individual stage threads (the
 * process-wide meter above cannot tell stages apart).
 *
 * Allocations are charged to the allocating thread and releases to
 * the releasing thread, so the counters are exact for code that
 * builds and drops its graphs on one thread (each pipeline stage
 * does); cross-thread frees show up as drift on the freeing thread.
 */
std::int64_t threadLiveActivationFloats();

/** Peak of the calling thread's live count since its last reset. */
std::int64_t threadPeakActivationFloats();

/** Reset the calling thread's peak watermark to its live count. */
void resetThreadActivationMeter();

/**
 * Autograd variable: shared handle to a node.
 */
class Variable
{
  public:
    /** Empty (null) variable. */
    Variable() = default;

    /** Leaf from a value. @p requires_grad marks a parameter. */
    explicit Variable(Tensor value, bool requires_grad = false);

    /** @return whether the handle points to a node. */
    bool defined() const { return impl_ != nullptr; }

    /** @return the value tensor. */
    const Tensor &value() const { return impl_->value; }

    /** @return mutable value (optimizers update parameters). */
    Tensor &mutableValue() { return impl_->value; }

    /** @return accumulated gradient (zeros before backward). */
    const Tensor &grad() const { return impl_->grad; }

    /** @return whether grads flow into this node. */
    bool requiresGrad() const { return impl_->requiresGrad; }

    /** Zero the gradient buffer. */
    void zeroGrad();

    /**
     * Run reverse-mode differentiation from this (scalar) variable.
     * Seeds the output gradient with ones.
     */
    void backward();

    /**
     * Run reverse-mode differentiation seeded with @p seed (same
     * shape as the value), on the calling thread. This is the
     * single-threaded reference the parallel BackwardEngine is
     * bit-identical to.
     */
    void backward(const Tensor &seed);

    /**
     * @return a leaf variable sharing no graph history with this
     * one (fresh copy of the value). Used at checkpoint boundaries.
     */
    Variable detach(bool requires_grad = false) const;

    /** @name Engine internals (used by ops.cpp / checkpoint.cpp)
     *  @{
     */
    using Impl = autograd_detail::VarImpl;
    const std::shared_ptr<Impl> &impl() const { return impl_; }
    static Variable
    fromImpl(std::shared_ptr<Impl> impl)
    {
        Variable v;
        v.impl_ = std::move(impl);
        return v;
    }

    /**
     * Create an interior node. When gradients are disabled or no
     * parent requires them, the result is a constant leaf.
     *
     * @param value forward result
     * @param parents graph parents
     * @param backward_fn produces per-parent gradient contributions
     */
    static Variable
    makeNode(Tensor value, std::vector<Variable> parents,
             std::function<autograd_detail::BackwardResult(Impl &)>
                 backward_fn);

    /**
     * Create an interior node whose backward runs one independent
     * task per parent slot (see VarImpl::slotBackwardFn). Used by
     * the matmul-family ops, whose per-parent kernels share no
     * mutable state.
     */
    static Variable
    makeNodeSlotwise(
        Tensor value, std::vector<Variable> parents,
        std::function<autograd_detail::GradParts(Impl &, int)>
            slot_backward_fn);
    /** @} */

  private:
    std::shared_ptr<Impl> impl_;
};

} // namespace adapipe

#endif // ADAPIPE_AUTOGRAD_VARIABLE_H
