/**
 * @file
 * Reverse-mode automatic differentiation: variables and the tape.
 *
 * A Variable is a shared handle to a value plus (when gradients are
 * enabled) its position in the computation graph. Calling
 * Variable::backward() runs a topological sweep accumulating
 * gradients into leaves. A thread-local GradMode switch lets the
 * checkpointing machinery run segments without recording the graph,
 * exactly like the recomputation the paper performs at scale.
 */

#ifndef ADAPIPE_AUTOGRAD_VARIABLE_H
#define ADAPIPE_AUTOGRAD_VARIABLE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "autograd/tensor.h"

namespace adapipe {

class Variable;

namespace autograd_detail {

/** Shared state of one graph node. */
struct VarImpl
{
    Tensor value;
    Tensor grad;
    bool requiresGrad = false;
    bool isLeaf = true;
    /** Parents whose gradients this node contributes to. */
    std::vector<std::shared_ptr<VarImpl>> parents;
    /** Propagates this node's grad into its parents' grads. */
    std::function<void(VarImpl &)> backwardFn;

    VarImpl();
    ~VarImpl();

    VarImpl(const VarImpl &) = delete;
    VarImpl &operator=(const VarImpl &) = delete;
};

} // namespace autograd_detail

/**
 * RAII guard disabling gradient recording in its scope (used by
 * checkpointed forward passes).
 */
class NoGradGuard
{
  public:
    NoGradGuard();
    ~NoGradGuard();

    NoGradGuard(const NoGradGuard &) = delete;
    NoGradGuard &operator=(const NoGradGuard &) = delete;

  private:
    bool previous_;
};

/** @return whether operations currently record the graph. */
bool gradEnabled();

/**
 * Peak number of floats held alive by graph nodes since the last
 * resetActivationMeter() call — the engine's measure of activation
 * memory, used to demonstrate that checkpointing really frees
 * intermediates.
 */
std::int64_t peakActivationFloats();

/** @return floats currently held alive by graph nodes. */
std::int64_t liveActivationFloats();

/** Reset the peak watermark to the current live count. */
void resetActivationMeter();

/**
 * Per-thread activation accounting, used by the pipeline runtime to
 * attribute peak activation memory to individual stage threads (the
 * process-wide meter above cannot tell stages apart).
 *
 * Allocations are charged to the allocating thread and releases to
 * the releasing thread, so the counters are exact for code that
 * builds and drops its graphs on one thread (each pipeline stage
 * does); cross-thread frees show up as drift on the freeing thread.
 */
std::int64_t threadLiveActivationFloats();

/** Peak of the calling thread's live count since its last reset. */
std::int64_t threadPeakActivationFloats();

/** Reset the calling thread's peak watermark to its live count. */
void resetThreadActivationMeter();

/**
 * Autograd variable: shared handle to a node.
 */
class Variable
{
  public:
    /** Empty (null) variable. */
    Variable() = default;

    /** Leaf from a value. @p requires_grad marks a parameter. */
    explicit Variable(Tensor value, bool requires_grad = false);

    /** @return whether the handle points to a node. */
    bool defined() const { return impl_ != nullptr; }

    /** @return the value tensor. */
    const Tensor &value() const { return impl_->value; }

    /** @return mutable value (optimizers update parameters). */
    Tensor &mutableValue() { return impl_->value; }

    /** @return accumulated gradient (zeros before backward). */
    const Tensor &grad() const { return impl_->grad; }

    /** @return whether grads flow into this node. */
    bool requiresGrad() const { return impl_->requiresGrad; }

    /** Zero the gradient buffer. */
    void zeroGrad();

    /**
     * Run reverse-mode differentiation from this (scalar) variable.
     * Seeds the output gradient with ones.
     */
    void backward();

    /**
     * Run reverse-mode differentiation seeded with @p seed (same
     * shape as the value). Used by checkpointed segments to inject
     * the downstream gradient.
     */
    void backward(const Tensor &seed);

    /**
     * @return a leaf variable sharing no graph history with this
     * one (fresh copy of the value). Used at checkpoint boundaries.
     */
    Variable detach(bool requires_grad = false) const;

    /** @name Engine internals (used by ops.cpp / checkpoint.cpp)
     *  @{
     */
    using Impl = autograd_detail::VarImpl;
    const std::shared_ptr<Impl> &impl() const { return impl_; }
    static Variable
    fromImpl(std::shared_ptr<Impl> impl)
    {
        Variable v;
        v.impl_ = std::move(impl);
        return v;
    }

    /**
     * Create an interior node. When gradients are disabled or no
     * parent requires them, the result is a constant leaf.
     *
     * @param value forward result
     * @param parents graph parents
     * @param backward_fn gradient propagation into the parents
     */
    static Variable
    makeNode(Tensor value, std::vector<Variable> parents,
             std::function<void(Impl &)> backward_fn);
    /** @} */

  private:
    std::shared_ptr<Impl> impl_;
};

} // namespace adapipe

#endif // ADAPIPE_AUTOGRAD_VARIABLE_H
