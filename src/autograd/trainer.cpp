#include "autograd/trainer.h"

#include <memory>

#include "autograd/optim.h"
#include "util/logging.h"
#include "util/rng.h"

namespace adapipe {

void
makeBigramBatch(int vocab, int seq_len, int step, std::uint64_t seed,
                std::vector<int> &tokens, std::vector<int> &targets)
{
    ADAPIPE_ASSERT(vocab >= 2 && seq_len >= 1, "invalid batch request");

    // Seeded permutation of the vocabulary = the bigram mapping.
    Rng perm_rng(seed);
    std::vector<int> perm(vocab);
    for (int i = 0; i < vocab; ++i)
        perm[i] = i;
    for (int i = vocab - 1; i > 0; --i) {
        const int j =
            static_cast<int>(perm_rng.uniformInt(0, i));
        std::swap(perm[i], perm[j]);
    }

    Rng tok_rng(seed * 1000003ULL +
                static_cast<std::uint64_t>(step) + 1);
    tokens.resize(seq_len);
    targets.resize(seq_len);
    for (int i = 0; i < seq_len; ++i) {
        tokens[i] = static_cast<int>(tok_rng.uniformInt(0, vocab - 1));
        targets[i] = perm[tokens[i]];
    }
}

TrainStats
trainTinyLM(TinyLM &model, const TrainOptions &opts)
{
    ADAPIPE_ASSERT(opts.steps >= 1, "need at least one step");
    ADAPIPE_ASSERT(opts.seqLen <= model.config().maxSeq,
                   "seqLen exceeds model maxSeq");
    ADAPIPE_ASSERT(opts.microBatches >= 1,
                   "need at least one micro-batch");

    std::unique_ptr<Sgd> sgd;
    std::unique_ptr<Adam> adam;
    if (opts.useAdam)
        adam = std::make_unique<Adam>(model.params(), opts.lr);
    else
        sgd = std::make_unique<Sgd>(model.params(), opts.lr);

    TrainStats stats;
    stats.losses.reserve(opts.steps);
    resetActivationMeter();
    // Report the run's own footprint: exclude whatever (other
    // models, leftover graphs) was already alive.
    const std::int64_t baseline = liveActivationFloats();

    const int n = opts.microBatches;
    const float grad_scale = 1.0f / static_cast<float>(n);
    std::vector<int> tokens;
    std::vector<int> targets;
    for (int step = 0; step < opts.steps; ++step) {
        if (adam)
            adam->zeroGrad();
        else
            sgd->zeroGrad();

        double loss_sum = 0;
        for (int mb = 0; mb < n; ++mb) {
            makeBigramBatch(model.config().vocab, opts.seqLen,
                            step * n + mb, opts.dataSeed, tokens,
                            targets);
            Variable loss =
                model.loss(tokens, targets, opts.recompute);
            loss_sum += loss.value()[0];
            // Seeding with 1/n averages gradients over the step's
            // micro-batches; n = 1 seeds with ones, bit-identical to
            // the historical loss.backward().
            loss.backward(
                Tensor::full(loss.value().shape(), grad_scale));
        }
        stats.losses.push_back(loss_sum / n);

        if (adam)
            adam->step();
        else
            sgd->step();
    }
    stats.peakActivationFloats = peakActivationFloats() - baseline;
    return stats;
}

const std::vector<RecomputeStrategy> &
recomputeStrategyTable()
{
    static const std::vector<RecomputeStrategy> table = {
        {"none", "No recompute (save all)", BlockRecompute::None},
        {"attn", "Attention-only recompute",
         BlockRecompute::AttentionOnly},
        {"full", "Full recompute", BlockRecompute::Full},
    };
    return table;
}

const RecomputeStrategy *
findRecomputeStrategy(const std::string &key)
{
    for (const RecomputeStrategy &s : recomputeStrategyTable()) {
        if (key == s.key)
            return &s;
    }
    return nullptr;
}

} // namespace adapipe
