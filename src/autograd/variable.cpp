#include "autograd/variable.h"

#include <atomic>

#include "autograd/engine.h"
#include "util/logging.h"

namespace adapipe {

namespace {

thread_local bool grad_enabled = true;

std::atomic<std::int64_t> live_floats{0};
std::atomic<std::int64_t> peak_floats{0};

thread_local std::int64_t tl_live_floats = 0;
thread_local std::int64_t tl_peak_floats = 0;

void
meterAdd(std::int64_t n)
{
    const std::int64_t now =
        live_floats.fetch_add(n, std::memory_order_relaxed) + n;
    std::int64_t peak = peak_floats.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_floats.compare_exchange_weak(
               peak, now, std::memory_order_relaxed)) {
    }
    tl_live_floats += n;
    if (tl_live_floats > tl_peak_floats)
        tl_peak_floats = tl_live_floats;
}

} // namespace

namespace autograd_detail {

VarImpl::VarImpl() = default;

VarImpl::~VarImpl()
{
    const std::int64_t n = value.numel() + grad.numel();
    live_floats.fetch_sub(n, std::memory_order_relaxed);
    tl_live_floats -= n;
}

void
ensureGradBuffer(VarImpl &node)
{
    if (!node.grad.sameShape(node.value)) {
        meterAdd(node.value.numel());
        node.grad = Tensor(node.value.shape());
    }
}

void
meterAdjust(std::int64_t n)
{
    meterAdd(n);
}

} // namespace autograd_detail

NoGradGuard::NoGradGuard() : previous_(grad_enabled)
{
    grad_enabled = false;
}

NoGradGuard::~NoGradGuard()
{
    grad_enabled = previous_;
}

bool
gradEnabled()
{
    return grad_enabled;
}

std::int64_t
peakActivationFloats()
{
    return peak_floats.load(std::memory_order_relaxed);
}

std::int64_t
liveActivationFloats()
{
    return live_floats.load(std::memory_order_relaxed);
}

void
resetActivationMeter()
{
    peak_floats.store(live_floats.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
}

std::int64_t
threadLiveActivationFloats()
{
    return tl_live_floats;
}

std::int64_t
threadPeakActivationFloats()
{
    return tl_peak_floats;
}

void
resetThreadActivationMeter()
{
    tl_peak_floats = tl_live_floats;
}

Variable::Variable(Tensor value, bool requires_grad)
{
    impl_ = std::make_shared<Impl>();
    meterAdd(value.numel());
    impl_->value = std::move(value);
    impl_->requiresGrad = requires_grad;
    impl_->isLeaf = true;
}

void
Variable::zeroGrad()
{
    ADAPIPE_ASSERT(defined(), "zeroGrad on undefined variable");
    if (!impl_->grad.sameShape(impl_->value)) {
        meterAdd(impl_->value.numel());
        impl_->grad = Tensor(impl_->value.shape());
    } else {
        impl_->grad.zero_();
    }
}

Variable
Variable::detach(bool requires_grad) const
{
    ADAPIPE_ASSERT(defined(), "detach on undefined variable");
    Tensor copy = impl_->value;
    return Variable(std::move(copy), requires_grad);
}

Variable
Variable::makeNode(
    Tensor value, std::vector<Variable> parents,
    std::function<autograd_detail::BackwardResult(Impl &)> backward_fn)
{
    bool any_grad = false;
    if (grad_enabled) {
        for (const auto &p : parents) {
            if (p.defined() &&
                (p.impl()->requiresGrad || !p.impl()->isLeaf)) {
                any_grad = true;
                break;
            }
        }
    }

    if (!any_grad)
        return Variable(std::move(value), false);

    auto impl = std::make_shared<Impl>();
    meterAdd(value.numel());
    impl->value = std::move(value);
    impl->requiresGrad = false;
    impl->isLeaf = false;
    impl->parents.reserve(parents.size());
    for (auto &p : parents)
        impl->parents.push_back(p.impl());
    impl->backwardFn = std::move(backward_fn);
    return fromImpl(std::move(impl));
}

Variable
Variable::makeNodeSlotwise(
    Tensor value, std::vector<Variable> parents,
    std::function<autograd_detail::GradParts(Impl &, int)>
        slot_backward_fn)
{
    Variable v = makeNode(std::move(value), std::move(parents), {});
    if (!v.impl_->isLeaf) {
        v.impl_->slotBackwardFn = std::move(slot_backward_fn);
    }
    return v;
}

void
Variable::backward()
{
    ADAPIPE_ASSERT(defined(), "backward on undefined variable");
    Tensor seed = Tensor::full(impl_->value.shape(), 1.0f);
    backward(seed);
}

void
Variable::backward(const Tensor &seed)
{
    ADAPIPE_ASSERT(defined(), "backward on undefined variable");
    ADAPIPE_ASSERT(seed.sameShape(impl_->value),
                   "backward seed shape mismatch");
    engine_detail::backwardInline(impl_, seed, nullptr);
}

} // namespace adapipe
