/**
 * @file
 * Dependency-counting ready-queue executor for reverse-mode autograd.
 *
 * Design (after PyTorch's autograd engine): a pre-pass walks the
 * graph once, counts how many gradient contributions each node will
 * receive, and assigns every (consumer, parent-slot) pair a fixed
 * index in the parent's accumulation buffer. Workers pop ready tasks
 * from per-worker deques (stealing from peers when their own queue
 * runs dry); a task runs one node's backward — or one parent slot of
 * it for slot-parallel ops like matmul — and deposits the resulting
 * gradient parts into the parent's buffer at the preassigned index.
 * The last depositor reduces the buffer and enqueues the parent's
 * own tasks.
 *
 * Determinism: contribution indices are assigned in (consumer
 * topological index, parent-slot index) order — exactly the order
 * the historical eager sweep performed its in-place accumulations —
 * and the reduction applies them in that fixed order. Execution
 * order therefore never touches the float stream: gradients are
 * bit-identical at any worker count, which is what keeps pipeline
 * losses equal to the single-threaded trainer's under intra-stage
 * parallelism (the repo's standing bit-equality contract).
 *
 * Threading: BackwardEngine owns threads-1 persistent helper
 * threads, parked between runs; the calling thread always works as
 * worker 0, so threads == 1 never spawns anything and is the
 * single-threaded reference path Variable::backward uses. Helpers
 * record observability into private scratch registries (obs
 * Registries are single-threaded by contract) that are merged into
 * the caller's registry after quiescence, so counters like
 * checkpoint.replays survive parallel execution losslessly.
 */

#ifndef ADAPIPE_AUTOGRAD_ENGINE_H
#define ADAPIPE_AUTOGRAD_ENGINE_H

#include <memory>
#include <unordered_map>

#include "autograd/variable.h"

namespace adapipe {

/** Configuration of a BackwardEngine. */
struct EngineOptions
{
    /**
     * Worker count, calling thread included. Values < 1 clamp to 1;
     * 1 runs entirely inline on the caller (no helper threads).
     */
    int threads = 1;
};

/**
 * Reusable multi-threaded backward executor. One engine per
 * consumer thread (engines are not themselves thread-safe); helper
 * threads persist across run() calls so per-backward thread churn —
 * and the tensor-pool cache loss that came with it — never happens.
 */
class BackwardEngine
{
  public:
    explicit BackwardEngine(EngineOptions opts = {});
    ~BackwardEngine();

    BackwardEngine(const BackwardEngine &) = delete;
    BackwardEngine &operator=(const BackwardEngine &) = delete;

    /** @return the configured worker count (>= 1). */
    int threads() const { return threads_; }

    /**
     * Run backward from @p root seeded with @p seed (same shape as
     * the root's value), accumulating into reachable grads exactly
     * like Variable::backward. Exceptions thrown by backward
     * functions propagate to the caller after all workers quiesce.
     */
    void run(const Variable &root, const Tensor &seed);

  private:
    struct Shared;

    int threads_ = 1;
    std::unique_ptr<Shared> shared_;
};

namespace engine_detail {

/**
 * Redirection table for leaf gradients: when a leaf VarImpl appears
 * as a key, the engine appends its reduced contributions (in
 * deterministic order) to the mapped list instead of touching the
 * leaf's grad tensor. Checkpoint replay uses this to collect the
 * inner pass's parameter gradients race-free, then hands them to the
 * outer engine as ordered addend lists, preserving the exact float
 * sequence the eager engine produced.
 */
using GradCapture =
    std::unordered_map<autograd_detail::VarImpl *,
                       autograd_detail::GradParts>;

/**
 * Single-threaded executor run entirely on the calling thread: the
 * reference all parallel configurations are bit-identical to.
 * @p capture may be null (normal leaf accumulation).
 */
void backwardInline(
    const std::shared_ptr<autograd_detail::VarImpl> &root,
    const Tensor &seed, GradCapture *capture);

} // namespace engine_detail

} // namespace adapipe

#endif // ADAPIPE_AUTOGRAD_ENGINE_H
