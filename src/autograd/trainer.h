/**
 * @file
 * Training harness for the tiny LM: the workload behind the
 * convergence validation (paper Fig. 10).
 *
 * The synthetic task is a learnable deterministic bigram: for a
 * seeded permutation f, the target of token x is f(x). Loss starts
 * near log(vocab) and drops as the model learns the mapping.
 */

#ifndef ADAPIPE_AUTOGRAD_TRAINER_H
#define ADAPIPE_AUTOGRAD_TRAINER_H

#include <cstdint>
#include <string>
#include <vector>

#include "autograd/module.h"

namespace adapipe {

/** Training options. */
struct TrainOptions
{
    int steps = 100;
    int seqLen = 16;
    float lr = 1e-2f;
    bool useAdam = true;
    /** Per-block recomputation strategy (empty = save everything). */
    std::vector<BlockRecompute> recompute;
    /** Seed for the data stream (independent of model init). */
    std::uint64_t dataSeed = 7;
    /**
     * Micro-batches accumulated per optimizer step (gradients are
     * averaged). Micro-batch m of step k draws batch index k*n + m,
     * the exact stream the pipeline runtime consumes, so this is the
     * single-threaded reference for runtime validation. 1 keeps the
     * original one-batch-per-step behaviour bit-identically.
     */
    int microBatches = 1;
};

/** Per-run statistics. */
struct TrainStats
{
    /** Loss at every step. */
    std::vector<double> losses;
    /**
     * Peak live floats across the run, relative to what was alive
     * when the run started (memory proxy excluding other models).
     */
    std::int64_t peakActivationFloats = 0;
};

/**
 * Deterministic synthetic batch: tokens uniform over the vocab,
 * targets given by a seeded permutation of the vocabulary.
 *
 * @param vocab vocabulary size
 * @param seq_len tokens per step
 * @param step training step (varies the tokens, not the mapping)
 * @param seed data seed
 * @param tokens output token ids
 * @param targets output target ids
 */
void makeBigramBatch(int vocab, int seq_len, int step,
                     std::uint64_t seed, std::vector<int> &tokens,
                     std::vector<int> &targets);

/**
 * Train @p model in place for @p opts.steps steps.
 */
TrainStats trainTinyLM(TinyLM &model, const TrainOptions &opts);

/**
 * One row of the uniform recomputation-strategy ladder shared by the
 * training examples (tiny_training, pipeline_training) and tests.
 */
struct RecomputeStrategy
{
    /** CLI key, e.g. "attn". */
    const char *key;
    /** Display name, e.g. "Attention-only recompute". */
    const char *name;
    /** Per-block mode applied uniformly. */
    BlockRecompute mode;
};

/** The ladder: save-all, attention-only, full recompute. */
const std::vector<RecomputeStrategy> &recomputeStrategyTable();

/** @return the ladder entry with @p key, or nullptr. */
const RecomputeStrategy *findRecomputeStrategy(const std::string &key);

} // namespace adapipe

#endif // ADAPIPE_AUTOGRAD_TRAINER_H
