#include "hw/cluster.h"

#include "util/logging.h"

namespace adapipe {

void
ClusterSpec::validate() const
{
    device.validate();
    if (devicesPerNode <= 0 || numNodes <= 0)
        ADAPIPE_FATAL("cluster '", name, "' has no devices");
    if (intraNodeBandwidth <= 0 || interNodeBandwidth <= 0)
        ADAPIPE_FATAL("cluster '", name, "' has invalid bandwidths");
}

ClusterSpec
clusterA(int num_nodes)
{
    ClusterSpec c;
    c.name = "Cluster A (DGX-A100)";
    c.device = a100_80gb();
    c.devicesPerNode = 8;
    c.numNodes = num_nodes;
    // NVLink3: 600 GB/s aggregate, ~250 GB/s effective per direction
    // for ring collectives.
    c.intraNodeBandwidth = 250.0e9;
    // 800 Gbps HCA = 100 GB/s per node, shared by the ranks that
    // actually cross nodes (one PP boundary rank pair at a time).
    c.interNodeBandwidth = 25.0e9;
    c.linkLatency = microseconds(5);
    return c;
}

ClusterSpec
clusterB(int num_nodes)
{
    ClusterSpec c;
    c.name = "Cluster B (Atlas 800)";
    c.device = ascend910_32gb();
    c.devicesPerNode = 8;
    c.numNodes = num_nodes;
    // 4-NPU boards fully meshed by 30 GB/s links.
    c.intraNodeBandwidth = 30.0e9;
    // One 100 Gbps NIC per NPU = 12.5 GB/s.
    c.interNodeBandwidth = 12.5e9;
    c.linkLatency = microseconds(10);
    return c;
}

} // namespace adapipe
