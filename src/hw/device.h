/**
 * @file
 * Accelerator device descriptions.
 *
 * The paper profiles units on real A100 GPUs and Ascend 910 NPUs; we
 * substitute an analytic model parameterised by these specs (see
 * DESIGN.md). A DeviceSpec carries peak half-precision throughput,
 * memory bandwidth and capacity, plus per-kernel launch overhead.
 */

#ifndef ADAPIPE_HW_DEVICE_H
#define ADAPIPE_HW_DEVICE_H

#include <string>

#include "util/units.h"

namespace adapipe {

/**
 * Static description of one accelerator.
 */
struct DeviceSpec
{
    /** Marketing name, e.g. "NVIDIA A100 80GB". */
    std::string name;
    /** On-device memory capacity in bytes. */
    Bytes memCapacity = 0;
    /**
     * Memory unavailable to the training state: driver context,
     * communication-library buffers, kernel workspaces and allocator
     * fragmentation. Real runs OOM once the model state reaches
     * memCapacity - reservedBytes.
     */
    Bytes reservedBytes = 0;
    /** Peak dense fp16/bf16 throughput in FLOP/s. */
    Flops peakFlops = 0;
    /** Peak HBM bandwidth in bytes/s. */
    double memBandwidth = 0;
    /** Fixed overhead charged per kernel / computation unit. */
    Seconds kernelOverhead = 0;

    /** @return capacity usable by parameters and activations. */
    Bytes usableCapacity() const { return memCapacity - reservedBytes; }

    /** Validate the spec; ADAPIPE_FATAL on nonsense values. */
    void validate() const;
};

/** @name Device presets matching the paper's two clusters
 *  @{
 */

/** NVIDIA A100-SXM 80GB (cluster A). */
DeviceSpec a100_80gb();

/** Huawei Ascend 910 32GB (cluster B). */
DeviceSpec ascend910_32gb();

/** A smaller 24 GB device for stress-testing memory limits. */
DeviceSpec genericDevice24gb();

/** @} */

} // namespace adapipe

#endif // ADAPIPE_HW_DEVICE_H
