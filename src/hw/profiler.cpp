#include "hw/profiler.h"

#include <algorithm>

#include "util/logging.h"

namespace adapipe {

OperatorProfiler::OperatorProfiler(const ClusterSpec &cluster,
                                   const ParallelConfig &par)
    : cluster_(cluster), par_(par)
{
    cluster_.validate();
    ADAPIPE_ASSERT(par.tensor >= 1, "invalid tensor parallel size");
    if (par.tensor > cluster.devicesPerNode) {
        ADAPIPE_FATAL("tensor parallel size ", par.tensor,
                      " exceeds devices per node ",
                      cluster.devicesPerNode);
    }
}

double
OperatorProfiler::efficiency(UnitKind kind)
{
    switch (kind) {
      case UnitKind::Gemm: return 0.55;
      case UnitKind::Head: return 0.50;
      case UnitKind::FlashAttention: return 0.40;
      case UnitKind::AttnScores: return 0.35;
      case UnitKind::AttnContext: return 0.35;
      case UnitKind::AttnSoftmax: return 0.20;
      case UnitKind::LayerNorm: return 0.10;
      case UnitKind::Embedding: return 0.10;
    }
    return 0.30;
}

Seconds
OperatorProfiler::collectiveTime(Bytes bytes) const
{
    if (bytes == 0 || par_.tensor <= 1)
        return 0;
    // Ring collective (alpha-beta model): t - 1 latency hops plus
    // the per-rank payload over the intra-node link. The payload is
    // already scaled by (t-1)/t (and doubled for all-reduce) by the
    // unit builder.
    return static_cast<double>(par_.tensor - 1) * cluster_.linkLatency +
           static_cast<double>(bytes) / cluster_.intraNodeBandwidth;
}

Seconds
OperatorProfiler::p2pTime(Bytes bytes) const
{
    if (bytes == 0)
        return 0;
    // Pipeline stages are mapped to different nodes whenever the
    // cluster has more than one node; otherwise the transfer stays on
    // NVLink.
    const double bw = cluster_.numNodes > 1 ? cluster_.interNodeBandwidth
                                            : cluster_.intraNodeBandwidth;
    return cluster_.linkLatency + static_cast<double>(bytes) / bw;
}

UnitProfile
OperatorProfiler::profile(const ComputationUnit &unit) const
{
    const DeviceSpec &dev = cluster_.device;
    const double eff = efficiency(unit.kind);

    auto roofline = [&](Flops flops, Bytes traffic) {
        const Seconds compute = flops / (dev.peakFlops * eff);
        const Seconds memory =
            static_cast<double>(traffic) / dev.memBandwidth;
        return std::max(compute, memory) + dev.kernelOverhead;
    };

    UnitProfile p;
    p.name = unit.name;
    p.kind = unit.kind;
    p.timeFwd = roofline(unit.flopsFwd, unit.trafficFwd) +
                collectiveTime(unit.commBytesFwd);
    p.timeBwd = roofline(unit.flopsBwd, unit.trafficBwd) +
                collectiveTime(unit.commBytesFwd);
    p.memSaved = unit.memSaved;
    p.alwaysSaved = unit.alwaysSaved;
    return p;
}

std::vector<UnitProfile>
OperatorProfiler::profileLayer(const Layer &layer) const
{
    std::vector<UnitProfile> profiles;
    profiles.reserve(layer.units.size());
    for (const auto &u : layer.units)
        profiles.push_back(profile(u));
    return profiles;
}

} // namespace adapipe
