/**
 * @file
 * Unit-profile table serialization.
 *
 * The paper's search engine consumes per-unit (time_f, time_b, mem)
 * tables measured on the real cluster; our analytic profiler is one
 * producer of such tables. This module saves and loads them as JSON
 * so users can substitute *measured* profiles (e.g. exported from a
 * framework's profiler) without touching the search code.
 */

#ifndef ADAPIPE_HW_PROFILE_IO_H
#define ADAPIPE_HW_PROFILE_IO_H

#include <string>
#include <vector>

#include "hw/profiler.h"
#include "util/json.h"
#include "util/parse_result.h"

namespace adapipe {

/** A named table of layer-wise unit profiles. */
struct ProfileTable
{
    /** Provenance label, e.g. "roofline:A100" or "measured:run17". */
    std::string source;
    /** Per layer, the profiles of its units in execution order. */
    std::vector<std::vector<UnitProfile>> layers;
};

/** Serialize a profile table to JSON. */
JsonValue profileTableToJson(const ProfileTable &table);

/** Serialize to a JSON string. */
std::string profileTableToJsonString(const ProfileTable &table,
                                     int indent = 2);

/**
 * Parse a table back; ADAPIPE_FATAL on schema violations. Use
 * tryProfileTableFromJson for untrusted (user-measured) tables.
 */
ProfileTable profileTableFromJson(const JsonValue &json);

/** Parse from a JSON string (fatal on violations). */
ProfileTable profileTableFromJsonString(const std::string &text);

/**
 * Recoverable table parse: schema violations are reported with the
 * offending field's path (e.g. "profile.layers[3][1].kind") instead
 * of terminating the process.
 */
ParseResult<ProfileTable> tryProfileTableFromJson(const JsonValue &json);

/** Recoverable parse from a JSON string (covers syntax errors). */
ParseResult<ProfileTable>
tryProfileTableFromJsonString(const std::string &text);

/**
 * Load a table from a JSON file; missing files, malformed JSON and
 * schema violations all come back as errors naming the path/field.
 */
ParseResult<ProfileTable> loadProfileTableFile(const std::string &path);

} // namespace adapipe

#endif // ADAPIPE_HW_PROFILE_IO_H
