/**
 * @file
 * Unit-profile table serialization.
 *
 * The paper's search engine consumes per-unit (time_f, time_b, mem)
 * tables measured on the real cluster; our analytic profiler is one
 * producer of such tables. This module saves and loads them as JSON
 * so users can substitute *measured* profiles (e.g. exported from a
 * framework's profiler) without touching the search code.
 */

#ifndef ADAPIPE_HW_PROFILE_IO_H
#define ADAPIPE_HW_PROFILE_IO_H

#include <string>
#include <vector>

#include "hw/profiler.h"
#include "util/json.h"

namespace adapipe {

/** A named table of layer-wise unit profiles. */
struct ProfileTable
{
    /** Provenance label, e.g. "roofline:A100" or "measured:run17". */
    std::string source;
    /** Per layer, the profiles of its units in execution order. */
    std::vector<std::vector<UnitProfile>> layers;
};

/** Serialize a profile table to JSON. */
JsonValue profileTableToJson(const ProfileTable &table);

/** Serialize to a JSON string. */
std::string profileTableToJsonString(const ProfileTable &table,
                                     int indent = 2);

/** Parse a table back; ADAPIPE_FATAL on schema violations. */
ProfileTable profileTableFromJson(const JsonValue &json);

/** Parse from a JSON string. */
ProfileTable profileTableFromJsonString(const std::string &text);

} // namespace adapipe

#endif // ADAPIPE_HW_PROFILE_IO_H
