#include "hw/device.h"

#include "util/logging.h"

namespace adapipe {

void
DeviceSpec::validate() const
{
    if (memCapacity == 0 || peakFlops <= 0 || memBandwidth <= 0)
        ADAPIPE_FATAL("device '", name, "' has invalid specs");
    if (reservedBytes >= memCapacity)
        ADAPIPE_FATAL("device '", name, "' reserve exceeds capacity");
}

DeviceSpec
a100_80gb()
{
    DeviceSpec d;
    d.name = "NVIDIA A100 80GB";
    d.memCapacity = GiB(80);
    d.reservedBytes = GiB(2);
    d.peakFlops = teraFlops(312);
    d.memBandwidth = 2.0e12;
    d.kernelOverhead = microseconds(4);
    return d;
}

DeviceSpec
ascend910_32gb()
{
    DeviceSpec d;
    d.name = "Ascend 910 32GB";
    d.memCapacity = GiB(32);
    d.reservedBytes = GiB(1.5);
    d.peakFlops = teraFlops(256);
    d.memBandwidth = 1.2e12;
    d.kernelOverhead = microseconds(6);
    return d;
}

DeviceSpec
genericDevice24gb()
{
    DeviceSpec d;
    d.name = "Generic 24GB";
    d.memCapacity = GiB(24);
    d.reservedBytes = GiB(1);
    d.peakFlops = teraFlops(150);
    d.memBandwidth = 0.9e12;
    d.kernelOverhead = microseconds(5);
    return d;
}

} // namespace adapipe
