#include "hw/profile_io.h"

#include "util/file_io.h"
#include "util/json_reader.h"
#include "util/logging.h"

namespace adapipe {

namespace {

const char *
unitKindKey(UnitKind kind)
{
    return unitKindName(kind);
}

UnitKind
unitKindFromReader(const JsonReader &field)
{
    const std::string &key = field.asString();
    for (UnitKind kind :
         {UnitKind::LayerNorm, UnitKind::Gemm,
          UnitKind::FlashAttention, UnitKind::AttnScores,
          UnitKind::AttnSoftmax, UnitKind::AttnContext,
          UnitKind::Embedding, UnitKind::Head}) {
        if (key == unitKindName(kind))
            return kind;
    }
    field.fail("unknown unit kind '" + key + "'");
}

ProfileTable
tableFromReader(const JsonReader &root)
{
    ProfileTable table;
    table.source = root.key("source").asString();
    const JsonReader layers = root.key("layers");
    for (std::size_t l = 0; l < layers.size(); ++l) {
        const JsonReader layer = layers.at(l);
        std::vector<UnitProfile> units;
        for (std::size_t i = 0; i < layer.size(); ++i) {
            const JsonReader unit = layer.at(i);
            UnitProfile u;
            u.name = unit.key("name").asString();
            u.kind = unitKindFromReader(unit.key("kind"));
            u.timeFwd = unit.key("time_fwd").asNumber();
            u.timeBwd = unit.key("time_bwd").asNumber();
            const std::int64_t mem =
                unit.key("mem_saved").asInteger();
            if (mem < 0)
                unit.key("mem_saved").fail("must be non-negative");
            u.memSaved = static_cast<Bytes>(mem);
            u.alwaysSaved = unit.key("always_saved").asBool();
            if (u.timeFwd < 0)
                unit.key("time_fwd").fail("must be non-negative");
            if (u.timeBwd < 0)
                unit.key("time_bwd").fail("must be non-negative");
            units.push_back(std::move(u));
        }
        table.layers.push_back(std::move(units));
    }
    return table;
}

} // namespace

JsonValue
profileTableToJson(const ProfileTable &table)
{
    JsonValue root = JsonValue::object();
    root.set("source", JsonValue::string(table.source));
    JsonValue layers = JsonValue::array();
    for (const auto &layer : table.layers) {
        JsonValue units = JsonValue::array();
        for (const UnitProfile &u : layer) {
            JsonValue unit = JsonValue::object();
            unit.set("name", JsonValue::string(u.name));
            unit.set("kind", JsonValue::string(unitKindKey(u.kind)));
            unit.set("time_fwd", JsonValue::number(u.timeFwd));
            unit.set("time_bwd", JsonValue::number(u.timeBwd));
            unit.set("mem_saved",
                     JsonValue::integer(
                         static_cast<std::int64_t>(u.memSaved)));
            unit.set("always_saved",
                     JsonValue::boolean(u.alwaysSaved));
            units.push(std::move(unit));
        }
        layers.push(std::move(units));
    }
    root.set("layers", std::move(layers));
    return root;
}

std::string
profileTableToJsonString(const ProfileTable &table, int indent)
{
    return profileTableToJson(table).dump(indent);
}

ProfileTable
profileTableFromJson(const JsonValue &json)
{
    ParseResult<ProfileTable> r = tryProfileTableFromJson(json);
    if (!r.ok())
        ADAPIPE_FATAL(r.error());
    return std::move(r).value();
}

ProfileTable
profileTableFromJsonString(const std::string &text)
{
    ParseResult<ProfileTable> r = tryProfileTableFromJsonString(text);
    if (!r.ok())
        ADAPIPE_FATAL(r.error());
    return std::move(r).value();
}

ParseResult<ProfileTable>
tryProfileTableFromJson(const JsonValue &json)
{
    return readJson<ProfileTable>(json, "profile", tableFromReader);
}

ParseResult<ProfileTable>
tryProfileTableFromJsonString(const std::string &text)
{
    ParseResult<JsonValue> doc = JsonValue::tryParse(text);
    if (!doc.ok())
        return ParseResult<ProfileTable>::failure(doc.error());
    return tryProfileTableFromJson(doc.value());
}

ParseResult<ProfileTable>
loadProfileTableFile(const std::string &path)
{
    ParseResult<std::string> text = readTextFile(path);
    if (!text.ok())
        return ParseResult<ProfileTable>::failure(text.error());
    ParseResult<ProfileTable> table =
        tryProfileTableFromJsonString(text.value());
    if (!table.ok())
        return ParseResult<ProfileTable>::failure(path + ": " +
                                                  table.error());
    return table;
}

} // namespace adapipe
