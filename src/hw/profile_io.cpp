#include "hw/profile_io.h"

#include "util/logging.h"

namespace adapipe {

namespace {

const char *
unitKindKey(UnitKind kind)
{
    return unitKindName(kind);
}

UnitKind
unitKindFromKey(const std::string &key)
{
    for (UnitKind kind :
         {UnitKind::LayerNorm, UnitKind::Gemm,
          UnitKind::FlashAttention, UnitKind::AttnScores,
          UnitKind::AttnSoftmax, UnitKind::AttnContext,
          UnitKind::Embedding, UnitKind::Head}) {
        if (key == unitKindName(kind))
            return kind;
    }
    ADAPIPE_FATAL("unknown unit kind '", key, "'");
}

} // namespace

JsonValue
profileTableToJson(const ProfileTable &table)
{
    JsonValue root = JsonValue::object();
    root.set("source", JsonValue::string(table.source));
    JsonValue layers = JsonValue::array();
    for (const auto &layer : table.layers) {
        JsonValue units = JsonValue::array();
        for (const UnitProfile &u : layer) {
            JsonValue unit = JsonValue::object();
            unit.set("name", JsonValue::string(u.name));
            unit.set("kind", JsonValue::string(unitKindKey(u.kind)));
            unit.set("time_fwd", JsonValue::number(u.timeFwd));
            unit.set("time_bwd", JsonValue::number(u.timeBwd));
            unit.set("mem_saved",
                     JsonValue::integer(
                         static_cast<std::int64_t>(u.memSaved)));
            unit.set("always_saved",
                     JsonValue::boolean(u.alwaysSaved));
            units.push(std::move(unit));
        }
        layers.push(std::move(units));
    }
    root.set("layers", std::move(layers));
    return root;
}

std::string
profileTableToJsonString(const ProfileTable &table, int indent)
{
    return profileTableToJson(table).dump(indent);
}

ProfileTable
profileTableFromJson(const JsonValue &json)
{
    ProfileTable table;
    table.source = json.at("source").asString();
    for (const JsonValue &layer : json.at("layers").elements()) {
        std::vector<UnitProfile> units;
        for (const JsonValue &unit : layer.elements()) {
            UnitProfile u;
            u.name = unit.at("name").asString();
            u.kind = unitKindFromKey(unit.at("kind").asString());
            u.timeFwd = unit.at("time_fwd").asNumber();
            u.timeBwd = unit.at("time_bwd").asNumber();
            u.memSaved =
                static_cast<Bytes>(unit.at("mem_saved").asInteger());
            u.alwaysSaved = unit.at("always_saved").asBool();
            ADAPIPE_ASSERT(u.timeFwd >= 0 && u.timeBwd >= 0,
                           "negative time in profile for ", u.name);
            units.push_back(std::move(u));
        }
        table.layers.push_back(std::move(units));
    }
    return table;
}

ProfileTable
profileTableFromJsonString(const std::string &text)
{
    return profileTableFromJson(JsonValue::parse(text));
}

} // namespace adapipe
