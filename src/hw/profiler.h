/**
 * @file
 * Analytic operator profiler.
 *
 * Stands in for the paper's "preliminary run of 5-10 iterations
 * recording timestamps around each computation unit" (Sec. 4.2).
 * Unit time is a roofline estimate: the maximum of compute time
 * (FLOPs over derated peak throughput) and memory time (traffic over
 * HBM bandwidth), plus kernel overhead and the unit's attached
 * tensor-parallel collective time.
 */

#ifndef ADAPIPE_HW_PROFILER_H
#define ADAPIPE_HW_PROFILER_H

#include <vector>

#include "hw/cluster.h"
#include "model/parallel.h"
#include "model/units.h"
#include "util/units.h"

namespace adapipe {

/**
 * Hardware-resolved cost of one computation unit: the table entry
 * the search algorithms consume.
 */
struct UnitProfile
{
    /** Name copied from the computation unit. */
    std::string name;
    /** Operator class copied from the computation unit. */
    UnitKind kind = UnitKind::Gemm;
    /** Forward time of the unit, Time_f(U). */
    Seconds timeFwd = 0;
    /** Backward time of the unit (excl. recompute), Time_b(U). */
    Seconds timeBwd = 0;
    /** Activation bytes alive until backward when saved, Mem(U). */
    Bytes memSaved = 0;
    /** Sec. 4.2 always-saved restriction flag. */
    bool alwaysSaved = false;
};

/**
 * Converts unit workloads into times for one device/cluster.
 */
class OperatorProfiler
{
  public:
    /**
     * @param cluster hardware the model runs on (validated)
     * @param par parallel strategy; tensor size chooses the
     *        collective bandwidth domain
     */
    OperatorProfiler(const ClusterSpec &cluster,
                     const ParallelConfig &par);

    /** Profile a single unit. */
    UnitProfile profile(const ComputationUnit &unit) const;

    /** Profile every unit of a layer, preserving order. */
    std::vector<UnitProfile> profileLayer(const Layer &layer) const;

    /**
     * Time of the point-to-point activation transfer between two
     * adjacent pipeline stages for one micro-batch.
     *
     * @param bytes payload per rank
     */
    Seconds p2pTime(Bytes bytes) const;

    /**
     * Time of a tensor-parallel collective with the given per-rank
     * payload (already scaled by (t-1)/t by the unit builder).
     */
    Seconds collectiveTime(Bytes bytes) const;

    /**
     * Achievable fraction of peak FLOP/s for a unit kind; models the
     * efficiency gap between e.g. large GEMMs and attention kernels.
     */
    static double efficiency(UnitKind kind);

  private:
    ClusterSpec cluster_;
    ParallelConfig par_;
};

} // namespace adapipe

#endif // ADAPIPE_HW_PROFILER_H
