/**
 * @file
 * Cluster descriptions: node topology and interconnect bandwidths.
 */

#ifndef ADAPIPE_HW_CLUSTER_H
#define ADAPIPE_HW_CLUSTER_H

#include <string>

#include "hw/device.h"
#include "util/units.h"

namespace adapipe {

/**
 * A homogeneous cluster of multi-accelerator nodes.
 *
 * Tensor parallelism is mapped inside a node (the paper requires
 * t <= devicesPerNode); pipeline stages talk over the inter-node
 * network.
 */
struct ClusterSpec
{
    /** Human-readable name. */
    std::string name;
    /** Accelerator model installed in every node. */
    DeviceSpec device;
    /** Accelerators per node. */
    int devicesPerNode = 8;
    /** Number of nodes. */
    int numNodes = 1;
    /**
     * Effective per-direction bandwidth between two accelerators in
     * the same node (NVLink / on-board mesh), bytes/s.
     */
    double intraNodeBandwidth = 0;
    /** Effective bandwidth between nodes per accelerator, bytes/s. */
    double interNodeBandwidth = 0;
    /** One-way message latency between pipeline stages. */
    Seconds linkLatency = 0;

    /** @return total accelerator count. */
    int totalDevices() const { return devicesPerNode * numNodes; }

    /** Validate the spec; ADAPIPE_FATAL on nonsense values. */
    void validate() const;
};

/** @name Cluster presets (paper Sec. 7.1)
 *  @{
 */

/**
 * Cluster A: DGX-A100 nodes, 8x A100 80GB with NVLink, 800 Gbps
 * InfiniBand between nodes.
 *
 * @param num_nodes node count (the paper uses up to 8)
 */
ClusterSpec clusterA(int num_nodes);

/**
 * Cluster B: Atlas 800 nodes, 8x Ascend 910 32GB, 30 GB/s on-board
 * mesh, one 100 Gbps NIC per NPU.
 *
 * @param num_nodes node count (the paper uses up to 256)
 */
ClusterSpec clusterB(int num_nodes);

/** @} */

} // namespace adapipe

#endif // ADAPIPE_HW_CLUSTER_H
