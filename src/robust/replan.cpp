#include "robust/replan.h"

#include <iomanip>
#include <ostream>

#include "obs/macros.h"
#include "sim/pipeline_sim.h"
#include "sim/schedule.h"
#include "util/units.h"

namespace adapipe {

ReplanResult
replanDegraded(const ProfiledModel &pm, const DegradedScenario &scenario,
               StageCostOptions opts)
{
    ADAPIPE_OBS_SPAN(obs_span, "robust.replan");
    ADAPIPE_OBS_COUNT("robust.replans", 1);

    ReplanResult result;
    const int p = pm.par.pipeline;
    if (scenario.lostStages < 0 || scenario.lostStages >= p) {
        result.reason = "lost stages must be in [0, pipeline)";
        return result;
    }
    const int surviving = p - scenario.lostStages;
    if (scenario.stragglerStage >= surviving) {
        result.reason = "straggler stage out of the surviving range";
        return result;
    }
    if (scenario.stragglerFactor < 1.0) {
        result.reason = "straggler factor must be >= 1";
        return result;
    }
    if (scenario.memFactor <= 0 || scenario.memFactor > 1.0) {
        result.reason = "memory factor must be in (0, 1]";
        return result;
    }
    if (scenario.hostLinkFactor <= 0 || scenario.hostLinkFactor > 1.0) {
        result.reason = "host link factor must be in (0, 1]";
        return result;
    }

    ProfiledModel degraded = pm;
    degraded.par.pipeline = surviving;

    StageCostOptions degraded_opts = opts;
    Bytes cap = opts.memCapacityOverride > 0 ? opts.memCapacityOverride
                                             : pm.memCapacity;
    if (scenario.memFactor < 1.0) {
        cap = static_cast<Bytes>(scenario.memFactor *
                                 static_cast<double>(cap));
    }
    degraded_opts.memCapacityOverride = cap;
    if (scenario.stragglerStage >= 0 &&
        scenario.stragglerFactor != 1.0) {
        degraded_opts.stageTimeFactor.assign(surviving, 1.0);
        degraded_opts.stageTimeFactor[scenario.stragglerStage] =
            scenario.stragglerFactor;
    }
    if (degraded_opts.offload.enabled &&
        scenario.hostLinkFactor < 1.0) {
        // A slower PCIe link raises every unit's evict+fetch cost;
        // the tri-choice knapsack reacts by moving marginal units
        // back to recomputation.
        degraded_opts.offload.bandwidth *= scenario.hostLinkFactor;
    }

    PlanResult planned =
        makePlan(degraded, PlanMethod::AdaPipe, degraded_opts);
    if (!planned.ok) {
        ADAPIPE_OBS_COUNT("robust.replan_infeasible", 1);
        result.reason = planned.oomReason;
        return result;
    }

    result.ok = true;
    result.plan = std::move(planned.plan);
    result.degradedCapacity = cap;
    result.healthyTimes = planStageTimes(result.plan);
    if (scenario.stragglerStage >= 0) {
        StageTimes &st = result.healthyTimes[scenario.stragglerStage];
        st.fwd /= scenario.stragglerFactor;
        st.bwd /= scenario.stragglerFactor;
    }
    return result;
}

ReplanResult
replanDegradedIncremental(const ProfiledModel &pm,
                          const DegradedScenario &scenario,
                          const PipelinePlan &base,
                          StageCostOptions opts)
{
    const bool neutral =
        (scenario.stragglerStage < 0 ||
         scenario.stragglerFactor == 1.0) &&
        scenario.memFactor == 1.0 && scenario.lostStages == 0 &&
        scenario.hostLinkFactor == 1.0;
    const bool base_matches =
        base.method == PlanMethod::AdaPipe &&
        base.virtualStages == 1 &&
        static_cast<int>(base.stages.size()) == pm.par.pipeline;
    if (neutral && base_matches) {
        ADAPIPE_OBS_COUNT("robust.replan_shortcircuit", 1);
        ReplanResult result;
        result.ok = true;
        result.plan = base;
        result.degradedCapacity = opts.memCapacityOverride > 0
                                      ? opts.memCapacityOverride
                                      : pm.memCapacity;
        result.healthyTimes = planStageTimes(base);
        return result;
    }
    return replanDegraded(pm, scenario, opts);
}

std::vector<StageTimes>
planStageTimes(const PipelinePlan &plan)
{
    std::vector<StageTimes> times;
    times.reserve(plan.stages.size());
    for (const StagePlan &sp : plan.stages)
        times.push_back({sp.timeFwd, sp.timeBwd});
    return times;
}

Seconds
simulateUnderFault(const std::vector<StageTimes> &healthy_times,
                   int micro_batches, const FaultSpec &faults)
{
    const int p = static_cast<int>(healthy_times.size());
    const Schedule sched = build1F1B(p, micro_batches);
    SimOptions opts;
    // Plan stage times already include the boundary transfer.
    opts.p2pTime = 0;
    opts.faults = faults;
    return simulate(sched, healthy_times, opts).iterationTime;
}

RobustnessReport
buildSensitivityReport(const ProfiledModel &pm,
                       const PipelinePlan &original,
                       int straggler_stage,
                       const std::vector<double> &severities,
                       std::uint64_t seed, StageCostOptions opts)
{
    ADAPIPE_OBS_SPAN(obs_span, "robust.sensitivity_report");

    RobustnessReport report;
    report.model = pm.model.name;
    report.stragglerStage = straggler_stage;
    report.seed = seed;

    const int n = original.microBatches;
    const std::vector<StageTimes> original_times =
        planStageTimes(original);
    {
        FaultSpec none;
        none.seed = seed;
        report.healthyTime = simulateUnderFault(original_times, n, none);
    }

    for (double severity : severities) {
        SensitivityRow row;
        row.severity = severity;

        FaultSpec faults;
        faults.seed = seed;
        if (severity > 1.0)
            faults.slowdowns.push_back({straggler_stage, severity});
        row.originalTime = simulateUnderFault(original_times, n, faults);

        DegradedScenario scenario;
        scenario.stragglerStage = straggler_stage;
        scenario.stragglerFactor = severity;
        const ReplanResult replanned =
            replanDegraded(pm, scenario, opts);
        if (replanned.ok) {
            row.replanOk = true;
            row.replannedTime =
                simulateUnderFault(replanned.healthyTimes,
                                   replanned.plan.microBatches,
                                   faults);
            row.speedup = row.replannedTime > 0
                              ? row.originalTime / row.replannedTime
                              : 1.0;
        } else {
            row.replannedTime = row.originalTime;
        }
        ADAPIPE_OBS_COUNT("robust.report_rows", 1);
        report.rows.push_back(row);
    }
    return report;
}

JsonValue
reportToJson(const RobustnessReport &report)
{
    JsonValue root = JsonValue::object();
    root.set("model", JsonValue::string(report.model));
    root.set("straggler_stage",
             JsonValue::integer(report.stragglerStage));
    root.set("seed", JsonValue::integer(
                         static_cast<std::int64_t>(report.seed)));
    root.set("healthy_time", JsonValue::number(report.healthyTime));
    JsonValue rows = JsonValue::array();
    for (const SensitivityRow &row : report.rows) {
        JsonValue entry = JsonValue::object();
        entry.set("severity", JsonValue::number(row.severity));
        entry.set("original_time",
                  JsonValue::number(row.originalTime));
        entry.set("replanned_time",
                  JsonValue::number(row.replannedTime));
        entry.set("replan_ok", JsonValue::boolean(row.replanOk));
        entry.set("speedup", JsonValue::number(row.speedup));
        rows.push(std::move(entry));
    }
    root.set("rows", std::move(rows));
    return root;
}

void
printReport(const RobustnessReport &report, std::ostream &os)
{
    os << "Robustness report: " << report.model << ", straggler on stage "
       << report.stragglerStage << " (seed " << report.seed << ")\n";
    os << "healthy iteration: " << formatSeconds(report.healthyTime)
       << "\n\n";
    os << std::left << std::setw(10) << "severity" << std::setw(14)
       << "original" << std::setw(14) << "replanned" << std::setw(10)
       << "speedup" << "note\n";
    for (const SensitivityRow &row : report.rows) {
        os << std::left << std::setw(10)
           << formatDouble(row.severity, 2) << std::setw(14)
           << formatSeconds(row.originalTime) << std::setw(14)
           << formatSeconds(row.replannedTime) << std::setw(10)
           << formatDouble(row.speedup, 3)
           << (row.replanOk ? "" : "replan failed") << "\n";
    }
}

} // namespace adapipe
