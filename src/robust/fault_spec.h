/**
 * @file
 * Deterministic fault-injection specification for the simulator.
 *
 * A FaultSpec describes a reproducible fault scenario: per-device
 * slowdown factors (stragglers), transient op stalls with
 * retry/backoff delay modelling, jittered point-to-point transfer
 * times and an optional hard device failure at a given time.
 *
 * All randomness is *counter-based*: every draw hashes the spec's
 * seed together with a stable op identity (SplitMix64-style
 * finalizers), so a fixed seed produces bit-for-bit identical fault
 * realisations regardless of evaluation order, simulator mode or
 * thread count.
 */

#ifndef ADAPIPE_ROBUST_FAULT_SPEC_H
#define ADAPIPE_ROBUST_FAULT_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/parse_result.h"
#include "util/units.h"

namespace adapipe {

/** A straggling device: every op on it runs @ref factor times slower. */
struct DeviceSlowdown
{
    int device = 0;
    /** Duration multiplier, >= 1 for a straggler. */
    double factor = 1.0;
};

/**
 * Transient op stalls. Each execution attempt of an op fails
 * independently with @ref probability; a failed attempt costs one
 * backoff delay (base * 2^attempt) before the retry. After
 * @ref maxRetries failed attempts the op proceeds anyway (the real
 * system would escalate; the simulator only models the lost time).
 */
struct TransientStalls
{
    /** Per-attempt stall probability in [0, 1). */
    double probability = 0.0;
    /** Backoff base delay for the first retry. */
    Seconds base = 0.0;
    /** Maximum number of backoff rounds per op. */
    int maxRetries = 3;
};

/** Hard failure: @ref device starts nothing at or after @ref at. */
struct DeviceFailure
{
    /** Failed device id, or -1 for no failure. */
    int device = -1;
    /** Time of failure (seconds into the iteration). */
    Seconds at = 0.0;
};

/**
 * A complete, seeded fault scenario.
 */
struct FaultSpec
{
    /** Seed of all per-op draws (stalls and jitter). */
    std::uint64_t seed = 0;
    /** Straggling devices. */
    std::vector<DeviceSlowdown> slowdowns;
    /** Transient stall model. */
    TransientStalls stalls;
    /**
     * Relative p2p jitter: each cross-device transfer time is
     * multiplied by a factor drawn uniformly from
     * [1, 1 + p2pJitter].
     */
    double p2pJitter = 0.0;
    /** Optional hard device failure. */
    DeviceFailure failure;

    /** @return true when the spec injects no fault at all. */
    bool empty() const;

    /** @return slowdown factor of @p device (1.0 when healthy). */
    double slowdownFactor(int device) const;

    /**
     * Total retry/backoff delay charged to the op identified by
     * @p opId. Deterministic in (seed, opId).
     */
    Seconds stallDelay(std::uint64_t opId) const;

    /**
     * Jitter multiplier in [1, 1 + p2pJitter] for the transfer
     * identified by @p edgeId. Deterministic in (seed, edgeId).
     */
    double jitterFactor(std::uint64_t edgeId) const;
};

/**
 * Stable 64-bit identity for an op, built from its schedule
 * coordinates rather than its array index so draws survive
 * re-orderings of the op list.
 */
std::uint64_t faultOpId(int chain, int pos, int micro_batch,
                        bool forward);

/** Stable identity for the transfer feeding @p to from @p from. */
std::uint64_t faultEdgeId(std::uint64_t from, std::uint64_t to);

/** Serialize a fault spec to JSON. */
JsonValue faultSpecToJson(const FaultSpec &spec);

/**
 * Recoverable parse of a fault spec; errors name the offending
 * field (e.g. "fault.slowdowns[0].factor").
 */
ParseResult<FaultSpec> faultSpecFromJson(const JsonValue &json);

/** Recoverable parse from a JSON string (covers syntax errors). */
ParseResult<FaultSpec> faultSpecFromJsonString(const std::string &text);

/** Load a fault spec from a JSON file; errors name the path/field. */
ParseResult<FaultSpec> loadFaultSpecFile(const std::string &path);

} // namespace adapipe

#endif // ADAPIPE_ROBUST_FAULT_SPEC_H
