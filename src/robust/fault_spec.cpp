#include "robust/fault_spec.h"

#include "util/file_io.h"
#include "util/json_reader.h"

namespace adapipe {

namespace {

/** SplitMix64 finalizer: the avalanche core of the seeding scheme. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/** Counter-based uniform draw in [0, 1) from (seed, id, stream). */
double
hashUniform(std::uint64_t seed, std::uint64_t id, std::uint64_t stream)
{
    const std::uint64_t h = mix64(mix64(seed ^ mix64(stream)) ^ id);
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kStreamStall = 0x5354414C4Cull;  // "STALL"
constexpr std::uint64_t kStreamJitter = 0x4A4954544552ull; // "JITTER"

} // namespace

bool
FaultSpec::empty() const
{
    return slowdowns.empty() && stalls.probability <= 0 &&
           p2pJitter <= 0 && failure.device < 0;
}

double
FaultSpec::slowdownFactor(int device) const
{
    double factor = 1.0;
    for (const DeviceSlowdown &s : slowdowns) {
        if (s.device == device)
            factor *= s.factor;
    }
    return factor;
}

Seconds
FaultSpec::stallDelay(std::uint64_t opId) const
{
    if (stalls.probability <= 0 || stalls.base <= 0)
        return 0;
    Seconds delay = 0;
    Seconds backoff = stalls.base;
    for (int attempt = 0; attempt < stalls.maxRetries; ++attempt) {
        const double u = hashUniform(
            seed, opId, kStreamStall + static_cast<std::uint64_t>(attempt));
        if (u >= stalls.probability)
            break;
        delay += backoff;
        backoff *= 2;
    }
    return delay;
}

double
FaultSpec::jitterFactor(std::uint64_t edgeId) const
{
    if (p2pJitter <= 0)
        return 1.0;
    return 1.0 + p2pJitter * hashUniform(seed, edgeId, kStreamJitter);
}

std::uint64_t
faultOpId(int chain, int pos, int micro_batch, bool forward)
{
    std::uint64_t id = static_cast<std::uint64_t>(chain & 0xFFFF);
    id = (id << 16) | static_cast<std::uint64_t>(pos & 0xFFFF);
    id = (id << 24) | static_cast<std::uint64_t>(micro_batch & 0xFFFFFF);
    id = (id << 1) | (forward ? 1u : 0u);
    return mix64(id);
}

std::uint64_t
faultEdgeId(std::uint64_t from, std::uint64_t to)
{
    return mix64(from ^ mix64(to));
}

JsonValue
faultSpecToJson(const FaultSpec &spec)
{
    JsonValue root = JsonValue::object();
    root.set("seed", JsonValue::integer(
                         static_cast<std::int64_t>(spec.seed)));
    JsonValue slowdowns = JsonValue::array();
    for (const DeviceSlowdown &s : spec.slowdowns) {
        JsonValue entry = JsonValue::object();
        entry.set("device", JsonValue::integer(s.device));
        entry.set("factor", JsonValue::number(s.factor));
        slowdowns.push(std::move(entry));
    }
    root.set("slowdowns", std::move(slowdowns));
    JsonValue stalls = JsonValue::object();
    stalls.set("probability", JsonValue::number(spec.stalls.probability));
    stalls.set("base", JsonValue::number(spec.stalls.base));
    stalls.set("max_retries", JsonValue::integer(spec.stalls.maxRetries));
    root.set("stalls", std::move(stalls));
    root.set("p2p_jitter", JsonValue::number(spec.p2pJitter));
    JsonValue failure = JsonValue::object();
    failure.set("device", JsonValue::integer(spec.failure.device));
    failure.set("at", JsonValue::number(spec.failure.at));
    root.set("failure", std::move(failure));
    return root;
}

ParseResult<FaultSpec>
faultSpecFromJson(const JsonValue &json)
{
    return readJson<FaultSpec>(json, "fault", [](const JsonReader &root) {
        FaultSpec spec;
        if (root.has("seed")) {
            spec.seed = static_cast<std::uint64_t>(
                root.key("seed").asInteger());
        }
        if (root.has("slowdowns")) {
            const JsonReader slowdowns = root.key("slowdowns");
            for (std::size_t i = 0; i < slowdowns.size(); ++i) {
                const JsonReader entry = slowdowns.at(i);
                DeviceSlowdown s;
                s.device = static_cast<int>(
                    entry.key("device").asInteger());
                s.factor = entry.key("factor").asNumber();
                if (s.device < 0)
                    entry.key("device").fail("must be non-negative");
                if (s.factor < 1.0)
                    entry.key("factor").fail("must be >= 1");
                spec.slowdowns.push_back(s);
            }
        }
        if (root.has("stalls")) {
            const JsonReader stalls = root.key("stalls");
            spec.stalls.probability =
                stalls.key("probability").asNumber();
            if (spec.stalls.probability < 0 ||
                spec.stalls.probability >= 1) {
                stalls.key("probability").fail("must be in [0, 1)");
            }
            spec.stalls.base = stalls.key("base").asNumber();
            if (spec.stalls.base < 0)
                stalls.key("base").fail("must be non-negative");
            if (stalls.has("max_retries")) {
                spec.stalls.maxRetries = static_cast<int>(
                    stalls.key("max_retries").asInteger());
                if (spec.stalls.maxRetries < 0)
                    stalls.key("max_retries").fail(
                        "must be non-negative");
            }
        }
        if (root.has("p2p_jitter")) {
            spec.p2pJitter = root.key("p2p_jitter").asNumber();
            if (spec.p2pJitter < 0)
                root.key("p2p_jitter").fail("must be non-negative");
        }
        if (root.has("failure")) {
            const JsonReader failure = root.key("failure");
            spec.failure.device = static_cast<int>(
                failure.key("device").asInteger());
            spec.failure.at = failure.key("at").asNumber();
            if (spec.failure.at < 0)
                failure.key("at").fail("must be non-negative");
        }
        return spec;
    });
}

ParseResult<FaultSpec>
faultSpecFromJsonString(const std::string &text)
{
    ParseResult<JsonValue> doc = JsonValue::tryParse(text);
    if (!doc.ok())
        return ParseResult<FaultSpec>::failure(doc.error());
    return faultSpecFromJson(doc.value());
}

ParseResult<FaultSpec>
loadFaultSpecFile(const std::string &path)
{
    ParseResult<std::string> text = readTextFile(path);
    if (!text.ok())
        return ParseResult<FaultSpec>::failure(text.error());
    ParseResult<FaultSpec> spec =
        faultSpecFromJsonString(text.value());
    if (!spec.ok())
        return ParseResult<FaultSpec>::failure(path + ": " +
                                               spec.error());
    return spec;
}

} // namespace adapipe
