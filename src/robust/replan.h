/**
 * @file
 * Degraded-mode replanning and robustness reporting.
 *
 * When the cluster degrades mid-training — a device straggles, loses
 * part of its memory, or a node drops out — the original AdaPipe
 * plan stops being optimal (or feasible). The replanner re-runs both
 * DP levels against the degraded cluster: the recomputation knapsack
 * under the reduced memory budget and the partition DP over the
 * surviving stages, with the straggler's slowdown folded into its
 * stage costs so the DP shifts layers away from the slow device.
 *
 * The sensitivity report quantifies the payoff: for a sweep of
 * straggler severities it simulates the original plan and the
 * replanned plan under the *same* seeded fault scenario and tabulates
 * the iteration-time degradation of each.
 */

#ifndef ADAPIPE_ROBUST_REPLAN_H
#define ADAPIPE_ROBUST_REPLAN_H

#include <iosfwd>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/plan.h"
#include "core/planner.h"
#include "core/profiled_model.h"
#include "robust/fault_spec.h"
#include "util/json.h"

namespace adapipe {

/**
 * A degraded cluster: what changed relative to the profiled healthy
 * cluster.
 */
struct DegradedScenario
{
    /** Stage whose device straggles, or -1 for none. */
    int stragglerStage = -1;
    /** Execution-time multiplier of the straggler (>= 1). */
    double stragglerFactor = 1.0;
    /** Usable-memory multiplier applied to every device (<= 1). */
    double memFactor = 1.0;
    /** Pipeline stages lost to node failure (shrinks the pipeline). */
    int lostStages = 0;
    /**
     * Host-link (PCIe) bandwidth multiplier in (0, 1]: a degraded
     * offload path. Replanning scales OffloadOptions::bandwidth by
     * this factor, so the tri-choice knapsack shifts units from
     * host offload back to recomputation when the link slows down.
     * Ignored when the baseline options do not enable offload.
     */
    double hostLinkFactor = 1.0;
};

/**
 * Outcome of degraded-mode replanning.
 */
struct ReplanResult
{
    bool ok = false;
    /** Why replanning failed (invalid scenario or OOM). */
    std::string reason;
    /**
     * The degraded plan. Its stage times are *wall-clock under the
     * fault*: the straggler stage's F/B include the slowdown factor.
     */
    PipelinePlan plan;
    /**
     * Per-stage times with the slowdown divided back out — what a
     * healthy device would take, i.e. the durations to feed a
     * simulator that applies the fault itself.
     */
    std::vector<StageTimes> healthyTimes;
    /** Effective per-device capacity the plan was solved against. */
    Bytes degradedCapacity = 0;
};

/**
 * Re-plan @p pm for @p scenario with the AdaPipe method.
 *
 * @param pm healthy profiled model
 * @param scenario the degradation
 * @param opts baseline stage-cost options; the scenario's slowdown
 *        and capacity reduction are layered on top
 */
ReplanResult replanDegraded(const ProfiledModel &pm,
                            const DegradedScenario &scenario,
                            StageCostOptions opts = {});

/**
 * Incremental variant for services holding a cached healthy plan.
 *
 * A neutral scenario (no straggler slowdown, full memory, no lost
 * stages) short-circuits: @p base is returned as-is without re-running
 * either DP, with healthyTimes read off the base plan. Any real
 * degradation delegates to replanDegraded(), so the result is
 * identical to a direct call — the speedup for repeated fault reports
 * comes from the shared knapsack memo in @p opts, not from a weaker
 * solve. The short-circuit requires @p base to be a plain (v = 1)
 * AdaPipe plan for @p pm; anything else also delegates.
 */
ReplanResult replanDegradedIncremental(const ProfiledModel &pm,
                                       const DegradedScenario &scenario,
                                       const PipelinePlan &base,
                                       StageCostOptions opts = {});

/** @return per-stage F/B times of @p plan, stage 0 first. */
std::vector<StageTimes> planStageTimes(const PipelinePlan &plan);

/**
 * Simulate one 1F1B iteration of a plan under @p faults.
 *
 * @param healthy_times per-stage durations on healthy devices (the
 *        simulator applies the fault's slowdowns itself)
 * @param micro_batches micro-batches per pipeline
 * @param faults seeded fault scenario
 * @return simulated iteration time
 */
Seconds simulateUnderFault(const std::vector<StageTimes> &healthy_times,
                           int micro_batches, const FaultSpec &faults);

/** One severity step of the sensitivity sweep. */
struct SensitivityRow
{
    /** Straggler slowdown factor of this step. */
    double severity = 1.0;
    /** Original plan's simulated iteration time under the fault. */
    Seconds originalTime = 0;
    /** Replanned plan's simulated iteration time under the fault. */
    Seconds replannedTime = 0;
    /** False when replanning failed (row keeps the original time). */
    bool replanOk = false;
    /** originalTime / replannedTime (1 when replanning failed). */
    double speedup = 1.0;
};

/**
 * Robustness report: iteration-time degradation vs. straggler
 * severity, original vs. replanned.
 */
struct RobustnessReport
{
    /** Model the plans were built for. */
    std::string model;
    /** Device/stage hit by the straggler. */
    int stragglerStage = 0;
    /** Seed of the injected fault scenarios. */
    std::uint64_t seed = 0;
    /** Fault-free iteration time of the original plan. */
    Seconds healthyTime = 0;
    /** One row per severity, ascending. */
    std::vector<SensitivityRow> rows;
};

/**
 * Build the sensitivity report for @p original on @p pm.
 *
 * @param pm healthy profiled model the plan was built from
 * @param original the healthy AdaPipe plan
 * @param straggler_stage stage whose device straggles
 * @param severities slowdown factors to sweep (each >= 1)
 * @param seed fault-scenario seed (stalls/jitter determinism)
 * @param opts stage-cost options used for replanning
 */
RobustnessReport
buildSensitivityReport(const ProfiledModel &pm,
                       const PipelinePlan &original,
                       int straggler_stage,
                       const std::vector<double> &severities,
                       std::uint64_t seed,
                       StageCostOptions opts = {});

/** Serialize a report to JSON. */
JsonValue reportToJson(const RobustnessReport &report);

/** Print a human-readable sensitivity table. */
void printReport(const RobustnessReport &report, std::ostream &os);

} // namespace adapipe

#endif // ADAPIPE_ROBUST_REPLAN_H
