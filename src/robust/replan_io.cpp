#include "robust/replan_io.h"

#include "core/plan_io.h"
#include "util/canonical_json.h"
#include "util/file_io.h"
#include "util/json_reader.h"

namespace adapipe {

namespace {

bool
isHex16(const std::string &s)
{
    if (s.size() != 16)
        return false;
    for (char c : s) {
        const bool hex = (c >= '0' && c <= '9') ||
                         (c >= 'a' && c <= 'f');
        if (!hex)
            return false;
    }
    return true;
}

} // namespace

std::string
planFingerprint(const PipelinePlan &plan)
{
    // Canonical (key-sorted) form, so the fingerprint survives any
    // future change to plan_io's emission order and matches what the
    // plan service computes over parsed documents.
    return jsonFingerprint(planToJson(plan));
}

JsonValue
degradedPlanToJson(const DegradedPlanDoc &doc)
{
    JsonValue root = JsonValue::object();
    JsonValue scenario = JsonValue::object();
    scenario.set("straggler_stage",
                 JsonValue::integer(doc.scenario.stragglerStage));
    scenario.set("straggler_factor",
                 JsonValue::number(doc.scenario.stragglerFactor));
    scenario.set("mem_factor",
                 JsonValue::number(doc.scenario.memFactor));
    scenario.set("lost_stages",
                 JsonValue::integer(doc.scenario.lostStages));
    scenario.set("host_link_factor",
                 JsonValue::number(doc.scenario.hostLinkFactor));
    root.set("scenario", std::move(scenario));
    root.set("original_fingerprint",
             JsonValue::string(doc.originalFingerprint));
    root.set("degraded_capacity",
             JsonValue::integer(
                 static_cast<std::int64_t>(doc.degradedCapacity)));
    root.set("plan", planToJson(doc.plan));
    return root;
}

std::string
degradedPlanToJsonString(const DegradedPlanDoc &doc, int indent)
{
    return degradedPlanToJson(doc).dump(indent);
}

ParseResult<DegradedPlanDoc>
tryDegradedPlanFromJson(const JsonValue &json)
{
    ParseResult<DegradedPlanDoc> head = readJson<DegradedPlanDoc>(
        json, "degraded_plan", [](JsonReader root) {
            DegradedPlanDoc doc;
            const JsonReader scenario = root.key("scenario");
            doc.scenario.stragglerStage = static_cast<int>(
                scenario.key("straggler_stage").asInteger());
            if (doc.scenario.stragglerStage < -1) {
                scenario.key("straggler_stage")
                    .fail("straggler_stage must be >= -1");
            }
            doc.scenario.stragglerFactor =
                scenario.key("straggler_factor").asNumber();
            if (doc.scenario.stragglerFactor < 1.0) {
                scenario.key("straggler_factor")
                    .fail("straggler_factor must be >= 1");
            }
            doc.scenario.memFactor =
                scenario.key("mem_factor").asNumber();
            if (doc.scenario.memFactor <= 0 ||
                doc.scenario.memFactor > 1.0) {
                scenario.key("mem_factor")
                    .fail("mem_factor must be in (0, 1]");
            }
            doc.scenario.lostStages = static_cast<int>(
                scenario.key("lost_stages").asInteger());
            if (doc.scenario.lostStages < 0) {
                scenario.key("lost_stages")
                    .fail("lost_stages must be >= 0");
            }
            // Optional for documents written before the offload path
            // existed; those all assume a healthy host link.
            if (scenario.has("host_link_factor")) {
                doc.scenario.hostLinkFactor =
                    scenario.key("host_link_factor").asNumber();
                if (doc.scenario.hostLinkFactor <= 0 ||
                    doc.scenario.hostLinkFactor > 1.0) {
                    scenario.key("host_link_factor")
                        .fail("host_link_factor must be in (0, 1]");
                }
            }
            doc.originalFingerprint =
                root.key("original_fingerprint").asString();
            if (!doc.originalFingerprint.empty() &&
                !isHex16(doc.originalFingerprint)) {
                root.key("original_fingerprint")
                    .fail("expected 16 lowercase hex digits (or "
                          "empty)");
            }
            const std::int64_t capacity =
                root.key("degraded_capacity").asInteger();
            if (capacity < 0) {
                root.key("degraded_capacity")
                    .fail("degraded_capacity must be >= 0");
            }
            doc.degradedCapacity = static_cast<Bytes>(capacity);
            // The nested plan parses below through tryPlanFromJson
            // so it gets the plan loader's own field validation.
            root.key("plan");
            return doc;
        });
    if (!head.ok())
        return head;
    DegradedPlanDoc doc = std::move(head).value();
    ParseResult<PipelinePlan> plan =
        tryPlanFromJson(json.at("plan"));
    if (!plan.ok()) {
        return ParseResult<DegradedPlanDoc>::failure(
            "degraded_plan.plan: " + plan.error());
    }
    doc.plan = std::move(plan).value();
    return ParseResult<DegradedPlanDoc>::success(std::move(doc));
}

ParseResult<DegradedPlanDoc>
tryDegradedPlanFromJsonString(const std::string &text)
{
    ParseResult<JsonValue> json = JsonValue::tryParse(text);
    if (!json.ok())
        return ParseResult<DegradedPlanDoc>::failure(json.error());
    return tryDegradedPlanFromJson(json.value());
}

ParseResult<DegradedPlanDoc>
loadDegradedPlanFile(const std::string &path)
{
    ParseResult<std::string> text = readTextFile(path);
    if (!text.ok())
        return ParseResult<DegradedPlanDoc>::failure(text.error());
    ParseResult<DegradedPlanDoc> doc =
        tryDegradedPlanFromJsonString(text.value());
    if (!doc.ok()) {
        return ParseResult<DegradedPlanDoc>::failure(path + ": " +
                                                     doc.error());
    }
    return doc;
}

ParseStatus
saveDegradedPlanFile(const std::string &path,
                     const DegradedPlanDoc &doc, int indent)
{
    return writeTextFile(path,
                         degradedPlanToJsonString(doc, indent) +
                             "\n");
}

} // namespace adapipe
