/**
 * @file
 * Serialization of degraded-mode replans with provenance.
 *
 * A replanDegraded() output is only actionable if an operator (or a
 * later tool) can tell which failure produced it and which healthy
 * plan it replaces. A DegradedPlanDoc therefore wraps the degraded
 * plan together with the scenario that triggered the replan, the
 * FNV-1a-64 fingerprint of the original plan's canonical JSON, and
 * the reduced memory capacity the replan was solved against. The
 * document round-trips through the same plan_io machinery (and the
 * same dotted-field-path validation) as healthy plans.
 */

#ifndef ADAPIPE_ROBUST_REPLAN_IO_H
#define ADAPIPE_ROBUST_REPLAN_IO_H

#include <string>

#include "core/plan.h"
#include "robust/replan.h"
#include "util/json.h"
#include "util/parse_result.h"
#include "util/units.h"

namespace adapipe {

/** A degraded plan plus the provenance of its replanning. */
struct DegradedPlanDoc
{
    /** The degraded plan (replanDegraded()'s output). */
    PipelinePlan plan;
    /** The degradation the replan answered. */
    DegradedScenario scenario;
    /**
     * planFingerprint() of the healthy plan this one replaces; empty
     * when the original plan was not available at replan time.
     */
    std::string originalFingerprint;
    /** Per-device memory capacity the replan was solved against. */
    Bytes degradedCapacity = 0;
};

/**
 * @return 16-hex-digit FNV-1a-64 fingerprint of @p plan's canonical
 * (compact) JSON rendering — stable across processes and runs.
 */
std::string planFingerprint(const PipelinePlan &plan);

/** Serialize to JSON (root object "degraded_plan"). */
JsonValue degradedPlanToJson(const DegradedPlanDoc &doc);

/** Serialize to a JSON string. @param indent pretty-print */
std::string degradedPlanToJsonString(const DegradedPlanDoc &doc,
                                     int indent = 2);

/**
 * Recoverable parse; schema violations name the offending field
 * (e.g. "degraded_plan.scenario.straggler_factor").
 */
ParseResult<DegradedPlanDoc>
tryDegradedPlanFromJson(const JsonValue &json);

/** Recoverable parse from a string (covers syntax errors). */
ParseResult<DegradedPlanDoc>
tryDegradedPlanFromJsonString(const std::string &text);

/** Load a document from a file; errors name the path/field. */
ParseResult<DegradedPlanDoc>
loadDegradedPlanFile(const std::string &path);

/** Write a document to a file. */
ParseStatus saveDegradedPlanFile(const std::string &path,
                                 const DegradedPlanDoc &doc,
                                 int indent = 2);

} // namespace adapipe

#endif // ADAPIPE_ROBUST_REPLAN_IO_H
