/**
 * @file
 * Per-stage memory accounting (Sec. 4.2's three-part model).
 *
 * Part 1 (static): parameters, gradients and ZeRO-1-sharded optimizer
 * states — depends only on the parallel strategy.
 * Part 2 (buffer): space to rematerialise one decoder layer's
 * intermediates during backward; reused across layers.
 * Part 3 (intermediates): saved activations, weighted by the number
 * of in-flight micro-batches (p - s) of the 1F1B schedule.
 */

#ifndef ADAPIPE_MEMORY_MEMORY_MODEL_H
#define ADAPIPE_MEMORY_MEMORY_MODEL_H

#include <cstdint>
#include <vector>

#include "model/model_config.h"
#include "model/parallel.h"
#include "model/units.h"
#include "util/units.h"

namespace adapipe {

/**
 * Optimizer memory behaviour (paper: FP32 Adam with ZeRO stage 1,
 * plus the FP32 gradient-accumulation / master-parameter factors
 * frameworks add).
 */
struct OptimizerConfig
{
    /** Bytes of optimizer state per parameter (Adam: 2 x fp32 = 8). */
    double stateBytesPerParam = 8.0;
    /** Keep an FP32 master copy of parameters (sharded with the
     *  optimizer states). */
    bool fp32MasterParams = true;
    /** Accumulate gradients in FP32. */
    bool fp32GradAccum = true;
    /**
     * ZeRO sharding stage over the data-parallel group:
     * 0 = none, 1 = optimizer states (the paper's setting),
     * 2 = + gradients, 3 = + parameters. Stages 2/3 are extensions
     * beyond the paper, modelled for what-if studies.
     */
    int zeroStage = 1;
};

/**
 * Static (recomputation-independent) memory of one pipeline stage.
 */
struct StaticMemory
{
    /** Half-precision parameter bytes per rank. */
    Bytes params = 0;
    /** Gradient bytes per rank (fp32 when accumulating in fp32). */
    Bytes grads = 0;
    /** Optimizer-state bytes per rank (ZeRO-1: divided by t*d). */
    Bytes optimizer = 0;

    /** @return sum of the three components. */
    Bytes total() const { return params + grads + optimizer; }
};

/**
 * Memory model of one training configuration; all query methods are
 * per-rank quantities.
 */
class MemoryModel
{
  public:
    /**
     * @param model architecture (for dtype and hidden size)
     * @param train micro-batch and sequence length
     * @param par parallel strategy (t, d and sequence parallelism)
     * @param opt optimizer memory behaviour
     */
    MemoryModel(const ModelConfig &model, const TrainConfig &train,
                const ParallelConfig &par,
                OptimizerConfig opt = OptimizerConfig{});

    /**
     * Static memory of a stage holding @p stage_params unsharded
     * parameters.
     */
    StaticMemory staticMemory(std::uint64_t stage_params) const;

    /**
     * Bytes of the residual-stream activation entering a stage (one
     * micro-batch). This tensor is pinned per in-flight micro-batch
     * regardless of the recomputation strategy.
     */
    Bytes stageInputBytes() const;

    /**
     * Saved activation bytes of one micro-batch under Megatron-style
     * *full recomputation*: only the input of each decoder layer is
     * kept (one residual tensor per Attention layer; Embedding and
     * DecodingHead layers keep their own saved tensors since they
     * are never recomputed).
     */
    Bytes fullRecomputeSavedPerMb(const std::vector<Layer> &layers,
                                  int first, int last) const;

    /**
     * Saved activation bytes of one micro-batch with *no
     * recomputation*: every unit's children stay alive.
     */
    Bytes noRecomputeSavedPerMb(const std::vector<Layer> &layers,
                                int first, int last) const;

    /**
     * Saved activation bytes of one micro-batch under *selective
     * recomputation* (Sec. 2.2): the attention score / softmax /
     * context units are recomputed, everything else is saved. On
     * the flash-attention path those units do not exist and this
     * equals noRecomputeSavedPerMb.
     */
    Bytes selectiveRecomputeSavedPerMb(const std::vector<Layer> &layers,
                                       int first, int last) const;

    /**
     * Recomputation buffer bound: the largest per-layer sum of unit
     * activations among layers [first, last] (Sec. 4.2 restricts
     * layer outputs to be saved, so rematerialisation never needs
     * more than one layer's intermediates at a time).
     */
    Bytes recomputeBufferBytes(const std::vector<Layer> &layers,
                               int first, int last) const;

    /** @return in-flight micro-batches of stage @p s (p - s). */
    static int inflightMicroBatches(int s, int p, int n);

  private:
    const ModelConfig &model_;
    TrainConfig train_;
    ParallelConfig par_;
    OptimizerConfig opt_;
};

} // namespace adapipe

#endif // ADAPIPE_MEMORY_MEMORY_MODEL_H
