#include "memory/memory_model.h"

#include <algorithm>

#include "util/logging.h"

namespace adapipe {

MemoryModel::MemoryModel(const ModelConfig &model,
                         const TrainConfig &train,
                         const ParallelConfig &par, OptimizerConfig opt)
    : model_(model), train_(train), par_(par), opt_(opt)
{
    model_.validate();
    ADAPIPE_ASSERT(par_.tensor >= 1 && par_.data >= 1 &&
                       par_.pipeline >= 1,
                   "invalid parallel config");
}

StaticMemory
MemoryModel::staticMemory(std::uint64_t stage_params) const
{
    const double n = static_cast<double>(stage_params);
    const double t = par_.tensor;
    const double d = par_.data;
    ADAPIPE_ASSERT(opt_.zeroStage >= 0 && opt_.zeroStage <= 3,
                   "invalid ZeRO stage ", opt_.zeroStage);

    // ZeRO-1 shards optimizer states, ZeRO-2 additionally gradients,
    // ZeRO-3 additionally the parameters themselves.
    const double param_shard = opt_.zeroStage >= 3 ? d : 1.0;
    const double grad_shard = opt_.zeroStage >= 2 ? d : 1.0;
    const double opt_shard = opt_.zeroStage >= 1 ? d : 1.0;

    StaticMemory mem;
    mem.params = static_cast<Bytes>(model_.dtypeBytes * n /
                                    (t * param_shard));
    const double grad_bytes = opt_.fp32GradAccum ? 4.0
                                                 : model_.dtypeBytes;
    mem.grads =
        static_cast<Bytes>(grad_bytes * n / (t * grad_shard));
    double opt_bytes = opt_.stateBytesPerParam;
    if (opt_.fp32MasterParams)
        opt_bytes += 4.0;
    mem.optimizer =
        static_cast<Bytes>(opt_bytes * n / (t * opt_shard));
    return mem;
}

Bytes
MemoryModel::stageInputBytes() const
{
    const bool seq_par = par_.sequenceParallel && par_.tensor > 1;
    const double elems = static_cast<double>(train_.microBatch) *
                         train_.seqLen * model_.hiddenSize /
                         (seq_par ? par_.tensor : 1);
    return static_cast<Bytes>(elems * model_.dtypeBytes);
}

Bytes
MemoryModel::fullRecomputeSavedPerMb(const std::vector<Layer> &layers,
                                     int first, int last) const
{
    ADAPIPE_ASSERT(first >= 0 && last < static_cast<int>(layers.size()) &&
                       first <= last,
                   "bad layer range [", first, ", ", last, "]");
    Bytes total = 0;
    for (int i = first; i <= last; ++i) {
        const Layer &layer = layers[i];
        switch (layer.kind) {
          case LayerKind::Attention:
            // One checkpointed block input per decoder block.
            total += stageInputBytes();
            break;
          case LayerKind::FeedForward:
            // Covered by the block input checkpoint.
            break;
          case LayerKind::Embedding:
          case LayerKind::DecodingHead:
            // Never recomputed; their children stay alive.
            total += layer.memSavedAll();
            break;
        }
    }
    return total;
}

Bytes
MemoryModel::noRecomputeSavedPerMb(const std::vector<Layer> &layers,
                                   int first, int last) const
{
    ADAPIPE_ASSERT(first >= 0 && last < static_cast<int>(layers.size()) &&
                       first <= last,
                   "bad layer range [", first, ", ", last, "]");
    Bytes total = 0;
    for (int i = first; i <= last; ++i)
        total += layers[i].memSavedAll();
    return total;
}

Bytes
MemoryModel::selectiveRecomputeSavedPerMb(
    const std::vector<Layer> &layers, int first, int last) const
{
    ADAPIPE_ASSERT(first >= 0 && last < static_cast<int>(layers.size()) &&
                       first <= last,
                   "bad layer range [", first, ", ", last, "]");
    Bytes total = 0;
    for (int i = first; i <= last; ++i) {
        for (const auto &u : layers[i].units) {
            const bool selective =
                u.kind == UnitKind::AttnScores ||
                u.kind == UnitKind::AttnSoftmax ||
                u.kind == UnitKind::AttnContext;
            if (!selective)
                total += u.memSaved;
        }
    }
    return total;
}

Bytes
MemoryModel::recomputeBufferBytes(const std::vector<Layer> &layers,
                                  int first, int last) const
{
    ADAPIPE_ASSERT(first >= 0 && last < static_cast<int>(layers.size()) &&
                       first <= last,
                   "bad layer range [", first, ", ", last, "]");
    Bytes buffer = 0;
    for (int i = first; i <= last; ++i) {
        if (layers[i].kind == LayerKind::Attention ||
            layers[i].kind == LayerKind::FeedForward) {
            buffer = std::max(buffer, layers[i].memSavedAll());
        }
    }
    return buffer;
}

int
MemoryModel::inflightMicroBatches(int s, int p, int n)
{
    ADAPIPE_ASSERT(s >= 0 && s < p, "stage ", s, " out of range");
    // 1F1B keeps p - s micro-batches alive at stage s, capped by the
    // total number of micro-batches.
    return std::min(p - s, n);
}

} // namespace adapipe
