/**
 * @file
 * Transformer model architecture descriptions.
 *
 * A ModelConfig captures everything the cost models need about a
 * network: depth, widths, attention geometry (incl. grouped-query
 * attention) and feed-forward style (plain GELU vs. gated SwiGLU).
 * Presets match the two models evaluated in the paper, GPT-3 175B
 * and Llama 2 70B, plus smaller models used in tests and examples.
 */

#ifndef ADAPIPE_MODEL_MODEL_CONFIG_H
#define ADAPIPE_MODEL_MODEL_CONFIG_H

#include <cstdint>
#include <string>

namespace adapipe {

/**
 * Architecture of a decoder-only (or encoder) transformer.
 */
struct ModelConfig
{
    /** Human-readable name, e.g. "GPT-3 175B". */
    std::string name;
    /** Number of decoder blocks (each = Attention + FeedForward). */
    int numBlocks = 0;
    /** Hidden size h. */
    int hiddenSize = 0;
    /** Number of attention heads. */
    int numHeads = 0;
    /** Number of key/value heads (< numHeads means GQA). */
    int numKvHeads = 0;
    /** Feed-forward inner width. */
    int ffnHiddenSize = 0;
    /** Vocabulary size. */
    int vocabSize = 0;
    /**
     * Gated feed-forward (SwiGLU): three projection matrices (gate,
     * up, down) instead of two. Used by Llama 2.
     */
    bool gatedFfn = false;
    /** Linear layers carry bias terms (GPT-3 yes, Llama 2 no). */
    bool bias = true;
    /** Causal (decoder) attention; false for encoders like BERT. */
    bool causal = true;
    /** Bytes per element of parameters/activations (fp16/bf16 = 2). */
    int dtypeBytes = 2;

    /** @return size of one head, hiddenSize / numHeads. */
    int headDim() const { return hiddenSize / numHeads; }

    /** @return combined K/V projection width (GQA aware). */
    int kvProjSize() const { return numKvHeads * headDim(); }

    /** @return parameters of one Attention layer (paper's P_a). */
    std::uint64_t attentionParams() const;

    /** @return parameters of one Feed-Forward layer (paper's P_f). */
    std::uint64_t feedForwardParams() const;

    /** @return parameters of the Embedding layer. */
    std::uint64_t embeddingParams() const;

    /** @return parameters of the Decoding Head (untied + final LN). */
    std::uint64_t decodingHeadParams() const;

    /** @return total parameter count of the model. */
    std::uint64_t totalParams() const;

    /** Validate internal consistency; ADAPIPE_FATAL on user error. */
    void validate() const;
};

/** @name Model presets used in the paper and in tests
 *  @{
 */

/** GPT-3 175B: 96 blocks, h=12288, 96 heads, GELU FFN (paper Sec 7). */
ModelConfig gpt3_175b();

/** Llama 2 70B: 80 blocks, h=8192, GQA (8 kv heads), SwiGLU FFN. */
ModelConfig llama2_70b();

/** GPT-3 13B-ish mid-size model for faster sweeps. */
ModelConfig gpt3_13b();

/** GPT-3 6.7B: entry-level configuration for laptop-scale sweeps. */
ModelConfig gpt3_6_7b();

/** Llama 2 13B: mid-size gated-FFN model. */
ModelConfig llama2_13b();

/** BERT-large-like encoder (Fig. 4 notes unit splitting fits BERT). */
ModelConfig bertLarge();

/** Tiny model for unit tests (4 blocks, h=64). */
ModelConfig tinyTestModel();

/** @} */

} // namespace adapipe

#endif // ADAPIPE_MODEL_MODEL_CONFIG_H
