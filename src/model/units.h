/**
 * @file
 * Computation units and layers: the abstraction of Sec. 4.1 / Fig. 4.
 *
 * A computation unit is the minimal group of operators that is
 * recomputed or saved together; operators whose intermediates are
 * never materialised (transpose, addition, ...) are folded into the
 * unit of the tensor they produce. Each unit carries its workload
 * (FLOPs, memory traffic, TP-collective payload) and the bytes of
 * activations that live until backward when the unit is *saved*.
 * Hardware-dependent time comes later, from hw::OperatorProfiler.
 */

#ifndef ADAPIPE_MODEL_UNITS_H
#define ADAPIPE_MODEL_UNITS_H

#include <cstdint>
#include <string>
#include <vector>

#include "model/model_config.h"
#include "model/parallel.h"
#include "util/units.h"

namespace adapipe {

/** Operator class of a computation unit (drives roofline efficiency). */
enum class UnitKind {
    LayerNorm,      ///< Layer/RMS norm (bandwidth bound)
    Gemm,           ///< dense projection (compute bound)
    FlashAttention, ///< fused attention kernel
    AttnScores,     ///< unfused Q.K^T batched matmul
    AttnSoftmax,    ///< unfused softmax (+dropout)
    AttnContext,    ///< unfused P.V batched matmul
    Embedding,      ///< token-embedding gather
    Head,           ///< vocabulary projection + cross entropy
};

/** @return short human-readable name of a UnitKind. */
const char *unitKindName(UnitKind kind);

/**
 * One computation unit (Sec. 4.1).
 *
 * All per-rank quantities: FLOPs and bytes are what a single
 * accelerator in the tensor-parallel group executes/stores for one
 * micro-batch.
 */
struct ComputationUnit
{
    /** Qualified name, e.g. "attn.q_proj". */
    std::string name;
    /** Operator class. */
    UnitKind kind = UnitKind::Gemm;
    /** Forward floating-point operations. */
    Flops flopsFwd = 0;
    /** Backward floating-point operations (excl. recomputation). */
    Flops flopsBwd = 0;
    /** Forward HBM traffic in bytes (roofline denominator). */
    Bytes trafficFwd = 0;
    /** Backward HBM traffic in bytes. */
    Bytes trafficBwd = 0;
    /**
     * Bytes of child tensors (output + internally saved tensors)
     * that persist until backward when the unit is configured as
     * saved; zero cost when recomputed.
     */
    Bytes memSaved = 0;
    /**
     * Tensor-parallel collective payload (bytes) attached to this
     * unit's forward pass; backward mirrors it. Zero when t = 1.
     */
    Bytes commBytesFwd = 0;
    /**
     * The Sec. 4.2 restriction: outputs of the Attention and
     * Feed-Forward layers (and stage-boundary tensors) are always
     * saved and never enter the knapsack.
     */
    bool alwaysSaved = false;
};

/** Kind of a partitionable layer (Sec. 5: the unit of partitioning). */
enum class LayerKind {
    Embedding,
    Attention,
    FeedForward,
    DecodingHead,
};

/** @return short human-readable name of a LayerKind. */
const char *layerKindName(LayerKind kind);

/**
 * One partitionable layer: a sub-sequence boundary candidate for
 * adaptive partitioning, owning its computation units.
 */
struct Layer
{
    /** Layer type. */
    LayerKind kind = LayerKind::Attention;
    /** Index within the model's layer sequence. */
    int index = 0;
    /** Unsharded parameter count of this layer. */
    std::uint64_t params = 0;
    /** The layer's computation units in execution order. */
    std::vector<ComputationUnit> units;

    /** @return summed forward FLOPs of all units. */
    Flops flopsFwd() const;
    /** @return summed memSaved over all units (saved-everything). */
    Bytes memSavedAll() const;
};

/**
 * Build the model's layer sequence
 * [Embedding, (Attention, FeedForward) x numBlocks, DecodingHead]
 * with per-rank unit workloads for the given training and
 * parallelism configuration.
 *
 * @param model architecture description (validated)
 * @param train micro-batch size and sequence length
 * @param par tensor-parallel size, sequence parallelism and flash
 *        attention switches (pipeline/data sizes are not needed to
 *        size the units)
 */
std::vector<Layer> buildLayerSequence(const ModelConfig &model,
                                      const TrainConfig &train,
                                      const ParallelConfig &par);

} // namespace adapipe

#endif // ADAPIPE_MODEL_UNITS_H
