#include "model/model_config.h"

#include "util/logging.h"

namespace adapipe {

std::uint64_t
ModelConfig::attentionParams() const
{
    const std::uint64_t h = hiddenSize;
    const std::uint64_t kv = kvProjSize();
    // Q and output projections are h x h; K and V are h x kv (GQA).
    std::uint64_t params = 2 * h * h + 2 * h * kv;
    if (bias)
        params += 2 * h + 2 * kv;
    // Pre-attention LayerNorm (weight + bias or RMSNorm weight).
    params += bias ? 2 * h : h;
    return params;
}

std::uint64_t
ModelConfig::feedForwardParams() const
{
    const std::uint64_t h = hiddenSize;
    const std::uint64_t f = ffnHiddenSize;
    // Gated FFN has gate+up+down projections, plain FFN has up+down.
    std::uint64_t params = (gatedFfn ? 3 : 2) * h * f;
    if (bias)
        params += f + h + (gatedFfn ? f : 0);
    params += bias ? 2 * h : h; // pre-FFN norm
    return params;
}

std::uint64_t
ModelConfig::embeddingParams() const
{
    return static_cast<std::uint64_t>(vocabSize) * hiddenSize;
}

std::uint64_t
ModelConfig::decodingHeadParams() const
{
    // Untied output projection plus the final norm.
    return static_cast<std::uint64_t>(vocabSize) * hiddenSize +
           (bias ? 2u : 1u) * static_cast<std::uint64_t>(hiddenSize);
}

std::uint64_t
ModelConfig::totalParams() const
{
    return embeddingParams() + decodingHeadParams() +
           static_cast<std::uint64_t>(numBlocks) *
               (attentionParams() + feedForwardParams());
}

void
ModelConfig::validate() const
{
    if (numBlocks <= 0 || hiddenSize <= 0 || numHeads <= 0 ||
        numKvHeads <= 0 || ffnHiddenSize <= 0 || vocabSize <= 0) {
        ADAPIPE_FATAL("model '", name, "' has non-positive dimensions");
    }
    if (hiddenSize % numHeads != 0) {
        ADAPIPE_FATAL("model '", name, "': hiddenSize ", hiddenSize,
                      " not divisible by numHeads ", numHeads);
    }
    if (numHeads % numKvHeads != 0) {
        ADAPIPE_FATAL("model '", name, "': numHeads ", numHeads,
                      " not divisible by numKvHeads ", numKvHeads);
    }
    if (dtypeBytes <= 0)
        ADAPIPE_FATAL("model '", name, "': invalid dtypeBytes");
}

ModelConfig
gpt3_175b()
{
    ModelConfig m;
    m.name = "GPT-3 175B";
    m.numBlocks = 96;
    m.hiddenSize = 12288;
    m.numHeads = 96;
    m.numKvHeads = 96;
    m.ffnHiddenSize = 4 * 12288;
    m.vocabSize = 50257;
    m.gatedFfn = false;
    m.bias = true;
    return m;
}

ModelConfig
llama2_70b()
{
    ModelConfig m;
    m.name = "Llama 2 70B";
    m.numBlocks = 80;
    m.hiddenSize = 8192;
    m.numHeads = 64;
    m.numKvHeads = 8;
    m.ffnHiddenSize = 28672;
    m.vocabSize = 32000;
    m.gatedFfn = true;
    m.bias = false;
    return m;
}

ModelConfig
gpt3_13b()
{
    ModelConfig m;
    m.name = "GPT-3 13B";
    m.numBlocks = 40;
    m.hiddenSize = 5120;
    m.numHeads = 40;
    m.numKvHeads = 40;
    m.ffnHiddenSize = 4 * 5120;
    m.vocabSize = 50257;
    m.gatedFfn = false;
    m.bias = true;
    return m;
}

ModelConfig
gpt3_6_7b()
{
    ModelConfig m;
    m.name = "GPT-3 6.7B";
    m.numBlocks = 32;
    m.hiddenSize = 4096;
    m.numHeads = 32;
    m.numKvHeads = 32;
    m.ffnHiddenSize = 4 * 4096;
    m.vocabSize = 50257;
    m.gatedFfn = false;
    m.bias = true;
    return m;
}

ModelConfig
llama2_13b()
{
    ModelConfig m;
    m.name = "Llama 2 13B";
    m.numBlocks = 40;
    m.hiddenSize = 5120;
    m.numHeads = 40;
    m.numKvHeads = 40;
    m.ffnHiddenSize = 13824;
    m.vocabSize = 32000;
    m.gatedFfn = true;
    m.bias = false;
    return m;
}

ModelConfig
bertLarge()
{
    ModelConfig m;
    m.name = "BERT-large";
    m.causal = false;
    m.numBlocks = 24;
    m.hiddenSize = 1024;
    m.numHeads = 16;
    m.numKvHeads = 16;
    m.ffnHiddenSize = 4096;
    m.vocabSize = 30522;
    m.gatedFfn = false;
    m.bias = true;
    return m;
}

ModelConfig
tinyTestModel()
{
    ModelConfig m;
    m.name = "tiny-test";
    m.numBlocks = 4;
    m.hiddenSize = 64;
    m.numHeads = 4;
    m.numKvHeads = 4;
    m.ffnHiddenSize = 256;
    m.vocabSize = 512;
    m.gatedFfn = false;
    m.bias = true;
    return m;
}

} // namespace adapipe
