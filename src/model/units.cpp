#include "model/units.h"

#include "util/logging.h"

namespace adapipe {

const char *
unitKindName(UnitKind kind)
{
    switch (kind) {
      case UnitKind::LayerNorm: return "layernorm";
      case UnitKind::Gemm: return "gemm";
      case UnitKind::FlashAttention: return "flash_attention";
      case UnitKind::AttnScores: return "attn_scores";
      case UnitKind::AttnSoftmax: return "attn_softmax";
      case UnitKind::AttnContext: return "attn_context";
      case UnitKind::Embedding: return "embedding";
      case UnitKind::Head: return "head";
    }
    return "?";
}

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Embedding: return "Embedding";
      case LayerKind::Attention: return "Attention";
      case LayerKind::FeedForward: return "FeedForward";
      case LayerKind::DecodingHead: return "DecodingHead";
    }
    return "?";
}

Flops
Layer::flopsFwd() const
{
    Flops total = 0;
    for (const auto &u : units)
        total += u.flopsFwd;
    return total;
}

Bytes
Layer::memSavedAll() const
{
    Bytes total = 0;
    for (const auto &u : units)
        total += u.memSaved;
    return total;
}

namespace {

/**
 * Helper that knows the sharded tensor shapes of one (model, train,
 * parallel) combination and emits computation units.
 */
class UnitBuilder
{
  public:
    UnitBuilder(const ModelConfig &m, const TrainConfig &tr,
                const ParallelConfig &par)
        : m_(m), b_(tr.microBatch), s_(tr.seqLen), t_(par.tensor),
          seq_par_(par.sequenceParallel && par.tensor > 1),
          flash_(par.flashAttention)
    {}

    Layer embeddingLayer(int index) const;
    Layer attentionLayer(int index) const;
    Layer feedForwardLayer(int index) const;
    Layer decodingHeadLayer(int index) const;

  private:
    /** Elements of a (b, s, width) activation fully sharded over t. */
    double
    shardedElems(double width) const
    {
        return static_cast<double>(b_) * s_ * width / t_;
    }

    /**
     * Bytes of a residual-stream-width activation: sharded over t
     * only when sequence parallelism is on.
     */
    Bytes
    residualBytes() const
    {
        const double elems = static_cast<double>(b_) * s_ * m_.hiddenSize /
                             (seq_par_ ? t_ : 1);
        return static_cast<Bytes>(elems * m_.dtypeBytes);
    }

    /** Bytes of a TP-sharded activation of the given width. */
    Bytes
    shardedBytes(double width) const
    {
        return static_cast<Bytes>(shardedElems(width) * m_.dtypeBytes);
    }

    /**
     * Payload of one sequence-parallel all-gather / reduce-scatter
     * (or, without sequence parallelism, one all-reduce) of the
     * residual stream, in bytes sent per rank.
     */
    Bytes
    collectiveBytes() const
    {
        if (t_ <= 1)
            return 0;
        const double full = static_cast<double>(b_) * s_ *
                            m_.hiddenSize * m_.dtypeBytes;
        const double frac = static_cast<double>(t_ - 1) / t_;
        // All-reduce moves twice the ring payload of AG/RS.
        return static_cast<Bytes>(full * frac * (seq_par_ ? 1.0 : 2.0));
    }

    ComputationUnit gemmUnit(const std::string &name, double rows,
                             double in_width, double out_width,
                             bool sharded_out) const;
    ComputationUnit normUnit(const std::string &name) const;

    const ModelConfig &m_;
    int b_;
    int s_;
    int t_;
    bool seq_par_;
    bool flash_;
};

ComputationUnit
UnitBuilder::gemmUnit(const std::string &name, double rows,
                      double in_width, double out_width,
                      bool sharded_out) const
{
    ComputationUnit u;
    u.name = name;
    u.kind = UnitKind::Gemm;
    // One GEMM of (rows x in_width) . (in_width x out_width/t).
    const double flops = 2.0 * rows * in_width * out_width / t_;
    u.flopsFwd = flops;
    u.flopsBwd = 2.0 * flops; // dX and dW GEMMs
    const double w_bytes = in_width * out_width / t_ * m_.dtypeBytes;
    const double in_bytes = rows * in_width * m_.dtypeBytes;
    const double out_bytes = rows * out_width / t_ * m_.dtypeBytes;
    u.trafficFwd = static_cast<Bytes>(w_bytes + in_bytes + out_bytes);
    u.trafficBwd = static_cast<Bytes>(2 * (w_bytes + in_bytes + out_bytes));
    u.memSaved = sharded_out ? shardedBytes(out_width) : residualBytes();
    return u;
}

ComputationUnit
UnitBuilder::normUnit(const std::string &name) const
{
    ComputationUnit u;
    u.name = name;
    u.kind = UnitKind::LayerNorm;
    const double tokens = static_cast<double>(b_) * s_ /
                          (seq_par_ ? t_ : 1);
    const double elems = tokens * m_.hiddenSize;
    u.flopsFwd = 10.0 * elems;
    u.flopsBwd = 20.0 * elems;
    u.trafficFwd = static_cast<Bytes>(3.0 * elems * m_.dtypeBytes);
    u.trafficBwd = static_cast<Bytes>(5.0 * elems * m_.dtypeBytes);
    // Output plus fp32 mean/rstd statistics.
    u.memSaved = residualBytes() + static_cast<Bytes>(tokens * 8.0);
    return u;
}

Layer
UnitBuilder::embeddingLayer(int index) const
{
    Layer layer;
    layer.kind = LayerKind::Embedding;
    layer.index = index;
    layer.params = m_.embeddingParams();

    ComputationUnit u;
    u.name = "embed.lookup";
    u.kind = UnitKind::Embedding;
    const double out_bytes = static_cast<double>(b_) * s_ *
                             m_.hiddenSize * m_.dtypeBytes;
    u.flopsFwd = static_cast<double>(b_) * s_ * m_.hiddenSize;
    u.flopsBwd = u.flopsFwd;
    u.trafficFwd = static_cast<Bytes>(2.0 * out_bytes);
    u.trafficBwd = static_cast<Bytes>(2.0 * out_bytes);
    // Vocab-parallel embedding all-reduces its partial outputs.
    u.commBytesFwd = collectiveBytes();
    u.memSaved = residualBytes();
    u.alwaysSaved = true; // stage-boundary tensor
    layer.units.push_back(std::move(u));
    return layer;
}

Layer
UnitBuilder::attentionLayer(int index) const
{
    Layer layer;
    layer.kind = LayerKind::Attention;
    layer.index = index;
    layer.params = m_.attentionParams();

    const double h = m_.hiddenSize;
    const double kv = m_.kvProjSize();
    const double rows = static_cast<double>(b_) * s_;

    layer.units.push_back(normUnit("attn.norm"));

    ComputationUnit q = gemmUnit("attn.q_proj", rows, h, h, true);
    // The pre-QKV all-gather of the sequence-parallel residual is
    // attached to the first projection consuming it.
    q.commBytesFwd = collectiveBytes();
    layer.units.push_back(std::move(q));
    layer.units.push_back(gemmUnit("attn.k_proj", rows, h, kv, true));
    layer.units.push_back(gemmUnit("attn.v_proj", rows, h, kv, true));

    // Causal attention halves the score matmuls via the triangular
    // mask; encoders (BERT) attend fully.
    const double causal_factor = m_.causal ? 0.5 : 1.0;

    if (flash_) {
        ComputationUnit fa;
        fa.name = "attn.flash";
        fa.kind = UnitKind::FlashAttention;
        // Two matmuls of s x s x h.
        const double flops = causal_factor * 4.0 * rows * s_ * h / t_;
        fa.flopsFwd = flops;
        fa.flopsBwd = 2.5 * flops; // flash backward recomputes P
        const double qkv_bytes = 3.0 * shardedElems(h) * m_.dtypeBytes;
        fa.trafficFwd = static_cast<Bytes>(2.0 * qkv_bytes);
        fa.trafficBwd = static_cast<Bytes>(4.0 * qkv_bytes);
        // Output plus the fp32 log-sum-exp statistics flash keeps
        // internally for its backward pass.
        fa.memSaved = shardedBytes(h) +
                      static_cast<Bytes>(rows * m_.numHeads / t_ * 4.0);
        layer.units.push_back(std::move(fa));
    } else {
        const double heads_per_rank =
            static_cast<double>(m_.numHeads) / t_;
        const double score_elems = rows * s_ * heads_per_rank;

        ComputationUnit sc;
        sc.name = "attn.scores";
        sc.kind = UnitKind::AttnScores;
        sc.flopsFwd = causal_factor * 2.0 * rows * s_ * h / t_;
        sc.flopsBwd = 2.0 * sc.flopsFwd;
        sc.trafficFwd =
            static_cast<Bytes>(score_elems * m_.dtypeBytes);
        sc.trafficBwd = 2 * sc.trafficFwd;
        sc.memSaved = static_cast<Bytes>(score_elems * m_.dtypeBytes);
        layer.units.push_back(std::move(sc));

        ComputationUnit sm;
        sm.name = "attn.softmax";
        sm.kind = UnitKind::AttnSoftmax;
        sm.flopsFwd = 5.0 * score_elems;
        sm.flopsBwd = 8.0 * score_elems;
        sm.trafficFwd =
            static_cast<Bytes>(2.0 * score_elems * m_.dtypeBytes);
        sm.trafficBwd = sm.trafficFwd;
        // Probabilities plus the dropout mask (1 byte/elem).
        sm.memSaved = static_cast<Bytes>(score_elems *
                                         (m_.dtypeBytes + 1.0));
        layer.units.push_back(std::move(sm));

        ComputationUnit cx;
        cx.name = "attn.context";
        cx.kind = UnitKind::AttnContext;
        cx.flopsFwd = causal_factor * 2.0 * rows * s_ * h / t_;
        cx.flopsBwd = 2.0 * cx.flopsFwd;
        cx.trafficFwd =
            static_cast<Bytes>(score_elems * m_.dtypeBytes);
        cx.trafficBwd = 2 * cx.trafficFwd;
        cx.memSaved = shardedBytes(h);
        layer.units.push_back(std::move(cx));
    }

    ComputationUnit out = gemmUnit("attn.out_proj", rows, h, h, false);
    out.commBytesFwd = collectiveBytes();
    out.alwaysSaved = true; // Sec. 4.2 restriction
    layer.units.push_back(std::move(out));
    return layer;
}

Layer
UnitBuilder::feedForwardLayer(int index) const
{
    Layer layer;
    layer.kind = LayerKind::FeedForward;
    layer.index = index;
    layer.params = m_.feedForwardParams();

    const double h = m_.hiddenSize;
    const double f = m_.ffnHiddenSize;
    const double rows = static_cast<double>(b_) * s_;

    layer.units.push_back(normUnit("ffn.norm"));

    if (m_.gatedFfn) {
        ComputationUnit gate = gemmUnit("ffn.gate_proj", rows, h, f,
                                        true);
        gate.commBytesFwd = collectiveBytes();
        layer.units.push_back(std::move(gate));

        // Up projection plus the fused silu(gate) * up product; the
        // product (input of down_proj) is this unit's second child.
        ComputationUnit up = gemmUnit("ffn.up_proj", rows, h, f, true);
        up.flopsFwd += 8.0 * shardedElems(f);
        up.flopsBwd += 12.0 * shardedElems(f);
        up.memSaved = 2 * shardedBytes(f);
        layer.units.push_back(std::move(up));
    } else {
        // Up projection + GELU; both the pre-activation (needed for
        // GELU backward) and the activated output are children.
        ComputationUnit up = gemmUnit("ffn.up_proj", rows, h, f, true);
        up.commBytesFwd = collectiveBytes();
        up.flopsFwd += 8.0 * shardedElems(f);
        up.flopsBwd += 12.0 * shardedElems(f);
        up.memSaved = 2 * shardedBytes(f);
        layer.units.push_back(std::move(up));
    }

    ComputationUnit down = gemmUnit("ffn.down_proj", rows, f, h, false);
    // Down projection contracts the sharded dimension: its "t-th" of
    // the weight is f/t x h, same FLOPs as computed with out width h.
    down.flopsFwd = 2.0 * rows * f * h / t_;
    down.flopsBwd = 2.0 * down.flopsFwd;
    down.commBytesFwd = collectiveBytes();
    down.alwaysSaved = true; // Sec. 4.2 restriction
    layer.units.push_back(std::move(down));
    return layer;
}

Layer
UnitBuilder::decodingHeadLayer(int index) const
{
    Layer layer;
    layer.kind = LayerKind::DecodingHead;
    layer.index = index;
    layer.params = m_.decodingHeadParams();

    layer.units.push_back(normUnit("head.norm"));

    const double rows = static_cast<double>(b_) * s_;
    ComputationUnit u = gemmUnit("head.proj", rows, m_.hiddenSize,
                                 m_.vocabSize, true);
    u.kind = UnitKind::Head;
    // Fused softmax cross-entropy over the vocab shard.
    u.flopsFwd += 5.0 * shardedElems(m_.vocabSize);
    u.flopsBwd += 5.0 * shardedElems(m_.vocabSize);
    u.commBytesFwd = collectiveBytes();
    u.memSaved = shardedBytes(m_.vocabSize) +
                 static_cast<Bytes>(rows * 4.0);
    u.alwaysSaved = true; // loss inputs live until backward
    layer.units.push_back(std::move(u));
    return layer;
}

} // namespace

std::vector<Layer>
buildLayerSequence(const ModelConfig &model, const TrainConfig &train,
                   const ParallelConfig &par)
{
    model.validate();
    ADAPIPE_ASSERT(train.microBatch > 0 && train.seqLen > 0,
                   "invalid train config");
    if (model.numHeads % par.tensor != 0 ||
        model.numKvHeads % par.tensor != 0) {
        ADAPIPE_FATAL("tensor parallel size ", par.tensor,
                      " does not divide head counts of ", model.name);
    }

    UnitBuilder builder(model, train, par);
    std::vector<Layer> layers;
    layers.reserve(2 * model.numBlocks + 2);

    int index = 0;
    layers.push_back(builder.embeddingLayer(index++));
    for (int blk = 0; blk < model.numBlocks; ++blk) {
        layers.push_back(builder.attentionLayer(index++));
        layers.push_back(builder.feedForwardLayer(index++));
    }
    layers.push_back(builder.decodingHeadLayer(index++));
    return layers;
}

} // namespace adapipe
