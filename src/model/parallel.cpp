#include "model/parallel.h"

#include <sstream>

#include "util/logging.h"

namespace adapipe {

std::string
ParallelConfig::toString() const
{
    std::ostringstream oss;
    oss << "(" << tensor << ", " << pipeline << ", " << data << ")";
    return oss.str();
}

int
TrainConfig::microBatches(const ParallelConfig &par) const
{
    ADAPIPE_ASSERT(par.data > 0 && microBatch > 0,
                   "invalid parallel/train configuration");
    const int denom = microBatch * par.data;
    if (globalBatch % denom != 0) {
        ADAPIPE_FATAL("global batch ", globalBatch,
                      " not divisible by microBatch*d = ", denom);
    }
    return globalBatch / denom;
}

} // namespace adapipe
