/**
 * @file
 * Parallelism and training-run configuration shared by every module.
 *
 * Follows the paper's notation (Table 1): t = tensor-parallel size,
 * d = data-parallel size, p = pipeline-parallel size, b = micro-batch
 * size, n = number of micro-batches per pipeline per iteration.
 */

#ifndef ADAPIPE_MODEL_PARALLEL_H
#define ADAPIPE_MODEL_PARALLEL_H

#include <cstdint>
#include <string>

namespace adapipe {

/**
 * A 3D parallelism strategy (t, p, d).
 *
 * Every stage uses the same tensor- and data-parallel size, matching
 * the paper's restriction (Sec. 3).
 */
struct ParallelConfig
{
    /** Tensor-parallel size (t). */
    int tensor = 1;
    /** Pipeline-parallel size (p). */
    int pipeline = 1;
    /** Data-parallel size (d); ZeRO-1 shards optimizer states. */
    int data = 1;
    /**
     * Megatron-style sequence parallelism: activations outside the
     * tensor-parallel GEMMs are sharded over t as well (paper Sec. 1
     * enables it for all experiments).
     */
    bool sequenceParallel = true;
    /**
     * Flash attention fuses softmax/dropout/bmm and removes their
     * O(s^2) activations (paper Sec. 2.2 enables it everywhere).
     */
    bool flashAttention = true;

    /** @return total number of devices, t * p * d. */
    int totalDevices() const { return tensor * pipeline * data; }

    /** @return "(t, p, d)" string used in Table 3. */
    std::string toString() const;
};

/**
 * Per-iteration training workload configuration.
 */
struct TrainConfig
{
    /** Micro-batch size (b); the paper fixes b = 1. */
    int microBatch = 1;
    /** Sequence length in tokens (s). */
    int seqLen = 4096;
    /** Global batch size in samples across all data-parallel ranks. */
    int globalBatch = 128;

    /**
     * @return number of micro-batches n one pipeline processes per
     * iteration: globalBatch / (microBatch * d).
     */
    int microBatches(const ParallelConfig &par) const;
};

} // namespace adapipe

#endif // ADAPIPE_MODEL_PARALLEL_H
