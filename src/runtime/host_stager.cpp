#include "runtime/host_stager.h"

#include <algorithm>
#include <utility>

#include "autograd/tensor_pool.h"

namespace adapipe {

HostStager::HostStager(const Options &opts) : opts_(opts)
{
    if (!opts_.sync)
        thread_ = std::thread([this] { threadMain(); });
}

HostStager::~HostStager()
{
    stop();
}

void
HostStager::submitEvict(std::size_t bwd_rank,
                        std::vector<OffloadHandle> handles)
{
    if (handles.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        parked_[bwd_rank].handles = std::move(handles);
        jobs_.push_back(Job{true, bwd_rank});
    }
    if (opts_.sync)
        drainInline();
    else
        cv_.notify_one();
}

void
HostStager::advance(std::size_t op_rank)
{
    if (opts_.forceMiss)
        return;
    bool queued = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const std::size_t horizon =
            op_rank +
            static_cast<std::size_t>(std::max(0, opts_.lookahead));
        for (auto &entry : parked_) {
            if (entry.first > horizon)
                break;
            if (entry.second.fetchQueued)
                continue;
            entry.second.fetchQueued = true;
            jobs_.push_back(Job{false, entry.first});
            queued = true;
        }
    }
    if (!queued)
        return;
    if (opts_.sync)
        drainInline();
    else
        cv_.notify_one();
}

void
HostStager::release(std::size_t bwd_rank)
{
    std::lock_guard<std::mutex> lock(mu_);
    parked_.erase(bwd_rank);
}

void
HostStager::drain()
{
    if (opts_.sync) {
        drainInline();
        return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    idleCv_.wait(lock,
                 [this] { return jobs_.empty() && active_ == 0; });
}

void
HostStager::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

std::int64_t
HostStager::evictions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
}

std::int64_t
HostStager::fetches() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return fetches_;
}

std::uint64_t
HostStager::bytesEvicted() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return bytesEvicted_;
}

std::uint64_t
HostStager::bytesFetched() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return bytesFetched_;
}

void
HostStager::runJob(const Job &job)
{
    // Copy the handles out under the lock, transfer without it: the
    // per-segment mutex inside each handle is all a transfer needs,
    // and keeping mu_ out lets the worker submit/advance meanwhile.
    // A concurrent release() only erases the parked entry; the
    // copied handles stay valid and their consumed flag makes the
    // transfer a no-op.
    std::vector<OffloadHandle> handles;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = parked_.find(job.rank);
        if (it != parked_.end())
            handles = it->second.handles;
    }
    std::int64_t moved = 0;
    std::size_t bytes = 0;
    for (const OffloadHandle &h : handles) {
        const std::size_t b = job.evict ? h.evict() : h.fetch();
        if (b > 0) {
            ++moved;
            bytes += b;
        }
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (job.evict) {
        evictions_ += moved;
        bytesEvicted_ += bytes;
    } else {
        fetches_ += moved;
        bytesFetched_ += bytes;
    }
}

void
HostStager::drainInline()
{
    for (;;) {
        Job job;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (jobs_.empty())
                return;
            job = jobs_.front();
            jobs_.pop_front();
        }
        runJob(job);
    }
}

void
HostStager::threadMain()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stop_ || !jobs_.empty(); });
            if (jobs_.empty())
                break; // stopped and drained
            job = jobs_.front();
            jobs_.pop_front();
            ++active_;
        }
        runJob(job);
        {
            std::lock_guard<std::mutex> lock(mu_);
            --active_;
        }
        idleCv_.notify_all();
    }
    // Evicted device buffers were released to the pool on this
    // thread; hand its cache back before exit (same discipline as
    // the backward engine's helpers).
    TensorPool::instance().drainThreadCache();
}

} // namespace adapipe
