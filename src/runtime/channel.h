/**
 * @file
 * Bounded blocking SPSC channel: the runtime's stand-in for the
 * point-to-point activation/gradient links between pipeline stages.
 *
 * The capacity bound is the memory cap made physical: a producer
 * whose consumer has fallen behind blocks in send() instead of
 * accumulating unbounded in-flight tensors, exactly the backpressure
 * a real execution engine gets from a fixed activation buffer pool.
 * send()/recv() report the microseconds they spent blocked so the
 * runtime can separate backpressure/starvation from compute time.
 *
 * One producer and one consumer thread per channel (each pipeline
 * edge has exactly one of each); the implementation is a plain
 * mutex + two condition variables, which is also what keeps it
 * trivially clean under ThreadSanitizer.
 *
 * Shutdown: close() marks the channel closed and wakes every blocked
 * sender and receiver. A closed channel rejects new sends (the data
 * could never be consumed reliably) but lets receivers drain items
 * queued before the close; both throw ChannelClosedError once no
 * progress is possible, so a worker blocked on a dead peer unwinds
 * instead of waiting forever.
 */

#ifndef ADAPIPE_RUNTIME_CHANNEL_H
#define ADAPIPE_RUNTIME_CHANNEL_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <mutex>
#include <utility>

#include "util/logging.h"

namespace adapipe {

/**
 * Thrown by BoundedChannel::send()/recv() when the channel was
 * closed and the call can make no progress. Pipeline workers treat
 * it as a shutdown signal and unwind their stack; it is not an
 * input error.
 */
class ChannelClosedError : public std::exception
{
  public:
    const char *
    what() const noexcept override
    {
        return "channel closed";
    }
};

/**
 * Outcome of a bounded-wait channel operation. The timeout variants
 * exist for the watchdog/heartbeat layer: a worker waiting on a dead
 * peer keeps returning TimedOut (and keeps beating its heartbeat)
 * instead of blocking forever, so stall detection never depends on
 * the peer dying cleanly.
 */
enum class ChannelStatus {
    Ok,       ///< item transferred
    TimedOut, ///< deadline expired; nothing transferred
    Closed,   ///< channel closed and no progress possible
};

/** Bounded blocking FIFO channel between two pipeline stages. */
template <typename T>
class BoundedChannel
{
  public:
    /** @param capacity maximum queued items (>= 1). */
    explicit BoundedChannel(std::size_t capacity)
        : capacity_(capacity)
    {
        ADAPIPE_ASSERT(capacity >= 1, "channel capacity must be >= 1");
    }

    BoundedChannel(const BoundedChannel &) = delete;
    BoundedChannel &operator=(const BoundedChannel &) = delete;

    /**
     * Enqueue @p value, blocking while the channel is full.
     *
     * @return microseconds spent blocked waiting for space (0 when
     *         the fast path succeeded immediately).
     * @throws ChannelClosedError when the channel is (or becomes)
     *         closed; the value is dropped.
     */
    double
    send(T value)
    {
        std::unique_lock<std::mutex> lock(mu_);
        double waited_us = 0;
        if (queue_.size() >= capacity_ && !closed_) {
            const auto start = std::chrono::steady_clock::now();
            not_full_.wait(lock, [this] {
                return queue_.size() < capacity_ || closed_;
            });
            waited_us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        }
        if (closed_)
            throw ChannelClosedError{};
        queue_.push_back(std::move(value));
        not_empty_.notify_one();
        return waited_us;
    }

    /**
     * Dequeue the oldest item, blocking while the channel is empty.
     *
     * @param waited_us when non-null, receives the microseconds
     *        spent blocked waiting for data.
     * @throws ChannelClosedError when the channel is closed and
     *         empty (items queued before the close still drain).
     */
    T
    recv(double *waited_us = nullptr)
    {
        std::unique_lock<std::mutex> lock(mu_);
        double us = 0;
        if (queue_.empty() && !closed_) {
            const auto start = std::chrono::steady_clock::now();
            not_empty_.wait(lock, [this] {
                return !queue_.empty() || closed_;
            });
            us = std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - start)
                     .count();
        }
        if (queue_.empty())
            throw ChannelClosedError{};
        T value = std::move(queue_.front());
        queue_.pop_front();
        not_full_.notify_one();
        if (waited_us)
            *waited_us = us;
        return value;
    }

    /**
     * Bounded-wait send: wait up to @p timeout for space, then give
     * up instead of blocking. On Ok @p value has been moved into the
     * queue; on TimedOut it is untouched so the caller can retry; on
     * Closed nothing was enqueued (and never will be).
     *
     * @param waited_us when non-null, accumulates the microseconds
     *        spent waiting inside this call.
     */
    ChannelStatus
    trySendFor(T &value, std::chrono::microseconds timeout,
               double *waited_us = nullptr)
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (queue_.size() >= capacity_ && !closed_) {
            const auto start = std::chrono::steady_clock::now();
            not_full_.wait_for(lock, timeout, [this] {
                return queue_.size() < capacity_ || closed_;
            });
            if (waited_us) {
                *waited_us +=
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
            }
        }
        if (closed_)
            return ChannelStatus::Closed;
        if (queue_.size() >= capacity_)
            return ChannelStatus::TimedOut;
        queue_.push_back(std::move(value));
        not_empty_.notify_one();
        return ChannelStatus::Ok;
    }

    /**
     * Bounded-wait receive: wait up to @p timeout for data, then
     * give up instead of blocking. Items queued before a close still
     * drain (Closed only once the channel is closed *and* empty).
     *
     * @param out receives the dequeued item on Ok
     * @param waited_us when non-null, accumulates the microseconds
     *        spent waiting inside this call.
     */
    ChannelStatus
    tryRecvFor(T &out, std::chrono::microseconds timeout,
               double *waited_us = nullptr)
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (queue_.empty() && !closed_) {
            const auto start = std::chrono::steady_clock::now();
            not_empty_.wait_for(lock, timeout, [this] {
                return !queue_.empty() || closed_;
            });
            if (waited_us) {
                *waited_us +=
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
            }
        }
        if (queue_.empty())
            return closed_ ? ChannelStatus::Closed
                           : ChannelStatus::TimedOut;
        out = std::move(queue_.front());
        queue_.pop_front();
        not_full_.notify_one();
        return ChannelStatus::Ok;
    }

    /**
     * Close the channel and wake every blocked send()/recv() waiter.
     * Idempotent and callable from any thread; used by the runtime
     * to propagate a worker failure to the peers blocked on it.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    /** @return whether close() was called. */
    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

    /** @return items currently queued (diagnostic; racy by nature). */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return queue_.size();
    }

    /** @return the capacity bound. */
    std::size_t capacity() const { return capacity_; }

  private:
    mutable std::mutex mu_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> queue_;
    std::size_t capacity_;
    bool closed_ = false;
};

} // namespace adapipe

#endif // ADAPIPE_RUNTIME_CHANNEL_H
