/**
 * @file
 * Replan-and-resume recovery around the pipeline runtime.
 *
 * runPipelineWithRecovery() runs a normal pipeline training job and,
 * when a fault is detected (a worker dies or the watchdog reports a
 * silent one), treats the failed worker's device as lost: it replans
 * the job onto one fewer pipeline stage with replanDegraded(),
 * rebuilds the stage specs, restores the latest training-state
 * snapshot and resumes from the snapshot's step until the requested
 * number of iterations completes.
 *
 * Because the runtime computes bit-identical losses for any stage
 * partition and the data stream is keyed by the global step, a
 * recovered run's stitched loss curve is bit-identical to an
 * uninterrupted run — degradation costs wall-clock (detection +
 * replan + restore + lost iterations), never training fidelity.
 *
 * Snapshot handling is deliberately asymmetric: a *missing* snapshot
 * file falls back to a fresh restart from step 0 (nothing was ever
 * written — e.g. the fault hit before the first cadence boundary),
 * but a *corrupt* snapshot is a hard error. Silently training on
 * garbage state would be worse than stopping.
 */

#ifndef ADAPIPE_RUNTIME_RECOVERY_H
#define ADAPIPE_RUNTIME_RECOVERY_H

#include <string>
#include <vector>

#include "core/profiled_model.h"
#include "core/stage_cost.h"
#include "runtime/pipeline_runtime.h"

namespace adapipe {

/** Recovery policy on top of RuntimeOptions' fault/watchdog/snapshot
 *  configuration. */
struct RecoveryOptions
{
    /**
     * Replan to fewer stages and resume after a detected fault.
     * When false, runPipelineWithRecovery degrades to a single
     * runPipeline call (the result is still wrapped).
     */
    bool replanOnFault = false;
    /** Maximum replan-and-resume rounds before giving up. */
    int maxRecoveries = 1;
    /**
     * Healthy profiled model to replan against (required when
     * replanOnFault). Its par.pipeline is overridden with the
     * current surviving stage count on every recovery round.
     */
    const ProfiledModel *pm = nullptr;
    /** Stage-cost options the replan layers the degradation onto. */
    StageCostOptions costOpts;
    /**
     * When non-empty, each recovery round writes its degraded plan
     * (with scenario + original-plan fingerprint provenance) to this
     * path via robust/replan_io.
     */
    std::string degradedPlanOut;
    /** Healthy plan the job started from; fingerprinted into the
     *  degraded-plan document (may be null). */
    const PipelinePlan *originalPlan = nullptr;
};

/** One detected fault and what recovery did about it. */
struct RecoveryAttempt
{
    /** Worker the failure was attributed to. */
    int failedWorker = -1;
    /** How the fault was detected. */
    RuntimeFailureKind kind = RuntimeFailureKind::None;
    /** The failed run's diagnostic. */
    std::string error;
    /** Watchdog detection latency of this fault (0 for a clean
     *  worker error). */
    double detectSeconds = 0;
    /** Whether the latest snapshot was restored (false = fresh
     *  restart because no snapshot existed yet). */
    bool restoredFromSnapshot = false;
    /** Global step training resumed from. */
    int resumedFromStep = 0;
    /** Completed iterations discarded (progress past the snapshot
     *  the failed run had already made). */
    int lostIterations = 0;
    /** Pipeline stages after the replan. */
    int newStages = 0;
    /** Virtual stages after the replan. */
    int newVirtualStages = 1;
    /** Time spent in replanDegraded + stage mapping. */
    double replanSeconds = 0;
    /** Time spent loading + restoring the snapshot. */
    double restoreSeconds = 0;
};

/** Outcome of a recovery-supervised training job. */
struct RecoveryResult
{
    bool ok = false;
    /** Terminal diagnostic when !ok. */
    std::string error;
    /**
     * Stitched per-step losses over the whole job (one entry per
     * requested step): each run's losses at its global-step offset,
     * later runs overwriting the failed run's tail. Bit-identical to
     * an uninterrupted run when every resume restored a snapshot.
     */
    std::vector<double> losses;
    /** The final (successful or last-failed) runPipeline result. */
    RuntimeResult finalRun;
    /** Stage specs the job finished on. */
    std::vector<StageSpec> finalSpecs;
    /** Pipeline stages the job finished on. */
    int finalStages = 0;
    /** Virtual stages the job finished on. */
    int finalVirtualStages = 1;
    /** One entry per detected fault, in order. */
    std::vector<RecoveryAttempt> attempts;
    /** End-to-end wall time including all recovery rounds. */
    double wallSeconds = 0;
};

/**
 * Run pipeline training with fault detection and replan-and-resume
 * recovery.
 *
 * Fault injection, the watchdog and the snapshot cadence come from
 * @p opts (RuntimeOptions::faults / watchdog / snapshot); @p rec
 * adds the recovery policy. The injected one-shot crash is cleared
 * on resume (it fired); environmental faults (slowdowns, stalls,
 * send delays) keep applying to resumed runs.
 *
 * @param model the model; updated in place across all rounds
 * @param stages initial stage specs (chain order)
 * @param opts runtime options of the initial run; opts.steps counts
 *        from opts.firstStep and is the job's total step budget
 * @param rec recovery policy
 * @param metrics optional registry; per-run metrics merge and
 *        recovery.* counters/gauges are added on top
 */
RecoveryResult
runPipelineWithRecovery(TinyLM &model,
                        const std::vector<StageSpec> &stages,
                        const RuntimeOptions &opts,
                        const RecoveryOptions &rec,
                        obs::Registry *metrics = nullptr);

} // namespace adapipe

#endif // ADAPIPE_RUNTIME_RECOVERY_H
