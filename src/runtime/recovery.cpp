#include "runtime/recovery.h"

#include <utility>

#include "robust/replan.h"
#include "robust/replan_io.h"
#include "runtime/plan_mapping.h"
#include "util/file_io.h"
#include "util/logging.h"

namespace adapipe {

namespace {

/** Overwrite @p out at the run's global-step offset. */
void
stitchLosses(std::vector<double> &out, int offset,
             const std::vector<double> &losses)
{
    for (std::size_t i = 0; i < losses.size(); ++i) {
        const std::size_t at = static_cast<std::size_t>(offset) + i;
        if (at < out.size())
            out[at] = losses[i];
    }
}

/** Re-initialise @p model to its seed state (fresh restart when no
 *  snapshot was ever written). */
void
reinitModel(TinyLM &model)
{
    TinyLM fresh(model.config());
    std::vector<Variable> params = model.params();
    const std::vector<Variable> seed_params = fresh.params();
    ADAPIPE_ASSERT(params.size() == seed_params.size(),
                   "model parameter count changed");
    for (std::size_t i = 0; i < params.size(); ++i)
        params[i].mutableValue() = seed_params[i].value();
}

} // namespace

RecoveryResult
runPipelineWithRecovery(TinyLM &model,
                        const std::vector<StageSpec> &stages,
                        const RuntimeOptions &opts,
                        const RecoveryOptions &rec,
                        obs::Registry *metrics)
{
    RecoveryResult out;
    out.losses.assign(static_cast<std::size_t>(opts.steps), 0.0);
    // Exclusive global-step bound of the whole job.
    const int end_step = opts.firstStep + opts.steps;

    std::vector<StageSpec> specs = stages;
    RuntimeOptions run_opts = opts;
    // Own the fault spec so resumed rounds can clear the one-shot
    // crash without touching the caller's copy.
    RuntimeFaultSpec faults;
    if (opts.faults) {
        faults = *opts.faults;
        run_opts.faults = &faults;
    }
    TrainingSnapshot snap;

    const double job_start_us = obs::nowUs();
    const auto finish = [&](bool ok, std::string error,
                            RuntimeResult run) {
        out.ok = ok;
        out.error = std::move(error);
        out.finalRun = std::move(run);
        out.finalSpecs = specs;
        out.finalVirtualStages = run_opts.virtualStages;
        out.finalStages = static_cast<int>(specs.size()) /
                          run_opts.virtualStages;
        out.wallSeconds = (obs::nowUs() - job_start_us) * 1e-6;
        return out;
    };

    for (int round = 0;; ++round) {
        RuntimeResult run = runPipeline(model, specs, run_opts,
                                        metrics);
        stitchLosses(out.losses,
                     run_opts.firstStep - opts.firstStep,
                     run.losses);
        if (run.ok)
            return finish(true, "", std::move(run));

        // A failure with no attributable worker is a configuration
        // error, not a fault — recovery cannot help.
        if (run.failureKind == RuntimeFailureKind::None ||
            !rec.replanOnFault || round >= rec.maxRecoveries) {
            return finish(false, run.error, std::move(run));
        }

        RecoveryAttempt attempt;
        attempt.failedWorker = run.failedWorker;
        attempt.kind = run.failureKind;
        attempt.error = run.error;
        attempt.detectSeconds = run.detectSeconds;
        if (metrics)
            metrics->add("recovery.detections", 1);

        // --- Load the latest snapshot (missing file = fresh
        // restart; corrupt file = hard stop). ---
        const double restore_start_us = obs::nowUs();
        bool restored = false;
        int resume_step = opts.firstStep;
        if (run_opts.snapshot.every > 0) {
            ParseResult<std::string> bytes =
                readTextFile(run_opts.snapshot.path);
            if (bytes.ok()) {
                ParseResult<TrainingSnapshot> loaded =
                    snapshotFromBytes(bytes.value());
                if (!loaded.ok()) {
                    out.attempts.push_back(std::move(attempt));
                    return finish(
                        false,
                        "recovery: refusing to restore corrupt "
                        "snapshot " +
                            run_opts.snapshot.path + ": " +
                            loaded.error(),
                        std::move(run));
                }
                snap = std::move(loaded).value();
                restored = true;
                resume_step = static_cast<int>(snap.step);
            }
        }

        // --- Replan onto one fewer stage. ---
        const int workers = static_cast<int>(specs.size()) /
                            run_opts.virtualStages;
        if (workers <= 1) {
            out.attempts.push_back(std::move(attempt));
            return finish(false,
                          "recovery: cannot replan below one "
                          "surviving stage",
                          std::move(run));
        }
        if (rec.pm == nullptr) {
            out.attempts.push_back(std::move(attempt));
            return finish(false,
                          "recovery: replanOnFault requires a "
                          "profiled model (RecoveryOptions::pm)",
                          std::move(run));
        }
        const double replan_start_us = obs::nowUs();
        ProfiledModel pm = *rec.pm;
        pm.par.pipeline = workers;
        DegradedScenario scenario;
        scenario.lostStages = 1;
        const ReplanResult replanned =
            replanDegraded(pm, scenario, rec.costOpts);
        if (!replanned.ok) {
            out.attempts.push_back(std::move(attempt));
            return finish(false,
                          "recovery: replan failed: " +
                              replanned.reason,
                          std::move(run));
        }
        const StageMapping mapping =
            stageSpecsFromPlan(replanned.plan, model.config());
        specs = mapping.stages;
        run_opts.virtualStages = mapping.virtualStages;
        attempt.replanSeconds =
            (obs::nowUs() - replan_start_us) * 1e-6;
        attempt.newVirtualStages = mapping.virtualStages;
        attempt.newStages = static_cast<int>(specs.size()) /
                            mapping.virtualStages;

        if (!rec.degradedPlanOut.empty()) {
            DegradedPlanDoc doc;
            doc.plan = replanned.plan;
            doc.scenario = scenario;
            doc.degradedCapacity = replanned.degradedCapacity;
            if (rec.originalPlan)
                doc.originalFingerprint =
                    planFingerprint(*rec.originalPlan);
            const ParseStatus saved = saveDegradedPlanFile(
                rec.degradedPlanOut, doc);
            if (!saved.ok()) {
                out.attempts.push_back(std::move(attempt));
                return finish(false,
                              "recovery: " + saved.error(),
                              std::move(run));
            }
        }

        // --- Restore training state and aim the resumed run. ---
        if (restored) {
            const ParseStatus applied = restoreTinyLM(model, snap);
            if (!applied.ok()) {
                out.attempts.push_back(std::move(attempt));
                return finish(false,
                              "recovery: " + applied.error(),
                              std::move(run));
            }
            run_opts.restore = &snap;
        } else {
            reinitModel(model);
            run_opts.restore = nullptr;
        }
        attempt.restoredFromSnapshot = restored;
        attempt.resumedFromStep = resume_step;
        const int completed = run_opts.firstStep +
                              static_cast<int>(run.losses.size());
        attempt.lostIterations =
            completed > resume_step ? completed - resume_step : 0;
        attempt.restoreSeconds =
            (obs::nowUs() - restore_start_us) * 1e-6 -
            attempt.replanSeconds;
        run_opts.firstStep = resume_step;
        run_opts.steps = end_step - resume_step;

        // The one-shot crash fired; environmental faults persist.
        faults.crash = RuntimeCrash{};
        run_opts.faults = faults.empty() ? nullptr : &faults;

        if (metrics) {
            metrics->add("recovery.resumes", 1);
            metrics->add("recovery.lost_iterations",
                         attempt.lostIterations);
            metrics->set("recovery.replan_us",
                         attempt.replanSeconds * 1e6);
            metrics->set("recovery.restore_us",
                         attempt.restoreSeconds * 1e6);
            metrics->set("recovery.detect_us",
                         attempt.detectSeconds * 1e6);
            metrics->set("recovery.stages",
                         attempt.newStages);
        }
        out.attempts.push_back(std::move(attempt));
    }
}

} // namespace adapipe
