#include "runtime/plan_mapping.h"

#include <cstddef>
#include <sstream>

#include "model/units.h"
#include "util/logging.h"

namespace adapipe {

namespace {

/** Uniform fallback mode when the saved mask cannot be decoded. */
BlockRecompute
fallbackMode(PlanMethod method)
{
    switch (method) {
    case PlanMethod::DappleFull:
        return BlockRecompute::Full;
    case PlanMethod::DappleSelective:
        return BlockRecompute::AttentionOnly;
    case PlanMethod::DappleNon:
    case PlanMethod::AdaPipe:
    case PlanMethod::EvenPartition:
        break;
    }
    return BlockRecompute::None;
}

/**
 * Per-layer recompute/offload flags decoded from the plan's saved and
 * offload masks: layer index -> "at least one knapsack-eligible unit
 * is recomputed" (resp. "is offloaded to host"). An offloaded unit is
 * neither saved nor recomputed, so it never sets the recompute flag.
 * @return false when any stage's mask does not match its unit count.
 */
bool
decodeLayerRecompute(const PipelinePlan &plan,
                     const std::vector<Layer> &layers,
                     std::vector<bool> &recomp,
                     std::vector<bool> &offload)
{
    recomp.assign(layers.size(), false);
    offload.assign(layers.size(), false);
    for (const StagePlan &stage : plan.stages) {
        if (stage.firstLayer < 0 ||
            stage.lastLayer >= static_cast<int>(layers.size()))
            return false;
        std::size_t units = 0;
        for (int l = stage.firstLayer; l <= stage.lastLayer; ++l)
            units += layers[static_cast<std::size_t>(l)].units.size();
        if (stage.savedMask.size() != units)
            return false;
        if (!stage.offloadMask.empty() &&
            stage.offloadMask.size() != units)
            return false;

        std::size_t pos = 0;
        for (int l = stage.firstLayer; l <= stage.lastLayer; ++l) {
            const Layer &layer = layers[static_cast<std::size_t>(l)];
            for (const ComputationUnit &unit : layer.units) {
                const bool saved = stage.savedMask[pos];
                const bool off = !stage.offloadMask.empty() &&
                                 stage.offloadMask[pos];
                ++pos;
                if (off)
                    offload[static_cast<std::size_t>(l)] = true;
                else if (!unit.alwaysSaved && !saved)
                    recomp[static_cast<std::size_t>(l)] = true;
            }
        }
    }
    return true;
}

} // namespace

ModelConfig
tinyLmModelConfig(const TinyLmConfig &config)
{
    ModelConfig model;
    model.name = "TinyLM";
    model.numBlocks = config.blocks;
    model.hiddenSize = config.dim;
    model.numHeads = config.numHeads;
    model.numKvHeads = config.numHeads;
    model.ffnHiddenSize = config.ffnHidden;
    model.vocabSize = config.vocab;
    model.gatedFfn = config.gatedFfn;
    model.bias = true;
    model.causal = true;
    model.dtypeBytes = 4; // the autograd engine computes in fp32
    model.validate();
    return model;
}

StageMapping
stageSpecsFromPlan(const PipelinePlan &plan, const TinyLmConfig &config)
{
    const int num_blocks = config.blocks;
    const int num_layers = 2 * num_blocks + 2;
    ADAPIPE_ASSERT(!plan.stages.empty(), "plan has no stages");
    if (plan.stages.front().firstLayer != 0 ||
        plan.stages.back().lastLayer != num_layers - 1) {
        ADAPIPE_FATAL("plan covers layers [",
                      plan.stages.front().firstLayer, ", ",
                      plan.stages.back().lastLayer, "] but a ",
                      num_blocks, "-block tiny LM has layers [0, ",
                      num_layers - 1, "]");
    }

    StageMapping mapping;
    mapping.virtualStages = plan.virtualStages;
    mapping.overlap = plan.overlap;

    // Decode the per-unit masks against the tiny LM's own layer
    // sequence; fall back to the method's uniform policy when the
    // plan was built for different unit shapes.
    const std::vector<Layer> layers = buildLayerSequence(
        tinyLmModelConfig(config), plan.train, plan.par);
    std::vector<bool> layer_recomp;
    std::vector<bool> layer_offload;
    const bool mask_ok =
        decodeLayerRecompute(plan, layers, layer_recomp, layer_offload);
    const BlockRecompute fallback = fallbackMode(plan.method);
    if (!mask_ok) {
        std::ostringstream note;
        note << "saved masks do not match the tiny LM's computation "
                "units; using uniform "
             << (fallback == BlockRecompute::Full ? "full"
                 : fallback == BlockRecompute::AttentionOnly
                     ? "attention-only"
                     : "no")
             << " recompute from method "
             << planMethodName(plan.method);
        mapping.notes.push_back(note.str());
    }

    const std::size_t p = plan.stages.size();
    int next_block = 0;
    for (std::size_t s = 0; s < p; ++s) {
        const StagePlan &sp = plan.stages[s];
        // Block b's Attention layer has index 1 + 2b; a block belongs
        // to the stage owning its Attention layer. When the plan cuts
        // between a block's Attention and FeedForward layers, the
        // whole block rounds onto the Attention side.
        int b_hi = sp.lastLayer < 1 ? -1 : (sp.lastLayer - 1) / 2;
        if (b_hi >= num_blocks)
            b_hi = num_blocks - 1;

        StageSpec spec;
        spec.firstBlock = next_block;
        spec.lastBlock = b_hi;
        spec.embedding = (s == 0);
        spec.head = (s + 1 == p);

        if (spec.lastBlock < spec.firstBlock) {
            // A plan range holding no Attention layer (e.g. p close
            // to the layer count, or a stage owning only the
            // embedding/head) maps to a block-less stage. The
            // runtime executes those as pass-throughs; record it so
            // reports can explain the idle stage.
            std::ostringstream note;
            note << "stage " << s << " (layers " << sp.firstLayer
                 << "-" << sp.lastLayer
                 << ") owns no attention blocks; it runs as a "
                    "pass-through stage";
            mapping.notes.push_back(note.str());
        }

        if (s > 0 && sp.firstLayer % 2 == 0 &&
            sp.firstLayer < num_layers - 1) {
            std::ostringstream note;
            note << "stage " << s << " starts at layer "
                 << sp.firstLayer
                 << " (FeedForward); block "
                 << (sp.firstLayer - 2) / 2
                 << " rounds onto stage " << s - 1;
            mapping.notes.push_back(note.str());
        }

        for (int b = spec.firstBlock; b <= spec.lastBlock; ++b) {
            BlockRecompute mode = fallback;
            bool off = false;
            if (mask_ok) {
                const std::size_t attn =
                    static_cast<std::size_t>(1 + 2 * b);
                const std::size_t ffn =
                    static_cast<std::size_t>(2 + 2 * b);
                const bool attn_r = layer_recomp[attn];
                const bool ffn_r =
                    ffn < layer_recomp.size() && layer_recomp[ffn];
                const bool attn_o = layer_offload[attn];
                const bool ffn_o =
                    ffn < layer_offload.size() && layer_offload[ffn];
                // The runtime host-stages whole blocks; any offloaded
                // unit in the block promotes it to block offload (the
                // recompute mode is then moot — offload supersedes).
                off = attn_o || ffn_o;
                // FFN recompute needs the whole block replayed (the
                // runtime checkpoints blocks or attention
                // sub-layers, not FFNs alone).
                mode = off       ? BlockRecompute::None
                       : ffn_r   ? BlockRecompute::Full
                       : attn_r ? BlockRecompute::AttentionOnly
                                : BlockRecompute::None;
                if (off && !(attn_o && ffn_o)) {
                    std::ostringstream note;
                    note << "block " << b << ": plan offloads "
                         << (attn_o ? "Attention" : "FeedForward")
                         << " units only; runtime rounds up to "
                            "whole-block host offload";
                    mapping.notes.push_back(note.str());
                }
                if (ffn_r && !attn_r && !off) {
                    std::ostringstream note;
                    note << "block " << b
                         << ": plan recomputes FeedForward units "
                            "only; runtime rounds up to full-block "
                            "recompute";
                    mapping.notes.push_back(note.str());
                }
            }
            spec.recompute.push_back(mode);
            spec.offload.push_back(off);
        }

        next_block = spec.lastBlock + 1;
        mapping.stages.push_back(std::move(spec));
    }
    ADAPIPE_ASSERT(next_block == num_blocks,
                   "plan mapping covered ", next_block, " of ",
                   num_blocks, " blocks");
    return mapping;
}

} // namespace adapipe
