#include "runtime/pipeline_runtime.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include <chrono>
#include <condition_variable>
#include <optional>

#include "autograd/checkpoint.h"
#include "autograd/engine.h"
#include "autograd/optim.h"
#include "autograd/trainer.h"
#include "obs/macros.h"
#include "runtime/channel.h"
#include "runtime/host_stager.h"
#include "sim/schedule.h"
#include "util/logging.h"

namespace adapipe {

namespace {

/** Channel-wait tick under the watchdog: a blocked worker re-arms
 *  its wait this often and beats in between, so waiting on a slow
 *  but alive neighbour never looks like a stall. */
constexpr auto kHeartbeatTick = std::chrono::milliseconds(2);

/**
 * Snapshot barrier + capturer. Every worker arrives after its
 * optimizer step on a due iteration; channels are empty at that
 * point (the step's in-flight micro-batches all drained), so the
 * barrier cannot deadlock against channel backpressure. The last
 * arriver captures the training state under the barrier mutex —
 * every peer is parked, and its arrival gave the capture
 * happens-before over the peer's parameter writes — then writes the
 * file *outside* the lock while the others resume training. Parked
 * waiters wake on a short tick to beat the watchdog, and abort()
 * (called from RunState::fail) converts them to the standard
 * ChannelClosedError unwind so a failure elsewhere never strands the
 * barrier.
 */
class SnapshotCoordinator
{
  public:
    SnapshotCoordinator(TinyLM &model, const RuntimeOptions &opts,
                        int num_workers)
        : model_(model), opts_(opts), numWorkers_(num_workers),
          adams_(static_cast<std::size_t>(num_workers), nullptr)
    {
    }

    /** @return whether global step @p gstep ends with a snapshot. */
    bool
    due(int gstep) const
    {
        return opts_.snapshot.every > 0 &&
               (gstep + 1) % opts_.snapshot.every == 0;
    }

    /** Publish @p worker's Adam (may be null) for moment capture. */
    void
    registerAdam(int worker, const Adam *adam)
    {
        std::lock_guard<std::mutex> lock(mu_);
        adams_[static_cast<std::size_t>(worker)] = adam;
    }

    /**
     * Barrier after the optimizer step of global step @p gstep.
     * @throws std::runtime_error when the snapshot write fails
     * @throws ChannelClosedError after abort()
     */
    void
    arrive(int worker, int gstep, Watchdog *watchdog)
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (aborted_)
            throw ChannelClosedError{};
        const std::int64_t gen = generation_;
        if (++arrived_ == numWorkers_) {
            // The snapshot records *completed* steps: gstep + 1.
            TrainingSnapshot snap = captureTrainingSnapshot(
                model_, adams_, gstep + 1, opts_.dataSeed,
                opts_.useAdam);
            arrived_ = 0;
            ++generation_;
            lock.unlock();
            cv_.notify_all();
            const ParseStatus wrote =
                writeSnapshotFile(opts_.snapshot.path, snap);
            if (watchdog)
                watchdog->beat(worker);
            if (!wrote.ok()) {
                throw std::runtime_error("snapshot write failed: " +
                                         wrote.error());
            }
            ADAPIPE_OBS_COUNT("snapshot.writes", 1);
            return;
        }
        while (generation_ == gen && !aborted_) {
            cv_.wait_for(lock, kHeartbeatTick);
            if (watchdog)
                watchdog->beat(worker);
        }
        if (generation_ == gen)
            throw ChannelClosedError{};
    }

    /** Release parked waiters into the shutdown unwind. */
    void
    abort()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            aborted_ = true;
        }
        cv_.notify_all();
    }

  private:
    TinyLM &model_;
    const RuntimeOptions &opts_;
    int numWorkers_;
    std::vector<const Adam *> adams_;

    std::mutex mu_;
    std::condition_variable cv_;
    int arrived_ = 0;
    std::int64_t generation_ = 0;
    bool aborted_ = false;
};

/**
 * Replays registered by one forward op that its backward has not yet
 * consumed: the overlap executor's unit of work. Handles are warmed
 * in creation order (block order within the micro-batch); entries
 * are keyed by the backward op's rank in the worker's device order,
 * so the nearest backward warms first.
 */
struct PendingReplays
{
    /** Local chunk index (metrics attribution). */
    int local = 0;
    /** Chain position / micro-batch (firing-log coordinates). */
    int pos = 0;
    int microBatch = 0;
    /** Next handle to warm. */
    std::size_t next = 0;
    std::vector<ReplayHandle> handles;
};

/** Activation state of one in-flight micro-batch on one chunk. */
struct Inflight
{
    /** Boundary leaf the chunk's segment starts from (pos > 0). */
    Variable input;
    /** Chunk output kept until backward: the boundary activation,
     *  or the loss on the head chunk. This retention IS the
     *  schedule's in-flight activation memory. */
    Variable output;
};

/** One model chunk hosted by a worker: its spec, channels, stats. */
struct ChunkCtx
{
    const StageSpec *spec = nullptr;
    /** Chain position g = chunk * workers + workerIdx. */
    int pos = 0;
    BoundedChannel<Tensor> *fwdIn = nullptr;
    BoundedChannel<Tensor> *fwdOut = nullptr;
    BoundedChannel<Tensor> *bwdIn = nullptr;
    BoundedChannel<Tensor> *bwdOut = nullptr;
    StageMetrics metrics;
};

/**
 * One device's worker: owns its optimizer (over every hosted chunk's
 * parameters), its obs registry and its in-flight table; runs the
 * device's fixed op order, dispatching each op to the chunk its
 * chain position names.
 */
class StageWorker
{
  public:
    StageWorker(TinyLM &model, int worker_idx, int num_workers,
                const Schedule &sched, const RuntimeOptions &opts,
                FaultInjector *injector, Watchdog *watchdog,
                SnapshotCoordinator *snapshots)
        : model_(model), workerIdx_(worker_idx),
          numWorkers_(num_workers), sched_(sched), opts_(opts),
          injector_(injector), watchdog_(watchdog),
          snapshots_(snapshots)
    {
    }

    void
    addChunk(ChunkCtx ctx)
    {
        ctx.metrics.chainPos = ctx.pos;
        ctx.metrics.firstBlock = ctx.spec->firstBlock;
        ctx.metrics.lastBlock = ctx.spec->lastBlock;
        ctx.metrics.embedding = ctx.spec->embedding;
        ctx.metrics.head = ctx.spec->head;
        if (ctx.spec->head)
            hasHead_ = true;
        chunks_.push_back(std::move(ctx));
    }

    void run();

    /** Attach the heartbeat monitor (before run(); may stay null). */
    void setWatchdog(Watchdog *watchdog) { watchdog_ = watchdog; }

    int workerIdx() const { return workerIdx_; }

    const StageMetrics &
    metrics(int local_chunk) const
    {
        return chunks_[static_cast<std::size_t>(local_chunk)].metrics;
    }

    const std::vector<double> &losses() const { return losses_; }
    const obs::Registry &registry() const { return registry_; }

  private:
    ChunkCtx &
    chunkOf(const PipeOp &op)
    {
        return chunks_[static_cast<std::size_t>(op.pos / numWorkers_)];
    }

    std::vector<Variable> ownParams() const;
    void runForward(int step, const PipeOp &op);
    void runBackward(int step, const PipeOp &op);
    Tensor recvFrom(BoundedChannel<Tensor> *ch, double *waited_us);
    double sendTo(BoundedChannel<Tensor> *ch, Tensor value);
    double warmOnePending();
    double drainAllPending();
    void recordSpan(const char *name, double start_us);
    void flushGauges();

    TinyLM &model_;
    int workerIdx_;
    int numWorkers_;
    const Schedule &sched_;
    const RuntimeOptions &opts_;
    FaultInjector *injector_;
    Watchdog *watchdog_;
    SnapshotCoordinator *snapshots_;
    std::vector<ChunkCtx> chunks_;
    bool hasHead_ = false;

    /** Keyed by (local chunk, micro-batch). */
    std::map<std::pair<int, int>, Inflight> inflight_;
    /** Overlap executor state: pending replays keyed by the rank of
     *  their backward op in this worker's device order, so
     *  pending_.begin() is always the next backward's work. */
    std::map<std::size_t, PendingReplays> pending_;
    /** (pos, microBatch) -> backward-op rank in the device order. */
    std::map<std::pair<int, int>, std::size_t> bwdRank_;
    /** Warm firing log (encoded; see StageMetrics::overlapFirings). */
    std::vector<std::int64_t> firings_;
    std::vector<int> tokens_;
    std::vector<int> targets_;
    /** Per-stage backward engine (opts.intraStageThreads workers);
     *  created on the worker thread so helpers are its children. */
    std::unique_ptr<BackwardEngine> engine_;
    /** Host-staging tier; created only when a hosted chunk offloads
     *  at least one block. */
    std::unique_ptr<HostStager> stager_;
    double lossSum_ = 0;
    std::int64_t opsExecuted_ = 0;
    /** Ops completed within the current step (the fault injector's
     *  crash coordinate). */
    std::int64_t opsThisStep_ = 0;
    std::vector<double> losses_;
    obs::Registry registry_;
};

std::vector<Variable>
StageWorker::ownParams() const
{
    std::vector<Variable> params;
    for (const ChunkCtx &ctx : chunks_) {
        const StageSpec &spec = *ctx.spec;
        if (spec.embedding) {
            const auto e = model_.embedParams();
            params.insert(params.end(), e.begin(), e.end());
        }
        for (int b = spec.firstBlock; b <= spec.lastBlock; ++b) {
            const auto bp = model_.blockParams(b);
            params.insert(params.end(), bp.begin(), bp.end());
        }
        if (spec.head) {
            const auto h = model_.headParams();
            params.insert(params.end(), h.begin(), h.end());
        }
    }
    return params;
}

/**
 * Warm the next pending replay: the lowest-backward-rank entry's
 * next unwarmed handle (nearest backward first, block order within a
 * micro-batch). Exhausted entries are dropped on the way.
 *
 * @return microseconds spent warming (0 when nothing was pending);
 *         metrics are attributed to the owning chunk.
 */
double
StageWorker::warmOnePending()
{
    while (!pending_.empty()) {
        auto it = pending_.begin();
        PendingReplays &entry = it->second;
        while (entry.next < entry.handles.size()) {
            const std::size_t unit = entry.next++;
            const double t0 = obs::nowUs();
            if (!entry.handles[unit].warm())
                continue; // already fired (lazy backward got there)
            const double us = obs::nowUs() - t0;
            StageMetrics &m =
                chunks_[static_cast<std::size_t>(entry.local)]
                    .metrics;
            m.replayHiddenSeconds += us * 1e-6;
            m.replaySeconds += us * 1e-6;
            ++m.replayHiddenOps;
            ++m.replayOps;
            registry_.add("runtime.overlap.warms", 1);
            firings_.push_back(
                static_cast<std::int64_t>(entry.pos) * 1000000 +
                static_cast<std::int64_t>(entry.microBatch) * 1000 +
                static_cast<std::int64_t>(unit));
            return us;
        }
        pending_.erase(it);
    }
    return 0;
}

/** Test hook (overlapDrainAll): warm everything pending right now,
 *  making the firing log a pure function of the schedule. */
double
StageWorker::drainAllPending()
{
    double us = 0;
    for (;;) {
        const double step = warmOnePending();
        if (step == 0 && pending_.empty())
            return us;
        us += step;
        if (watchdog_)
            watchdog_->beat(workerIdx_);
    }
}

/**
 * Channel receive that beats the heartbeat and/or warms pending
 * checkpoint replays while blocked. Without a watchdog and with
 * nothing to warm this is the plain blocking recv (no extra branches
 * inside the wait).
 *
 * Wait accounting: the timed-wait paths report the loop's wall clock
 * minus the time spent warming (which is compute, not waiting), so
 * the reported wait matches the plain blocking path no matter how
 * many 2ms beat iterations the wait spanned — the heartbeat overhead
 * between re-armed waits stays inside the measurement instead of
 * leaking out of it.
 */
Tensor
StageWorker::recvFrom(BoundedChannel<Tensor> *ch, double *waited_us)
{
    const bool overlap = opts_.overlapReplay;
    if (!watchdog_ && !overlap)
        return ch->recv(waited_us);
    Tensor out;
    const double wait_start = obs::nowUs();
    double warm_us = 0;
    if (overlap && opts_.overlapDrainAll)
        warm_us += drainAllPending();
    for (;;) {
        const bool have_pending = overlap && !pending_.empty();
        if (!watchdog_ && !have_pending) {
            out = ch->recv(nullptr);
            break;
        }
        // With work to warm, poll instead of parking: an empty
        // channel immediately yields the bubble to a warm.
        const auto tick = have_pending
                              ? std::chrono::microseconds(0)
                              : std::chrono::microseconds(
                                    kHeartbeatTick);
        const ChannelStatus status =
            ch->tryRecvFor(out, tick, nullptr);
        if (status == ChannelStatus::Ok)
            break;
        if (status == ChannelStatus::Closed)
            throw ChannelClosedError{};
        if (watchdog_)
            watchdog_->beat(workerIdx_);
        if (have_pending)
            warm_us += warmOnePending();
    }
    if (waited_us) {
        *waited_us = std::max(
            0.0, obs::nowUs() - wait_start - warm_us);
    }
    return out;
}

/** Heartbeat/overlap-capable counterpart of BoundedChannel::send();
 *  wait accounting as in recvFrom(). */
double
StageWorker::sendTo(BoundedChannel<Tensor> *ch, Tensor value)
{
    const bool overlap = opts_.overlapReplay;
    if (!watchdog_ && !overlap)
        return ch->send(std::move(value));
    const double wait_start = obs::nowUs();
    double warm_us = 0;
    if (overlap && opts_.overlapDrainAll)
        warm_us += drainAllPending();
    for (;;) {
        const bool have_pending = overlap && !pending_.empty();
        if (!watchdog_ && !have_pending) {
            ch->send(std::move(value));
            return std::max(
                0.0, obs::nowUs() - wait_start - warm_us);
        }
        const auto tick = have_pending
                              ? std::chrono::microseconds(0)
                              : std::chrono::microseconds(
                                    kHeartbeatTick);
        const ChannelStatus status =
            ch->trySendFor(value, tick, nullptr);
        if (status == ChannelStatus::Ok)
            return std::max(
                0.0, obs::nowUs() - wait_start - warm_us);
        if (status == ChannelStatus::Closed)
            throw ChannelClosedError{};
        if (watchdog_)
            watchdog_->beat(workerIdx_);
        if (have_pending)
            warm_us += warmOnePending();
    }
}

void
StageWorker::recordSpan(const char *name, double start_us)
{
    obs::SpanRecord span;
    span.name = name;
    span.startUs = start_us;
    span.durUs = obs::nowUs() - start_us;
    span.depth = 0;
    span.thread = obs::threadId();
    registry_.record(std::move(span));
}

void
StageWorker::runForward(int step, const PipeOp &op)
{
    ChunkCtx &ctx = chunkOf(op);
    const StageSpec &spec = *ctx.spec;
    const int local = op.pos / numWorkers_;
    const int n = opts_.microBatches;
    Variable h;
    if (ctx.fwdIn) {
        double waited_us = 0;
        Tensor in = recvFrom(ctx.fwdIn, &waited_us);
        ctx.metrics.recvWaitSeconds += waited_us * 1e-6;
        registry_.add("runtime.recvs", 1);
        Variable leaf(std::move(in), /*requires_grad=*/true);
        inflight_[{local, op.microBatch}].input = leaf;
        h = leaf;
    }

    const double start_us = obs::nowUs();
    // With overlapped replay, scoop up the ReplayHandles the blocks'
    // checkpoint() calls register so the channel-wait loops can warm
    // them before this micro-batch's backward.
    std::optional<ReplayCollector> collector;
    if (opts_.overlapReplay)
        collector.emplace();
    // With offloaded blocks, scoop up their OffloadHandles the same
    // way and hand them to the stager keyed by the backward's rank.
    const bool chunk_offloads =
        stager_ && std::find(spec.offload.begin(), spec.offload.end(),
                             true) != spec.offload.end();
    std::optional<OffloadCollector> offload_collector;
    if (chunk_offloads)
        offload_collector.emplace();
    if (spec.embedding) {
        makeBigramBatch(model_.config().vocab, opts_.seqLen,
                        step * n + op.microBatch, opts_.dataSeed,
                        tokens_, targets_);
        h = model_.embed(tokens_);
    }
    for (int b = spec.firstBlock; b <= spec.lastBlock; ++b) {
        const std::size_t bi =
            static_cast<std::size_t>(b - spec.firstBlock);
        if (chunk_offloads && spec.offload[bi])
            h = model_.blockForwardOffload(b, h);
        else
            h = model_.blockForward(b, h, spec.recompute[bi]);
    }
    if (offload_collector) {
        std::vector<OffloadHandle> handles = offload_collector->take();
        offload_collector.reset();
        if (!handles.empty()) {
            const auto rank =
                bwdRank_.find({op.pos, op.microBatch});
            ADAPIPE_ASSERT(rank != bwdRank_.end(),
                           "no backward op for offloaded forward at "
                           "position ", op.pos, " micro-batch ",
                           op.microBatch);
            stager_->submitEvict(rank->second, std::move(handles));
        }
    }
    if (collector) {
        std::vector<ReplayHandle> handles = collector->take();
        collector.reset();
        if (!handles.empty()) {
            const auto rank =
                bwdRank_.find({op.pos, op.microBatch});
            ADAPIPE_ASSERT(rank != bwdRank_.end(),
                           "no backward op for position ", op.pos,
                           " micro-batch ", op.microBatch,
                           " in the device order");
            PendingReplays entry;
            entry.local = local;
            entry.pos = op.pos;
            entry.microBatch = op.microBatch;
            entry.handles = std::move(handles);
            pending_.emplace(rank->second, std::move(entry));
        }
    }
    Inflight &fl = inflight_[{local, op.microBatch}];
    if (spec.head) {
        makeBigramBatch(model_.config().vocab, opts_.seqLen,
                        step * n + op.microBatch, opts_.dataSeed,
                        tokens_, targets_);
        Variable loss = model_.headLoss(h, targets_);
        lossSum_ += loss.value()[0];
        fl.output = loss;
    } else {
        fl.output = h;
    }
    ctx.metrics.fwdSeconds += (obs::nowUs() - start_us) * 1e-6;
    ++ctx.metrics.fwdOps;
    recordSpan("runtime.forward", start_us);
    registry_.add("runtime.fwd_ops", 1);

    if (ctx.fwdOut) {
        if (injector_) {
            injector_->beforeSend(workerIdx_, op.pos, step,
                                  op.microBatch, /*forward=*/true);
        }
        const double blocked_us =
            sendTo(ctx.fwdOut, fl.output.value());
        ctx.metrics.sendBlockedSeconds += blocked_us * 1e-6;
        registry_.add("runtime.sends", 1);
        if (blocked_us > 0)
            registry_.add("runtime.send_blocked", 1);
    }
}

void
StageWorker::runBackward(int step, const PipeOp &op)
{
    ChunkCtx &ctx = chunkOf(op);
    const int local = op.pos / numWorkers_;
    const auto it = inflight_.find({local, op.microBatch});
    ADAPIPE_ASSERT(it != inflight_.end(), "backward of micro-batch ",
                   op.microBatch, " at position ", op.pos,
                   " before its forward");
    Inflight fl = std::move(it->second);

    Tensor seed;
    if (ctx.spec->head) {
        // Seed with 1/n: gradients average over the iteration's
        // micro-batches, matching the single-threaded reference.
        seed = Tensor::full(
            fl.output.value().shape(),
            1.0f / static_cast<float>(opts_.microBatches));
    } else {
        double waited_us = 0;
        seed = recvFrom(ctx.bwdIn, &waited_us);
        ctx.metrics.recvWaitSeconds += waited_us * 1e-6;
        registry_.add("runtime.recvs", 1);
    }

    // This micro-batch's replays are about to fire (lazily, inside
    // the engine) if they have not been warmed; stop offering them
    // to the overlap executor.
    if (opts_.overlapReplay) {
        const auto rank = bwdRank_.find({op.pos, op.microBatch});
        if (rank != bwdRank_.end())
            pending_.erase(rank->second);
    }

    // Counter deltas around the engine run meter the lazy replays
    // exactly per chunk, even with intraStageThreads > 1: helper
    // threads merge their scratch registries into this worker's
    // before run() returns. Warm replays fire outside this window
    // and are accounted directly in warmOnePending().
    const double start_us = obs::nowUs();
    const std::int64_t replays_before =
        registry_.counter("checkpoint.replays");
    const std::int64_t replay_us_before =
        registry_.counter("checkpoint.replay_us");
    const std::int64_t miss_before =
        stager_ ? registry_.counter("offload.fetch_miss") : 0;
    engine_->run(fl.output, seed);
    Tensor input_grad;
    if (ctx.fwdIn)
        input_grad = fl.input.grad();
    // Drop the micro-batch's graph: this is the moment the schedule
    // releases the chunk's in-flight activation memory.
    inflight_.erase(it);
    fl = Inflight{};
    ctx.metrics.bwdSeconds += (obs::nowUs() - start_us) * 1e-6;
    ++ctx.metrics.bwdOps;
    ctx.metrics.replayOps +=
        registry_.counter("checkpoint.replays") - replays_before;
    ctx.metrics.replaySeconds +=
        static_cast<double>(
            registry_.counter("checkpoint.replay_us") -
            replay_us_before) *
        1e-6;
    if (stager_) {
        // The closure's fetch-miss count lands in this registry via
        // the engine's merge-on-return, exactly like the replay
        // counters above.
        ctx.metrics.offloadFetchMisses +=
            registry_.counter("offload.fetch_miss") - miss_before;
        const auto rank = bwdRank_.find({op.pos, op.microBatch});
        if (rank != bwdRank_.end())
            stager_->release(rank->second);
    }
    recordSpan("runtime.backward", start_us);
    registry_.add("runtime.bwd_ops", 1);

    if (ctx.bwdOut) {
        if (injector_) {
            injector_->beforeSend(workerIdx_, op.pos, step,
                                  op.microBatch, /*forward=*/false);
        }
        const double blocked_us =
            sendTo(ctx.bwdOut, std::move(input_grad));
        ctx.metrics.sendBlockedSeconds += blocked_us * 1e-6;
        registry_.add("runtime.sends", 1);
        if (blocked_us > 0)
            registry_.add("runtime.send_blocked", 1);
    }
}

void
StageWorker::flushGauges()
{
    for (std::size_t c = 0; c < chunks_.size(); ++c) {
        const StageMetrics &m = chunks_[c].metrics;
        std::string prefix =
            "runtime.stage." + std::to_string(workerIdx_) + ".";
        if (chunks_.size() > 1)
            prefix += "chunk." + std::to_string(c) + ".";
        registry_.set(prefix + "fwd_us", m.fwdSeconds * 1e6);
        registry_.set(prefix + "bwd_us", m.bwdSeconds * 1e6);
        // Backward compute and replay, disjointly: bwd_us contains
        // the lazy (critical-path) replay time, so the corrected
        // compute figure subtracts it back out.
        registry_.set(prefix + "bwd_compute_us",
                      m.bwdComputeSeconds() * 1e6);
        registry_.set(prefix + "send_blocked_us",
                      m.sendBlockedSeconds * 1e6);
        registry_.set(prefix + "recv_wait_us",
                      m.recvWaitSeconds * 1e6);
        registry_.set(prefix + "peak_activation_floats",
                      static_cast<double>(m.peakActivationFloats));
        registry_.set(prefix + "replay_us", m.replaySeconds * 1e6);
        registry_.set(prefix + "replay_hidden_us",
                      m.replayHiddenSeconds * 1e6);
        registry_.set(prefix + "replay_critical_us",
                      m.replayCriticalSeconds() * 1e6);
        registry_.set(prefix + "offload_evictions",
                      static_cast<double>(m.offloadEvictions));
        registry_.set(prefix + "offload_fetches",
                      static_cast<double>(m.offloadFetches));
        registry_.set(prefix + "offload_fetch_misses",
                      static_cast<double>(m.offloadFetchMisses));
        registry_.set(prefix + "offload_bytes_evicted",
                      static_cast<double>(m.offloadBytesEvicted));
        registry_.set(prefix + "num_blocks",
                      static_cast<double>(chunks_[c].spec->numBlocks()));
    }
}

void
StageWorker::run()
{
    // Per-worker registry, merged by the parent after join: the obs
    // discipline that keeps counters deterministic and TSan happy.
    // Engine-level instrumentation (checkpoint replays) lands here
    // too via the thread-local obs::current() pointer.
    obs::ScopedRegistry scope(&registry_);
    resetThreadActivationMeter();
    const std::int64_t act_base = threadLiveActivationFloats();

    // The engine (and its persistent helper threads) lives for the
    // whole run, so per-backward thread churn never happens; its
    // deterministic reduction keeps every gradient bit-identical to
    // intraStageThreads == 1.
    engine_ = std::make_unique<BackwardEngine>(
        EngineOptions{opts_.intraStageThreads});

    const std::vector<Variable> params = ownParams();
    std::unique_ptr<Adam> adam;
    std::unique_ptr<Sgd> sgd;
    if (!params.empty()) {
        if (opts_.useAdam)
            adam = std::make_unique<Adam>(params, opts_.lr);
        else
            sgd = std::make_unique<Sgd>(params, opts_.lr);
    }
    if (opts_.restore && adam) {
        // Parameters were restored before launch; the moments and
        // the bias-correction counter are per-worker state.
        const ParseStatus restored =
            restoreAdamState(*adam, model_, *opts_.restore);
        if (!restored.ok())
            throw std::runtime_error(restored.error());
    }
    if (snapshots_)
        snapshots_->registerAdam(workerIdx_, adam.get());

    bool offload_active = false;
    for (const ChunkCtx &ctx : chunks_) {
        for (const bool off : ctx.spec->offload)
            offload_active = offload_active || off;
    }
    if (offload_active) {
        HostStager::Options so;
        so.sync = opts_.offloadSync;
        so.forceMiss = opts_.offloadForceMiss;
        so.lookahead = opts_.offloadLookahead;
        stager_ = std::make_unique<HostStager>(so);
    }

    const std::vector<std::size_t> &order =
        sched_.deviceOrder[static_cast<std::size_t>(workerIdx_)];
    if (opts_.overlapReplay || stager_) {
        // Rank each backward op within this worker's device order:
        // the overlap executor warms pending replays in ascending
        // rank (the next backward this worker will run first), and
        // the host stager keys parked offload segments the same way.
        for (std::size_t k = 0; k < order.size(); ++k) {
            const PipeOp &op = sched_.ops[order[k]];
            if (op.kind == OpKind::Backward)
                bwdRank_[{op.pos, op.microBatch}] = k;
        }
    }
    for (int step = 0; step < opts_.steps; ++step) {
        const int gstep = opts_.firstStep + step;
        if (adam)
            adam->zeroGrad();
        else if (sgd)
            sgd->zeroGrad();
        lossSum_ = 0;
        opsThisStep_ = 0;

        for (std::size_t k = 0; k < order.size(); ++k) {
            const std::size_t idx = order[k];
            // Move the stager's prefetch cursor before the op runs:
            // parked micro-batches whose backward falls inside the
            // lookahead window get their fetches queued now.
            if (stager_)
                stager_->advance(k);
            if (workerIdx_ == opts_.injectFailStage &&
                opsExecuted_ == opts_.injectFailAfterOps) {
                throw std::runtime_error(
                    "injected failure after " +
                    std::to_string(opsExecuted_) + " ops");
            }
            const PipeOp &op = sched_.ops[idx];
            const bool forward = op.kind == OpKind::Forward;
            if (injector_) {
                injector_->beforeOp(workerIdx_, op.pos, gstep,
                                    op.microBatch, forward,
                                    opsThisStep_);
            }
            const double op_start = injector_ ? obs::nowUs() : 0;
            if (forward)
                runForward(gstep, op);
            else
                runBackward(gstep, op);
            if (injector_) {
                injector_->afterOp(workerIdx_, op.pos, gstep,
                                   op.microBatch, forward,
                                   obs::nowUs() - op_start);
            }
            ++opsExecuted_;
            ++opsThisStep_;
            if (watchdog_)
                watchdog_->beat(workerIdx_);
        }
        ADAPIPE_ASSERT(inflight_.empty(),
                       "in-flight micro-batches left after step");
        ADAPIPE_ASSERT(pending_.empty(),
                       "pending replays left after step");
        // Let queued transfers finish before the optimizer step so
        // byte counters stay attributable to the step that caused
        // them (every graph was consumed above either way).
        if (stager_)
            stager_->drain();

        if (hasHead_)
            losses_.push_back(lossSum_ / opts_.microBatches);
        if (adam)
            adam->step();
        else if (sgd)
            sgd->step();
        if (snapshots_ && snapshots_->due(gstep))
            snapshots_->arrive(workerIdx_, gstep, watchdog_);
    }
    if (watchdog_)
        watchdog_->markDone(workerIdx_);

    // Stop the stager before tearing the engine down; its totals
    // land on the first chunk (worker-level, like the activation
    // peak) and on the registry's offload.* counters.
    if (stager_) {
        stager_->stop();
        StageMetrics &m0 = chunks_.front().metrics;
        m0.offloadEvictions = stager_->evictions();
        m0.offloadFetches = stager_->fetches();
        m0.offloadBytesEvicted = stager_->bytesEvicted();
        m0.offloadBytesFetched = stager_->bytesFetched();
        registry_.add("offload.evictions", stager_->evictions());
        registry_.add("offload.fetches", stager_->fetches());
        registry_.add("offload.bytes_evicted",
                      static_cast<std::int64_t>(
                          stager_->bytesEvicted()));
        registry_.add("offload.bytes_fetched",
                      static_cast<std::int64_t>(
                          stager_->bytesFetched()));
        stager_.reset();
    }

    // Thread-level measurements land on the worker's first chunk
    // (the only chunk when virtualStages == 1); replay counts and
    // times are attributed exactly per chunk in runBackward /
    // warmOnePending.
    // Tear the engine down on this thread: helpers drain their
    // tensor-pool caches and exit before the worker joins.
    engine_.reset();

    chunks_.front().metrics.peakActivationFloats =
        threadPeakActivationFloats() - act_base;
    chunks_.front().metrics.overlapFirings = std::move(firings_);
    flushGauges();
}

/**
 * Tracks the first worker failure and force-closes every channel so
 * blocked peers unwind instead of waiting on a dead producer or
 * consumer forever. fail() also cancels every pending injected sleep
 * (a stalled or hung injector sleep would otherwise outlive the
 * shutdown) and releases any workers parked at the snapshot barrier.
 */
class RunState
{
  public:
    RunState(std::vector<BoundedChannel<Tensor> *> channels,
             FaultInjector *injector,
             SnapshotCoordinator *snapshots)
        : channels_(std::move(channels)), injector_(injector),
          snapshots_(snapshots)
    {
    }

    void
    fail(int worker, RuntimeFailureKind kind,
         const std::string &message, double detect_us = 0)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (!failed_) {
                failed_ = true;
                error_ = message;
                failedWorker_ = worker;
                kind_ = kind;
                detectUs_ = detect_us;
            }
        }
        if (injector_)
            injector_->cancelSleeps();
        if (snapshots_)
            snapshots_->abort();
        for (BoundedChannel<Tensor> *ch : channels_)
            ch->close();
    }

    bool
    failed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return failed_;
    }

    std::string
    error() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return error_;
    }

    int
    failedWorker() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return failedWorker_;
    }

    RuntimeFailureKind
    kind() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return kind_;
    }

    double
    detectUs() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return detectUs_;
    }

  private:
    mutable std::mutex mu_;
    bool failed_ = false;
    std::string error_;
    int failedWorker_ = -1;
    RuntimeFailureKind kind_ = RuntimeFailureKind::None;
    double detectUs_ = 0;
    std::vector<BoundedChannel<Tensor> *> channels_;
    FaultInjector *injector_;
    SnapshotCoordinator *snapshots_;
};

/** Validate the chain-order partition; panics on caller error. */
void
validateSpecs(const TinyLM &model, const std::vector<StageSpec> &specs)
{
    ADAPIPE_ASSERT(!specs.empty(), "need at least one stage");
    const int num_blocks = model.config().blocks;
    int next_block = 0;
    for (std::size_t s = 0; s < specs.size(); ++s) {
        const StageSpec &spec = specs[s];
        ADAPIPE_ASSERT(spec.embedding == (s == 0),
                       "embedding must live on chain position 0 "
                       "(position ", s, ")");
        ADAPIPE_ASSERT(spec.head == (s + 1 == specs.size()),
                       "head must live on the last chain position "
                       "(position ", s, ")");
        if (spec.numBlocks() == 0)
            continue;
        ADAPIPE_ASSERT(spec.firstBlock == next_block,
                       "position ", s, " starts at block ",
                       spec.firstBlock, ", expected ", next_block);
        ADAPIPE_ASSERT(spec.lastBlock < num_blocks,
                       "position ", s, " ends past block ",
                       num_blocks - 1);
        ADAPIPE_ASSERT(spec.recompute.empty() ||
                           static_cast<int>(spec.recompute.size()) ==
                               spec.numBlocks(),
                       "position ", s,
                       " recompute size does not match its blocks");
        ADAPIPE_ASSERT(spec.offload.empty() ||
                           static_cast<int>(spec.offload.size()) ==
                               spec.numBlocks(),
                       "position ", s,
                       " offload size does not match its blocks");
        next_block = spec.lastBlock + 1;
    }
    ADAPIPE_ASSERT(next_block == num_blocks,
                   "stages cover blocks [0, ", next_block,
                   "), model has ", num_blocks);
}

} // namespace

std::vector<StageSpec>
evenStageSpecs(int num_blocks, int num_stages, BlockRecompute mode)
{
    ADAPIPE_ASSERT(num_stages >= 1 && num_blocks >= 0,
                   "invalid even split request");
    std::vector<StageSpec> specs(
        static_cast<std::size_t>(num_stages));
    const int base = num_blocks / num_stages;
    const int rem = num_blocks % num_stages;
    int next = 0;
    for (int s = 0; s < num_stages; ++s) {
        const int take = base + (s < rem ? 1 : 0);
        StageSpec &spec = specs[static_cast<std::size_t>(s)];
        spec.firstBlock = next;
        spec.lastBlock = next + take - 1;
        spec.embedding = (s == 0);
        spec.head = (s == num_stages - 1);
        spec.recompute.assign(static_cast<std::size_t>(take), mode);
        next += take;
    }
    return specs;
}

RuntimeResult
runPipeline(TinyLM &model, const std::vector<StageSpec> &stages,
            const RuntimeOptions &opts, obs::Registry *metrics)
{
    ADAPIPE_ASSERT(opts.steps >= 1, "need at least one step");
    ADAPIPE_ASSERT(opts.microBatches >= 1,
                   "need at least one micro-batch");
    ADAPIPE_ASSERT(opts.seqLen >= 1 &&
                       opts.seqLen <= model.config().maxSeq,
                   "seqLen must be in [1, maxSeq]");
    ADAPIPE_ASSERT(opts.channelCapacity >= 1,
                   "channel capacity must be >= 1");
    ADAPIPE_ASSERT(opts.intraStageThreads >= 1,
                   "intraStageThreads must be >= 1");
    const int v = opts.virtualStages;
    ADAPIPE_ASSERT(v >= 1, "virtualStages must be >= 1");
    ADAPIPE_ASSERT(static_cast<int>(stages.size()) % v == 0,
                   "stage spec count ", stages.size(),
                   " is not a multiple of virtualStages ", v);
    validateSpecs(model, stages);

    ADAPIPE_ASSERT(opts.firstStep >= 0, "firstStep must be >= 0");
    const int chunks = static_cast<int>(stages.size());
    const int p = chunks / v;

    RuntimeResult result;
    const auto invalid = [&result](const std::string &why) {
        result.ok = false;
        result.error = why;
        return result;
    };
    if (opts.faults && opts.faults->crash.worker >= 0 &&
        opts.faults->crash.hang && !opts.watchdog.enabled) {
        return invalid(
            "fault spec: a hang crash requires the watchdog "
            "(a silently parked worker can only be detected by the "
            "heartbeat monitor; enable RuntimeOptions::watchdog)");
    }
    if (opts.snapshot.every < 0)
        return invalid("snapshot: every must be >= 0");
    if (opts.snapshot.every > 0 && opts.snapshot.path.empty())
        return invalid("snapshot: every is set but path is empty");
    if (opts.restore && opts.useAdam &&
        opts.restore->optimizer != "adam") {
        return invalid("restore: run uses adam but the snapshot "
                       "carries '" +
                       opts.restore->optimizer + "' state");
    }
    if (opts.restore) {
        const ParseStatus restored =
            restoreTinyLM(model, *opts.restore);
        if (!restored.ok())
            return invalid("restore: " + restored.error());
    }

    ParseResult<Schedule> built =
        tryBuildInterleaved1F1B(p, opts.microBatches, v);
    if (!built.ok()) {
        result.ok = false;
        result.error = built.error();
        return result;
    }
    const Schedule sched = std::move(built).value();

    // Normalised copy: fill empty recompute/offload vectors so
    // workers can index them unconditionally.
    std::vector<StageSpec> specs = stages;
    for (StageSpec &spec : specs) {
        if (spec.recompute.empty() && spec.numBlocks() > 0) {
            spec.recompute.assign(
                static_cast<std::size_t>(spec.numBlocks()),
                BlockRecompute::None);
        }
        if (spec.offload.empty() && spec.numBlocks() > 0)
            spec.offload.assign(
                static_cast<std::size_t>(spec.numBlocks()), false);
    }

    // One channel pair per chain boundary. The interleaved op order
    // revisits a chunk's sends before draining its neighbour's, so
    // v > 1 needs depth >= microBatches to keep blocking purely
    // dependency-driven (one step never queues more per edge).
    const std::size_t capacity =
        v == 1 ? static_cast<std::size_t>(opts.channelCapacity)
               : static_cast<std::size_t>(std::max(
                     opts.channelCapacity, opts.microBatches));
    std::vector<std::unique_ptr<BoundedChannel<Tensor>>> fwd_chans;
    std::vector<std::unique_ptr<BoundedChannel<Tensor>>> bwd_chans;
    std::vector<BoundedChannel<Tensor> *> all_chans;
    for (int g = 0; g + 1 < chunks; ++g) {
        fwd_chans.push_back(
            std::make_unique<BoundedChannel<Tensor>>(capacity));
        bwd_chans.push_back(
            std::make_unique<BoundedChannel<Tensor>>(capacity));
        all_chans.push_back(fwd_chans.back().get());
        all_chans.push_back(bwd_chans.back().get());
    }
    auto edge = [](auto &chans, int i) -> BoundedChannel<Tensor> * {
        return (i >= 0 && i < static_cast<int>(chans.size()))
                   ? chans[static_cast<std::size_t>(i)].get()
                   : nullptr;
    };

    std::unique_ptr<FaultInjector> injector;
    if (opts.faults && !opts.faults->empty())
        injector = std::make_unique<FaultInjector>(*opts.faults, p);
    std::unique_ptr<SnapshotCoordinator> snapshots;
    if (opts.snapshot.every > 0) {
        snapshots =
            std::make_unique<SnapshotCoordinator>(model, opts, p);
    }

    std::vector<std::unique_ptr<StageWorker>> workers;
    workers.reserve(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
        workers.push_back(std::make_unique<StageWorker>(
            model, r, p, sched, opts, injector.get(),
            /*watchdog=*/nullptr, snapshots.get()));
        for (int c = 0; c < v; ++c) {
            const int g = c * p + r;
            ChunkCtx ctx;
            ctx.spec = &specs[static_cast<std::size_t>(g)];
            ctx.pos = g;
            ctx.fwdIn = edge(fwd_chans, g - 1);
            ctx.fwdOut = edge(fwd_chans, g);
            ctx.bwdIn = edge(bwd_chans, g);
            ctx.bwdOut = edge(bwd_chans, g - 1);
            workers.back()->addChunk(std::move(ctx));
        }
    }

    RunState state(std::move(all_chans), injector.get(),
                   snapshots.get());

    std::unique_ptr<Watchdog> watchdog;
    if (opts.watchdog.enabled) {
        watchdog = std::make_unique<Watchdog>(
            p, opts.watchdog, [&state](int w, double silent_us) {
                state.fail(
                    w, RuntimeFailureKind::WatchdogStall,
                    "watchdog: worker " + std::to_string(w) +
                        " made no progress for " +
                        std::to_string(static_cast<std::int64_t>(
                            silent_us / 1000)) +
                        " ms",
                    silent_us);
            });
        for (auto &worker : workers)
            worker->setWatchdog(watchdog.get());
    }

    resetActivationMeter();
    const std::int64_t act_base = liveActivationFloats();
    const double start_us = obs::nowUs();

    if (watchdog)
        watchdog->start();
    std::vector<std::thread> threads;
    threads.reserve(workers.size());
    for (auto &worker : workers) {
        threads.emplace_back([&worker, &state] {
            try {
                worker->run();
            } catch (const ChannelClosedError &) {
                // Expected unwind path after a peer's failure; a
                // close without a recorded failure is itself a bug.
                if (!state.failed()) {
                    state.fail(worker->workerIdx(),
                               RuntimeFailureKind::WorkerError,
                               "worker " +
                                   std::to_string(
                                       worker->workerIdx()) +
                                   ": channel closed unexpectedly");
                }
            } catch (const std::exception &e) {
                state.fail(worker->workerIdx(),
                           RuntimeFailureKind::WorkerError,
                           "worker " +
                               std::to_string(worker->workerIdx()) +
                               ": " + e.what());
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    if (watchdog)
        watchdog->stop();

    result.wallSeconds = (obs::nowUs() - start_us) * 1e-6;
    result.peakActivationFloats = peakActivationFloats() - act_base;
    result.losses = workers.back()->losses();
    for (int g = 0; g < chunks; ++g)
        result.stages.push_back(workers[static_cast<std::size_t>(
                                            g % p)]
                                    ->metrics(g / p));
    for (auto &worker : workers) {
        if (metrics)
            metrics->merge(worker->registry());
    }
    if (state.failed()) {
        result.ok = false;
        result.error = state.error();
        result.failureKind = state.kind();
        result.failedWorker = state.failedWorker();
        result.detectSeconds = state.detectUs() * 1e-6;
    }
    if (injector)
        result.faultEvents = injector->events();
    if (metrics && watchdog) {
        metrics->set("watchdog.polls",
                     static_cast<double>(watchdog->polls()));
        metrics->set("watchdog.stall_detections",
                     static_cast<double>(
                         watchdog->stallsDetected()));
    }
    if (metrics) {
        metrics->set("runtime.stages", p);
        metrics->set("runtime.virtual_stages", v);
        metrics->set("runtime.overlap.enabled",
                     opts.overlapReplay ? 1 : 0);
        bool any_offload = false;
        for (const StageSpec &spec : specs)
            for (const bool off : spec.offload)
                any_offload = any_offload || off;
        metrics->set("runtime.offload.enabled", any_offload ? 1 : 0);
        metrics->set("runtime.intra_stage_threads",
                     opts.intraStageThreads);
        metrics->set("runtime.micro_batches", opts.microBatches);
        metrics->set("runtime.wall_us", result.wallSeconds * 1e6);
        metrics->set("runtime.peak_activation_floats",
                     static_cast<double>(result.peakActivationFloats));
    }
    return result;
}

} // namespace adapipe
