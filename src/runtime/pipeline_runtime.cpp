#include "runtime/pipeline_runtime.h"

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "autograd/optim.h"
#include "autograd/trainer.h"
#include "runtime/channel.h"
#include "sim/schedule.h"
#include "util/logging.h"

namespace adapipe {

namespace {

/** Activation state of one in-flight micro-batch on one stage. */
struct Inflight
{
    /** Boundary leaf the stage's segment starts from (stages > 0). */
    Variable input;
    /** Stage output kept until backward: the boundary activation,
     *  or the loss on the head stage. This retention IS the 1F1B
     *  in-flight activation memory. */
    Variable output;
};

/**
 * One stage's worker: owns its optimizer, its obs registry and its
 * in-flight table; runs the stage's fixed 1F1B op order.
 */
class StageWorker
{
  public:
    StageWorker(TinyLM &model, const StageSpec &spec, int stage_idx,
                const Schedule &sched, const RuntimeOptions &opts,
                BoundedChannel<Tensor> *fwd_in,
                BoundedChannel<Tensor> *fwd_out,
                BoundedChannel<Tensor> *bwd_in,
                BoundedChannel<Tensor> *bwd_out)
        : model_(model), spec_(spec), stageIdx_(stage_idx),
          sched_(sched), opts_(opts), fwdIn_(fwd_in),
          fwdOut_(fwd_out), bwdIn_(bwd_in), bwdOut_(bwd_out)
    {
        metrics_.firstBlock = spec.firstBlock;
        metrics_.lastBlock = spec.lastBlock;
        metrics_.embedding = spec.embedding;
        metrics_.head = spec.head;
    }

    void run();

    const StageMetrics &metrics() const { return metrics_; }
    const std::vector<double> &losses() const { return losses_; }
    const obs::Registry &registry() const { return registry_; }

  private:
    std::vector<Variable> ownParams() const;
    void runForward(int step, const PipeOp &op);
    void runBackward(const PipeOp &op);
    void recordSpan(const char *name, double start_us);
    void flushGauges();

    TinyLM &model_;
    const StageSpec &spec_;
    int stageIdx_;
    const Schedule &sched_;
    const RuntimeOptions &opts_;
    BoundedChannel<Tensor> *fwdIn_;
    BoundedChannel<Tensor> *fwdOut_;
    BoundedChannel<Tensor> *bwdIn_;
    BoundedChannel<Tensor> *bwdOut_;

    std::map<int, Inflight> inflight_;
    std::vector<int> tokens_;
    std::vector<int> targets_;
    double lossSum_ = 0;
    StageMetrics metrics_;
    std::vector<double> losses_;
    obs::Registry registry_;
};

std::vector<Variable>
StageWorker::ownParams() const
{
    std::vector<Variable> params;
    if (spec_.embedding) {
        const auto e = model_.embedParams();
        params.insert(params.end(), e.begin(), e.end());
    }
    for (int b = spec_.firstBlock; b <= spec_.lastBlock; ++b) {
        const auto bp = model_.blockParams(b);
        params.insert(params.end(), bp.begin(), bp.end());
    }
    if (spec_.head) {
        const auto h = model_.headParams();
        params.insert(params.end(), h.begin(), h.end());
    }
    return params;
}

void
StageWorker::recordSpan(const char *name, double start_us)
{
    obs::SpanRecord span;
    span.name = name;
    span.startUs = start_us;
    span.durUs = obs::nowUs() - start_us;
    span.depth = 0;
    span.thread = obs::threadId();
    registry_.record(std::move(span));
}

void
StageWorker::runForward(int step, const PipeOp &op)
{
    const int n = opts_.microBatches;
    Variable h;
    if (stageIdx_ > 0) {
        double waited_us = 0;
        Tensor in = fwdIn_->recv(&waited_us);
        metrics_.recvWaitSeconds += waited_us * 1e-6;
        registry_.add("runtime.recvs", 1);
        Variable leaf(std::move(in), /*requires_grad=*/true);
        inflight_[op.microBatch].input = leaf;
        h = leaf;
    }

    const double start_us = obs::nowUs();
    if (spec_.embedding) {
        makeBigramBatch(model_.config().vocab, opts_.seqLen,
                        step * n + op.microBatch, opts_.dataSeed,
                        tokens_, targets_);
        h = model_.embed(tokens_);
    }
    for (int b = spec_.firstBlock; b <= spec_.lastBlock; ++b) {
        h = model_.blockForward(
            b, h, spec_.recompute[b - spec_.firstBlock]);
    }
    if (spec_.head) {
        makeBigramBatch(model_.config().vocab, opts_.seqLen,
                        step * n + op.microBatch, opts_.dataSeed,
                        tokens_, targets_);
        Variable loss = model_.headLoss(h, targets_);
        lossSum_ += loss.value()[0];
        inflight_[op.microBatch].output = loss;
    } else {
        inflight_[op.microBatch].output = h;
    }
    metrics_.fwdSeconds += (obs::nowUs() - start_us) * 1e-6;
    ++metrics_.fwdOps;
    recordSpan("runtime.forward", start_us);
    registry_.add("runtime.fwd_ops", 1);

    if (fwdOut_) {
        const double blocked_us =
            fwdOut_->send(inflight_[op.microBatch].output.value());
        metrics_.sendBlockedSeconds += blocked_us * 1e-6;
        registry_.add("runtime.sends", 1);
        if (blocked_us > 0)
            registry_.add("runtime.send_blocked", 1);
    }
}

void
StageWorker::runBackward(const PipeOp &op)
{
    const auto it = inflight_.find(op.microBatch);
    ADAPIPE_ASSERT(it != inflight_.end(), "backward of micro-batch ",
                   op.microBatch, " before its forward");
    Inflight fl = std::move(it->second);

    Tensor seed;
    if (spec_.head) {
        // Seed with 1/n: gradients average over the iteration's
        // micro-batches, matching the single-threaded reference.
        seed = Tensor::full(
            fl.output.value().shape(),
            1.0f / static_cast<float>(opts_.microBatches));
    } else {
        double waited_us = 0;
        seed = bwdIn_->recv(&waited_us);
        metrics_.recvWaitSeconds += waited_us * 1e-6;
        registry_.add("runtime.recvs", 1);
    }

    const double start_us = obs::nowUs();
    fl.output.backward(seed);
    Tensor input_grad;
    if (stageIdx_ > 0)
        input_grad = fl.input.grad();
    // Drop the micro-batch's graph: this is the moment the 1F1B
    // schedule releases the stage's in-flight activation memory.
    inflight_.erase(it);
    fl = Inflight{};
    metrics_.bwdSeconds += (obs::nowUs() - start_us) * 1e-6;
    ++metrics_.bwdOps;
    recordSpan("runtime.backward", start_us);
    registry_.add("runtime.bwd_ops", 1);

    if (bwdOut_) {
        const double blocked_us = bwdOut_->send(std::move(input_grad));
        metrics_.sendBlockedSeconds += blocked_us * 1e-6;
        registry_.add("runtime.sends", 1);
        if (blocked_us > 0)
            registry_.add("runtime.send_blocked", 1);
    }
}

void
StageWorker::flushGauges()
{
    const std::string prefix =
        "runtime.stage." + std::to_string(stageIdx_) + ".";
    registry_.set(prefix + "fwd_us", metrics_.fwdSeconds * 1e6);
    registry_.set(prefix + "bwd_us", metrics_.bwdSeconds * 1e6);
    registry_.set(prefix + "send_blocked_us",
                  metrics_.sendBlockedSeconds * 1e6);
    registry_.set(prefix + "recv_wait_us",
                  metrics_.recvWaitSeconds * 1e6);
    registry_.set(prefix + "peak_activation_floats",
                  static_cast<double>(metrics_.peakActivationFloats));
    registry_.set(prefix + "replay_us",
                  metrics_.replaySeconds * 1e6);
    registry_.set(prefix + "num_blocks",
                  static_cast<double>(spec_.numBlocks()));
}

void
StageWorker::run()
{
    // Per-worker registry, merged by the parent after join: the obs
    // discipline that keeps counters deterministic and TSan happy.
    // Engine-level instrumentation (checkpoint replays) lands here
    // too via the thread-local obs::current() pointer.
    obs::ScopedRegistry scope(&registry_);
    resetThreadActivationMeter();
    const std::int64_t act_base = threadLiveActivationFloats();

    const std::vector<Variable> params = ownParams();
    std::unique_ptr<Adam> adam;
    std::unique_ptr<Sgd> sgd;
    if (!params.empty()) {
        if (opts_.useAdam)
            adam = std::make_unique<Adam>(params, opts_.lr);
        else
            sgd = std::make_unique<Sgd>(params, opts_.lr);
    }

    const std::vector<std::size_t> &order =
        sched_.deviceOrder[static_cast<std::size_t>(stageIdx_)];
    for (int step = 0; step < opts_.steps; ++step) {
        if (adam)
            adam->zeroGrad();
        else if (sgd)
            sgd->zeroGrad();
        lossSum_ = 0;

        for (const std::size_t idx : order) {
            const PipeOp &op = sched_.ops[idx];
            if (op.kind == OpKind::Forward)
                runForward(step, op);
            else
                runBackward(op);
        }
        ADAPIPE_ASSERT(inflight_.empty(),
                       "in-flight micro-batches left after step");

        if (spec_.head)
            losses_.push_back(lossSum_ / opts_.microBatches);
        if (adam)
            adam->step();
        else if (sgd)
            sgd->step();
    }

    metrics_.peakActivationFloats =
        threadPeakActivationFloats() - act_base;
    // The worker's private registry holds exactly this stage's
    // engine-level spans, so the replay totals attribute cleanly.
    metrics_.replayOps = registry_.counter("checkpoint.replays");
    for (const obs::SpanRecord &span : registry_.spans()) {
        if (span.name == "checkpoint.replay")
            metrics_.replaySeconds += span.durUs * 1e-6;
    }
    flushGauges();
}

/** Validate the stage partition; panics on caller error. */
void
validateSpecs(const TinyLM &model, const std::vector<StageSpec> &specs)
{
    ADAPIPE_ASSERT(!specs.empty(), "need at least one stage");
    const int num_blocks = model.config().blocks;
    int next_block = 0;
    for (std::size_t s = 0; s < specs.size(); ++s) {
        const StageSpec &spec = specs[s];
        ADAPIPE_ASSERT(spec.embedding == (s == 0),
                       "embedding must live on stage 0 (stage ", s,
                       ")");
        ADAPIPE_ASSERT(spec.head == (s + 1 == specs.size()),
                       "head must live on the last stage (stage ", s,
                       ")");
        if (spec.numBlocks() == 0)
            continue;
        ADAPIPE_ASSERT(spec.firstBlock == next_block,
                       "stage ", s, " starts at block ",
                       spec.firstBlock, ", expected ", next_block);
        ADAPIPE_ASSERT(spec.lastBlock < num_blocks,
                       "stage ", s, " ends past block ",
                       num_blocks - 1);
        ADAPIPE_ASSERT(spec.recompute.empty() ||
                           static_cast<int>(spec.recompute.size()) ==
                               spec.numBlocks(),
                       "stage ", s,
                       " recompute size does not match its blocks");
        next_block = spec.lastBlock + 1;
    }
    ADAPIPE_ASSERT(next_block == num_blocks,
                   "stages cover blocks [0, ", next_block,
                   "), model has ", num_blocks);
}

} // namespace

std::vector<StageSpec>
evenStageSpecs(int num_blocks, int num_stages, BlockRecompute mode)
{
    ADAPIPE_ASSERT(num_stages >= 1 && num_blocks >= 0,
                   "invalid even split request");
    std::vector<StageSpec> specs(
        static_cast<std::size_t>(num_stages));
    const int base = num_blocks / num_stages;
    const int rem = num_blocks % num_stages;
    int next = 0;
    for (int s = 0; s < num_stages; ++s) {
        const int take = base + (s < rem ? 1 : 0);
        StageSpec &spec = specs[static_cast<std::size_t>(s)];
        spec.firstBlock = next;
        spec.lastBlock = next + take - 1;
        spec.embedding = (s == 0);
        spec.head = (s == num_stages - 1);
        spec.recompute.assign(static_cast<std::size_t>(take), mode);
        next += take;
    }
    return specs;
}

RuntimeResult
runPipeline(TinyLM &model, const std::vector<StageSpec> &stages,
            const RuntimeOptions &opts, obs::Registry *metrics)
{
    ADAPIPE_ASSERT(opts.steps >= 1, "need at least one step");
    ADAPIPE_ASSERT(opts.microBatches >= 1,
                   "need at least one micro-batch");
    ADAPIPE_ASSERT(opts.seqLen >= 1 &&
                       opts.seqLen <= model.config().maxSeq,
                   "seqLen must be in [1, maxSeq]");
    ADAPIPE_ASSERT(opts.channelCapacity >= 1,
                   "channel capacity must be >= 1");
    validateSpecs(model, stages);

    // Normalised copy: fill empty recompute vectors so workers can
    // index them unconditionally.
    std::vector<StageSpec> specs = stages;
    for (StageSpec &spec : specs) {
        if (spec.recompute.empty() && spec.numBlocks() > 0) {
            spec.recompute.assign(
                static_cast<std::size_t>(spec.numBlocks()),
                BlockRecompute::None);
        }
    }

    const int p = static_cast<int>(specs.size());
    const Schedule sched = build1F1B(p, opts.microBatches);

    std::vector<std::unique_ptr<BoundedChannel<Tensor>>> fwd_chans;
    std::vector<std::unique_ptr<BoundedChannel<Tensor>>> bwd_chans;
    for (int e = 0; e + 1 < p; ++e) {
        fwd_chans.push_back(std::make_unique<BoundedChannel<Tensor>>(
            static_cast<std::size_t>(opts.channelCapacity)));
        bwd_chans.push_back(std::make_unique<BoundedChannel<Tensor>>(
            static_cast<std::size_t>(opts.channelCapacity)));
    }
    auto edge = [](auto &chans, int i) -> BoundedChannel<Tensor> * {
        return (i >= 0 && i < static_cast<int>(chans.size()))
                   ? chans[static_cast<std::size_t>(i)].get()
                   : nullptr;
    };

    std::vector<std::unique_ptr<StageWorker>> workers;
    workers.reserve(static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) {
        workers.push_back(std::make_unique<StageWorker>(
            model, specs[static_cast<std::size_t>(s)], s, sched, opts,
            edge(fwd_chans, s - 1), edge(fwd_chans, s),
            edge(bwd_chans, s), edge(bwd_chans, s - 1)));
    }

    resetActivationMeter();
    const std::int64_t act_base = liveActivationFloats();
    const double start_us = obs::nowUs();

    std::vector<std::thread> threads;
    threads.reserve(workers.size());
    for (auto &worker : workers)
        threads.emplace_back([&worker] { worker->run(); });
    for (std::thread &t : threads)
        t.join();

    RuntimeResult result;
    result.wallSeconds = (obs::nowUs() - start_us) * 1e-6;
    result.peakActivationFloats = peakActivationFloats() - act_base;
    result.losses = workers.back()->losses();
    for (auto &worker : workers) {
        result.stages.push_back(worker->metrics());
        if (metrics)
            metrics->merge(worker->registry());
    }
    if (metrics) {
        metrics->set("runtime.stages", p);
        metrics->set("runtime.micro_batches", opts.microBatches);
        metrics->set("runtime.wall_us", result.wallSeconds * 1e6);
        metrics->set("runtime.peak_activation_floats",
                     static_cast<double>(result.peakActivationFloats));
    }
    return result;
}

} // namespace adapipe
