/**
 * @file
 * Host-staging tier of one pipeline stage worker.
 *
 * Offloaded checkpoint segments (autograd/checkpoint.h,
 * checkpointResident) are parked here after their forward pass. A
 * dedicated transfer thread evicts their interior activations to
 * host memory — releasing the device buffers to the tensor pool —
 * and prefetches them back shortly before the micro-batch's
 * backward, ordered by the worker's 1F1B device order (lowest
 * backward rank first). All graph access goes through OffloadHandle,
 * whose per-segment mutex is held across a whole transfer, so a
 * backward racing a fetch either consumes the fully restored graph
 * or takes the recompute fallback; losses are bit-identical either
 * way, at any worker/virtual-stage/thread count.
 */

#ifndef ADAPIPE_RUNTIME_HOST_STAGER_H
#define ADAPIPE_RUNTIME_HOST_STAGER_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "autograd/checkpoint.h"

namespace adapipe {

class HostStager
{
  public:
    struct Options
    {
        /**
         * Run every transfer inline on the calling (stage) thread
         * instead of the async transfer thread: fully deterministic
         * byte counters and fetch timing (tests / benches).
         */
        bool sync = false;
        /**
         * Test hook: never prefetch, so every offloaded backward
         * takes the fetch-miss recompute fallback. Combine with
         * sync to make the miss count exact (async eviction can
         * lose the race against a fast backward).
         */
        bool forceMiss = false;
        /**
         * Device-order lookahead: when the worker's cursor reaches
         * op rank t, fetches are queued for parked micro-batches
         * whose backward rank is <= t + lookahead.
         */
        int lookahead = 2;
    };

    explicit HostStager(const Options &opts);
    ~HostStager();

    HostStager(const HostStager &) = delete;
    HostStager &operator=(const HostStager &) = delete;

    /**
     * Park @p handles for the backward at device-order rank
     * @p bwd_rank and queue their eviction. No-op on an empty list.
     */
    void submitEvict(std::size_t bwd_rank,
                     std::vector<OffloadHandle> handles);

    /**
     * The worker is about to run its op at device-order rank
     * @p op_rank: queue fetches for every parked micro-batch whose
     * backward rank falls inside the lookahead window.
     */
    void advance(std::size_t op_rank);

    /** Backward at @p bwd_rank consumed its graph; drop the parked
     *  handles (queued transfers for them become no-ops). */
    void release(std::size_t bwd_rank);

    /** Block until every queued transfer ran (end of step). */
    void drain();

    /** Stop and join the transfer thread (idempotent; called by the
     *  destructor). Counters are stable afterwards. */
    void stop();

    /** @name Transfer totals — read after drain()/stop().
     *  Segments counted once per transfer that moved bytes. @{ */
    std::int64_t evictions() const;
    std::int64_t fetches() const;
    std::uint64_t bytesEvicted() const;
    std::uint64_t bytesFetched() const;
    /** @} */

  private:
    struct Job
    {
        bool evict = true;
        std::size_t rank = 0;
    };

    struct Parked
    {
        std::vector<OffloadHandle> handles;
        bool fetchQueued = false;
    };

    void runJob(const Job &job);
    void drainInline();
    void threadMain();

    Options opts_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable idleCv_;
    std::deque<Job> jobs_;
    std::map<std::size_t, Parked> parked_;
    bool stop_ = false;
    int active_ = 0;
    std::int64_t evictions_ = 0;
    std::int64_t fetches_ = 0;
    std::uint64_t bytesEvicted_ = 0;
    std::uint64_t bytesFetched_ = 0;
    std::thread thread_;
};

} // namespace adapipe

#endif // ADAPIPE_RUNTIME_HOST_STAGER_H
