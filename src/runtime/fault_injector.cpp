#include "runtime/fault_injector.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/macros.h"
#include "runtime/channel.h"
#include "util/file_io.h"
#include "util/json_reader.h"
#include "util/logging.h"

namespace adapipe {

namespace {

/** Sleep quantum: injected delays poll the cancel flag this often so
 *  shutdown never waits on a long (or infinite) injected sleep. */
constexpr double kSleepQuantumUs = 1000.0;

} // namespace

bool
RuntimeFaultSpec::empty() const
{
    return slowdowns.empty() && stalls.probability <= 0 &&
           sendDelayUs <= 0 && crash.worker < 0;
}

const char *
faultEventKindName(FaultEventKind kind)
{
    switch (kind) {
    case FaultEventKind::Stall:
        return "stall";
    case FaultEventKind::Slowdown:
        return "slowdown";
    case FaultEventKind::SendDelay:
        return "send_delay";
    case FaultEventKind::Crash:
        return "crash";
    }
    return "?";
}

std::string
faultEventSignature(const FaultEvent &event)
{
    std::string sig = faultEventKindName(event.kind);
    sig += " w" + std::to_string(event.worker);
    sig += " pos" + std::to_string(event.pos);
    sig += " step" + std::to_string(event.step);
    sig += " mb" + std::to_string(event.microBatch);
    sig += event.forward ? " fwd" : " bwd";
    // The slowdown delay is (factor - 1) x the measured op time —
    // wall clock, not seed — so it stays out of the signature.
    if (event.kind == FaultEventKind::Stall ||
        event.kind == FaultEventKind::SendDelay) {
        sig += " us" + std::to_string(
                           static_cast<std::int64_t>(event.us));
    }
    return sig;
}

FaultInjector::FaultInjector(const RuntimeFaultSpec &spec,
                             int num_workers)
    : spec_(spec), perWorker_(static_cast<std::size_t>(num_workers))
{
    draws_.seed = spec.seed;
    draws_.stalls = spec.stalls;
    draws_.p2pJitter = spec.sendDelayJitter;
}

void
FaultInjector::record(FaultEvent event)
{
    perWorker_[static_cast<std::size_t>(event.worker)].push_back(
        event);
}

void
FaultInjector::sleepUs(double us)
{
    while (us > 0) {
        if (cancelled_.load(std::memory_order_relaxed))
            throw ChannelClosedError{};
        const double chunk = std::min(us, kSleepQuantumUs);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::micro>(chunk));
        us -= chunk;
    }
}

void
FaultInjector::hangUntilCancelled()
{
    for (;;) {
        if (cancelled_.load(std::memory_order_relaxed))
            throw ChannelClosedError{};
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::micro>(
                kSleepQuantumUs));
    }
}

void
FaultInjector::beforeOp(int worker, int pos, int step,
                        int micro_batch, bool forward,
                        std::int64_t ops_this_step)
{
    if (worker == spec_.crash.worker && step == spec_.crash.step &&
        ops_this_step == spec_.crash.afterOps) {
        FaultEvent event;
        event.kind = FaultEventKind::Crash;
        event.worker = worker;
        event.pos = pos;
        event.step = step;
        event.microBatch = micro_batch;
        event.forward = forward;
        record(event);
        ADAPIPE_OBS_COUNT("fault.injected_crashes", 1);
        if (spec_.crash.hang)
            hangUntilCancelled();
        throw InjectedCrashError(
            "injected crash at step " + std::to_string(step) +
            " after " + std::to_string(ops_this_step) + " ops");
    }

    const Seconds stall = draws_.stallDelay(
        faultOpId(step, pos, micro_batch, forward));
    if (stall > 0) {
        FaultEvent event;
        event.kind = FaultEventKind::Stall;
        event.worker = worker;
        event.pos = pos;
        event.step = step;
        event.microBatch = micro_batch;
        event.forward = forward;
        event.us = stall * 1e6;
        record(event);
        ADAPIPE_OBS_COUNT("fault.injected_stalls", 1);
        sleepUs(event.us);
    }
}

void
FaultInjector::afterOp(int worker, int pos, int step, int micro_batch,
                       bool forward, double op_us)
{
    double factor = 1.0;
    for (const DeviceSlowdown &s : spec_.slowdowns) {
        if (s.device == worker)
            factor *= s.factor;
    }
    if (factor <= 1.0)
        return;
    FaultEvent event;
    event.kind = FaultEventKind::Slowdown;
    event.worker = worker;
    event.pos = pos;
    event.step = step;
    event.microBatch = micro_batch;
    event.forward = forward;
    event.us = (factor - 1.0) * op_us;
    record(event);
    ADAPIPE_OBS_COUNT("fault.injected_slowdowns", 1);
    sleepUs(event.us);
}

void
FaultInjector::beforeSend(int worker, int pos, int step,
                          int micro_batch, bool forward)
{
    if (spec_.sendDelayUs <= 0)
        return;
    FaultEvent event;
    event.kind = FaultEventKind::SendDelay;
    event.worker = worker;
    event.pos = pos;
    event.step = step;
    event.microBatch = micro_batch;
    event.forward = forward;
    event.us = spec_.sendDelayUs *
               draws_.jitterFactor(
                   faultOpId(step, pos, micro_batch, forward));
    record(event);
    ADAPIPE_OBS_COUNT("fault.injected_send_delays", 1);
    sleepUs(event.us);
}

void
FaultInjector::cancelSleeps()
{
    cancelled_.store(true, std::memory_order_relaxed);
}

std::vector<FaultEvent>
FaultInjector::events() const
{
    std::vector<FaultEvent> merged;
    for (const std::vector<FaultEvent> &log : perWorker_)
        merged.insert(merged.end(), log.begin(), log.end());
    std::stable_sort(
        merged.begin(), merged.end(),
        [](const FaultEvent &a, const FaultEvent &b) {
            if (a.step != b.step)
                return a.step < b.step;
            if (a.pos != b.pos)
                return a.pos < b.pos;
            if (a.microBatch != b.microBatch)
                return a.microBatch < b.microBatch;
            if (a.forward != b.forward)
                return a.forward && !b.forward;
            return static_cast<int>(a.kind) <
                   static_cast<int>(b.kind);
        });
    return merged;
}

JsonValue
runtimeFaultSpecToJson(const RuntimeFaultSpec &spec)
{
    JsonValue root = JsonValue::object();
    root.set("seed",
             JsonValue::integer(static_cast<std::int64_t>(spec.seed)));

    JsonValue slowdowns = JsonValue::array();
    for (const DeviceSlowdown &s : spec.slowdowns) {
        JsonValue one = JsonValue::object();
        one.set("worker", JsonValue::integer(s.device));
        one.set("factor", JsonValue::number(s.factor));
        slowdowns.push(std::move(one));
    }
    root.set("slowdowns", std::move(slowdowns));

    JsonValue stalls = JsonValue::object();
    stalls.set("probability",
               JsonValue::number(spec.stalls.probability));
    stalls.set("base", JsonValue::number(spec.stalls.base));
    stalls.set("max_retries",
               JsonValue::integer(spec.stalls.maxRetries));
    root.set("stalls", std::move(stalls));

    JsonValue send = JsonValue::object();
    send.set("us", JsonValue::number(spec.sendDelayUs));
    send.set("jitter", JsonValue::number(spec.sendDelayJitter));
    root.set("send_delay", std::move(send));

    JsonValue crash = JsonValue::object();
    crash.set("worker", JsonValue::integer(spec.crash.worker));
    crash.set("step", JsonValue::integer(spec.crash.step));
    crash.set("after_ops", JsonValue::integer(spec.crash.afterOps));
    crash.set("hang", JsonValue::boolean(spec.crash.hang));
    root.set("crash", std::move(crash));
    return root;
}

ParseResult<RuntimeFaultSpec>
tryRuntimeFaultSpecFromJson(const JsonValue &json)
{
    return readJson<RuntimeFaultSpec>(
        json, "runtime_fault", [](JsonReader root) {
            RuntimeFaultSpec spec;
            const std::int64_t seed = root.key("seed").asInteger();
            spec.seed = static_cast<std::uint64_t>(seed);

            const JsonReader slowdowns = root.key("slowdowns");
            for (std::size_t i = 0; i < slowdowns.size(); ++i) {
                const JsonReader one = slowdowns.at(i);
                DeviceSlowdown s;
                s.device = static_cast<int>(
                    one.key("worker").asInteger());
                if (s.device < 0)
                    one.key("worker").fail("worker must be >= 0");
                s.factor = one.key("factor").asNumber();
                if (s.factor < 1.0)
                    one.key("factor").fail("factor must be >= 1");
                spec.slowdowns.push_back(s);
            }

            const JsonReader stalls = root.key("stalls");
            spec.stalls.probability =
                stalls.key("probability").asNumber();
            if (spec.stalls.probability < 0 ||
                spec.stalls.probability >= 1) {
                stalls.key("probability")
                    .fail("probability must be in [0, 1)");
            }
            spec.stalls.base = stalls.key("base").asNumber();
            if (spec.stalls.base < 0)
                stalls.key("base").fail("base must be >= 0");
            spec.stalls.maxRetries = static_cast<int>(
                stalls.key("max_retries").asInteger());
            if (spec.stalls.maxRetries < 0) {
                stalls.key("max_retries")
                    .fail("max_retries must be >= 0");
            }

            const JsonReader send = root.key("send_delay");
            spec.sendDelayUs = send.key("us").asNumber();
            if (spec.sendDelayUs < 0)
                send.key("us").fail("us must be >= 0");
            spec.sendDelayJitter = send.key("jitter").asNumber();
            if (spec.sendDelayJitter < 0)
                send.key("jitter").fail("jitter must be >= 0");

            const JsonReader crash = root.key("crash");
            spec.crash.worker = static_cast<int>(
                crash.key("worker").asInteger());
            if (spec.crash.worker < -1)
                crash.key("worker").fail("worker must be >= -1");
            spec.crash.step = static_cast<int>(
                crash.key("step").asInteger());
            if (spec.crash.step < 0)
                crash.key("step").fail("step must be >= 0");
            spec.crash.afterOps = crash.key("after_ops").asInteger();
            if (spec.crash.afterOps < 0)
                crash.key("after_ops").fail("after_ops must be >= 0");
            spec.crash.hang = crash.key("hang").asBool();
            return spec;
        });
}

ParseResult<RuntimeFaultSpec>
tryRuntimeFaultSpecFromJsonString(const std::string &text)
{
    ParseResult<JsonValue> json = JsonValue::tryParse(text);
    if (!json.ok())
        return ParseResult<RuntimeFaultSpec>::failure(json.error());
    return tryRuntimeFaultSpecFromJson(json.value());
}

ParseResult<RuntimeFaultSpec>
loadRuntimeFaultSpecFile(const std::string &path)
{
    ParseResult<std::string> text = readTextFile(path);
    if (!text.ok())
        return ParseResult<RuntimeFaultSpec>::failure(text.error());
    ParseResult<RuntimeFaultSpec> spec =
        tryRuntimeFaultSpecFromJsonString(text.value());
    if (!spec.ok()) {
        return ParseResult<RuntimeFaultSpec>::failure(path + ": " +
                                                      spec.error());
    }
    return spec;
}

} // namespace adapipe
