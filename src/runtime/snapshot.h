/**
 * @file
 * Versioned training-state snapshots for the pipeline runtime.
 *
 * A snapshot carries everything a bit-exact resume needs: the model
 * configuration, every parameter tensor in canonical
 * TinyLM::params() order, the Adam moments plus bias-correction step
 * counter, the data-stream seed and the number of completed
 * optimizer steps. The data stream itself is counter-based
 * (makeBigramBatch hashes the global step), so restoring the step
 * counter restores the stream — a run killed at iteration k and
 * restored finishes with losses bit-identical to an uninterrupted
 * run, on any stage partition.
 *
 * File format (native-endian):
 *
 *   ADAPIPESNAP1\n
 *   <header_len decimal>\n
 *   <header JSON, exactly header_len bytes>
 *   <blob: blob_floats * 4 bytes of raw float32>
 *
 * The JSON header (parsed through the repo's JSON layer, so
 * duplicate keys and malformed text produce field-path diagnostics)
 * lists tensor shapes in blob order and an FNV-1a-64 checksum of the
 * blob. Writes are crash-consistent: the bytes go to "<path>.tmp"
 * and are renamed over the target only when complete, so a crash
 * mid-write never clobbers the previous snapshot.
 */

#ifndef ADAPIPE_RUNTIME_SNAPSHOT_H
#define ADAPIPE_RUNTIME_SNAPSHOT_H

#include <cstdint>
#include <string>
#include <vector>

#include "autograd/module.h"
#include "autograd/optim.h"
#include "util/parse_result.h"

namespace adapipe {

/** Snapshot-writing configuration (RuntimeOptions::snapshot). */
struct SnapshotOptions
{
    /** Write a snapshot every N completed steps (0 = disabled). */
    int every = 0;
    /** Target file path (required when every > 0). */
    std::string path;
};

/** Complete training state at an iteration boundary. */
struct TrainingSnapshot
{
    /** Format version; currently always 1. */
    int version = 1;
    /** Model architecture + init seed the parameters belong to. */
    TinyLmConfig config;
    /** Completed optimizer steps (the resume offset). */
    std::int64_t step = 0;
    /** Seed of the bigram data stream. */
    std::uint64_t dataSeed = 0;
    /** "adam" or "sgd". */
    std::string optimizer = "adam";
    /** Adam bias-correction step counter (0 for sgd). */
    int adamT = 0;
    /** Parameter values in canonical TinyLM::params() order. */
    std::vector<Tensor> params;
    /** Adam first moments, same order (empty for sgd). */
    std::vector<Tensor> adamM;
    /** Adam second moments, same order (empty for sgd). */
    std::vector<Tensor> adamV;
};

/** Serialize to the on-disk byte format. */
std::string snapshotToBytes(const TrainingSnapshot &snap);

/**
 * Parse snapshot bytes. Truncation, version skew, malformed or
 * duplicate-key headers, shape/blob-length mismatches and checksum
 * failures all come back as errors naming the offending field —
 * never a crash, never silently loaded garbage.
 */
ParseResult<TrainingSnapshot>
snapshotFromBytes(const std::string &bytes);

/** Write crash-consistently (tmp + rename). */
ParseStatus writeSnapshotFile(const std::string &path,
                              const TrainingSnapshot &snap);

/** Load and validate a snapshot file. */
ParseResult<TrainingSnapshot>
loadSnapshotFile(const std::string &path);

/**
 * Capture the full training state of @p model.
 *
 * @param optimizers the per-worker optimizers owning disjoint
 *        parameter subsets (any entry may be null); moments of
 *        parameters owned by no optimizer stay zero
 * @param step completed optimizer steps
 * @param data_seed data-stream seed
 * @param use_adam whether the run trains with Adam
 */
TrainingSnapshot
captureTrainingSnapshot(const TinyLM &model,
                        const std::vector<const Adam *> &optimizers,
                        std::int64_t step, std::uint64_t data_seed,
                        bool use_adam);

/**
 * Copy the snapshot's parameter values into @p model. Fails (without
 * touching the model) when the snapshot's config or parameter shapes
 * do not match.
 */
ParseStatus restoreTinyLM(TinyLM &model,
                          const TrainingSnapshot &snap);

/**
 * Restore @p adam's moments and step counter from the snapshot for
 * the parameters the optimizer owns (matched by identity against
 * @p model's canonical parameter list).
 */
ParseStatus restoreAdamState(Adam &adam, const TinyLM &model,
                             const TrainingSnapshot &snap);

} // namespace adapipe

#endif // ADAPIPE_RUNTIME_SNAPSHOT_H
