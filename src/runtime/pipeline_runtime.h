/**
 * @file
 * Multithreaded pipeline-parallel executor for the tiny LM: the
 * repo's execution backend, closing the loop the paper closes with
 * cluster measurements.
 *
 * One worker thread per pipeline device. Each worker hosts
 * virtualStages model chunks (Megatron's interleaved 1F1B; 1 chunk =
 * plain 1F1B): chunk g of the chain runs on worker g % workers, owns
 * a contiguous block range of a shared TinyLM (chunk 0 additionally
 * owns the embedding, the last chunk the head + loss), follows the
 * worker's op order from sim/schedule, and exchanges
 * activation/gradient tensors with the adjacent chunks over bounded
 * channels (runtime/channel.h) whose blocking send models the
 * activation-memory cap. Per-unit recompute decisions apply through
 * autograd/checkpoint, so saved units keep their tensors and
 * recomputed units replay forward during backward.
 *
 * Determinism: chunk boundaries detach activations into fresh leaf
 * variables, and boundary gradients add back exactly the floats the
 * monolithic graph would have propagated, so a pipeline run computes
 * bit-identical losses to trainTinyLM with the same seed, recompute
 * modes and micro-batch count — for any stage count and any
 * virtual-stage count (both the forward losses and the backward
 * gradient accumulation visit micro-batches in the same order the
 * single-threaded trainer does). That is the paper's Fig. 10
 * invariant, measured instead of assumed.
 *
 * Failure handling: a worker that throws (autograd error, injected
 * fault) marks the run failed and closes every channel, so peers
 * blocked in send()/recv() unwind via ChannelClosedError instead of
 * deadlocking in join(); the first failure's diagnostic comes back
 * in RuntimeResult::error.
 */

#ifndef ADAPIPE_RUNTIME_PIPELINE_RUNTIME_H
#define ADAPIPE_RUNTIME_PIPELINE_RUNTIME_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "autograd/module.h"
#include "obs/registry.h"
#include "runtime/fault_injector.h"
#include "runtime/snapshot.h"
#include "runtime/watchdog.h"

namespace adapipe {

/**
 * One pipeline stage's share of the model.
 */
struct StageSpec
{
    /** First owned transformer block (inclusive). */
    int firstBlock = 0;
    /** Last owned transformer block (inclusive); < firstBlock means
     *  the stage owns no blocks (pure relay / embedding / head). */
    int lastBlock = -1;
    /** Stage runs the embedding (must be stage 0). */
    bool embedding = false;
    /** Stage runs final norm + head + loss (must be the last stage). */
    bool head = false;
    /** Per-owned-block recompute mode (empty = None for all). */
    std::vector<BlockRecompute> recompute;
    /**
     * Per-owned-block host-offload flag (empty = none), parallel to
     * @ref recompute. An offloaded block runs as a resident
     * checkpoint whose interior activations the worker's host stager
     * evicts after forward and prefetches before backward; the flag
     * overrides the block's recompute mode (an offloaded block is
     * neither kept on device nor eagerly recomputed).
     */
    std::vector<bool> offload;

    /** @return number of owned blocks. */
    int
    numBlocks() const
    {
        return lastBlock < firstBlock ? 0 : lastBlock - firstBlock + 1;
    }
};

/** Runtime execution options. */
struct RuntimeOptions
{
    /** Optimizer steps (iterations). */
    int steps = 20;
    /** Tokens per micro-batch. */
    int seqLen = 32;
    /** Micro-batches n per iteration (gradients averaged). */
    int microBatches = 4;
    float lr = 4e-3f;
    bool useAdam = true;
    /** Seed of the bigram data stream (independent of model init). */
    std::uint64_t dataSeed = 7;
    /**
     * Bounded-channel depth per pipeline edge. 1 is the tightest
     * memory cap (sender stalls until the neighbour consumed the
     * previous tensor); larger values trade memory for slack. With
     * virtualStages > 1 the effective depth is at least
     * microBatches: the interleaved op order revisits a chunk's
     * sends before draining its neighbour, so a tighter bound could
     * deadlock; one step never queues more than microBatches tensors
     * per edge, so that depth restores pure dependency-driven
     * blocking.
     */
    int channelCapacity = 2;
    /**
     * Model chunks per worker (Megatron's interleaved 1F1B). The
     * stage-spec vector must hold virtualStages * workers entries in
     * chain order; chunk g runs on worker g % workers. Requires
     * microBatches % workers == 0 when > 1 (Megatron's constraint) —
     * violations fail the run gracefully, not fatally.
     */
    int virtualStages = 1;
    /**
     * Backward-engine workers per stage (intra-stage parallelism).
     * Each stage worker owns a BackwardEngine with this many
     * threads (itself included); 1 keeps backward fully inline on
     * the stage thread. The engine's deterministic reduction makes
     * losses bit-identical across every value of this knob, so it
     * trades wall clock only — never reproducibility. With > 1,
     * per-stage peakActivationFloats attribution drifts: helper
     * threads charge their allocations to their own thread-local
     * meters (process-wide peaks stay exact).
     */
    int intraStageThreads = 1;
    /**
     * Overlapped checkpoint replay: while a worker is blocked in a
     * channel wait (recv starvation or send backpressure), it issues
     * the forward replay of recomputed units whose forward already
     * ran but whose backward has not, ordered by the 1F1B device
     * order (nearest backward first), so the recomputed activations
     * are warm by backward time. Replay is a pure function of the
     * saved boundary input and the parameters — both constant within
     * a step — so losses stay bit-identical to lazy replay at any
     * virtualStages / intraStageThreads setting; the knob trades
     * activation-memory residency for critical-path replay time.
     */
    bool overlapReplay = false;
    /**
     * Test hook (requires overlapReplay): warm *all* pending replays
     * at the start of every channel wait instead of one per idle
     * tick. This makes the warm firing order a pure function of the
     * schedule (no timing dependence), which is what the overlap
     * determinism test pins down via StageMetrics::overlapFirings.
     */
    bool overlapDrainAll = false;
    /**
     * Host staging (activation offload): any block flagged in
     * StageSpec::offload starts a per-worker HostStager that evicts
     * the block's activations to host after forward and prefetches
     * them back before backward, nearest backward first in the
     * device order. A fetch that misses its deadline falls back to a
     * recompute replay, so losses stay bit-identical to every other
     * configuration. offloadSync runs transfers inline on the stage
     * thread (deterministic byte counters; test/bench hook).
     */
    bool offloadSync = false;
    /** Test hook: never prefetch, so every offloaded backward takes
     *  the fetch-miss recompute fallback (combine with offloadSync
     *  for an exact miss count). */
    bool offloadForceMiss = false;
    /** Device-order ops of prefetch lookahead for the host stager. */
    int offloadLookahead = 2;
    /**
     * Test hook: worker index to kill (-1 = disabled). The worker
     * throws after executing injectFailAfterOps forward/backward
     * ops, exercising the shutdown path peers observe as
     * ChannelClosedError.
     */
    int injectFailStage = -1;
    /** Ops the killed worker completes before throwing. */
    std::int64_t injectFailAfterOps = 0;
    /**
     * Global step of the run's first iteration (resume offset). The
     * data stream, the fault injector and the snapshot cadence are
     * all keyed by the global step firstStep + local step, so a run
     * restored from a step-k snapshot consumes exactly the batches
     * (and faults) the uninterrupted run would have from step k on.
     */
    int firstStep = 0;
    /**
     * Runtime fault scenario to inject (nullptr / empty spec = the
     * unhooked fast path). Borrowed for the duration of the run.
     */
    const RuntimeFaultSpec *faults = nullptr;
    /** Watchdog/heartbeat configuration (disabled by default). */
    WatchdogOptions watchdog;
    /** Training-state snapshot cadence (disabled by default). */
    SnapshotOptions snapshot;
    /**
     * Snapshot to resume from (nullptr = fresh start): parameters
     * are restored before workers launch and each worker's Adam
     * moments/step counter before its first step. Borrowed for the
     * duration of the run. Combine with firstStep = restore->step.
     */
    const TrainingSnapshot *restore = nullptr;
};

/** How a failed run failed (RuntimeResult::failureKind). */
enum class RuntimeFailureKind {
    None,        ///< the run succeeded
    WorkerError, ///< a worker threw (autograd error, injected crash)
    WatchdogStall, ///< the watchdog detected a silent worker
};

/**
 * Measured execution statistics of one chain position (one stage for
 * virtualStages = 1, one model chunk otherwise).
 */
struct StageMetrics
{
    /** Chain position g; runs on worker g % workers. */
    int chainPos = 0;
    int firstBlock = 0;
    int lastBlock = -1;
    bool embedding = false;
    bool head = false;
    /** Forward / backward micro-batch ops executed. */
    std::int64_t fwdOps = 0;
    std::int64_t bwdOps = 0;
    /** Summed compute time inside forward / backward ops. */
    double fwdSeconds = 0;
    /**
     * Summed wall time inside backward ops (the engine run). Lazy
     * checkpoint replays fire inside the engine, so this still
     * *contains* their time; use bwdComputeSeconds() for the
     * replay-free backward compute — reporting the raw timer as
     * "backward" double-counts replayCriticalSeconds().
     */
    double bwdSeconds = 0;
    /** Checkpoint replays executed for this chunk (warm + lazy). */
    std::int64_t replayOps = 0;
    /**
     * Summed forward-replay time, warm + lazy. The lazy share is
     * metered by the "checkpoint.replay_us" counter (zero with obs
     * off); the warm share is wall-clocked directly.
     */
    double replaySeconds = 0;
    /** Replays issued early inside channel-wait bubbles (overlap). */
    std::int64_t replayHiddenOps = 0;
    /** Replay time hidden inside channel-wait bubbles. */
    double replayHiddenSeconds = 0;
    /** Time blocked sending into a full channel (backpressure).
     *  Replay warmed during the wait counts as compute, not wait. */
    double sendBlockedSeconds = 0;
    /** Time blocked waiting for inputs (starvation / bubbles).
     *  Replay warmed during the wait counts as compute, not wait. */
    double recvWaitSeconds = 0;
    /**
     * Peak activation floats of the owning worker's thread;
     * thread-level, so with virtualStages > 1 it is attributed to
     * the worker's first chunk (chainPos < workers) and 0 elsewhere.
     * replayOps / replaySeconds are exact per chunk.
     */
    std::int64_t peakActivationFloats = 0;
    /** Offloaded segments staged to host by the owning worker's
     *  stager (worker-level; attributed to the worker's first chunk
     *  like peakActivationFloats). */
    std::int64_t offloadEvictions = 0;
    /** Offloaded segments fetched back before their backward
     *  (worker-level, first chunk). */
    std::int64_t offloadFetches = 0;
    /** Backwards that found their activations still on host and fell
     *  back to a recompute replay (exact per chunk). */
    std::int64_t offloadFetchMisses = 0;
    /** Bytes staged to host by the owning worker (first chunk). */
    std::uint64_t offloadBytesEvicted = 0;
    /** Bytes fetched back from host (first chunk). */
    std::uint64_t offloadBytesFetched = 0;
    /**
     * Warm firing log of the owning worker (attributed to its first
     * chunk like peakActivationFloats): one entry per warmed unit,
     * encoded pos * 1000000 + microBatch * 1000 + unitIndex, in
     * firing order. With RuntimeOptions::overlapDrainAll the log is
     * a pure function of the schedule; without it, the count per
     * bubble is timing-dependent (the order still follows the device
     * order's next-backward-first rule).
     */
    std::vector<std::int64_t> overlapFirings;

    /** @return replay time left on the backward critical path. */
    double
    replayCriticalSeconds() const
    {
        return std::max(0.0, replaySeconds - replayHiddenSeconds);
    }

    /** @return backward compute with critical replay metered out. */
    double
    bwdComputeSeconds() const
    {
        return std::max(0.0, bwdSeconds - replayCriticalSeconds());
    }
};

/** Result of one pipeline training run. */
struct RuntimeResult
{
    /**
     * False when a worker failed (or the configuration was invalid);
     * @ref error carries the first failure's diagnostic and the
     * other fields hold whatever completed before shutdown.
     */
    bool ok = true;
    /** First failure diagnostic, naming the worker that died. */
    std::string error;
    /** How the run failed (None when ok). */
    RuntimeFailureKind failureKind = RuntimeFailureKind::None;
    /** Worker the first failure was attributed to (-1 when ok or not
     *  attributable to a worker). */
    int failedWorker = -1;
    /** Watchdog detections only: how long the stalled worker had
     *  been silent when it was reported (the detection latency). */
    double detectSeconds = 0;
    /** Injected fault events, merged over workers in deterministic
     *  (step, pos, microBatch, forward, kind) order. Empty without a
     *  fault spec. */
    std::vector<FaultEvent> faultEvents;
    /** Mean micro-batch loss per step (recorded by the last stage). */
    std::vector<double> losses;
    /** Per-chain-position measurements, position 0 first (one per
     *  stage when virtualStages == 1, one per chunk otherwise). */
    std::vector<StageMetrics> stages;
    /** End-to-end wall time of the run. */
    double wallSeconds = 0;
    /** Process-wide peak activation floats over the run. */
    std::int64_t peakActivationFloats = 0;

    /** @return mean wall time of one optimizer step. */
    double stepSeconds(int steps) const
    {
        return steps > 0 ? wallSeconds / steps : 0;
    }
};

/**
 * Uniform baseline partition: split @p num_blocks blocks over
 * @p num_stages stages (earlier stages take the remainder), with
 * @p mode applied to every block. Stage 0 gets the embedding, the
 * last stage the head.
 */
std::vector<StageSpec> evenStageSpecs(int num_blocks, int num_stages,
                                      BlockRecompute mode);

/**
 * Train @p model with one worker thread per device.
 *
 * @p stages holds one entry per chain position (stage for
 * virtualStages = 1, chunk otherwise; opts.virtualStages * workers
 * entries, chunk g on worker g % workers). Coverage must be
 * contiguous over all blocks in chain order, with the embedding on
 * position 0 and the head on the last position. Parameters are
 * updated by the owning worker only; the model is safe to read from
 * the caller after the run.
 *
 * A failing worker closes every channel so its peers unwind instead
 * of deadlocking; the run returns ok = false with the first
 * failure's diagnostic. Invalid interleaved configurations
 * (microBatches not divisible by workers) fail the same way.
 *
 * @param model the (already initialised) model; updated in place
 * @param stages per-position ownership and recompute decisions
 * @param opts execution options
 * @param metrics optional registry receiving the merged per-worker
 *        counters/gauges/spans (merge-on-join; deterministic order).
 *        Gauges are per stage ("runtime.stage.<r>.*") when
 *        virtualStages == 1 and per chunk
 *        ("runtime.stage.<r>.chunk.<c>.*") otherwise. Per-op spans
 *        land on the shared obs timeline, directly comparable to the
 *        simulator's Chrome traces.
 */
RuntimeResult runPipeline(TinyLM &model,
                          const std::vector<StageSpec> &stages,
                          const RuntimeOptions &opts,
                          obs::Registry *metrics = nullptr);

} // namespace adapipe

#endif // ADAPIPE_RUNTIME_PIPELINE_RUNTIME_H
