/**
 * @file
 * Multithreaded pipeline-parallel executor for the tiny LM: the
 * repo's execution backend, closing the loop the paper closes with
 * cluster measurements.
 *
 * One worker thread per pipeline stage. Each stage owns a contiguous
 * block range of a shared TinyLM (stage 0 additionally owns the
 * embedding, the last stage the head + loss), runs the 1F1B op order
 * from sim/schedule, and exchanges activation/gradient tensors with
 * its neighbours over bounded channels (runtime/channel.h) whose
 * blocking send models the activation-memory cap. Per-unit recompute
 * decisions apply through autograd/checkpoint, so saved units keep
 * their tensors and recomputed units replay forward during backward.
 *
 * Determinism: stage boundaries detach activations into fresh leaf
 * variables, and boundary gradients add back exactly the floats the
 * monolithic graph would have propagated, so a pipeline run computes
 * bit-identical losses to trainTinyLM with the same seed, recompute
 * modes and micro-batch count — for any stage count. That is the
 * paper's Fig. 10 invariant, measured instead of assumed.
 */

#ifndef ADAPIPE_RUNTIME_PIPELINE_RUNTIME_H
#define ADAPIPE_RUNTIME_PIPELINE_RUNTIME_H

#include <cstdint>
#include <vector>

#include "autograd/module.h"
#include "obs/registry.h"

namespace adapipe {

/**
 * One pipeline stage's share of the model.
 */
struct StageSpec
{
    /** First owned transformer block (inclusive). */
    int firstBlock = 0;
    /** Last owned transformer block (inclusive); < firstBlock means
     *  the stage owns no blocks (pure relay / embedding / head). */
    int lastBlock = -1;
    /** Stage runs the embedding (must be stage 0). */
    bool embedding = false;
    /** Stage runs final norm + head + loss (must be the last stage). */
    bool head = false;
    /** Per-owned-block recompute mode (empty = None for all). */
    std::vector<BlockRecompute> recompute;

    /** @return number of owned blocks. */
    int
    numBlocks() const
    {
        return lastBlock < firstBlock ? 0 : lastBlock - firstBlock + 1;
    }
};

/** Runtime execution options. */
struct RuntimeOptions
{
    /** Optimizer steps (iterations). */
    int steps = 20;
    /** Tokens per micro-batch. */
    int seqLen = 32;
    /** Micro-batches n per iteration (gradients averaged). */
    int microBatches = 4;
    float lr = 4e-3f;
    bool useAdam = true;
    /** Seed of the bigram data stream (independent of model init). */
    std::uint64_t dataSeed = 7;
    /**
     * Bounded-channel depth per pipeline edge. 1 is the tightest
     * memory cap (sender stalls until the neighbour consumed the
     * previous tensor); larger values trade memory for slack.
     */
    int channelCapacity = 2;
};

/** Measured per-stage execution statistics. */
struct StageMetrics
{
    int firstBlock = 0;
    int lastBlock = -1;
    bool embedding = false;
    bool head = false;
    /** Forward / backward micro-batch ops executed. */
    std::int64_t fwdOps = 0;
    std::int64_t bwdOps = 0;
    /** Summed compute time inside forward / backward ops. */
    double fwdSeconds = 0;
    double bwdSeconds = 0;
    /** Checkpoint replays executed during backward (recompute). */
    std::int64_t replayOps = 0;
    /** Summed time inside those replays (zero with obs off). */
    double replaySeconds = 0;
    /** Time blocked sending into a full channel (backpressure). */
    double sendBlockedSeconds = 0;
    /** Time blocked waiting for inputs (starvation / bubbles). */
    double recvWaitSeconds = 0;
    /** Peak activation floats attributed to this stage's thread. */
    std::int64_t peakActivationFloats = 0;
};

/** Result of one pipeline training run. */
struct RuntimeResult
{
    /** Mean micro-batch loss per step (recorded by the last stage). */
    std::vector<double> losses;
    /** Per-stage measurements, stage 0 first. */
    std::vector<StageMetrics> stages;
    /** End-to-end wall time of the run. */
    double wallSeconds = 0;
    /** Process-wide peak activation floats over the run. */
    std::int64_t peakActivationFloats = 0;

    /** @return mean wall time of one optimizer step. */
    double stepSeconds(int steps) const
    {
        return steps > 0 ? wallSeconds / steps : 0;
    }
};

/**
 * Uniform baseline partition: split @p num_blocks blocks over
 * @p num_stages stages (earlier stages take the remainder), with
 * @p mode applied to every block. Stage 0 gets the embedding, the
 * last stage the head.
 */
std::vector<StageSpec> evenStageSpecs(int num_blocks, int num_stages,
                                      BlockRecompute mode);

/**
 * Train @p model with one worker thread per stage.
 *
 * Stage coverage must be contiguous over all blocks, with the
 * embedding on stage 0 and the head on the last stage. Parameters
 * are updated by the owning stage only; the model is safe to read
 * from the caller after the run.
 *
 * @param model the (already initialised) model; updated in place
 * @param stages per-stage ownership and recompute decisions
 * @param opts execution options
 * @param metrics optional registry receiving the merged per-stage
 *        counters/gauges/spans (merge-on-join; deterministic order).
 *        Per-op spans land on the shared obs timeline, directly
 *        comparable to the simulator's Chrome traces.
 */
RuntimeResult runPipeline(TinyLM &model,
                          const std::vector<StageSpec> &stages,
                          const RuntimeOptions &opts,
                          obs::Registry *metrics = nullptr);

} // namespace adapipe

#endif // ADAPIPE_RUNTIME_PIPELINE_RUNTIME_H
