#include "runtime/watchdog.h"

#include <chrono>
#include <utility>

#include "obs/registry.h"
#include "util/logging.h"

namespace adapipe {

Watchdog::Watchdog(int num_workers, const WatchdogOptions &opts,
                   std::function<void(int, double)> on_stall)
    : opts_(opts), onStall_(std::move(on_stall)),
      beats_(static_cast<std::size_t>(num_workers)),
      done_(static_cast<std::size_t>(num_workers))
{
    ADAPIPE_ASSERT(num_workers >= 1, "watchdog needs >= 1 worker");
    ADAPIPE_ASSERT(opts.stallTimeoutUs > 0 && opts.pollIntervalUs > 0,
                   "watchdog timeouts must be positive");
    for (auto &b : beats_)
        b.store(0, std::memory_order_relaxed);
    for (auto &d : done_)
        d.store(false, std::memory_order_relaxed);
}

Watchdog::~Watchdog()
{
    stop();
}

void
Watchdog::start()
{
    ADAPIPE_ASSERT(!thread_.joinable(), "watchdog already started");
    stopping_ = false;
    thread_ = std::thread([this] { monitorLoop(); });
}

void
Watchdog::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

std::int64_t
Watchdog::polls() const
{
    return polls_.load(std::memory_order_relaxed);
}

std::int64_t
Watchdog::stallsDetected() const
{
    return stalls_.load(std::memory_order_relaxed);
}

void
Watchdog::monitorLoop()
{
    const std::size_t n = beats_.size();
    std::vector<std::int64_t> last_beat(n, 0);
    std::vector<double> last_change_us(n, obs::nowUs());

    std::unique_lock<std::mutex> lock(mu_);
    while (!stopping_) {
        cv_.wait_for(lock,
                     std::chrono::duration<double, std::micro>(
                         opts_.pollIntervalUs),
                     [this] { return stopping_; });
        if (stopping_)
            break;
        polls_.fetch_add(1, std::memory_order_relaxed);
        const double now_us = obs::nowUs();
        for (std::size_t w = 0; w < n; ++w) {
            if (done_[w].load(std::memory_order_relaxed))
                continue;
            const std::int64_t beat =
                beats_[w].load(std::memory_order_relaxed);
            if (beat != last_beat[w]) {
                last_beat[w] = beat;
                last_change_us[w] = now_us;
                continue;
            }
            const double silent_us = now_us - last_change_us[w];
            if (silent_us < opts_.stallTimeoutUs)
                continue;
            stalls_.fetch_add(1, std::memory_order_relaxed);
            if (onStall_)
                onStall_(static_cast<int>(w), silent_us);
            // One report is all a run needs: the callback fails the
            // run and closes every channel, which unwinds the rest.
            return;
        }
    }
}

} // namespace adapipe
