/**
 * @file
 * Bridge from planner output (core/plan.h) to runtime stage specs.
 *
 * The planner partitions the layer sequence
 * [Embedding, (Attention, FeedForward) x B, DecodingHead] and decides
 * saved/recomputed per computation unit. The tiny-LM runtime executes
 * whole transformer blocks with a per-block recompute mode, so this
 * mapping (a) assigns each block to the stage owning its Attention
 * layer, and (b) collapses the plan's per-unit saved mask into the
 * closest BlockRecompute mode. Both roundings are reported in
 * StageMapping::notes so CLIs can surface them.
 */

#ifndef ADAPIPE_RUNTIME_PLAN_MAPPING_H
#define ADAPIPE_RUNTIME_PLAN_MAPPING_H

#include <string>
#include <vector>

#include "core/plan.h"
#include "model/model_config.h"
#include "runtime/pipeline_runtime.h"

namespace adapipe {

/**
 * Planner-side description of the tiny LM, so plans can be searched
 * for the exact model the runtime trains. dtypeBytes is 4: the
 * autograd engine computes in fp32.
 */
ModelConfig tinyLmModelConfig(const TinyLmConfig &config);

/** Result of mapping a plan onto runtime stages. */
struct StageMapping
{
    /**
     * Per-chain-position ownership + recompute, ready for
     * runPipeline: one entry per stage for virtualStages == 1, one
     * per model chunk (pipeline * virtualStages entries, chunk g on
     * worker g % pipeline) otherwise.
     */
    std::vector<StageSpec> stages;
    /** Copied from the plan; pass to RuntimeOptions::virtualStages. */
    int virtualStages = 1;
    /**
     * Copied from PipelinePlan::overlap; pass to
     * RuntimeOptions::overlapReplay so the runtime hides checkpoint
     * replay the way the plan budgeted it.
     */
    bool overlap = false;
    /**
     * Backward-engine workers per stage; pass to
     * RuntimeOptions::intraStageThreads. Plans do not encode the
     * knob (it never changes losses — the engine's reduction is
     * bit-deterministic), so this stays at 1 unless the caller
     * overrides it (pipeline_training --intra-stage-threads).
     */
    int intraStageThreads = 1;
    /**
     * Human-readable notes about roundings applied (block split
     * across a layer boundary, per-unit mask collapsed, fallback
     * recompute used). Empty when the plan mapped exactly.
     */
    std::vector<std::string> notes;
};

/**
 * Map @p plan onto the tiny LM described by @p config.
 *
 * The plan must have been produced for a model with
 * @p config .blocks blocks (layer sequence length 2*blocks + 2);
 * fatal on a stage/layer mismatch. The per-unit saved mask is decoded
 * when its shape matches the layer sequence built from
 * tinyLmModelConfig(); otherwise the plan's method picks a uniform
 * fallback mode (DappleFull -> Full, DappleNon -> None,
 * DappleSelective -> AttentionOnly, else None).
 */
StageMapping stageSpecsFromPlan(const PipelinePlan &plan,
                                const TinyLmConfig &config);

} // namespace adapipe

#endif // ADAPIPE_RUNTIME_PLAN_MAPPING_H
