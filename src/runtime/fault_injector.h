/**
 * @file
 * Seeded fault injection for the *real* multithreaded runtime — the
 * live-execution counterpart of the simulator's FaultSpec
 * (robust/fault_spec.h).
 *
 * A RuntimeFaultSpec describes per-worker slowdowns, transient op
 * stalls, delayed channel sends and a one-shot worker crash. All
 * randomness is counter-based (the same SplitMix64 hashing the
 * simulator uses, keyed by schedule coordinates), so a fixed seed
 * produces the identical fault firing sequence at any
 * intra-stage-thread count: every injector hook runs on the stage
 * worker thread, whose op order is fixed by the schedule.
 *
 * The injector is wired into PipelineRuntime worker loops behind a
 * null-pointer check — a run without a spec executes exactly the
 * pre-fault-injection code path (zero overhead when off).
 */

#ifndef ADAPIPE_RUNTIME_FAULT_INJECTOR_H
#define ADAPIPE_RUNTIME_FAULT_INJECTOR_H

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "robust/fault_spec.h"
#include "util/json.h"
#include "util/parse_result.h"

namespace adapipe {

/**
 * One-shot worker crash: worker @ref worker throws (or silently
 * hangs) at global step @ref step after completing @ref afterOps ops
 * of that step.
 */
struct RuntimeCrash
{
    /** Worker index to kill, or -1 for no crash. */
    int worker = -1;
    /** Global step (RuntimeOptions::firstStep-based) of the crash. */
    int step = 0;
    /** Ops the worker completes within that step before crashing. */
    std::int64_t afterOps = 0;
    /**
     * Crash silently: park forever instead of throwing, the way a
     * dead device looks from the outside — nothing but silence.
     * Detectable only by the watchdog (runPipeline refuses a hang
     * crash without one, since nothing else could ever unblock the
     * run).
     */
    bool hang = false;
};

/** A complete, seeded runtime fault scenario. */
struct RuntimeFaultSpec
{
    /** Seed of all per-op draws (stalls and send-delay jitter). */
    std::uint64_t seed = 0;
    /** Straggling workers (DeviceSlowdown::device = worker index):
     *  every op on the worker takes factor times its measured time. */
    std::vector<DeviceSlowdown> slowdowns;
    /** Transient op stalls (same retry/backoff model as the sim). */
    TransientStalls stalls;
    /** Base injected delay before each cross-chunk send, in us. */
    double sendDelayUs = 0;
    /** Relative jitter on the send delay: each delayed send sleeps
     *  sendDelayUs * f with f drawn from [1, 1 + sendDelayJitter]. */
    double sendDelayJitter = 0;
    /** Optional one-shot worker crash. */
    RuntimeCrash crash;

    /** @return true when the spec injects no fault at all. */
    bool empty() const;
};

/** Thrown by the injector when the configured crash fires. */
class InjectedCrashError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** What an injected fault event did. */
enum class FaultEventKind {
    Stall,     ///< transient stall delay before an op
    Slowdown,  ///< straggler delay appended after an op
    SendDelay, ///< delayed channel send
    Crash,     ///< the one-shot crash fired
};

/** @return stable lowercase name of @p kind. */
const char *faultEventKindName(FaultEventKind kind);

/** One injected fault, identified by its schedule coordinates. */
struct FaultEvent
{
    FaultEventKind kind = FaultEventKind::Stall;
    int worker = 0;
    /** Chain position of the op (chunk index). */
    int pos = 0;
    /** Global step of the op. */
    int step = 0;
    int microBatch = 0;
    bool forward = true;
    /** Injected delay in microseconds. Deterministic for Stall and
     *  SendDelay; wall-clock-dependent for Slowdown (factor times
     *  the measured op time). */
    double us = 0;
};

/**
 * @return the event's seed-deterministic identity (kind + schedule
 * coordinates + the deterministic delay, excluding wall-clock-
 * dependent parts) — the string the determinism tests compare across
 * thread counts.
 */
std::string faultEventSignature(const FaultEvent &event);

/**
 * The runtime fault injector. One instance per run; every hook is
 * called on the owning worker's thread, and each worker writes only
 * its own pre-allocated event log, so the injector needs no locks.
 *
 * Injected sleeps are cancellation-aware: RunState::fail() calls
 * cancelSleeps(), which makes every pending (and future) injected
 * sleep throw ChannelClosedError so a long stall or a hang crash can
 * never wedge shutdown.
 */
class FaultInjector
{
  public:
    FaultInjector(const RuntimeFaultSpec &spec, int num_workers);

    /**
     * Hook before executing an op: applies the transient-stall delay
     * and fires the one-shot crash.
     *
     * @param ops_this_step ops the worker already completed within
     *        this step (the crash's afterOps coordinate)
     * @throws InjectedCrashError when the throw-crash fires
     * @throws ChannelClosedError from a cancelled sleep / hang
     */
    void beforeOp(int worker, int pos, int step, int micro_batch,
                  bool forward, std::int64_t ops_this_step);

    /**
     * Hook after executing an op: applies the straggler slowdown,
     * sleeping (factor - 1) times the measured op time.
     */
    void afterOp(int worker, int pos, int step, int micro_batch,
                 bool forward, double op_us);

    /** Hook before a cross-chunk send: applies the send delay. */
    void beforeSend(int worker, int pos, int step, int micro_batch,
                    bool forward);

    /**
     * Abort every pending injected sleep (they throw
     * ChannelClosedError). Called from RunState::fail(); idempotent
     * and callable from any thread.
     */
    void cancelSleeps();

    /**
     * Merged event log, sorted by (step, pos, microBatch, forward,
     * kind) — a deterministic order independent of worker count.
     * Call only after every worker joined.
     */
    std::vector<FaultEvent> events() const;

  private:
    void record(FaultEvent event);
    void sleepUs(double us);
    [[noreturn]] void hangUntilCancelled();

    RuntimeFaultSpec spec_;
    /** Draw helper reusing the simulator's counter-based hashing:
     *  stallDelay() for stalls, jitterFactor() for send delay. */
    FaultSpec draws_;
    std::atomic<bool> cancelled_{false};
    /** Per-worker logs; only the owning worker thread appends. */
    std::vector<std::vector<FaultEvent>> perWorker_;
};

/** Serialize a runtime fault spec to JSON. */
JsonValue runtimeFaultSpecToJson(const RuntimeFaultSpec &spec);

/**
 * Recoverable parse of a runtime fault spec; errors name the
 * offending field (e.g. "runtime_fault.slowdowns[0].factor").
 */
ParseResult<RuntimeFaultSpec>
tryRuntimeFaultSpecFromJson(const JsonValue &json);

/** Recoverable parse from a JSON string (covers syntax errors). */
ParseResult<RuntimeFaultSpec>
tryRuntimeFaultSpecFromJsonString(const std::string &text);

/** Load a spec from a JSON file; errors name the path/field. */
ParseResult<RuntimeFaultSpec>
loadRuntimeFaultSpecFile(const std::string &path);

} // namespace adapipe

#endif // ADAPIPE_RUNTIME_FAULT_INJECTOR_H
