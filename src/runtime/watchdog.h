/**
 * @file
 * Watchdog/heartbeat layer for the pipeline runtime.
 *
 * Each worker publishes a progress epoch (an atomic counter bumped
 * after every op, on every bounded channel wait tick, and while
 * parked at the snapshot barrier). A monitor thread samples the
 * epochs; a worker whose epoch has not moved for the stall timeout
 * is reported through the on-stall callback — which is how the
 * runtime detects a worker that hangs *without* dying cleanly (an
 * injected hang crash, a wedged device): its healthy peers keep
 * beating while they wait on it, so only the silent worker trips
 * the timeout.
 */

#ifndef ADAPIPE_RUNTIME_WATCHDOG_H
#define ADAPIPE_RUNTIME_WATCHDOG_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace adapipe {

/** Watchdog configuration (RuntimeOptions::watchdog). */
struct WatchdogOptions
{
    /** Run the monitor thread; when false the runtime executes the
     *  plain blocking-channel code path (zero overhead). */
    bool enabled = false;
    /** A worker silent for longer than this is declared stalled. */
    double stallTimeoutUs = 2e6;
    /** Monitor sampling interval. */
    double pollIntervalUs = 20e3;
};

/**
 * The monitor. Construction allocates the per-worker epochs; start()
 * launches the thread; stop() (or destruction) joins it. beat() and
 * markDone() are wait-free and safe from any thread.
 */
class Watchdog
{
  public:
    /**
     * @param num_workers worker count (worker indices [0, n))
     * @param opts timeouts
     * @param on_stall called once, from the monitor thread, for the
     *        first worker that trips the stall timeout; receives the
     *        worker index and its silent time in microseconds
     */
    Watchdog(int num_workers, const WatchdogOptions &opts,
             std::function<void(int, double)> on_stall);
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** Launch the monitor thread. */
    void start();

    /** Stop and join the monitor thread. Idempotent. */
    void stop();

    /** Publish progress of @p worker (wait-free). */
    void
    beat(int worker)
    {
        beats_[static_cast<std::size_t>(worker)].fetch_add(
            1, std::memory_order_relaxed);
    }

    /** Mark @p worker finished: it stops being monitored. */
    void
    markDone(int worker)
    {
        done_[static_cast<std::size_t>(worker)].store(
            true, std::memory_order_relaxed);
    }

    /** @return monitor sampling rounds executed. */
    std::int64_t polls() const;

    /** @return stalls reported (0 or 1; stops after the first). */
    std::int64_t stallsDetected() const;

  private:
    void monitorLoop();

    WatchdogOptions opts_;
    std::function<void(int, double)> onStall_;
    std::vector<std::atomic<std::int64_t>> beats_;
    std::vector<std::atomic<bool>> done_;

    std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
    std::thread thread_;

    std::atomic<std::int64_t> polls_{0};
    std::atomic<std::int64_t> stalls_{0};
};

} // namespace adapipe

#endif // ADAPIPE_RUNTIME_WATCHDOG_H
