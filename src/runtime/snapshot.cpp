#include "runtime/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "util/file_io.h"
#include "util/json.h"
#include "util/json_reader.h"
#include "util/logging.h"

namespace adapipe {

namespace {

constexpr const char *kMagic = "ADAPIPESNAP1\n";
constexpr int kVersion = 1;
/** Element-count ceiling: rejects absurd shapes before the numel
 *  product can overflow or drive a giant allocation from a hostile
 *  header. */
constexpr std::int64_t kMaxBlobFloats =
    std::int64_t{1} << 40; // 4 TiB of floats

std::string
fnv1a64Hex(const char *bytes, std::size_t len)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= static_cast<unsigned char>(bytes[i]);
        h *= 1099511628211ULL;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(buf);
}

JsonValue
shapesToJson(const std::vector<Tensor> &tensors)
{
    JsonValue shapes = JsonValue::array();
    for (const Tensor &t : tensors) {
        JsonValue shape = JsonValue::array();
        for (int d : t.shape())
            shape.push(JsonValue::integer(d));
        shapes.push(std::move(shape));
    }
    return shapes;
}

/** Read a shape list ("params"/"adam_m"/"adam_v"), allocating
 *  zero-filled tensors and accumulating the float count. */
std::vector<Tensor>
readShapes(const JsonReader &node, std::int64_t &total_floats)
{
    std::vector<Tensor> tensors;
    tensors.reserve(node.size());
    for (std::size_t i = 0; i < node.size(); ++i) {
        const JsonReader shape_node = node.at(i);
        std::vector<int> shape;
        std::int64_t numel = 1;
        for (std::size_t d = 0; d < shape_node.size(); ++d) {
            const std::int64_t dim = shape_node.at(d).asInteger();
            if (dim < 1 || dim > kMaxBlobFloats)
                shape_node.at(d).fail("dimension out of range");
            numel *= dim;
            if (numel > kMaxBlobFloats)
                shape_node.fail("tensor element count out of range");
            shape.push_back(static_cast<int>(dim));
        }
        if (shape.empty())
            shape_node.fail("empty shape");
        total_floats += numel;
        if (total_floats > kMaxBlobFloats)
            node.fail("blob element count out of range");
        tensors.emplace_back(std::move(shape));
    }
    return tensors;
}

void
appendBlob(std::string &out, const std::vector<Tensor> &tensors)
{
    for (const Tensor &t : tensors) {
        const std::size_t bytes =
            static_cast<std::size_t>(t.numel()) * sizeof(float);
        const std::size_t offset = out.size();
        out.resize(offset + bytes);
        std::memcpy(&out[offset], t.data().data(), bytes);
    }
}

/** Copy the next numel() floats of the blob into @p tensors. */
void
readBlob(const char *blob, std::size_t &offset,
         std::vector<Tensor> &tensors)
{
    for (Tensor &t : tensors) {
        const std::size_t bytes =
            static_cast<std::size_t>(t.numel()) * sizeof(float);
        std::memcpy(t.data().data(), blob + offset, bytes);
        offset += bytes;
    }
}

JsonValue
modelConfigToJson(const TinyLmConfig &config)
{
    JsonValue model = JsonValue::object();
    model.set("vocab", JsonValue::integer(config.vocab));
    model.set("dim", JsonValue::integer(config.dim));
    model.set("blocks", JsonValue::integer(config.blocks));
    model.set("ffn_hidden", JsonValue::integer(config.ffnHidden));
    model.set("max_seq", JsonValue::integer(config.maxSeq));
    model.set("num_heads", JsonValue::integer(config.numHeads));
    model.set("gated_ffn", JsonValue::boolean(config.gatedFfn));
    model.set("rms_norm", JsonValue::boolean(config.rmsNorm));
    model.set("seed", JsonValue::integer(
                          static_cast<std::int64_t>(config.seed)));
    return model;
}

TinyLmConfig
modelConfigFromJson(const JsonReader &model)
{
    TinyLmConfig config;
    config.vocab = static_cast<int>(model.key("vocab").asInteger());
    config.dim = static_cast<int>(model.key("dim").asInteger());
    config.blocks = static_cast<int>(model.key("blocks").asInteger());
    config.ffnHidden =
        static_cast<int>(model.key("ffn_hidden").asInteger());
    config.maxSeq =
        static_cast<int>(model.key("max_seq").asInteger());
    config.numHeads =
        static_cast<int>(model.key("num_heads").asInteger());
    config.gatedFfn = model.key("gated_ffn").asBool();
    config.rmsNorm = model.key("rms_norm").asBool();
    config.seed = static_cast<std::uint64_t>(
        model.key("seed").asInteger());
    if (config.vocab < 1)
        model.key("vocab").fail("vocab must be >= 1");
    if (config.dim < 1)
        model.key("dim").fail("dim must be >= 1");
    if (config.blocks < 1)
        model.key("blocks").fail("blocks must be >= 1");
    return config;
}

/** Canonical parameter index by graph-node identity. */
std::unordered_map<const autograd_detail::VarImpl *, std::size_t>
canonicalIndex(const std::vector<Variable> &params)
{
    std::unordered_map<const autograd_detail::VarImpl *, std::size_t>
        index;
    index.reserve(params.size());
    for (std::size_t i = 0; i < params.size(); ++i)
        index.emplace(params[i].impl().get(), i);
    return index;
}

} // namespace

std::string
snapshotToBytes(const TrainingSnapshot &snap)
{
    std::string blob;
    appendBlob(blob, snap.params);
    appendBlob(blob, snap.adamM);
    appendBlob(blob, snap.adamV);

    JsonValue header = JsonValue::object();
    header.set("version", JsonValue::integer(snap.version));
    header.set("step", JsonValue::integer(snap.step));
    header.set("data_seed",
               JsonValue::integer(
                   static_cast<std::int64_t>(snap.dataSeed)));
    header.set("optimizer", JsonValue::string(snap.optimizer));
    header.set("adam_t", JsonValue::integer(snap.adamT));
    header.set("model", modelConfigToJson(snap.config));
    header.set("params", shapesToJson(snap.params));
    header.set("adam_m", shapesToJson(snap.adamM));
    header.set("adam_v", shapesToJson(snap.adamV));
    header.set("blob_floats",
               JsonValue::integer(static_cast<std::int64_t>(
                   blob.size() / sizeof(float))));
    header.set("blob_checksum",
               JsonValue::string(
                   fnv1a64Hex(blob.data(), blob.size())));
    const std::string header_text = header.dump(0);

    std::string bytes;
    bytes.reserve(std::strlen(kMagic) + 24 + header_text.size() +
                  blob.size());
    bytes += kMagic;
    bytes += std::to_string(header_text.size());
    bytes += '\n';
    bytes += header_text;
    bytes += blob;
    return bytes;
}

ParseResult<TrainingSnapshot>
snapshotFromBytes(const std::string &bytes)
{
    using Result = ParseResult<TrainingSnapshot>;
    const std::size_t magic_len = std::strlen(kMagic);
    if (bytes.size() < magic_len ||
        bytes.compare(0, magic_len, kMagic) != 0) {
        return Result::failure(
            "snapshot: bad magic (not a snapshot file, or truncated "
            "before the format marker)");
    }

    // Header length: a short decimal line. Bound the digits so a
    // corrupt byte stream cannot send us scanning megabytes for '\n'.
    std::size_t pos = magic_len;
    std::size_t header_len = 0;
    std::size_t digits = 0;
    while (pos < bytes.size() && bytes[pos] != '\n') {
        const char c = bytes[pos];
        if (c < '0' || c > '9' || ++digits > 9)
            return Result::failure(
                "snapshot: malformed header length");
        header_len = header_len * 10 +
                     static_cast<std::size_t>(c - '0');
        ++pos;
    }
    if (pos >= bytes.size() || digits == 0)
        return Result::failure(
            "snapshot: truncated before header length");
    ++pos; // consume '\n'
    if (bytes.size() - pos < header_len)
        return Result::failure("snapshot: truncated header");

    ParseResult<JsonValue> json =
        JsonValue::tryParse(bytes.substr(pos, header_len));
    if (!json.ok()) {
        return Result::failure("snapshot header: " + json.error());
    }
    pos += header_len;

    std::int64_t declared_floats = 0;
    std::string declared_checksum;
    Result parsed = readJson<TrainingSnapshot>(
        json.value(), "snapshot",
        [&declared_floats, &declared_checksum](JsonReader root) {
            TrainingSnapshot snap;
            snap.version = static_cast<int>(
                root.key("version").asInteger());
            if (snap.version != kVersion) {
                root.key("version")
                    .fail("unsupported snapshot version " +
                          std::to_string(snap.version) +
                          " (this build reads version " +
                          std::to_string(kVersion) + ")");
            }
            snap.step = root.key("step").asInteger();
            if (snap.step < 0)
                root.key("step").fail("step must be >= 0");
            snap.dataSeed = static_cast<std::uint64_t>(
                root.key("data_seed").asInteger());
            snap.optimizer = root.key("optimizer").asString();
            if (snap.optimizer != "adam" && snap.optimizer != "sgd")
                root.key("optimizer")
                    .fail("unknown optimizer '" + snap.optimizer +
                          "'");
            snap.adamT = static_cast<int>(
                root.key("adam_t").asInteger());
            if (snap.adamT < 0)
                root.key("adam_t").fail("adam_t must be >= 0");
            snap.config = modelConfigFromJson(root.key("model"));

            std::int64_t total_floats = 0;
            snap.params =
                readShapes(root.key("params"), total_floats);
            snap.adamM =
                readShapes(root.key("adam_m"), total_floats);
            snap.adamV =
                readShapes(root.key("adam_v"), total_floats);
            if (snap.params.empty())
                root.key("params").fail("no parameters");
            if (snap.adamM.size() != snap.adamV.size())
                root.key("adam_v")
                    .fail("adam_m/adam_v count mismatch");
            if (!snap.adamM.empty() &&
                snap.adamM.size() != snap.params.size())
                root.key("adam_m")
                    .fail("moment count does not match parameter "
                          "count");
            for (std::size_t i = 0; i < snap.adamM.size(); ++i) {
                if (!snap.adamM[i].sameShape(snap.params[i]) ||
                    !snap.adamV[i].sameShape(snap.params[i]))
                    root.key("adam_m")
                        .fail("moment shape does not match "
                              "parameter " +
                              std::to_string(i));
            }

            declared_floats =
                root.key("blob_floats").asInteger();
            if (declared_floats != total_floats) {
                root.key("blob_floats")
                    .fail("declared " +
                          std::to_string(declared_floats) +
                          " floats but shapes sum to " +
                          std::to_string(total_floats));
            }
            declared_checksum =
                root.key("blob_checksum").asString();
            return snap;
        });
    if (!parsed.ok())
        return parsed;
    TrainingSnapshot snap = std::move(parsed).value();

    const std::size_t blob_bytes =
        static_cast<std::size_t>(declared_floats) * sizeof(float);
    if (bytes.size() - pos != blob_bytes) {
        return Result::failure(
            "snapshot: blob length mismatch (header declares " +
            std::to_string(blob_bytes) + " bytes, file carries " +
            std::to_string(bytes.size() - pos) + ")");
    }
    const std::string checksum =
        fnv1a64Hex(bytes.data() + pos, blob_bytes);
    if (checksum != declared_checksum) {
        return Result::failure(
            "snapshot: blob checksum mismatch (header " +
            declared_checksum + ", blob " + checksum + ")");
    }

    std::size_t offset = pos;
    readBlob(bytes.data(), offset, snap.params);
    readBlob(bytes.data(), offset, snap.adamM);
    readBlob(bytes.data(), offset, snap.adamV);
    return Result::success(std::move(snap));
}

ParseStatus
writeSnapshotFile(const std::string &path,
                  const TrainingSnapshot &snap)
{
    const std::string tmp = path + ".tmp";
    ParseStatus wrote = writeTextFile(tmp, snapshotToBytes(snap));
    if (!wrote.ok())
        return wrote;
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return ParseStatus::failure(path +
                                    ": cannot rename snapshot into "
                                    "place");
    }
    return parseOk();
}

ParseResult<TrainingSnapshot>
loadSnapshotFile(const std::string &path)
{
    ParseResult<std::string> text = readTextFile(path);
    if (!text.ok())
        return ParseResult<TrainingSnapshot>::failure(text.error());
    ParseResult<TrainingSnapshot> snap =
        snapshotFromBytes(text.value());
    if (!snap.ok()) {
        return ParseResult<TrainingSnapshot>::failure(
            path + ": " + snap.error());
    }
    return snap;
}

TrainingSnapshot
captureTrainingSnapshot(const TinyLM &model,
                        const std::vector<const Adam *> &optimizers,
                        std::int64_t step, std::uint64_t data_seed,
                        bool use_adam)
{
    TrainingSnapshot snap;
    snap.config = model.config();
    snap.step = step;
    snap.dataSeed = data_seed;
    snap.optimizer = use_adam ? "adam" : "sgd";

    const std::vector<Variable> params = model.params();
    snap.params.reserve(params.size());
    for (const Variable &p : params)
        snap.params.push_back(p.value());
    if (use_adam) {
        snap.adamM.reserve(params.size());
        snap.adamV.reserve(params.size());
        for (const Variable &p : params) {
            snap.adamM.emplace_back(p.value().shape());
            snap.adamV.emplace_back(p.value().shape());
        }
        const auto index = canonicalIndex(params);
        for (const Adam *adam : optimizers) {
            if (adam == nullptr)
                continue;
            snap.adamT = std::max(snap.adamT, adam->stepCount());
            const std::vector<Variable> &owned = adam->params();
            for (std::size_t i = 0; i < owned.size(); ++i) {
                const auto it =
                    index.find(owned[i].impl().get());
                ADAPIPE_ASSERT(it != index.end(),
                               "optimizer parameter not in model");
                snap.adamM[it->second] = adam->moment1(i);
                snap.adamV[it->second] = adam->moment2(i);
            }
        }
    }
    return snap;
}

ParseStatus
restoreTinyLM(TinyLM &model, const TrainingSnapshot &snap)
{
    const TinyLmConfig &have = model.config();
    const TinyLmConfig &want = snap.config;
    const auto mismatch = [](const std::string &field,
                             std::int64_t model_v,
                             std::int64_t snap_v) {
        return ParseStatus::failure(
            "snapshot model mismatch: " + field + " is " +
            std::to_string(snap_v) + " in the snapshot but " +
            std::to_string(model_v) + " in the model");
    };
    if (have.vocab != want.vocab)
        return mismatch("vocab", have.vocab, want.vocab);
    if (have.dim != want.dim)
        return mismatch("dim", have.dim, want.dim);
    if (have.blocks != want.blocks)
        return mismatch("blocks", have.blocks, want.blocks);
    if (have.ffnHidden != want.ffnHidden)
        return mismatch("ffn_hidden", have.ffnHidden,
                        want.ffnHidden);
    if (have.maxSeq != want.maxSeq)
        return mismatch("max_seq", have.maxSeq, want.maxSeq);
    if (have.numHeads != want.numHeads)
        return mismatch("num_heads", have.numHeads, want.numHeads);
    if (have.gatedFfn != want.gatedFfn)
        return mismatch("gated_ffn", have.gatedFfn, want.gatedFfn);
    if (have.rmsNorm != want.rmsNorm)
        return mismatch("rms_norm", have.rmsNorm, want.rmsNorm);
    if (have.seed != want.seed)
        return mismatch("seed",
                        static_cast<std::int64_t>(have.seed),
                        static_cast<std::int64_t>(want.seed));

    std::vector<Variable> params = model.params();
    if (params.size() != snap.params.size()) {
        return ParseStatus::failure(
            "snapshot: parameter count mismatch (model has " +
            std::to_string(params.size()) + ", snapshot has " +
            std::to_string(snap.params.size()) + ")");
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (!params[i].value().sameShape(snap.params[i]))
            return ParseStatus::failure(
                "snapshot: shape mismatch at parameter " +
                std::to_string(i));
    }
    for (std::size_t i = 0; i < params.size(); ++i)
        params[i].mutableValue() = snap.params[i];
    return parseOk();
}

ParseStatus
restoreAdamState(Adam &adam, const TinyLM &model,
                 const TrainingSnapshot &snap)
{
    if (snap.optimizer != "adam" || snap.adamM.empty()) {
        return ParseStatus::failure(
            "snapshot carries no adam state (optimizer '" +
            snap.optimizer + "')");
    }
    const std::vector<Variable> params = model.params();
    if (snap.adamM.size() != params.size()) {
        return ParseStatus::failure(
            "snapshot: adam moment count mismatch");
    }
    const auto index = canonicalIndex(params);
    const std::vector<Variable> &owned = adam.params();
    for (std::size_t i = 0; i < owned.size(); ++i) {
        const auto it = index.find(owned[i].impl().get());
        if (it == index.end()) {
            return ParseStatus::failure(
                "snapshot: optimizer parameter " +
                std::to_string(i) + " not found in the model");
        }
        if (!snap.adamM[it->second].sameShape(owned[i].value())) {
            return ParseStatus::failure(
                "snapshot: adam moment shape mismatch at "
                "parameter " +
                std::to_string(it->second));
        }
        adam.setMoments(i, snap.adamM[it->second],
                        snap.adamV[it->second]);
    }
    adam.setStepCount(snap.adamT);
    return parseOk();
}

} // namespace adapipe
