/**
 * @file
 * Plan data structures produced by the AdaPipe search engine.
 */

#ifndef ADAPIPE_CORE_PLAN_H
#define ADAPIPE_CORE_PLAN_H

#include <string>
#include <vector>

#include "model/parallel.h"
#include "util/units.h"

namespace adapipe {

/** Planning method: AdaPipe, its ablation, or a baseline. */
enum class PlanMethod {
    AdaPipe,         ///< adaptive recomputation + adaptive partitioning
    EvenPartition,   ///< adaptive recomputation, baseline partitioning
    DappleFull,      ///< 1F1B with full recomputation
    DappleNon,       ///< 1F1B with no recomputation
    DappleSelective, ///< 1F1B with selective recomputation (Sec. 2.2)
};

/** @return the display name used in the paper's figures. */
const char *planMethodName(PlanMethod method);

/**
 * Uniform per-stage recomputation policy of the baselines.
 *
 * Selective recomputation (Korthikanti et al., Sec. 2.2) recomputes
 * only the attention score / softmax / context operators whose
 * O(s^2) activations dominate memory; it only exists on the unfused
 * attention path — flash attention removes those tensors and
 * supersedes it.
 */
enum class RecomputeBaseline {
    Full,
    None,
    Selective,
};

/**
 * Closed-form 1F1B iteration timing (Sec. 5.1): warmup W, ending E,
 * steady per-micro-batch bottleneck M and total T = W + E + (n-p)M.
 */
struct PipelineTiming
{
    Seconds warmup = 0;
    Seconds ending = 0;
    Seconds steadyPerMb = 0;
    Seconds total = 0;
};

/**
 * One stage of a finished plan.
 */
struct StagePlan
{
    /** First layer index (inclusive) of the stage's sub-sequence. */
    int firstLayer = 0;
    /** Last layer index (inclusive). */
    int lastLayer = 0;
    /** Forward time of one micro-batch, F_s. */
    Seconds timeFwd = 0;
    /** Backward (incl. recomputation) time of one micro-batch, B_s. */
    Seconds timeBwd = 0;
    /** Predicted peak memory of the stage's ranks. */
    Bytes memPeak = 0;
    /** Number of saved computation units (Table 4's metric). */
    int savedUnits = 0;
    /** Total computation units in the stage. */
    int totalUnits = 0;
    /**
     * Saved/recomputed decision per unit, flattened over the stage's
     * layers in execution order (always-saved units are true).
     */
    std::vector<bool> savedMask;
    /**
     * Overlapped-recomputation annotation (PipelinePlan::overlap):
     * idle seconds per micro-batch the planner budgeted for hiding
     * this stage's checkpoint replay inside recv/send waits. 0 on
     * lazy plans.
     */
    Seconds overlapBubble = 0;
    /** Replay seconds per micro-batch expected to hide in the bubble. */
    Seconds timeReplayHidden = 0;
    /**
     * Replay seconds per micro-batch left on the backward critical
     * path; timeBwd includes exactly this much recomputation.
     */
    Seconds timeReplayCritical = 0;
    /**
     * Host-offload decision per unit, same flattening as
     * @ref savedMask and disjoint from it: an offloaded unit is
     * staged to host after forward and fetched back before backward
     * (neither kept on device nor recomputed). Empty when the plan
     * was produced without offload.
     */
    std::vector<bool> offloadMask;
    /** Bytes per micro-batch staged to host by this stage. */
    Bytes offloadBytes = 0;
    /**
     * Non-overlapped offload transfer micro-seconds per micro-batch
     * on the backward critical path; timeBwd includes exactly this
     * much (on top of timeReplayCritical). Micro-seconds, not
     * seconds, to keep the JSON field human-readable.
     */
    double offloadFetchUs = 0;

    /** @return number of layers assigned to this stage. */
    int numLayers() const { return lastLayer - firstLayer + 1; }
};

/**
 * Complete plan for one (model, cluster, strategy) combination.
 */
struct PipelinePlan
{
    PlanMethod method = PlanMethod::AdaPipe;
    ParallelConfig par;
    TrainConfig train;
    /** Number of micro-batches n per pipeline per iteration. */
    int microBatches = 0;
    /**
     * Virtual model chunks per device (Megatron's interleaved 1F1B,
     * Sec. 2.1). 1 = plain 1F1B. When > 1, @ref stages holds
     * par.pipeline * virtualStages entries in chain order: chunk g
     * runs on device g % par.pipeline.
     */
    int virtualStages = 1;
    /** Per-stage sub-plans, stage 0 first (chunk order when
     *  virtualStages > 1). */
    std::vector<StagePlan> stages;
    /**
     * Predicted timing. For virtualStages = 1 this is the closed-form
     * Sec. 5.1 decomposition; for virtualStages > 1 warmup/ending are
     * folded into total, which comes from the event-driven simulator
     * (the interleaved schedule has no closed form here).
     */
    PipelineTiming timing;
    /**
     * True when the plan was produced with the overlapped-replay
     * discount: the runtime should enable eager replay inside
     * recv/send waits, and each stage's timeBwd already excludes the
     * replay share budgeted to hide (StagePlan::timeReplayHidden).
     */
    bool overlap = false;
    /**
     * True when the plan was produced with the tri-choice
     * keep/recompute/offload solver: the runtime should start the
     * host-staging tier and honour each stage's
     * StagePlan::offloadMask.
     */
    bool offload = false;
};

/**
 * Outcome of planning: either a plan or an out-of-memory diagnosis,
 * mirroring the OOM columns of the paper's figures.
 */
struct PlanResult
{
    bool ok = false;
    /** Human-readable reason when !ok (e.g. which stage OOMs). */
    std::string oomReason;
    PipelinePlan plan;

    /** @return a feasible plan or panics (for callers that checked). */
    const PipelinePlan &value() const;
};

} // namespace adapipe

#endif // ADAPIPE_CORE_PLAN_H
