/**
 * @file
 * Cross-request memoization of the recomputation knapsack.
 *
 * The knapsack of Sec. 4.3 is a pure function of (unit costs, byte
 * budget, solver knobs). Within one plan the StageCostCalculator's
 * isomorphism cache already deduplicates it, but the cache dies with
 * the calculator — a strategy sweep, the v ∈ {1, 2, 4} interleaved
 * sweep, and every request hitting a long-running plan server
 * re-solve identical subproblems from scratch. The KnapsackMemo is
 * the process-lifetime complement: a thread-safe table keyed by the
 * exact solver input, shared across calculators (and so across
 * requests) via StageCostOptions::knapsackMemo.
 *
 * Keys are exact, not hashed-and-hoped: the raw bytes of the budget,
 * the solver knobs and every unit's (timeFwd, memSaved, alwaysSaved)
 * triple form the map key, so two subproblems collide only when the
 * solver genuinely cannot tell them apart. Unit names/kinds are
 * excluded on purpose — the solver never reads them (this is the
 * isomorphism argument of Sec. 5.3 taken to its limit).
 */

#ifndef ADAPIPE_CORE_KNAPSACK_MEMO_H
#define ADAPIPE_CORE_KNAPSACK_MEMO_H

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/recompute_dp.h"
#include "hw/profiler.h"

namespace adapipe {

/** Point-in-time counters of a KnapsackMemo. */
struct KnapsackMemoStats
{
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t entries = 0;
};

/**
 * Thread-safe memo table over solveRecomputeKnapsack.
 *
 * Lookups and inserts take one mutex; the DP itself runs outside the
 * lock, so concurrent misses on the same key may both solve (both
 * arrive at the identical result — the solver is deterministic) and
 * the second insert is a no-op. That keeps the lock hold time to a
 * hash probe even when a solve takes milliseconds.
 */
class KnapsackMemo
{
  public:
    /**
     * Memoized solveRecomputeKnapsack.
     *
     * @param units stage units in execution order
     * @param budget_per_mb optional-activation byte budget
     * @param opts solver knobs (part of the key)
     * @param hit set to whether the table already held the result
     */
    RecomputePlanResult solve(const std::vector<UnitProfile> &units,
                              std::int64_t budget_per_mb,
                              const RecomputeDpOptions &opts,
                              bool *hit = nullptr);

    /** @return hit/miss/entry counters (consistent snapshot). */
    KnapsackMemoStats stats() const;

    /** Drop all entries (counters survive). */
    void clear();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string, RecomputePlanResult> table_;
    std::int64_t hits_ = 0;
    std::int64_t misses_ = 0;
};

} // namespace adapipe

#endif // ADAPIPE_CORE_KNAPSACK_MEMO_H
