/**
 * @file
 * 3D parallel-strategy enumeration (Sec. 7.1 / Table 3).
 *
 * The paper iterates all (t, p, d) strategies on cluster A and
 * reports the best per method. This module enumerates strategies
 * with the paper's constraints (t <= 8 and within a node, t | heads,
 * t*p*d = devices, n >= p) and plans each one.
 */

#ifndef ADAPIPE_CORE_STRATEGY_SEARCH_H
#define ADAPIPE_CORE_STRATEGY_SEARCH_H

#include <optional>
#include <vector>

#include "core/plan.h"
#include "core/planner.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "model/parallel.h"

namespace adapipe {

/** One evaluated strategy. */
struct StrategyResult
{
    ParallelConfig par;
    PlanResult result;

    /** @return iteration time; infinity when infeasible. */
    Seconds iterationTime() const;
};

/** Enumeration knobs. */
struct StrategySearchOptions
{
    /** Maximum tensor-parallel size (paper: 8, one node). */
    int maxTensor = 8;
    /** Require at least this many pipeline stages. */
    int minPipeline = 2;
    /** Skip strategies where n < p (1F1B degenerates). */
    bool requireFullPipeline = true;
    /** Stage-cost knobs passed to the planner. */
    StageCostOptions stageCost;
    /**
     * Worker threads for the sweep (strategies are independent).
     * 0 = hardware concurrency, 1 = sequential.
     */
    unsigned threads = 1;
};

/**
 * Enumerate all valid (t, p, d) strategies for the cluster.
 */
std::vector<ParallelConfig>
enumerateStrategies(const ModelConfig &model, const TrainConfig &train,
                    const ClusterSpec &cluster,
                    const StrategySearchOptions &opts = {});

/**
 * Plan @p method under every valid strategy; results keep the
 * enumeration order (t-major).
 */
std::vector<StrategyResult>
sweepStrategies(const ModelConfig &model, const TrainConfig &train,
                const ClusterSpec &cluster, PlanMethod method,
                const StrategySearchOptions &opts = {});

/**
 * @return the feasible strategy with the lowest iteration time, or
 * nullopt when every strategy OOMs.
 */
std::optional<StrategyResult>
bestStrategy(const ModelConfig &model, const TrainConfig &train,
             const ClusterSpec &cluster, PlanMethod method,
             const StrategySearchOptions &opts = {});

} // namespace adapipe

#endif // ADAPIPE_CORE_STRATEGY_SEARCH_H
