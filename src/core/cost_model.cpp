#include "core/cost_model.h"

#include <algorithm>

#include "util/logging.h"

namespace adapipe {

PipelineTiming
evaluate1F1B(const std::vector<StageTimes> &stages, int n)
{
    const int p = static_cast<int>(stages.size());
    ADAPIPE_ASSERT(p >= 1, "cost model needs at least one stage");
    ADAPIPE_ASSERT(n >= 1, "cost model needs at least one micro-batch");

    Seconds w = stages[p - 1].fwd;
    Seconds e = stages[p - 1].bwd;
    Seconds m = stages[p - 1].fwd + stages[p - 1].bwd;
    Seconds next_f = stages[p - 1].fwd;
    Seconds next_b = stages[p - 1].bwd;

    for (int s = p - 2; s >= 0; --s) {
        const Seconds f = stages[s].fwd;
        const Seconds b = stages[s].bwd;
        const double warm = static_cast<double>(p - s - 1);
        const Seconds w_s = f + std::max(w + next_b, warm * f);
        const Seconds e_s = b + std::max(e + next_f, warm * b);
        w = w_s;
        e = e_s;
        m = std::max(m, f + b);
        next_f = f;
        next_b = b;
    }

    PipelineTiming timing;
    timing.warmup = w;
    timing.ending = e;
    timing.steadyPerMb = m;
    const int steady = std::max(0, n - p);
    timing.total = w + e + static_cast<double>(steady) * m;
    return timing;
}

Seconds
evaluateGPipe(const std::vector<StageTimes> &stages, int n)
{
    const int p = static_cast<int>(stages.size());
    ADAPIPE_ASSERT(p >= 1 && n >= 1, "invalid GPipe configuration");
    Seconds f_max = 0;
    Seconds b_max = 0;
    Seconds f_sum = 0;
    Seconds b_sum = 0;
    for (const auto &st : stages) {
        f_max = std::max(f_max, st.fwd);
        b_max = std::max(b_max, st.bwd);
        f_sum += st.fwd;
        b_sum += st.bwd;
    }
    // Forward wave: pipeline fill (sum over stages) plus n-1 more
    // forwards gated by the slowest stage; the backward wave mirrors.
    return f_sum + static_cast<double>(n - 1) * f_max + b_sum +
           static_cast<double>(n - 1) * b_max;
}

} // namespace adapipe
