/**
 * @file
 * Closed-form cost model of the 1F1B schedule (Sec. 5.1).
 *
 * Stage indices are 0-based throughout: stage 0 feeds the pipeline,
 * stage p-1 computes the loss. The recurrences (evaluated from the
 * last stage backwards):
 *
 *   W_s = F_s + max(W_{s+1} + B_{s+1}, (p - s - 1) F_s)
 *   E_s = B_s + max(E_{s+1} + F_{s+1}, (p - s - 1) B_s)
 *   M_s = max(M_{s+1}, F_s + B_s)
 *   T   = W_0 + E_0 + (n - p) M_0
 *
 * with W_{p-1} = F_{p-1}, E_{p-1} = B_{p-1}, M_{p-1} = F + B.
 * For uniform stages this reproduces the exact 1F1B iteration length
 * (n + p - 1)(F + B); the event-driven simulator cross-checks the
 * general case in tests.
 */

#ifndef ADAPIPE_CORE_COST_MODEL_H
#define ADAPIPE_CORE_COST_MODEL_H

#include <vector>

#include "core/plan.h"
#include "util/units.h"

namespace adapipe {

/** Forward/backward time of one stage for one micro-batch. */
struct StageTimes
{
    Seconds fwd = 0;
    Seconds bwd = 0;
};

/**
 * Evaluate the 1F1B cost model for per-stage times @p stages and
 * @p n micro-batches.
 *
 * @param stages F_s / B_s per stage, stage 0 first (size = p >= 1)
 * @param n micro-batches per pipeline (n >= 1). The model is exact
 *        in the paper's operating regime n >= p; with n < p its
 *        warmup terms assume a full pipeline and it becomes a
 *        conservative upper bound.
 */
PipelineTiming evaluate1F1B(const std::vector<StageTimes> &stages,
                            int n);

/**
 * GPipe reference cost: all forwards then all backwards,
 * approximately (n + p - 1) F_max + (n + p - 1) B_max.
 */
Seconds evaluateGPipe(const std::vector<StageTimes> &stages, int n);

} // namespace adapipe

#endif // ADAPIPE_CORE_COST_MODEL_H
