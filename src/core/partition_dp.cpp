#include "core/partition_dp.h"

#include <algorithm>
#include <limits>

#include "core/cost_model.h"
#include "obs/macros.h"
#include "util/logging.h"

namespace adapipe {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** One DP state P[s][i] (paper: W, E, M, F, B, T + the split point). */
struct State
{
    Seconds w = kInf;
    Seconds e = kInf;
    Seconds m = kInf;
    Seconds f = 0;
    Seconds b = 0;
    Seconds t = kInf;
    int split = -1; // last layer j of stage s on the optimal path

    bool valid() const { return t < kInf; }
};

} // namespace

PartitionDpResult
solveAdaptivePartition(StageCostCalculator &calc, int num_layers, int p,
                       int n)
{
    ADAPIPE_ASSERT(p >= 1 && num_layers >= p,
                   "need at least one layer per stage (L=", num_layers,
                   ", p=", p, ")");
    ADAPIPE_OBS_SPAN(obs_span, "partition_dp.solve");
    ADAPIPE_OBS_COUNT("partition_dp.runs", 1);
    const int L = num_layers;
    // Exploration counters accumulate locally and flush once so the
    // DP inner loop never touches the registry.
    std::int64_t states_visited = 0;
    std::int64_t transitions = 0;
    std::int64_t infeasible = 0;

    // dp[s][i]: best plan for layers i..L-1 on stages s..p-1. Stage s
    // can only start at i in [s, L - (p - s)] (one layer minimum per
    // stage before and after).
    std::vector<std::vector<State>> dp(
        p, std::vector<State>(L, State{}));

    // Base case: the last stage takes everything from i to L-1.
    for (int i = p - 1; i <= L - 1; ++i) {
        ++states_visited;
        const StageCost &c = calc.cost(p - 1, i, L - 1);
        if (!c.feasible) {
            ++infeasible;
            continue;
        }
        State st;
        st.f = c.fwd;
        st.b = c.bwd;
        st.w = c.fwd;
        st.e = c.bwd;
        st.m = c.fwd + c.bwd;
        st.t = st.w + st.e +
               static_cast<double>(std::max(0, n - 1)) * st.m;
        st.split = L - 1;
        dp[p - 1][i] = st;
    }

    for (int s = p - 2; s >= 0; --s) {
        const int max_i = L - (p - s);
        for (int i = s; i <= max_i; ++i) {
            ++states_visited;
            State best;
            for (int j = i; j <= max_i; ++j) {
                const State &next = dp[s + 1][j + 1];
                if (!next.valid())
                    continue;
                ++transitions;
                const StageCost &c = calc.cost(s, i, j);
                if (!c.feasible) {
                    ++infeasible;
                    continue;
                }
                const double warm = static_cast<double>(p - s - 1);
                State cand;
                cand.f = c.fwd;
                cand.b = c.bwd;
                cand.w = c.fwd +
                         std::max(next.w + next.b, warm * c.fwd);
                cand.e = c.bwd +
                         std::max(next.e + next.f, warm * c.bwd);
                cand.m = std::max(next.m, c.fwd + c.bwd);
                const double steady =
                    static_cast<double>(std::max(0, n - p + s));
                cand.t = cand.w + cand.e + steady * cand.m;
                cand.split = j;
                if (cand.t < best.t)
                    best = cand;
            }
            dp[s][i] = best;
        }
    }

    ADAPIPE_OBS_COUNT("partition_dp.states_visited", states_visited);
    ADAPIPE_OBS_COUNT("partition_dp.transitions", transitions);
    ADAPIPE_OBS_COUNT("partition_dp.infeasible_cells", infeasible);

    PartitionDpResult result;
    const State &root = dp[0][0];
    if (!root.valid()) {
        ADAPIPE_OBS_COUNT("partition_dp.infeasible_runs", 1);
        return result;
    }

    result.feasible = true;
    result.timing.warmup = root.w;
    result.timing.ending = root.e;
    result.timing.steadyPerMb = root.m;
    result.timing.total = root.t;

    int i = 0;
    for (int s = 0; s < p; ++s) {
        const int j = dp[s][i].split;
        ADAPIPE_ASSERT(j >= i, "broken DP backtrack at stage ", s);
        result.ranges.emplace_back(i, j);
        i = j + 1;
    }
    ADAPIPE_ASSERT(i == L, "partition does not cover all layers");
    return result;
}

PartitionDpResult
evaluateFixedPartition(StageCostCalculator &calc,
                       const std::vector<std::pair<int, int>> &ranges,
                       int n, std::optional<RecomputeBaseline> baseline)
{
    const int p = static_cast<int>(ranges.size());
    ADAPIPE_ASSERT(p >= 1, "empty partition");

    PartitionDpResult result;
    result.ranges = ranges;
    std::vector<StageTimes> times(p);
    for (int s = 0; s < p; ++s) {
        const auto [i, j] = ranges[s];
        StageCost c = baseline
                          ? calc.baselineCost(s, i, j, *baseline)
                          : calc.cost(s, i, j);
        if (!c.feasible)
            return result; // infeasible, ranges kept for diagnosis
        times[s] = {c.fwd, c.bwd};
    }
    result.feasible = true;
    result.timing = evaluate1F1B(times, n);
    return result;
}

std::vector<std::pair<int, int>>
evenPartition(int num_layers, int p)
{
    ADAPIPE_ASSERT(num_layers >= 2 && (num_layers - 2) % 2 == 0,
                   "layer sequence must be [embed, blocks..., head]");
    const int blocks = (num_layers - 2) / 2;
    ADAPIPE_ASSERT(blocks >= p, "fewer blocks than stages");

    const int base = blocks / p;
    const int extra = blocks % p;
    std::vector<std::pair<int, int>> ranges;
    int layer = 1; // first attention layer (0 is the embedding)
    for (int s = 0; s < p; ++s) {
        const int nblocks = base + (s < extra ? 1 : 0);
        int first = layer;
        int last = layer + 2 * nblocks - 1;
        if (s == 0)
            first = 0; // embedding joins stage 0
        if (s == p - 1)
            last += 1; // decoding head joins the last stage
        ranges.emplace_back(first, last);
        layer += 2 * nblocks;
    }
    return ranges;
}

} // namespace adapipe
