/**
 * @file
 * Stage cost tables f[s,i,j] and b[s,i,j] (Sec. 5.2) with the
 * isomorphism optimisation of Sec. 5.3.
 *
 * For a stage s (0-based) assigned layers [i, j], the calculator
 * derives the per-micro-batch memory budget from the stage's static
 * memory, recompute buffer, boundary input and always-saved
 * activations, runs the Sec. 4 knapsack, and reports the resulting
 * forward/backward times and predicted peak memory.
 *
 * Isomorphism: two layer ranges with the same length, the same first
 * layer kind and the same boundary content (embedding / decoding
 * head) have identical cost tables for the same in-flight count, so
 * results are memoised under that key, reducing knapsack executions
 * from O(p L^2) to O(p L).
 */

#ifndef ADAPIPE_CORE_STAGE_COST_H
#define ADAPIPE_CORE_STAGE_COST_H

#include <map>
#include <tuple>
#include <vector>

#include "core/plan.h"
#include "core/profiled_model.h"
#include "core/recompute_dp.h"
#include "util/units.h"

namespace adapipe {

class KnapsackMemo;

/**
 * Cost of running layers [i, j] as stage s.
 */
struct StageCost
{
    /** False when even full recomputation exceeds device memory. */
    bool feasible = false;
    /** Forward time per micro-batch, f[s,i,j]. */
    Seconds fwd = 0;
    /** Backward (incl. recomputation) time per micro-batch. */
    Seconds bwd = 0;
    /** Predicted peak memory of the stage. */
    Bytes memPeak = 0;
    /** Knapsack outcome (decision vector over the range's units). */
    RecomputePlanResult recompute;
    /** Total computation units in the range. */
    int totalUnits = 0;
    /**
     * Replay time per micro-batch expected to hide inside the
     * stage's bubble budget (StageCostOptions::overlapBubblePerMb);
     * 0 without a budget. Scaled by the stage-time factor like bwd.
     */
    Seconds replayHidden = 0;
    /**
     * Replay time per micro-batch left on the backward critical path
     * after the bubble discount; bwd includes exactly this much
     * recomputation (not the hidden part).
     */
    Seconds replayCritical = 0;
    /**
     * Non-overlapped offload transfer time per micro-batch on the
     * backward critical path; bwd includes exactly this much on top
     * of replayCritical. Reported disjointly from fwd (the offload
     * share is never folded into the forward time: the event
     * simulator replays fwd as real compute). Scaled by the
     * stage-time factor like bwd.
     */
    Seconds offloadExposed = 0;
    /** Host-link occupancy per micro-batch (evict + fetch). */
    Seconds offloadLinkTime = 0;
    /** Bytes per micro-batch staged to host. */
    Bytes offloadBytes = 0;
    /** Count of offloaded units in the range. */
    int offloadedUnits = 0;
};

/**
 * Calculator configuration.
 */
struct StageCostOptions
{
    /**
     * Fraction of device memory the planner may commit (the paper
     * sets the DP constraint conservatively, e.g. 70 of 80 GB).
     */
    double memBudgetFraction = 0.875;
    /** Charge the inter-stage P2P transfer to F_s and B_s. */
    bool includeP2p = true;
    /** Exploit range isomorphism (Sec. 5.3); off for the ablation. */
    bool useIsomorphism = true;
    /** Knapsack solver knobs. */
    RecomputeDpOptions dp;
    /**
     * Optional tri-choice keep/recompute/offload mode (see
     * OffloadOptions in recompute_dp.h). Copied into the solver's
     * RecomputeDpOptions per range; a linkBudgetPerMb of 0 is
     * derived from the range's own per-micro-batch compute time.
     * The calculator constructor rejects degenerate parameters
     * (bandwidth <= 0, overlapFraction outside [0, 1]).
     */
    OffloadOptions offload;
    /**
     * Per-stage execution-time multiplier for degraded-mode planning
     * (a straggling device runs its whole stage slower). Empty means
     * every stage runs at factor 1; stages beyond the vector default
     * to 1. The factor scales the final F_s and B_s (including P2P),
     * so planned times relate to healthy times by exactly this
     * factor. Any entry != 1 disables the isomorphism cache — costs
     * are no longer position-independent.
     */
    std::vector<double> stageTimeFactor;
    /**
     * Device memory capacity override in bytes for degraded-mode
     * planning (e.g. a reduced cap after fragmentation or partial HBM
     * loss); 0 keeps the profiled capacity.
     */
    Bytes memCapacityOverride = 0;
    /**
     * Per-stage in-flight micro-batch override. Empty keeps the
     * plain-1F1B closed form min(p - s, n); the interleaved planner
     * fills this with the exact per-chunk peaks read off the
     * schedule's device order (chunks deep in the chain keep fewer
     * activations alive than min(p - s, n) suggests). Stages beyond
     * the vector fall back to the closed form. Compatible with the
     * isomorphism cache: the cache key includes the in-flight count.
     */
    std::vector<int> inflightOverride;
    /**
     * Optional process-lifetime knapsack memo shared across
     * calculators (and across plan-server requests). Non-owning; the
     * memo must outlive every calculator built from these options.
     * Null solves every knapsack directly.
     */
    KnapsackMemo *knapsackMemo = nullptr;
    /**
     * Overlapped-recomputation bubble budget per stage, in idle
     * seconds available *per micro-batch* for hiding checkpoint
     * replay inside recv/send waits (derived from the event
     * simulator's per-device bubble time). Empty disables the
     * discount; stages beyond the vector get 0. Any entry != 0
     * disables the isomorphism cache — the same layer range then
     * costs differently on stages with different bubbles (see
     * RecomputeDpOptions::overlapBubble for the objective change).
     */
    std::vector<Seconds> overlapBubblePerMb;
};

/**
 * Memoising stage cost calculator.
 */
class StageCostCalculator
{
  public:
    /**
     * @param pm profiled model (must outlive the calculator)
     * @param p pipeline-parallel size
     * @param n micro-batches per pipeline
     * @param opts configuration
     */
    StageCostCalculator(const ProfiledModel &pm, int p, int n,
                        StageCostOptions opts = {});

    /**
     * Adaptive-recomputation cost of layers [i, j] as stage s
     * (memoised).
     */
    const StageCost &cost(int s, int i, int j);

    /**
     * Baseline cost of the same range under a uniform recomputation
     * policy (no knapsack; used for the DAPPLE baselines).
     */
    StageCost baselineCost(int s, int i, int j,
                           RecomputeBaseline mode) const;

    /**
     * Convenience overload: true = full, false = no recomputation.
     */
    StageCost
    baselineCost(int s, int i, int j, bool full_recompute) const
    {
        return baselineCost(s, i, j,
                            full_recompute ? RecomputeBaseline::Full
                                           : RecomputeBaseline::None);
    }

    /** @return knapsack executions performed (ablation metric). */
    std::size_t knapsackRuns() const { return knapsack_runs_; }

    /** @return memoised lookups that hit the isomorphism cache. */
    std::size_t cacheHits() const { return cache_hits_; }

    /** @return knapsacks answered by the shared cross-request memo. */
    std::size_t memoHits() const { return memo_hits_; }

    /** @return knapsacks the shared memo had to solve fresh. */
    std::size_t memoMisses() const { return memo_misses_; }

    /** @return distinct stage costs computed (cache misses). */
    std::size_t evaluations() const { return cache_.size(); }

    /** @return in-flight micro-batches of stage s: the override
     *  entry when StageCostOptions::inflightOverride covers s, else
     *  the 1F1B closed form min(p - s, n). */
    int inflight(int s) const;

    /** @return effective device capacity (override or profiled). */
    Bytes capacity() const;

    /** @return the execution-time multiplier of stage s. */
    double timeFactor(int s) const;

    /** @return stage s's per-micro-batch replay bubble budget. */
    Seconds overlapBubble(int s) const;

  private:
    StageCost compute(int s, int i, int j);

    /** Static + buffer + per-mb fixed memory common to all modes. */
    struct MemoryBreakdown
    {
        Bytes staticMem = 0;
        Bytes buffer = 0;
        Bytes input = 0;
        Bytes alwaysSaved = 0;
    };
    MemoryBreakdown breakdown(int i, int j) const;

    using Key = std::tuple<int, bool, bool, int, int>;
    Key cacheKey(int s, int i, int j) const;

    const ProfiledModel &pm_;
    MemoryModel mem_model_;
    int p_;
    int n_;
    StageCostOptions opts_;
    std::map<Key, StageCost> cache_;
    std::size_t knapsack_runs_ = 0;
    std::size_t cache_hits_ = 0;
    std::size_t memo_hits_ = 0;
    std::size_t memo_misses_ = 0;
    /** True while every stage-time factor is exactly 1. */
    bool neutral_factors_ = true;
    /** True while every per-stage bubble budget is exactly 0. */
    bool neutral_bubbles_ = true;
};

} // namespace adapipe

#endif // ADAPIPE_CORE_STAGE_COST_H
