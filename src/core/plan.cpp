#include "core/plan.h"

#include "util/logging.h"

namespace adapipe {

const char *
planMethodName(PlanMethod method)
{
    switch (method) {
      case PlanMethod::AdaPipe: return "AdaPipe";
      case PlanMethod::EvenPartition: return "Even Partitioning";
      case PlanMethod::DappleFull: return "DAPPLE-Full";
      case PlanMethod::DappleNon: return "DAPPLE-Non";
      case PlanMethod::DappleSelective: return "DAPPLE-Selective";
    }
    return "?";
}

const PipelinePlan &
PlanResult::value() const
{
    ADAPIPE_ASSERT(ok, "accessing plan of infeasible result: ",
                   oomReason);
    return plan;
}

} // namespace adapipe
