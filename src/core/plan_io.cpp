#include "core/plan_io.h"

#include "util/file_io.h"
#include "util/json_reader.h"
#include "util/logging.h"

namespace adapipe {

namespace {

const char *
methodKey(PlanMethod method)
{
    switch (method) {
      case PlanMethod::AdaPipe: return "adapipe";
      case PlanMethod::EvenPartition: return "even_partition";
      case PlanMethod::DappleFull: return "dapple_full";
      case PlanMethod::DappleNon: return "dapple_non";
      case PlanMethod::DappleSelective: return "dapple_selective";
    }
    return "?";
}

PlanMethod
methodFromReader(const JsonReader &field)
{
    const std::string &key = field.asString();
    if (key == "adapipe")
        return PlanMethod::AdaPipe;
    if (key == "even_partition")
        return PlanMethod::EvenPartition;
    if (key == "dapple_full")
        return PlanMethod::DappleFull;
    if (key == "dapple_non")
        return PlanMethod::DappleNon;
    if (key == "dapple_selective")
        return PlanMethod::DappleSelective;
    field.fail("unknown plan method '" + key + "'");
}

int
asIntField(const JsonReader &field)
{
    return static_cast<int>(field.asInteger());
}

PipelinePlan
planFromReader(const JsonReader &root)
{
    PipelinePlan plan;
    plan.method = methodFromReader(root.key("method"));

    const JsonReader par = root.key("parallel");
    plan.par.tensor = asIntField(par.key("tensor"));
    plan.par.pipeline = asIntField(par.key("pipeline"));
    plan.par.data = asIntField(par.key("data"));
    plan.par.sequenceParallel = par.key("sequence_parallel").asBool();
    plan.par.flashAttention = par.key("flash_attention").asBool();

    const JsonReader train = root.key("train");
    plan.train.microBatch = asIntField(train.key("micro_batch"));
    plan.train.seqLen = asIntField(train.key("seq_len"));
    plan.train.globalBatch = asIntField(train.key("global_batch"));

    plan.microBatches = asIntField(root.key("micro_batches"));

    // Plans written before the interleaved-1F1B support carry no
    // virtual_stages field; they are plain 1F1B plans.
    if (root.has("virtual_stages")) {
        plan.virtualStages = asIntField(root.key("virtual_stages"));
        if (plan.virtualStages < 1)
            root.key("virtual_stages").fail("must be >= 1");
    }

    // Plans written before overlapped recomputation carry no overlap
    // field; they are lazy-replay plans.
    if (root.has("overlap"))
        plan.overlap = root.key("overlap").asBool();

    // Plans written before host-offload support carry no offload
    // field; they are keep/recompute-only plans.
    if (root.has("offload"))
        plan.offload = root.key("offload").asBool();

    const JsonReader timing = root.key("timing");
    plan.timing.warmup = timing.key("warmup").asNumber();
    plan.timing.ending = timing.key("ending").asNumber();
    plan.timing.steadyPerMb = timing.key("steady_per_mb").asNumber();
    plan.timing.total = timing.key("total").asNumber();

    const JsonReader stages = root.key("stages");
    for (std::size_t s = 0; s < stages.size(); ++s) {
        const JsonReader stage = stages.at(s);
        StagePlan sp;
        sp.firstLayer = asIntField(stage.key("first_layer"));
        sp.lastLayer = asIntField(stage.key("last_layer"));
        sp.timeFwd = stage.key("time_fwd").asNumber();
        sp.timeBwd = stage.key("time_bwd").asNumber();
        const std::int64_t mem = stage.key("mem_peak").asInteger();
        if (mem < 0)
            stage.key("mem_peak").fail("must be non-negative");
        sp.memPeak = static_cast<Bytes>(mem);
        sp.savedUnits = asIntField(stage.key("saved_units"));
        sp.totalUnits = asIntField(stage.key("total_units"));
        const JsonReader mask = stage.key("saved_mask");
        for (std::size_t b = 0; b < mask.size(); ++b)
            sp.savedMask.push_back(mask.at(b).asBool());
        if (static_cast<int>(sp.savedMask.size()) != sp.totalUnits)
            mask.fail("length " +
                      std::to_string(sp.savedMask.size()) +
                      " does not match total_units " +
                      std::to_string(sp.totalUnits));
        // Overlap annotation: optional (absent on legacy / lazy
        // plans), each field independently defaulting to 0 but never
        // negative.
        if (stage.has("overlap_bubble")) {
            sp.overlapBubble = stage.key("overlap_bubble").asNumber();
            if (sp.overlapBubble < 0)
                stage.key("overlap_bubble").fail("must be >= 0");
        }
        if (stage.has("replay_hidden")) {
            sp.timeReplayHidden =
                stage.key("replay_hidden").asNumber();
            if (sp.timeReplayHidden < 0)
                stage.key("replay_hidden").fail("must be >= 0");
        }
        if (stage.has("replay_critical")) {
            sp.timeReplayCritical =
                stage.key("replay_critical").asNumber();
            if (sp.timeReplayCritical < 0)
                stage.key("replay_critical").fail("must be >= 0");
        }
        // Host-offload annotation: optional (absent on legacy
        // plans), validated like the saved mask / overlap fields.
        if (stage.has("offload_mask")) {
            const JsonReader omask = stage.key("offload_mask");
            for (std::size_t b = 0; b < omask.size(); ++b)
                sp.offloadMask.push_back(omask.at(b).asBool());
            if (static_cast<int>(sp.offloadMask.size()) !=
                sp.totalUnits)
                omask.fail("length " +
                           std::to_string(sp.offloadMask.size()) +
                           " does not match total_units " +
                           std::to_string(sp.totalUnits));
            for (std::size_t b = 0; b < sp.offloadMask.size(); ++b) {
                if (sp.offloadMask[b] && b < sp.savedMask.size() &&
                    sp.savedMask[b])
                    omask.fail("unit " + std::to_string(b) +
                               " is both saved and offloaded");
            }
        }
        if (stage.has("offload_bytes")) {
            const std::int64_t ob =
                stage.key("offload_bytes").asInteger();
            if (ob < 0)
                stage.key("offload_bytes").fail("must be >= 0");
            sp.offloadBytes = static_cast<Bytes>(ob);
        }
        if (stage.has("offload_fetch_us")) {
            sp.offloadFetchUs =
                stage.key("offload_fetch_us").asNumber();
            if (sp.offloadFetchUs < 0)
                stage.key("offload_fetch_us").fail("must be >= 0");
        }
        plan.stages.push_back(std::move(sp));
    }
    // One StagePlan per virtual chunk: pipeline * virtual_stages
    // entries (virtual_stages defaults to 1 for legacy plans).
    const long long expected_stages =
        static_cast<long long>(plan.par.pipeline) * plan.virtualStages;
    if (static_cast<long long>(plan.stages.size()) != expected_stages)
        stages.fail("stage count " +
                    std::to_string(plan.stages.size()) +
                    " does not match parallel.pipeline (" +
                    std::to_string(plan.par.pipeline) +
                    ") * virtual_stages (" +
                    std::to_string(plan.virtualStages) + ")");
    return plan;
}

} // namespace

JsonValue
planToJson(const PipelinePlan &plan)
{
    JsonValue root = JsonValue::object();
    root.set("method", JsonValue::string(methodKey(plan.method)));

    JsonValue par = JsonValue::object();
    par.set("tensor", JsonValue::integer(plan.par.tensor));
    par.set("pipeline", JsonValue::integer(plan.par.pipeline));
    par.set("data", JsonValue::integer(plan.par.data));
    par.set("sequence_parallel",
            JsonValue::boolean(plan.par.sequenceParallel));
    par.set("flash_attention",
            JsonValue::boolean(plan.par.flashAttention));
    root.set("parallel", std::move(par));

    JsonValue train = JsonValue::object();
    train.set("micro_batch", JsonValue::integer(plan.train.microBatch));
    train.set("seq_len", JsonValue::integer(plan.train.seqLen));
    train.set("global_batch",
              JsonValue::integer(plan.train.globalBatch));
    root.set("train", std::move(train));

    root.set("micro_batches", JsonValue::integer(plan.microBatches));
    root.set("virtual_stages", JsonValue::integer(plan.virtualStages));
    root.set("overlap", JsonValue::boolean(plan.overlap));
    root.set("offload", JsonValue::boolean(plan.offload));

    JsonValue timing = JsonValue::object();
    timing.set("warmup", JsonValue::number(plan.timing.warmup));
    timing.set("ending", JsonValue::number(plan.timing.ending));
    timing.set("steady_per_mb",
               JsonValue::number(plan.timing.steadyPerMb));
    timing.set("total", JsonValue::number(plan.timing.total));
    root.set("timing", std::move(timing));

    JsonValue stages = JsonValue::array();
    for (const StagePlan &sp : plan.stages) {
        JsonValue stage = JsonValue::object();
        stage.set("first_layer", JsonValue::integer(sp.firstLayer));
        stage.set("last_layer", JsonValue::integer(sp.lastLayer));
        stage.set("time_fwd", JsonValue::number(sp.timeFwd));
        stage.set("time_bwd", JsonValue::number(sp.timeBwd));
        stage.set("mem_peak", JsonValue::integer(
                                  static_cast<std::int64_t>(sp.memPeak)));
        stage.set("saved_units", JsonValue::integer(sp.savedUnits));
        stage.set("total_units", JsonValue::integer(sp.totalUnits));
        JsonValue mask = JsonValue::array();
        for (bool saved : sp.savedMask)
            mask.push(JsonValue::boolean(saved));
        stage.set("saved_mask", std::move(mask));
        stage.set("overlap_bubble", JsonValue::number(sp.overlapBubble));
        stage.set("replay_hidden",
                  JsonValue::number(sp.timeReplayHidden));
        stage.set("replay_critical",
                  JsonValue::number(sp.timeReplayCritical));
        // Always emitted; an empty in-memory mask writes as all
        // false so the round-trip length check holds.
        JsonValue omask = JsonValue::array();
        for (int b = 0; b < sp.totalUnits; ++b)
            omask.push(JsonValue::boolean(
                b < static_cast<int>(sp.offloadMask.size()) &&
                sp.offloadMask[b]));
        stage.set("offload_mask", std::move(omask));
        stage.set("offload_bytes",
                  JsonValue::integer(
                      static_cast<std::int64_t>(sp.offloadBytes)));
        stage.set("offload_fetch_us",
                  JsonValue::number(sp.offloadFetchUs));
        stages.push(std::move(stage));
    }
    root.set("stages", std::move(stages));
    return root;
}

std::string
planToJsonString(const PipelinePlan &plan, int indent)
{
    return planToJson(plan).dump(indent);
}

PipelinePlan
planFromJson(const JsonValue &json)
{
    ParseResult<PipelinePlan> r = tryPlanFromJson(json);
    if (!r.ok())
        ADAPIPE_FATAL(r.error());
    return std::move(r).value();
}

PipelinePlan
planFromJsonString(const std::string &text)
{
    ParseResult<PipelinePlan> r = tryPlanFromJsonString(text);
    if (!r.ok())
        ADAPIPE_FATAL(r.error());
    return std::move(r).value();
}

ParseResult<PipelinePlan>
tryPlanFromJson(const JsonValue &json)
{
    return readJson<PipelinePlan>(json, "plan", planFromReader);
}

ParseResult<PipelinePlan>
tryPlanFromJsonString(const std::string &text)
{
    ParseResult<JsonValue> doc = JsonValue::tryParse(text);
    if (!doc.ok())
        return ParseResult<PipelinePlan>::failure(doc.error());
    return tryPlanFromJson(doc.value());
}

ParseResult<PipelinePlan>
loadPlanFile(const std::string &path)
{
    ParseResult<std::string> text = readTextFile(path);
    if (!text.ok())
        return ParseResult<PipelinePlan>::failure(text.error());
    ParseResult<PipelinePlan> plan =
        tryPlanFromJsonString(text.value());
    if (!plan.ok())
        return ParseResult<PipelinePlan>::failure(path + ": " +
                                                  plan.error());
    return plan;
}

} // namespace adapipe
