#include "core/plan_io.h"

#include "util/logging.h"

namespace adapipe {

namespace {

const char *
methodKey(PlanMethod method)
{
    switch (method) {
      case PlanMethod::AdaPipe: return "adapipe";
      case PlanMethod::EvenPartition: return "even_partition";
      case PlanMethod::DappleFull: return "dapple_full";
      case PlanMethod::DappleNon: return "dapple_non";
      case PlanMethod::DappleSelective: return "dapple_selective";
    }
    return "?";
}

PlanMethod
methodFromKey(const std::string &key)
{
    if (key == "adapipe")
        return PlanMethod::AdaPipe;
    if (key == "even_partition")
        return PlanMethod::EvenPartition;
    if (key == "dapple_full")
        return PlanMethod::DappleFull;
    if (key == "dapple_non")
        return PlanMethod::DappleNon;
    if (key == "dapple_selective")
        return PlanMethod::DappleSelective;
    ADAPIPE_FATAL("unknown plan method '", key, "'");
}

} // namespace

JsonValue
planToJson(const PipelinePlan &plan)
{
    JsonValue root = JsonValue::object();
    root.set("method", JsonValue::string(methodKey(plan.method)));

    JsonValue par = JsonValue::object();
    par.set("tensor", JsonValue::integer(plan.par.tensor));
    par.set("pipeline", JsonValue::integer(plan.par.pipeline));
    par.set("data", JsonValue::integer(plan.par.data));
    par.set("sequence_parallel",
            JsonValue::boolean(plan.par.sequenceParallel));
    par.set("flash_attention",
            JsonValue::boolean(plan.par.flashAttention));
    root.set("parallel", std::move(par));

    JsonValue train = JsonValue::object();
    train.set("micro_batch", JsonValue::integer(plan.train.microBatch));
    train.set("seq_len", JsonValue::integer(plan.train.seqLen));
    train.set("global_batch",
              JsonValue::integer(plan.train.globalBatch));
    root.set("train", std::move(train));

    root.set("micro_batches", JsonValue::integer(plan.microBatches));

    JsonValue timing = JsonValue::object();
    timing.set("warmup", JsonValue::number(plan.timing.warmup));
    timing.set("ending", JsonValue::number(plan.timing.ending));
    timing.set("steady_per_mb",
               JsonValue::number(plan.timing.steadyPerMb));
    timing.set("total", JsonValue::number(plan.timing.total));
    root.set("timing", std::move(timing));

    JsonValue stages = JsonValue::array();
    for (const StagePlan &sp : plan.stages) {
        JsonValue stage = JsonValue::object();
        stage.set("first_layer", JsonValue::integer(sp.firstLayer));
        stage.set("last_layer", JsonValue::integer(sp.lastLayer));
        stage.set("time_fwd", JsonValue::number(sp.timeFwd));
        stage.set("time_bwd", JsonValue::number(sp.timeBwd));
        stage.set("mem_peak", JsonValue::integer(
                                  static_cast<std::int64_t>(sp.memPeak)));
        stage.set("saved_units", JsonValue::integer(sp.savedUnits));
        stage.set("total_units", JsonValue::integer(sp.totalUnits));
        JsonValue mask = JsonValue::array();
        for (bool saved : sp.savedMask)
            mask.push(JsonValue::boolean(saved));
        stage.set("saved_mask", std::move(mask));
        stages.push(std::move(stage));
    }
    root.set("stages", std::move(stages));
    return root;
}

std::string
planToJsonString(const PipelinePlan &plan, int indent)
{
    return planToJson(plan).dump(indent);
}

PipelinePlan
planFromJson(const JsonValue &json)
{
    PipelinePlan plan;
    plan.method = methodFromKey(json.at("method").asString());

    const JsonValue &par = json.at("parallel");
    plan.par.tensor = static_cast<int>(par.at("tensor").asInteger());
    plan.par.pipeline =
        static_cast<int>(par.at("pipeline").asInteger());
    plan.par.data = static_cast<int>(par.at("data").asInteger());
    plan.par.sequenceParallel =
        par.at("sequence_parallel").asBool();
    plan.par.flashAttention = par.at("flash_attention").asBool();

    const JsonValue &train = json.at("train");
    plan.train.microBatch =
        static_cast<int>(train.at("micro_batch").asInteger());
    plan.train.seqLen =
        static_cast<int>(train.at("seq_len").asInteger());
    plan.train.globalBatch =
        static_cast<int>(train.at("global_batch").asInteger());

    plan.microBatches =
        static_cast<int>(json.at("micro_batches").asInteger());

    const JsonValue &timing = json.at("timing");
    plan.timing.warmup = timing.at("warmup").asNumber();
    plan.timing.ending = timing.at("ending").asNumber();
    plan.timing.steadyPerMb = timing.at("steady_per_mb").asNumber();
    plan.timing.total = timing.at("total").asNumber();

    for (const JsonValue &stage : json.at("stages").elements()) {
        StagePlan sp;
        sp.firstLayer =
            static_cast<int>(stage.at("first_layer").asInteger());
        sp.lastLayer =
            static_cast<int>(stage.at("last_layer").asInteger());
        sp.timeFwd = stage.at("time_fwd").asNumber();
        sp.timeBwd = stage.at("time_bwd").asNumber();
        sp.memPeak =
            static_cast<Bytes>(stage.at("mem_peak").asInteger());
        sp.savedUnits =
            static_cast<int>(stage.at("saved_units").asInteger());
        sp.totalUnits =
            static_cast<int>(stage.at("total_units").asInteger());
        for (const JsonValue &bit : stage.at("saved_mask").elements())
            sp.savedMask.push_back(bit.asBool());
        ADAPIPE_ASSERT(static_cast<int>(sp.savedMask.size()) ==
                           sp.totalUnits,
                       "saved_mask length does not match total_units");
        plan.stages.push_back(std::move(sp));
    }
    ADAPIPE_ASSERT(static_cast<int>(plan.stages.size()) ==
                       plan.par.pipeline,
                   "stage count does not match pipeline size");
    return plan;
}

PipelinePlan
planFromJsonString(const std::string &text)
{
    return planFromJson(JsonValue::parse(text));
}

} // namespace adapipe
