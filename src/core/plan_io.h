/**
 * @file
 * Plan serialization: the interface between the search engine and an
 * execution engine (the paper's engines consume exactly this
 * information — per-stage layer ranges and per-unit save/recompute
 * decisions).
 */

#ifndef ADAPIPE_CORE_PLAN_IO_H
#define ADAPIPE_CORE_PLAN_IO_H

#include <string>

#include "core/plan.h"
#include "util/json.h"

namespace adapipe {

/** Serialize @p plan to a JSON value. */
JsonValue planToJson(const PipelinePlan &plan);

/** Serialize @p plan to a JSON string. @param indent pretty-print */
std::string planToJsonString(const PipelinePlan &plan, int indent = 2);

/**
 * Parse a plan back from JSON produced by planToJson. ADAPIPE_FATAL
 * on schema violations.
 */
PipelinePlan planFromJson(const JsonValue &json);

/** Parse a plan from a JSON string. */
PipelinePlan planFromJsonString(const std::string &text);

} // namespace adapipe

#endif // ADAPIPE_CORE_PLAN_IO_H
