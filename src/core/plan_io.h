/**
 * @file
 * Plan serialization: the interface between the search engine and an
 * execution engine (the paper's engines consume exactly this
 * information — per-stage layer ranges and per-unit save/recompute
 * decisions).
 *
 * Output is byte-stable: JsonValue preserves insertion order and this
 * module always emits keys in one fixed order (method, parallel,
 * train, micro_batches, virtual_stages, timing, stages), so the same
 * plan always dumps to the same bytes — fixtures diff cleanly and
 * fingerprints (util/canonical_json.h, which additionally key-sorts)
 * never move because of serialization. Extend the emitters
 * append-only; reordering keys invalidates golden fixtures.
 */

#ifndef ADAPIPE_CORE_PLAN_IO_H
#define ADAPIPE_CORE_PLAN_IO_H

#include <string>

#include "core/plan.h"
#include "util/json.h"
#include "util/parse_result.h"

namespace adapipe {

/** Serialize @p plan to a JSON value. */
JsonValue planToJson(const PipelinePlan &plan);

/** Serialize @p plan to a JSON string. @param indent pretty-print */
std::string planToJsonString(const PipelinePlan &plan, int indent = 2);

/**
 * Parse a plan back from JSON produced by planToJson. ADAPIPE_FATAL
 * on schema violations; use tryPlanFromJson for untrusted input.
 */
PipelinePlan planFromJson(const JsonValue &json);

/** Parse a plan from a JSON string (fatal on violations). */
PipelinePlan planFromJsonString(const std::string &text);

/**
 * Recoverable plan parse: schema violations are reported with the
 * offending field's dotted path (e.g. "plan.stages[2].mem_peak")
 * instead of terminating the process.
 */
ParseResult<PipelinePlan> tryPlanFromJson(const JsonValue &json);

/** Recoverable parse from a JSON string (covers syntax errors too). */
ParseResult<PipelinePlan> tryPlanFromJsonString(const std::string &text);

/**
 * Load a plan from a JSON file; missing files, malformed JSON and
 * schema violations all come back as errors naming the path/field.
 */
ParseResult<PipelinePlan> loadPlanFile(const std::string &path);

} // namespace adapipe

#endif // ADAPIPE_CORE_PLAN_IO_H
