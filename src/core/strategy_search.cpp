#include "core/strategy_search.h"

#include <algorithm>
#include <limits>
#include <thread>

#include "util/logging.h"

namespace adapipe {

Seconds
StrategyResult::iterationTime() const
{
    if (!result.ok)
        return std::numeric_limits<double>::infinity();
    return result.plan.timing.total;
}

std::vector<ParallelConfig>
enumerateStrategies(const ModelConfig &model, const TrainConfig &train,
                    const ClusterSpec &cluster,
                    const StrategySearchOptions &opts)
{
    model.validate();
    cluster.validate();
    const int devices = cluster.totalDevices();

    std::vector<ParallelConfig> strategies;
    for (int t = 1; t <= opts.maxTensor; t *= 2) {
        if (t > cluster.devicesPerNode)
            break;
        if (model.numHeads % t != 0 || model.numKvHeads % t != 0)
            continue;
        for (int p = opts.minPipeline; t * p <= devices; p *= 2) {
            if (devices % (t * p) != 0)
                continue;
            if (p > model.numBlocks)
                break;
            const int d = devices / (t * p);
            if (train.globalBatch % (train.microBatch * d) != 0)
                continue;
            const int n =
                train.globalBatch / (train.microBatch * d);
            if (opts.requireFullPipeline && n < p)
                continue;

            ParallelConfig par;
            par.tensor = t;
            par.pipeline = p;
            par.data = d;
            strategies.push_back(par);
        }
    }
    return strategies;
}

std::vector<StrategyResult>
sweepStrategies(const ModelConfig &model, const TrainConfig &train,
                const ClusterSpec &cluster, PlanMethod method,
                const StrategySearchOptions &opts)
{
    const std::vector<ParallelConfig> strategies =
        enumerateStrategies(model, train, cluster, opts);
    std::vector<StrategyResult> results(strategies.size());

    auto evaluate = [&](std::size_t i) {
        const ProfiledModel pm =
            buildProfiledModel(model, train, strategies[i], cluster);
        results[i].par = strategies[i];
        results[i].result = makePlan(pm, method, opts.stageCost);
    };

    unsigned workers = opts.threads;
    if (workers == 0)
        workers = std::max(1u, std::thread::hardware_concurrency());
    if (workers <= 1 || strategies.size() <= 1) {
        for (std::size_t i = 0; i < strategies.size(); ++i)
            evaluate(i);
        return results;
    }

    // Static interleaved assignment: strategies are independent and
    // results are pre-sized, so no synchronisation is needed.
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w]() {
            for (std::size_t i = w; i < strategies.size();
                 i += workers)
                evaluate(i);
        });
    }
    for (auto &t : pool)
        t.join();
    return results;
}

std::optional<StrategyResult>
bestStrategy(const ModelConfig &model, const TrainConfig &train,
             const ClusterSpec &cluster, PlanMethod method,
             const StrategySearchOptions &opts)
{
    std::optional<StrategyResult> best;
    for (auto &r : sweepStrategies(model, train, cluster, method, opts)) {
        if (!r.result.ok)
            continue;
        if (!best || r.iterationTime() < best->iterationTime())
            best = std::move(r);
    }
    return best;
}

} // namespace adapipe
