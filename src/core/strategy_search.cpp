#include "core/strategy_search.h"

#include <algorithm>
#include <limits>
#include <thread>

#include "obs/macros.h"
#include "util/logging.h"

namespace adapipe {

Seconds
StrategyResult::iterationTime() const
{
    if (!result.ok)
        return std::numeric_limits<double>::infinity();
    return result.plan.timing.total;
}

std::vector<ParallelConfig>
enumerateStrategies(const ModelConfig &model, const TrainConfig &train,
                    const ClusterSpec &cluster,
                    const StrategySearchOptions &opts)
{
    model.validate();
    cluster.validate();
    const int devices = cluster.totalDevices();

    std::vector<ParallelConfig> strategies;
    std::int64_t considered = 0;
    std::int64_t pruned = 0;
    for (int t = 1; t <= opts.maxTensor; t *= 2) {
        if (t > cluster.devicesPerNode)
            break;
        if (model.numHeads % t != 0 || model.numKvHeads % t != 0)
            continue;
        for (int p = opts.minPipeline; t * p <= devices; p *= 2) {
            ++considered;
            if (devices % (t * p) != 0) {
                ++pruned;
                continue;
            }
            if (p > model.numBlocks)
                break;
            const int d = devices / (t * p);
            if (train.globalBatch % (train.microBatch * d) != 0) {
                ++pruned;
                continue;
            }
            const int n =
                train.globalBatch / (train.microBatch * d);
            if (opts.requireFullPipeline && n < p) {
                ++pruned;
                continue;
            }

            ParallelConfig par;
            par.tensor = t;
            par.pipeline = p;
            par.data = d;
            strategies.push_back(par);
        }
    }
    ADAPIPE_OBS_COUNT("strategy_search.strategies_considered",
                      considered);
    ADAPIPE_OBS_COUNT("strategy_search.strategies_pruned", pruned);
    ADAPIPE_OBS_COUNT("strategy_search.strategies_emitted",
                      strategies.size());
    return strategies;
}

std::vector<StrategyResult>
sweepStrategies(const ModelConfig &model, const TrainConfig &train,
                const ClusterSpec &cluster, PlanMethod method,
                const StrategySearchOptions &opts)
{
    ADAPIPE_OBS_SPAN(obs_span, "strategy_search.sweep");
    const std::vector<ParallelConfig> strategies =
        enumerateStrategies(model, train, cluster, opts);
    std::vector<StrategyResult> results(strategies.size());

    auto evaluate = [&](std::size_t i) {
        const ProfiledModel pm =
            buildProfiledModel(model, train, strategies[i], cluster);
        results[i].par = strategies[i];
        results[i].result = makePlan(pm, method, opts.stageCost);
    };

    auto tally = [&]() {
        ADAPIPE_OBS_COUNT("strategy_search.strategies_planned",
                          results.size());
        std::int64_t infeasible = 0;
        for (const StrategyResult &r : results) {
            if (!r.result.ok)
                ++infeasible;
        }
        ADAPIPE_OBS_COUNT("strategy_search.plans_infeasible",
                          infeasible);
    };

    unsigned workers = opts.threads;
    if (workers == 0)
        workers = std::max(1u, std::thread::hardware_concurrency());
    if (workers <= 1 || strategies.size() <= 1) {
        for (std::size_t i = 0; i < strategies.size(); ++i)
            evaluate(i);
        tally();
        return results;
    }

    // Static interleaved assignment: strategies are independent and
    // results are pre-sized, so no synchronisation is needed. Workers
    // record metrics into private registries that merge into the
    // caller's registry after join — the hot path stays lock-free and
    // merged counters are identical for any worker count.
#if ADAPIPE_OBS_ENABLED
    obs::Registry *parent = obs::current();
    std::vector<obs::Registry> worker_metrics(
        parent ? workers : 0u);
#endif
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w]() {
#if ADAPIPE_OBS_ENABLED
            obs::ScopedRegistry scope(
                parent ? &worker_metrics[w] : nullptr);
#endif
            for (std::size_t i = w; i < strategies.size();
                 i += workers)
                evaluate(i);
        });
    }
    for (auto &t : pool)
        t.join();
#if ADAPIPE_OBS_ENABLED
    if (parent) {
        for (const obs::Registry &m : worker_metrics)
            parent->merge(m);
    }
#endif
    tally();
    return results;
}

std::optional<StrategyResult>
bestStrategy(const ModelConfig &model, const TrainConfig &train,
             const ClusterSpec &cluster, PlanMethod method,
             const StrategySearchOptions &opts)
{
    // Results keep enumeration (t-major) order independent of
    // opts.threads, and the strict < keeps the earliest-enumerated
    // strategy on ties — bestStrategy is deterministic for any
    // worker count (tested by strategy_determinism_test).
    std::optional<StrategyResult> best;
    for (auto &r : sweepStrategies(model, train, cluster, method, opts)) {
        if (!r.result.ok)
            continue;
        if (!best || r.iterationTime() < best->iterationTime())
            best = std::move(r);
    }
    return best;
}

} // namespace adapipe
