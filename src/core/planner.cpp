#include "core/planner.h"

#include <sstream>

#include "core/cost_model.h"
#include "core/partition_dp.h"
#include "obs/macros.h"
#include "util/logging.h"
#include "util/units.h"

namespace adapipe {

namespace {

/** Assemble StagePlan entries for the chosen ranges. */
PipelinePlan
assemblePlan(const ProfiledModel &pm, PlanMethod method,
             StageCostCalculator &calc,
             const std::vector<std::pair<int, int>> &ranges, int n,
             std::optional<RecomputeBaseline> baseline)
{
    PipelinePlan plan;
    plan.method = method;
    plan.par = pm.par;
    plan.train = pm.train;
    plan.microBatches = n;

    std::vector<StageTimes> times;
    const int p = static_cast<int>(ranges.size());
    for (int s = 0; s < p; ++s) {
        const auto [i, j] = ranges[s];
        const StageCost c = baseline
                                ? calc.baselineCost(s, i, j, *baseline)
                                : calc.cost(s, i, j);
        StagePlan sp;
        sp.firstLayer = i;
        sp.lastLayer = j;
        sp.timeFwd = c.fwd;
        sp.timeBwd = c.bwd;
        sp.memPeak = c.memPeak;
        sp.savedUnits = c.recompute.savedUnits;
        sp.totalUnits = c.totalUnits;
        sp.savedMask = c.recompute.saved;
        sp.overlapBubble = calc.overlapBubble(s);
        sp.timeReplayHidden = c.replayHidden;
        sp.timeReplayCritical = c.replayCritical;
        sp.offloadMask = c.recompute.offloaded;
        sp.offloadBytes = c.offloadBytes;
        sp.offloadFetchUs = c.offloadExposed * 1e6;
        if (c.offloadedUnits > 0)
            plan.offload = true;
        plan.stages.push_back(std::move(sp));
        times.push_back({c.fwd, c.bwd});
    }
    plan.timing = evaluate1F1B(times, n);
    return plan;
}

/** Diagnose the first infeasible stage of a fixed partition. */
std::string
diagnoseOom(StageCostCalculator &calc,
            const std::vector<std::pair<int, int>> &ranges,
            std::optional<RecomputeBaseline> baseline)
{
    const int p = static_cast<int>(ranges.size());
    for (int s = 0; s < p; ++s) {
        const auto [i, j] = ranges[s];
        const StageCost c = baseline
                                ? calc.baselineCost(s, i, j, *baseline)
                                : calc.cost(s, i, j);
        if (!c.feasible) {
            std::ostringstream oss;
            oss << "stage " << s << " (layers " << i << "-" << j
                << ") needs " << formatBytes(c.memPeak)
                << " of " << formatBytes(calc.capacity());
            return oss.str();
        }
    }
    return "no memory-feasible partition";
}

} // namespace

PlanResult
makePlan(const ProfiledModel &pm, PlanMethod method,
         StageCostOptions opts)
{
    ADAPIPE_OBS_SPAN(obs_span, "planner.make_plan");
    ADAPIPE_OBS_COUNT("planner.plans", 1);
    const int p = pm.par.pipeline;
    const int L = pm.numLayers();
    ADAPIPE_ASSERT(p >= 1 && p <= L, "pipeline size ", p,
                   " out of range for ", L, " layers");
    const int n = pm.train.microBatches(pm.par);

    StageCostCalculator calc(pm, p, n, opts);
    PlanResult result;

#if ADAPIPE_OBS_ENABLED
    // The calculator tracks hits/misses itself (its lookup path is
    // too hot for per-call instrumentation); flush the totals on
    // every exit from this function.
    struct FlushStageCostStats
    {
        const StageCostCalculator &calc;
        ~FlushStageCostStats()
        {
            ADAPIPE_OBS_COUNT("stage_cost.cache_hits",
                              calc.cacheHits());
            ADAPIPE_OBS_COUNT("stage_cost.evaluations",
                              calc.evaluations());
            ADAPIPE_OBS_COUNT("stage_cost.memo_hits",
                              calc.memoHits());
            ADAPIPE_OBS_COUNT("stage_cost.memo_misses",
                              calc.memoMisses());
        }
    } flush_stats{calc};
#endif

    if (method == PlanMethod::AdaPipe) {
        const PartitionDpResult dp =
            solveAdaptivePartition(calc, L, p, n);
        if (!dp.feasible) {
            ADAPIPE_OBS_COUNT("planner.infeasible", 1);
            result.oomReason = "no memory-feasible partition";
            return result;
        }
        result.ok = true;
        result.plan =
            assemblePlan(pm, method, calc, dp.ranges, n, {});
        return result;
    }

    // evenPartition() gives every stage at least one attention
    // block, so it cannot express p > blocks (the adaptive DP can:
    // it emits block-less pass-through stages). Fail the plan
    // gracefully instead of tripping the partitioner's assert.
    const int blocks = (L - 2) / 2;
    if (blocks < p) {
        ADAPIPE_OBS_COUNT("planner.infeasible", 1);
        std::ostringstream oss;
        oss << "even partition cannot split " << blocks
            << " attention blocks across " << p
            << " stages (needs at least one block per stage)";
        result.oomReason = oss.str();
        return result;
    }
    const std::vector<std::pair<int, int>> ranges =
        evenPartition(L, p);
    std::optional<RecomputeBaseline> baseline;
    if (method == PlanMethod::DappleFull)
        baseline = RecomputeBaseline::Full;
    else if (method == PlanMethod::DappleNon)
        baseline = RecomputeBaseline::None;
    else if (method == PlanMethod::DappleSelective)
        baseline = RecomputeBaseline::Selective;

    const PartitionDpResult fixed =
        evaluateFixedPartition(calc, ranges, n, baseline);
    if (!fixed.feasible) {
        ADAPIPE_OBS_COUNT("planner.infeasible", 1);
        result.oomReason = diagnoseOom(calc, ranges, baseline);
        return result;
    }
    result.ok = true;
    result.plan = assemblePlan(pm, method, calc, ranges, n, baseline);
    return result;
}

} // namespace adapipe
