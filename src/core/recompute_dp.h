/**
 * @file
 * Adaptive recomputation: the knapsack DP of Sec. 4.3.
 *
 * Given the computation units of one stage and a per-micro-batch
 * memory budget for optionally saved activations, choose the subset
 * of units to save so that the forward time saved from backward
 * recomputation, sum of Time_f(U) over saved U, is maximal
 * (equations (1)-(2) of the paper). Always-saved units are outside
 * the knapsack: their memory is charged to the caller's budget
 * beforehand.
 *
 * The paper accelerates the DP by dividing all memory costs and the
 * limit by their GCD; we additionally clamp the number of DP buckets
 * with a conservative quantisation (costs rounded up, budget rounded
 * down) so adversarially odd byte counts cannot blow up the table.
 */

#ifndef ADAPIPE_CORE_RECOMPUTE_DP_H
#define ADAPIPE_CORE_RECOMPUTE_DP_H

#include <vector>

#include "hw/profiler.h"
#include "util/units.h"

namespace adapipe {

/**
 * Result of the recomputation knapsack for one stage.
 */
struct RecomputePlanResult
{
    /** Per-unit decision; always-saved units are reported true. */
    std::vector<bool> saved;
    /** Sum of Time_f over optionally saved units (knapsack value). */
    Seconds savedFwdTime = 0;
    /** Bytes of optionally saved activations per micro-batch. */
    Bytes savedBytes = 0;
    /** Count of saved units (incl. always-saved), Table 4's metric. */
    int savedUnits = 0;
    /**
     * Replay time per micro-batch expected to hide inside the
     * stage's bubble budget (RecomputeDpOptions::overlapBubble);
     * 0 without a budget.
     */
    Seconds hiddenReplayTime = 0;
    /**
     * Replay time per micro-batch left on the backward critical path
     * after the bubble discount: max(0, unsaved replay - bubble).
     * Without a budget this is simply the unsaved replay time.
     */
    Seconds criticalReplayTime = 0;
};

/**
 * Tuning knobs of the knapsack solver.
 */
struct RecomputeDpOptions
{
    /**
     * Maximum number of DP weight buckets. The effective granularity
     * is max(gcd of costs, ceil(budget / maxBuckets)).
     */
    int maxBuckets = 1 << 14;
    /**
     * Disable the GCD/quantisation optimisation (used by the
     * ablation bench); falls back to 1-byte granularity capped by
     * maxBuckets anyway to stay finite.
     */
    bool useGcd = true;
    /**
     * Overlapped-recomputation discount: idle (bubble) seconds per
     * micro-batch available to this stage for hiding checkpoint
     * replay off the backward critical path (Chen et al.). With a
     * budget > 0 the objective changes from maximising saved forward
     * time to lexicographically minimising (critical replay time,
     * saved bytes): once the unsaved replay fits the bubble, saving
     * more units only wastes memory, so the solver picks the
     * *cheapest* save set whose leftover replay hides — a genuinely
     * different plan regime from the undiscounted knapsack.
     */
    Seconds overlapBubble = 0;
};

/**
 * Solve the knapsack over @p units.
 *
 * @param units computation units of the stage, execution order
 * @param budget_per_mb bytes available per micro-batch for the
 *        optionally saved activations (already excludes static
 *        memory, the recompute buffer, stage inputs and always-saved
 *        units); negative budgets are treated as zero
 * @param opts solver knobs
 * @return the optimal save set under the budget; with budget 0 the
 *         result saves only the always-saved units
 */
RecomputePlanResult
solveRecomputeKnapsack(const std::vector<UnitProfile> &units,
                       std::int64_t budget_per_mb,
                       const RecomputeDpOptions &opts = {});

/**
 * Brute-force oracle (exponential) for testing the DP on small unit
 * sets; panics if more than ~24 optional units are present. With
 * @p overlap_bubble > 0 it optimises the discounted objective
 * (lexicographically minimal critical replay, then saved bytes,
 * then maximal saved forward time), matching the DP's bucket
 * solution up to the DP's weight granularity.
 */
RecomputePlanResult
bruteForceRecompute(const std::vector<UnitProfile> &units,
                    std::int64_t budget_per_mb,
                    Seconds overlap_bubble = 0);

} // namespace adapipe

#endif // ADAPIPE_CORE_RECOMPUTE_DP_H
