/**
 * @file
 * Adaptive recomputation: the knapsack DP of Sec. 4.3.
 *
 * Given the computation units of one stage and a per-micro-batch
 * memory budget for optionally saved activations, choose the subset
 * of units to save so that the forward time saved from backward
 * recomputation, sum of Time_f(U) over saved U, is maximal
 * (equations (1)-(2) of the paper). Always-saved units are outside
 * the knapsack: their memory is charged to the caller's budget
 * beforehand.
 *
 * The paper accelerates the DP by dividing all memory costs and the
 * limit by their GCD; we additionally clamp the number of DP buckets
 * with a conservative quantisation (costs rounded up, budget rounded
 * down) so adversarially odd byte counts cannot blow up the table.
 */

#ifndef ADAPIPE_CORE_RECOMPUTE_DP_H
#define ADAPIPE_CORE_RECOMPUTE_DP_H

#include <algorithm>
#include <string>
#include <vector>

#include "hw/profiler.h"
#include "util/units.h"

namespace adapipe {

/**
 * Activation offloading (SuperNeurons / MPress / PipeOffload, Sec. 8
 * related work): a unit that is not saved can be *offloaded* to host
 * memory instead of recomputed, paying two host-link transfers per
 * micro-batch instead of the forward recompute. Offload turns the
 * knapsack into a tri-choice DP (keep / recompute / offload): each
 * offloaded unit occupies the shared host link for linkTime()
 * seconds, and concurrent evictions on the same stage are charged
 * against @ref linkBudgetPerMb — the PCIe contention model — while
 * only the non-overlapped share (evictCost()) lands on the backward
 * critical path.
 */
struct OffloadOptions
{
    bool enabled = false;
    /** Effective host-link bandwidth, bytes/s (PCIe 4.0 x16 ~25e9). */
    double bandwidth = 25.0e9;
    /**
     * Fraction of the transfer hidden under compute. Values outside
     * [0, 1] are clamped (see clampedOverlapFraction()); parse paths
     * reject them with a named diagnostic before they get here.
     */
    double overlapFraction = 0.5;
    /**
     * Host-link seconds available per micro-batch for this stage's
     * evict+fetch traffic (the shared-link contention budget). 0 lets
     * the stage cost calculator derive it from the stage's own
     * per-micro-batch compute time (the link can stream while the
     * stage computes, no longer).
     */
    Seconds linkBudgetPerMb = 0;
    /** DP bucket cap of the link-budget dimension. */
    int maxLinkBuckets = 96;
    /**
     * DP bucket cap of the memory dimension in tri-choice mode (a
     * second, tighter cap under RecomputeDpOptions::maxBuckets: the
     * tri-choice table is 2-3 dimensional, so the 1D cap would blow
     * it up).
     */
    int maxOffloadMemBuckets = 384;
    /**
     * DP bucket cap of the hidden-replay dimension (used only when
     * an overlap bubble and offload are both active); at most 63.
     */
    int maxHiddenBuckets = 24;

    /** @return overlapFraction clamped into [0, 1]. */
    double
    clampedOverlapFraction() const
    {
        return std::min(1.0, std::max(0.0, overlapFraction));
    }

    /** @return link occupancy of evict + fetch of @p bytes. */
    Seconds
    linkTime(Bytes bytes) const
    {
        return 2.0 * static_cast<double>(bytes) / bandwidth;
    }

    /**
     * @return per-micro-batch time to evict + fetch @p bytes that is
     * NOT hidden under compute — the share charged to the backward
     * critical path. The overlap fraction is clamped to [0, 1] so a
     * degenerate configuration can never produce a negative penalty.
     */
    Seconds
    evictCost(Bytes bytes) const
    {
        return linkTime(bytes) * (1.0 - clampedOverlapFraction());
    }

    /**
     * Degenerate-parameter check used by every option-parse path.
     * @return empty when usable; otherwise a diagnostic naming the
     * offending knob (bandwidth <= 0 divides the cost model by zero,
     * overlapFraction outside [0, 1] would turn penalties negative).
     */
    std::string validate() const;
};

/**
 * Result of the recomputation knapsack for one stage.
 */
struct RecomputePlanResult
{
    /** Per-unit decision; always-saved units are reported true. */
    std::vector<bool> saved;
    /**
     * Per-unit offload decision, disjoint from @ref saved: an
     * offloaded unit is neither saved on device nor recomputed — its
     * activation is staged to host after forward and fetched back
     * before backward. Empty when offload is disabled.
     */
    std::vector<bool> offloaded;
    /** Sum of Time_f over optionally saved units (knapsack value). */
    Seconds savedFwdTime = 0;
    /** Bytes of optionally saved activations per micro-batch. */
    Bytes savedBytes = 0;
    /** Count of saved units (incl. always-saved), Table 4's metric. */
    int savedUnits = 0;
    /**
     * Replay time per micro-batch expected to hide inside the
     * stage's bubble budget (RecomputeDpOptions::overlapBubble);
     * 0 without a budget.
     */
    Seconds hiddenReplayTime = 0;
    /**
     * Replay time per micro-batch left on the backward critical path
     * after the bubble discount: max(0, unsaved replay - bubble).
     * Without a budget this is simply the unsaved replay time.
     * Offloaded units have no replay: they contribute to
     * @ref offloadExposedTime instead, never here.
     */
    Seconds criticalReplayTime = 0;
    /** Bytes per micro-batch staged to host (offloaded units). */
    Bytes offloadBytes = 0;
    /** Count of offloaded units. */
    int offloadedUnits = 0;
    /** Host-link occupancy per micro-batch (evict + fetch). */
    Seconds offloadLinkTime = 0;
    /**
     * Non-overlapped offload transfer time per micro-batch on the
     * backward critical path (reported disjointly from the replay
     * fields: an offloaded unit hides no replay and consumes no
     * bubble budget).
     */
    Seconds offloadExposedTime = 0;
};

/**
 * Tuning knobs of the knapsack solver.
 */
struct RecomputeDpOptions
{
    /**
     * Maximum number of DP weight buckets. The effective granularity
     * is max(gcd of costs, ceil(budget / maxBuckets)).
     */
    int maxBuckets = 1 << 14;
    /**
     * Disable the GCD/quantisation optimisation (used by the
     * ablation bench); falls back to 1-byte granularity capped by
     * maxBuckets anyway to stay finite.
     */
    bool useGcd = true;
    /**
     * Overlapped-recomputation discount: idle (bubble) seconds per
     * micro-batch available to this stage for hiding checkpoint
     * replay off the backward critical path (Chen et al.). With a
     * budget > 0 the objective changes from maximising saved forward
     * time to lexicographically minimising (critical replay time,
     * saved bytes): once the unsaved replay fits the bubble, saving
     * more units only wastes memory, so the solver picks the
     * *cheapest* save set whose leftover replay hides — a genuinely
     * different plan regime from the undiscounted knapsack.
     */
    Seconds overlapBubble = 0;
    /**
     * Optional third per-unit choice: offload to host instead of
     * recomputing (tri-choice DP with a shared link budget). Lives
     * here, not only in StageCostOptions, so the cross-request
     * KnapsackMemo key covers every knob the solver reads.
     */
    OffloadOptions offload;
};

/**
 * Solve the knapsack over @p units.
 *
 * @param units computation units of the stage, execution order
 * @param budget_per_mb bytes available per micro-batch for the
 *        optionally saved activations (already excludes static
 *        memory, the recompute buffer, stage inputs and always-saved
 *        units); negative budgets are treated as zero
 * @param opts solver knobs
 * @return the optimal save set under the budget; with budget 0 the
 *         result saves only the always-saved units
 */
RecomputePlanResult
solveRecomputeKnapsack(const std::vector<UnitProfile> &units,
                       std::int64_t budget_per_mb,
                       const RecomputeDpOptions &opts = {});

/**
 * Brute-force oracle (exponential) for testing the DP on small unit
 * sets; panics if more than ~24 optional units are present. With
 * @p overlap_bubble > 0 it optimises the discounted objective
 * (lexicographically minimal critical replay, then saved bytes,
 * then maximal saved forward time), matching the DP's bucket
 * solution up to the DP's weight granularity.
 */
RecomputePlanResult
bruteForceRecompute(const std::vector<UnitProfile> &units,
                    std::int64_t budget_per_mb,
                    Seconds overlap_bubble = 0);

/**
 * Brute-force tri-choice oracle (exponential, 3^k) for testing the
 * offload-extended DP on small unit sets; panics above ~14 optional
 * units. Enumerates every keep/recompute/offload assignment under
 * the memory and link budgets and minimises the exposed penalty
 * C = criticalReplay + offloadExposed, tie-broken lexicographically
 * by (saved bytes, link occupancy, -saved forward time). Matches the
 * DP exactly on instances whose memory costs and link times are
 * exact multiples of the DP's bucket granularities.
 */
RecomputePlanResult
bruteForceTriChoice(const std::vector<UnitProfile> &units,
                    std::int64_t budget_per_mb,
                    const RecomputeDpOptions &opts);

} // namespace adapipe

#endif // ADAPIPE_CORE_RECOMPUTE_DP_H
