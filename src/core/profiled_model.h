/**
 * @file
 * The profiled model: layer sequence with hardware-resolved unit
 * costs, the single input of both DP levels.
 */

#ifndef ADAPIPE_CORE_PROFILED_MODEL_H
#define ADAPIPE_CORE_PROFILED_MODEL_H

#include <cstdint>
#include <vector>

#include "hw/cluster.h"
#include "hw/profile_io.h"
#include "hw/profiler.h"
#include "memory/memory_model.h"
#include "model/model_config.h"
#include "model/parallel.h"
#include "model/units.h"
#include "util/units.h"

namespace adapipe {

/**
 * One layer with profiled units.
 */
struct ProfiledLayer
{
    LayerKind kind = LayerKind::Attention;
    int index = 0;
    /** Unsharded parameter count. */
    std::uint64_t params = 0;
    std::vector<UnitProfile> units;

    /** @return summed forward time of all units. */
    Seconds timeFwdAll() const;
    /** @return summed backward time of all units (no recompute). */
    Seconds timeBwdAll() const;
    /** @return summed saved bytes with everything saved. */
    Bytes memSavedAll() const;
    /** @return summed saved bytes of always-saved units only. */
    Bytes memAlwaysSaved() const;
    /** @return summed forward time of recomputable units. */
    Seconds timeFwdRecomputable() const;
};

/**
 * Fully profiled model for one (model, train, parallel, cluster)
 * combination. Owns the raw layer sequence too so memory accounting
 * can reuse it.
 */
struct ProfiledModel
{
    ModelConfig model;
    TrainConfig train;
    ParallelConfig par;
    OptimizerConfig optimizer;
    /** Raw per-rank workloads (for memory accounting). */
    std::vector<Layer> rawLayers;
    /** Hardware-resolved layer costs. */
    std::vector<ProfiledLayer> layers;
    /** Residual activation bytes crossing a stage boundary. */
    Bytes stageInputBytes = 0;
    /** Point-to-point transfer time of one boundary activation. */
    Seconds p2pTime = 0;
    /** Effective bandwidth of the inter-stage path, bytes/s. */
    double p2pBandwidth = 0;
    /** Usable device memory per rank (capacity minus reserve). */
    Bytes memCapacity = 0;

    /** @return number of partitionable layers. */
    int numLayers() const { return static_cast<int>(layers.size()); }

    /** @return summed unsharded params of layers [first, last]. */
    std::uint64_t rangeParams(int first, int last) const;
};

/**
 * Build a profiled model: construct the layer sequence, run the
 * analytic profiler over every unit and precompute the boundary
 * transfer cost.
 */
ProfiledModel buildProfiledModel(const ModelConfig &model,
                                 const TrainConfig &train,
                                 const ParallelConfig &par,
                                 const ClusterSpec &cluster,
                                 OptimizerConfig opt = OptimizerConfig{});

/**
 * Extract the model's unit-cost table (for saving with
 * hw/profile_io and editing or replacing offline).
 */
ProfileTable extractProfileTable(const ProfiledModel &pm);

/**
 * Replace the model's unit costs with @p table — the
 * "bring your own measurements" path standing in for the paper's
 * 5-10-iteration cluster profiling. Layer/unit structure and names
 * must match the model exactly; mismatches are fatal so stale
 * tables fail loudly. Use tryApplyProfileTable for user-supplied
 * tables.
 */
void applyProfileTable(ProfiledModel &pm, const ProfileTable &table);

/**
 * Recoverable variant of applyProfileTable: structure mismatches are
 * reported as an error naming the offending layer/unit, and @p pm is
 * left untouched on failure.
 */
ParseStatus tryApplyProfileTable(ProfiledModel &pm,
                                 const ProfileTable &table);

} // namespace adapipe

#endif // ADAPIPE_CORE_PROFILED_MODEL_H
