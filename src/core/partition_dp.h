/**
 * @file
 * Adaptive partitioning: Algorithm 1 of the paper.
 *
 * A second-level dynamic program over stage boundaries. P[s][i] is
 * the best plan assigning layers i..L-1 to stages s..p-1; each state
 * carries the warmup time W, ending time E, steady bottleneck M and
 * the stage's own F and B, combined exactly as in the paper:
 *
 *   W = f[s,i,j] + max(P[s+1,j+1].W + P[s+1,j+1].B, (p-s-1) f)
 *   E = b[s,i,j] + max(P[s+1,j+1].E + P[s+1,j+1].F, (p-s-1) b)
 *   M = max(P[s+1,j+1].M, f + b)
 *   T = W + E + (n - p + s) M
 *
 * f and b come from the adaptive-recomputation level via
 * StageCostCalculator, so the two optimisations are solved jointly
 * (Sec. 3: partitioning cooperates with recomputation "so that we
 * don't fall into some local minimums").
 */

#ifndef ADAPIPE_CORE_PARTITION_DP_H
#define ADAPIPE_CORE_PARTITION_DP_H

#include <optional>
#include <utility>
#include <vector>

#include "core/plan.h"
#include "core/stage_cost.h"

namespace adapipe {

/**
 * Outcome of the partitioning DP.
 */
struct PartitionDpResult
{
    /** False when no memory-feasible partition exists. */
    bool feasible = false;
    /** Inclusive layer range per stage (stage 0 first). */
    std::vector<std::pair<int, int>> ranges;
    /** Cost-model timing of the winning plan. */
    PipelineTiming timing;
};

/**
 * Run Algorithm 1.
 *
 * @param calc stage cost oracle (adaptive recomputation inside)
 * @param num_layers L, length of the layer sequence
 * @param p pipeline-parallel size (p <= num_layers)
 * @param n micro-batches per pipeline
 */
PartitionDpResult solveAdaptivePartition(StageCostCalculator &calc,
                                         int num_layers, int p, int n);

/**
 * Evaluate a *fixed* partition (used by Even Partitioning and the
 * DAPPLE baselines) through the same cost model.
 *
 * @param calc stage cost oracle
 * @param ranges inclusive layer range per stage
 * @param n micro-batches
 * @param baseline when set, per-stage costs use this uniform
 *        recomputation policy instead of the knapsack
 */
PartitionDpResult
evaluateFixedPartition(StageCostCalculator &calc,
                       const std::vector<std::pair<int, int>> &ranges,
                       int n,
                       std::optional<RecomputeBaseline> baseline = {});

/**
 * The baselines' uniform layer split: decoder blocks distributed as
 * evenly as possible over p stages (earlier stages take the
 * remainder), embedding glued to stage 0 and the decoding head to
 * stage p-1.
 */
std::vector<std::pair<int, int>> evenPartition(int num_layers, int p);

} // namespace adapipe

#endif // ADAPIPE_CORE_PARTITION_DP_H
