#include "core/stage_cost.h"

#include <algorithm>

#include "core/knapsack_memo.h"
#include "obs/macros.h"
#include "util/logging.h"

namespace adapipe {

StageCostCalculator::StageCostCalculator(const ProfiledModel &pm, int p,
                                         int n, StageCostOptions opts)
    : pm_(pm),
      mem_model_(pm.model, pm.train, pm.par, pm.optimizer),
      p_(p), n_(n), opts_(opts)
{
    ADAPIPE_ASSERT(p_ >= 1 && n_ >= 1, "invalid pipeline/microbatches");
    ADAPIPE_ASSERT(opts_.memBudgetFraction > 0 &&
                       opts_.memBudgetFraction <= 1.0,
                   "memBudgetFraction out of (0, 1]");
    for (double f : opts_.stageTimeFactor) {
        ADAPIPE_ASSERT(f > 0, "stage time factor must be positive");
        if (f != 1.0)
            neutral_factors_ = false;
    }
    for (Seconds b : opts_.overlapBubblePerMb) {
        ADAPIPE_ASSERT(b >= 0, "overlap bubble must be >= 0, got ", b);
        if (b != 0)
            neutral_bubbles_ = false;
    }
    for (int m : opts_.inflightOverride)
        ADAPIPE_ASSERT(m >= 1, "in-flight override must be >= 1, got ",
                       m);
    if (opts_.offload.enabled) {
        // Parse paths reject these with a ParseResult diagnostic;
        // this is the last line of defence for programmatic callers
        // (bandwidth <= 0 would propagate inf through the DP,
        // overlapFraction > 1 a negative penalty).
        const std::string err = opts_.offload.validate();
        ADAPIPE_ASSERT(err.empty(), "offload options: ", err);
    }
}

Bytes
StageCostCalculator::capacity() const
{
    return opts_.memCapacityOverride > 0 ? opts_.memCapacityOverride
                                         : pm_.memCapacity;
}

double
StageCostCalculator::timeFactor(int s) const
{
    if (s < 0 ||
        s >= static_cast<int>(opts_.stageTimeFactor.size()))
        return 1.0;
    return opts_.stageTimeFactor[s];
}

Seconds
StageCostCalculator::overlapBubble(int s) const
{
    if (s < 0 ||
        s >= static_cast<int>(opts_.overlapBubblePerMb.size()))
        return 0;
    return opts_.overlapBubblePerMb[s];
}

int
StageCostCalculator::inflight(int s) const
{
    if (s >= 0 && s < static_cast<int>(opts_.inflightOverride.size()))
        return opts_.inflightOverride[s];
    return MemoryModel::inflightMicroBatches(s, p_, n_);
}

StageCostCalculator::Key
StageCostCalculator::cacheKey(int s, int i, int j) const
{
    const bool has_embed = (i == 0);
    const bool has_head = (j == pm_.numLayers() - 1);
    // The first block-layer kind determines the whole alternating
    // composition for a given length; ranges starting with the
    // embedding key on the kind of layer 1 implicitly via has_embed.
    const int first_kind =
        static_cast<int>(pm_.layers[std::min(i, pm_.numLayers() - 1)]
                             .kind);
    // Heterogeneous stage-time factors or per-stage bubble budgets
    // break the isomorphism: the same range costs differently on a
    // straggling stage / a stage with a different replay bubble.
    if (opts_.useIsomorphism && neutral_factors_ && neutral_bubbles_)
        return {inflight(s), has_embed, has_head, j - i, first_kind};
    // Degenerate key: every (s, i, j) is distinct.
    return {s * (pm_.numLayers() + 1) + i, has_embed, has_head, j - i,
            first_kind + 1000};
}

StageCostCalculator::MemoryBreakdown
StageCostCalculator::breakdown(int i, int j) const
{
    MemoryBreakdown b;
    b.staticMem =
        mem_model_.staticMemory(pm_.rangeParams(i, j)).total();
    b.buffer = mem_model_.recomputeBufferBytes(pm_.rawLayers, i, j);
    // The residual stream entering the stage is pinned per in-flight
    // micro-batch; stage 0 receives token ids instead (negligible).
    b.input = (i > 0) ? pm_.stageInputBytes : 0;
    for (int l = i; l <= j; ++l)
        b.alwaysSaved += pm_.layers[l].memAlwaysSaved();
    return b;
}

const StageCost &
StageCostCalculator::cost(int s, int i, int j)
{
    ADAPIPE_ASSERT(s >= 0 && s < p_, "stage out of range: ", s);
    ADAPIPE_ASSERT(i >= 0 && j < pm_.numLayers() && i <= j,
                   "bad layer range [", i, ", ", j, "]");
    const Key key = cacheKey(s, i, j);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
        // Hot path: millions of lookups per sweep. Hits/misses are
        // tracked in members and flushed to the obs registry once per
        // plan (planner.cpp), never from here.
        ++cache_hits_;
        return it->second;
    }
    auto [ins, _] = cache_.emplace(key, compute(s, i, j));
    return ins->second;
}

StageCost
StageCostCalculator::compute(int s, int i, int j)
{
    const int m = inflight(s);
    const MemoryBreakdown mem = breakdown(i, j);
    const Bytes cap = capacity();
    const auto budget = static_cast<std::int64_t>(
        opts_.memBudgetFraction * static_cast<double>(cap));

    // Gather the range's units. With offloading enabled, the solver
    // itself weighs recompute vs host-staging per unit (tri-choice
    // DP); unit times are passed through unmodified so fwd/bwd
    // accounting always matches what the event simulator replays —
    // the offload share is reported disjointly in offloadExposed.
    std::vector<UnitProfile> units;
    Seconds fwd_all = 0;
    Seconds bwd_all = 0;
    Seconds fwd_recomputable = 0; // Σ optional replay times
    Bytes saved_all = 0;
    for (int l = i; l <= j; ++l) {
        const ProfiledLayer &layer = pm_.layers[l];
        for (const auto &u : layer.units) {
            fwd_all += u.timeFwd;
            bwd_all += u.timeBwd;
            if (!u.alwaysSaved)
                fwd_recomputable += u.timeFwd;
            saved_all += u.memSaved;
            units.push_back(u);
        }
    }

    StageCost result;
    result.totalUnits = static_cast<int>(units.size());

    RecomputeDpOptions dp_opts = opts_.dp;
    dp_opts.overlapBubble = overlapBubble(s);
    dp_opts.offload = opts_.offload;
    if (dp_opts.offload.enabled && dp_opts.offload.linkBudgetPerMb <= 0) {
        // Default shared-link budget: the host link can stream while
        // this stage computes one micro-batch's forward + backward,
        // no longer (evictions of micro-batch t overlap with compute
        // of t+1). Range-local, so the isomorphism cache stays valid.
        dp_opts.offload.linkBudgetPerMb = fwd_all + bwd_all;
    }

    // Fast path: everything saved fits the budget without a buffer.
    // Disabled under a bubble budget — there the solver's discounted
    // objective may prefer saving *less* (replay hides for free), so
    // "everything fits" no longer implies "save everything".
    const Bytes no_recompute_total =
        mem.staticMem +
        static_cast<Bytes>(m) * (mem.input + saved_all);
    if (dp_opts.overlapBubble <= 0 &&
        static_cast<std::int64_t>(no_recompute_total) <= budget) {
        result.feasible = true;
        result.recompute.saved.assign(units.size(), true);
        result.recompute.savedFwdTime = fwd_recomputable;
        result.recompute.savedBytes = saved_all - mem.alwaysSaved;
        result.recompute.savedUnits = result.totalUnits;
        result.fwd = fwd_all;
        result.bwd = bwd_all;
        result.memPeak = no_recompute_total;
    } else {
        // Feasibility floor: everything optional recomputed.
        const Bytes minimal =
            mem.staticMem + mem.buffer +
            static_cast<Bytes>(m) * (mem.input + mem.alwaysSaved);
        if (minimal > cap) {
            result.feasible = false;
            result.memPeak = minimal;
            return result;
        }
        const std::int64_t per_mb =
            (budget - static_cast<std::int64_t>(mem.staticMem) -
             static_cast<std::int64_t>(mem.buffer)) /
                m -
            static_cast<std::int64_t>(mem.input) -
            static_cast<std::int64_t>(mem.alwaysSaved);
        if (opts_.knapsackMemo) {
            bool hit = false;
            result.recompute = opts_.knapsackMemo->solve(
                units, per_mb, dp_opts, &hit);
            if (hit) {
                ++memo_hits_;
            } else {
                ++memo_misses_;
                ++knapsack_runs_;
            }
        } else {
            ++knapsack_runs_;
            result.recompute =
                solveRecomputeKnapsack(units, per_mb, dp_opts);
        }
        result.feasible = true;
        result.fwd = fwd_all;
        // criticalReplayTime equals (fwd_recomputable - savedFwdTime)
        // without a bubble; with one, the hidden share is discounted
        // off the backward critical path. Offloaded units add their
        // exposed (non-overlapped) transfer share instead of replay;
        // adding exact 0.0 with offload disabled keeps bwd
        // bit-identical to the pre-offload calculator.
        result.bwd = bwd_all + result.recompute.criticalReplayTime +
                     result.recompute.offloadExposedTime;
        result.replayHidden = result.recompute.hiddenReplayTime;
        result.replayCritical = result.recompute.criticalReplayTime;
        result.offloadExposed = result.recompute.offloadExposedTime;
        result.offloadLinkTime = result.recompute.offloadLinkTime;
        result.offloadBytes = result.recompute.offloadBytes;
        result.offloadedUnits = result.recompute.offloadedUnits;
        // Offloaded activations live in host memory between forward
        // and backward: they occupy no device bytes per micro-batch
        // (savedBytes already excludes them), so the peak formula is
        // unchanged.
        result.memPeak =
            mem.staticMem + mem.buffer +
            static_cast<Bytes>(m) *
                (mem.input + mem.alwaysSaved +
                 result.recompute.savedBytes);
    }

    if (opts_.includeP2p && i > 0) {
        result.fwd += pm_.p2pTime;
        result.bwd += pm_.p2pTime;
    }
    const double factor = timeFactor(s);
    if (factor != 1.0) {
        result.fwd *= factor;
        result.bwd *= factor;
        result.replayHidden *= factor;
        result.replayCritical *= factor;
        result.offloadExposed *= factor;
        result.offloadLinkTime *= factor;
    }
    return result;
}

StageCost
StageCostCalculator::baselineCost(int s, int i, int j,
                                  RecomputeBaseline mode) const
{
    ADAPIPE_ASSERT(s >= 0 && s < p_, "stage out of range: ", s);
    const int m = inflight(s);
    const MemoryBreakdown mem = breakdown(i, j);

    auto is_selective = [](UnitKind kind) {
        return kind == UnitKind::AttnScores ||
               kind == UnitKind::AttnSoftmax ||
               kind == UnitKind::AttnContext;
    };

    Seconds fwd_all = 0;
    Seconds bwd_all = 0;
    Seconds fwd_blocks = 0;    // recomputed work, full recompute
    Seconds fwd_selective = 0; // recomputed work, selective
    Bytes selective_buffer = 0;
    int total_units = 0;
    int selective_units = 0;
    for (int l = i; l <= j; ++l) {
        const ProfiledLayer &layer = pm_.layers[l];
        fwd_all += layer.timeFwdAll();
        bwd_all += layer.timeBwdAll();
        if (layer.kind == LayerKind::Attention ||
            layer.kind == LayerKind::FeedForward) {
            fwd_blocks += layer.timeFwdAll();
        }
        Bytes layer_selective_mem = 0;
        for (const auto &u : layer.units) {
            if (is_selective(u.kind)) {
                fwd_selective += u.timeFwd;
                layer_selective_mem += u.memSaved;
                ++selective_units;
            }
        }
        selective_buffer =
            std::max(selective_buffer, layer_selective_mem);
        total_units += static_cast<int>(layer.units.size());
    }

    StageCost result;
    result.totalUnits = total_units;
    Bytes saved_per_mb = 0;
    int saved_units = 0;
    switch (mode) {
      case RecomputeBaseline::Full:
        saved_per_mb =
            mem_model_.fullRecomputeSavedPerMb(pm_.rawLayers, i, j);
        result.bwd = bwd_all + fwd_blocks;
        // Only the Embedding/DecodingHead units stay saved.
        for (int l = i; l <= j; ++l) {
            if (pm_.layers[l].kind == LayerKind::Embedding ||
                pm_.layers[l].kind == LayerKind::DecodingHead) {
                saved_units +=
                    static_cast<int>(pm_.layers[l].units.size());
            }
        }
        result.memPeak = mem.staticMem + mem.buffer +
                         static_cast<Bytes>(m) *
                             (mem.input + saved_per_mb);
        break;
      case RecomputeBaseline::None:
        saved_per_mb =
            mem_model_.noRecomputeSavedPerMb(pm_.rawLayers, i, j);
        result.bwd = bwd_all;
        saved_units = total_units;
        result.memPeak = mem.staticMem +
                         static_cast<Bytes>(m) *
                             (mem.input + saved_per_mb);
        break;
      case RecomputeBaseline::Selective:
        saved_per_mb = mem_model_.selectiveRecomputeSavedPerMb(
            pm_.rawLayers, i, j);
        result.bwd = bwd_all + fwd_selective;
        saved_units = total_units - selective_units;
        result.memPeak = mem.staticMem + selective_buffer +
                         static_cast<Bytes>(m) *
                             (mem.input + saved_per_mb);
        break;
    }
    result.fwd = fwd_all;
    // Uniform policies never overlap: all replay is critical.
    result.replayCritical = result.bwd - bwd_all;
    result.recompute.criticalReplayTime = result.replayCritical;
    result.recompute.savedUnits = saved_units;
    result.recompute.savedBytes = saved_per_mb;
    result.feasible = result.memPeak <= capacity();

    if (opts_.includeP2p && i > 0) {
        result.fwd += pm_.p2pTime;
        result.bwd += pm_.p2pTime;
    }
    const double factor = timeFactor(s);
    if (factor != 1.0) {
        result.fwd *= factor;
        result.bwd *= factor;
        result.replayCritical *= factor;
    }
    return result;
}

} // namespace adapipe
