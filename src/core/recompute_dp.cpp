#include "core/recompute_dp.h"

#include <algorithm>
#include <numeric>

#include "obs/macros.h"
#include "util/logging.h"

namespace adapipe {

namespace {

/** Indices of units that participate in the knapsack. */
std::vector<std::size_t>
optionalUnits(const std::vector<UnitProfile> &units)
{
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (!units[i].alwaysSaved && units[i].memSaved > 0)
            idx.push_back(i);
    }
    return idx;
}

/** Fill the result's bookkeeping fields from the decision vector. */
void
finalize(const std::vector<UnitProfile> &units, RecomputePlanResult &r,
         Seconds bubble = 0)
{
    r.savedFwdTime = 0;
    r.savedBytes = 0;
    r.savedUnits = 0;
    Seconds opt_total = 0; // every optional unit's forward time
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (!units[i].alwaysSaved)
            opt_total += units[i].timeFwd;
        if (!r.saved[i])
            continue;
        ++r.savedUnits;
        if (!units[i].alwaysSaved) {
            r.savedFwdTime += units[i].timeFwd;
            r.savedBytes += units[i].memSaved;
        }
    }
    // Unsaved replay as (total - saved), not a direct sum over the
    // unsaved units: this reproduces the float sequence the stage
    // cost calculator historically used for B_s, keeping plan bytes
    // bit-identical across the refactor.
    const Seconds replay =
        std::max<Seconds>(opt_total - r.savedFwdTime, 0);
    r.hiddenReplayTime = std::min(std::max<Seconds>(bubble, 0), replay);
    r.criticalReplayTime = replay - r.hiddenReplayTime;
}

} // namespace

RecomputePlanResult
solveRecomputeKnapsack(const std::vector<UnitProfile> &units,
                       std::int64_t budget_per_mb,
                       const RecomputeDpOptions &opts)
{
    ADAPIPE_ASSERT(opts.maxBuckets > 0, "maxBuckets must be positive");
    ADAPIPE_OBS_COUNT("recompute_dp.runs", 1);
    ADAPIPE_OBS_COUNT("recompute_dp.units", units.size());

    RecomputePlanResult result;
    result.saved.assign(units.size(), false);
    for (std::size_t i = 0; i < units.size(); ++i)
        result.saved[i] = units[i].alwaysSaved;

    const std::vector<std::size_t> opt_idx = optionalUnits(units);
    const std::int64_t budget = std::max<std::int64_t>(budget_per_mb, 0);
    const Seconds bubble = std::max<Seconds>(opts.overlapBubble, 0);
    if (opt_idx.empty() || budget == 0) {
        finalize(units, result, bubble);
        return result;
    }

    // Granularity: GCD of the unit costs (Sec. 5.3), floored so the
    // DP table never exceeds maxBuckets entries. Rounding unit costs
    // up and the budget down keeps every DP solution feasible.
    std::int64_t gcd = 0;
    std::int64_t total_cost = 0;
    Seconds total_value = 0;
    for (std::size_t i : opt_idx) {
        const auto cost = static_cast<std::int64_t>(units[i].memSaved);
        gcd = std::gcd(gcd, cost);
        total_cost += cost;
        total_value += units[i].timeFwd;
    }
    if (bubble <= 0 && total_cost <= budget) {
        // Everything fits; skip the DP entirely. (With a bubble
        // budget this shortcut is wrong: saving everything can waste
        // memory on replay that would have hidden for free.)
        ADAPIPE_OBS_COUNT("recompute_dp.fastpath", 1);
        for (std::size_t i : opt_idx)
            result.saved[i] = true;
        finalize(units, result, bubble);
        return result;
    }
    // Discounted objective: only enough forward time needs to be
    // *saved* that the leftover replay fits the bubble. Replay of
    // zero-cost units (memSaved == 0, outside the knapsack) eats
    // into the bubble first.
    Seconds t_need = 0; // meaningful only when bubble > 0
    if (bubble > 0) {
        Seconds fixed_replay = 0;
        for (std::size_t i = 0; i < units.size(); ++i) {
            if (!units[i].alwaysSaved && units[i].memSaved == 0)
                fixed_replay += units[i].timeFwd;
        }
        t_need = fixed_replay + total_value - bubble;
        if (t_need <= 0) {
            // The bubble swallows every optional replay: save nothing
            // optional and spend no memory at all.
            ADAPIPE_OBS_COUNT("recompute_dp.bubble_free", 1);
            finalize(units, result, bubble);
            return result;
        }
    }
    if (!opts.useGcd)
        gcd = 1;
    const std::int64_t min_gran =
        (budget + opts.maxBuckets - 1) / opts.maxBuckets;
    const std::int64_t gran = std::max<std::int64_t>(gcd, min_gran);

    const auto cap = static_cast<std::size_t>(budget / gran);
    if (cap == 0) {
        finalize(units, result, bubble);
        return result;
    }

    // 0/1 knapsack maximising saved forward time. dp[m] = best value
    // using at most m buckets; choice[k][m] records whether optional
    // unit k is taken at budget m on the optimal path.
    std::vector<Seconds> dp(cap + 1, 0.0);
    std::vector<std::vector<bool>> choice(
        opt_idx.size(), std::vector<bool>(cap + 1, false));

    std::int64_t cells = 0; // flushed once; hot loop stays clean
    for (std::size_t k = 0; k < opt_idx.size(); ++k) {
        const UnitProfile &u = units[opt_idx[k]];
        const auto cost = static_cast<std::size_t>(
            (static_cast<std::int64_t>(u.memSaved) + gran - 1) / gran);
        if (cost > cap)
            continue;
        cells += static_cast<std::int64_t>(cap - cost + 1);
        for (std::size_t m = cap; m >= cost; --m) {
            const Seconds candidate = dp[m - cost] + u.timeFwd;
            if (candidate > dp[m]) {
                dp[m] = candidate;
                choice[k][m] = true;
            }
        }
    }
    ADAPIPE_OBS_COUNT("recompute_dp.cells", cells);

    // Backtrack the decision path. Without a bubble, the best value
    // sits at the full budget. With one, take the *smallest* budget
    // whose value already covers t_need — same critical replay
    // (zero), minimal saved bytes; if no budget covers it, the full
    // budget's maximal value minimises the leftover critical replay.
    std::size_t pick = cap;
    if (bubble > 0) {
        for (std::size_t m2 = 0; m2 <= cap; ++m2) {
            if (dp[m2] >= t_need) {
                pick = m2;
                break;
            }
        }
    }
    std::size_t m = pick;
    for (std::size_t k = opt_idx.size(); k-- > 0;) {
        if (choice[k][m]) {
            result.saved[opt_idx[k]] = true;
            const UnitProfile &u = units[opt_idx[k]];
            const auto cost = static_cast<std::size_t>(
                (static_cast<std::int64_t>(u.memSaved) + gran - 1) /
                gran);
            m -= cost;
        }
    }

    finalize(units, result, bubble);
    return result;
}

RecomputePlanResult
bruteForceRecompute(const std::vector<UnitProfile> &units,
                    std::int64_t budget_per_mb, Seconds overlap_bubble)
{
    const std::vector<std::size_t> opt_idx = optionalUnits(units);
    ADAPIPE_ASSERT(opt_idx.size() <= 24,
                   "brute force limited to 24 optional units, got ",
                   opt_idx.size());

    const Seconds bubble = std::max<Seconds>(overlap_bubble, 0);
    Seconds fixed_replay = 0; // recomputed regardless of the mask
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (!units[i].alwaysSaved && units[i].memSaved == 0)
            fixed_replay += units[i].timeFwd;
    }

    RecomputePlanResult best;
    best.saved.assign(units.size(), false);
    for (std::size_t i = 0; i < units.size(); ++i)
        best.saved[i] = units[i].alwaysSaved;
    finalize(units, best, bubble);

    Seconds opt_total = 0;
    for (std::size_t i : opt_idx)
        opt_total += units[i].timeFwd;

    const std::int64_t budget = std::max<std::int64_t>(budget_per_mb, 0);
    const std::size_t combos = std::size_t{1} << opt_idx.size();
    for (std::size_t mask = 1; mask < combos; ++mask) {
        std::int64_t cost = 0;
        Seconds value = 0;
        for (std::size_t k = 0; k < opt_idx.size(); ++k) {
            if (mask & (std::size_t{1} << k)) {
                cost += static_cast<std::int64_t>(
                    units[opt_idx[k]].memSaved);
                value += units[opt_idx[k]].timeFwd;
            }
        }
        if (cost > budget)
            continue;
        bool improves;
        if (bubble > 0) {
            // Lexicographic: minimal critical replay, then minimal
            // saved bytes, then maximal saved forward time.
            const Seconds critical = std::max<Seconds>(
                fixed_replay + opt_total - value - bubble, 0);
            const Seconds best_critical = best.criticalReplayTime;
            improves =
                critical < best_critical ||
                (critical == best_critical &&
                 (cost < static_cast<std::int64_t>(best.savedBytes) ||
                  (cost == static_cast<std::int64_t>(best.savedBytes) &&
                   value > best.savedFwdTime)));
        } else {
            improves = value > best.savedFwdTime;
        }
        if (improves) {
            RecomputePlanResult cand;
            cand.saved.assign(units.size(), false);
            for (std::size_t i = 0; i < units.size(); ++i)
                cand.saved[i] = units[i].alwaysSaved;
            for (std::size_t k = 0; k < opt_idx.size(); ++k) {
                if (mask & (std::size_t{1} << k))
                    cand.saved[opt_idx[k]] = true;
            }
            finalize(units, cand, bubble);
            best = std::move(cand);
        }
    }
    return best;
}

} // namespace adapipe
