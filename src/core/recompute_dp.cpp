#include "core/recompute_dp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/macros.h"
#include "util/logging.h"

namespace adapipe {

std::string
OffloadOptions::validate() const
{
    if (!(bandwidth > 0) || !std::isfinite(bandwidth))
        return "offload bandwidth must be > 0 (got " +
               std::to_string(bandwidth) + ")";
    if (!(overlapFraction >= 0.0 && overlapFraction <= 1.0))
        return "offload overlap_fraction must be in [0, 1] (got " +
               std::to_string(overlapFraction) + ")";
    if (!(linkBudgetPerMb >= 0) || !std::isfinite(linkBudgetPerMb))
        return "offload link budget must be >= 0 (got " +
               std::to_string(linkBudgetPerMb) + ")";
    if (maxLinkBuckets < 1)
        return "offload maxLinkBuckets must be >= 1";
    if (maxOffloadMemBuckets < 1)
        return "offload maxOffloadMemBuckets must be >= 1";
    if (maxHiddenBuckets < 1 || maxHiddenBuckets > 63)
        return "offload maxHiddenBuckets must be in [1, 63]";
    return {};
}

namespace {

/** Indices of units that participate in the knapsack. */
std::vector<std::size_t>
optionalUnits(const std::vector<UnitProfile> &units)
{
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (!units[i].alwaysSaved && units[i].memSaved > 0)
            idx.push_back(i);
    }
    return idx;
}

/** Fill the result's bookkeeping fields from the decision vectors
 *  (saved + optional offloaded). */
void
finalize(const std::vector<UnitProfile> &units, RecomputePlanResult &r,
         Seconds bubble = 0, const OffloadOptions *off = nullptr)
{
    r.savedFwdTime = 0;
    r.savedBytes = 0;
    r.savedUnits = 0;
    r.offloadBytes = 0;
    r.offloadedUnits = 0;
    r.offloadLinkTime = 0;
    r.offloadExposedTime = 0;
    Seconds opt_total = 0; // every optional unit's forward time
    Seconds offl_fwd = 0;  // forward time of offloaded units
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (!units[i].alwaysSaved)
            opt_total += units[i].timeFwd;
        if (i < r.offloaded.size() && r.offloaded[i]) {
            ++r.offloadedUnits;
            offl_fwd += units[i].timeFwd;
            r.offloadBytes += units[i].memSaved;
            if (off) {
                r.offloadLinkTime += off->linkTime(units[i].memSaved);
                r.offloadExposedTime +=
                    off->evictCost(units[i].memSaved);
            }
            continue;
        }
        if (!r.saved[i])
            continue;
        ++r.savedUnits;
        if (!units[i].alwaysSaved) {
            r.savedFwdTime += units[i].timeFwd;
            r.savedBytes += units[i].memSaved;
        }
    }
    // Unsaved replay as (total - saved), not a direct sum over the
    // unsaved units: this reproduces the float sequence the stage
    // cost calculator historically used for B_s, keeping plan bytes
    // bit-identical across the refactor. Offloaded units are fetched,
    // not replayed, so their forward time leaves the replay pool —
    // and, per the overlap semantics, they consume no bubble budget.
    const Seconds replay =
        std::max<Seconds>(opt_total - r.savedFwdTime - offl_fwd, 0);
    r.hiddenReplayTime = std::min(std::max<Seconds>(bubble, 0), replay);
    r.criticalReplayTime = replay - r.hiddenReplayTime;
}

/**
 * Tri-choice DP: every optional unit is kept on device (memory),
 * recomputed (replay time) or offloaded to host (shared link time).
 *
 * State = (memory buckets used, link buckets used, hidden-replay
 * buckets used); the DP value is the exposed penalty in seconds —
 * critical replay plus non-overlapped offload transfer. The
 * hidden-replay dimension implements the overlap-bubble discount:
 * recompute transitions only start paying once the accumulated
 * replay exceeds the bubble, while offload transitions pay their
 * exposed cost from the first second (an offloaded unit has no
 * replay to hide, so it must not consume bubble budget). With no
 * bubble the hidden dimension collapses to a single plane and the
 * objective is the plain additive penalty.
 *
 * Quantisation is conservative (unit costs rounded up, budgets
 * rounded down), so every DP solution is feasible; the solution is
 * exact when costs are exact multiples of the bucket granularities.
 */
RecomputePlanResult
solveTriChoice(const std::vector<UnitProfile> &units,
               std::int64_t budget_per_mb,
               const RecomputeDpOptions &opts)
{
    const OffloadOptions &off = opts.offload;
    const std::string off_err = off.validate();
    ADAPIPE_ASSERT(off_err.empty(), "offload options: ", off_err);
    ADAPIPE_OBS_COUNT("recompute_dp.tri_runs", 1);

    RecomputePlanResult result;
    result.saved.assign(units.size(), false);
    result.offloaded.assign(units.size(), false);
    for (std::size_t i = 0; i < units.size(); ++i)
        result.saved[i] = units[i].alwaysSaved;

    const std::vector<std::size_t> opt_idx = optionalUnits(units);
    const std::int64_t budget = std::max<std::int64_t>(budget_per_mb, 0);
    const Seconds bubble = std::max<Seconds>(opts.overlapBubble, 0);
    const Seconds link_budget = std::max<Seconds>(off.linkBudgetPerMb, 0);
    if (opt_idx.empty() || (budget == 0 && link_budget <= 0)) {
        finalize(units, result, bubble, &off);
        return result;
    }

    // Memory granularity: GCD of the unit costs, floored so the table
    // never exceeds the (tighter, tri-choice) bucket cap.
    std::int64_t gcd = 0;
    for (std::size_t i : opt_idx)
        gcd = std::gcd(gcd,
                       static_cast<std::int64_t>(units[i].memSaved));
    if (!opts.useGcd)
        gcd = 1;
    const std::int64_t mem_bucket_cap = std::min<std::int64_t>(
        opts.maxBuckets, off.maxOffloadMemBuckets);
    std::size_t cap_m = 0;
    std::int64_t gran_m = 1;
    if (budget > 0) {
        const std::int64_t min_gran =
            (budget + mem_bucket_cap - 1) / mem_bucket_cap;
        gran_m = std::max<std::int64_t>(gcd, min_gran);
        cap_m = static_cast<std::size_t>(budget / gran_m);
    }

    // Link granularity: the budget maps to exactly maxLinkBuckets
    // buckets; unit occupancies round up, so a tiny transfer still
    // claims one contention slot on the shared link.
    std::size_t cap_l = 0;
    double gran_l = 0;
    if (link_budget > 0) {
        cap_l = static_cast<std::size_t>(off.maxLinkBuckets);
        gran_l = link_budget / static_cast<double>(cap_l);
    }

    // Hidden-replay granularity (bubble > 0 only). The cap stays
    // <= 63 so a predecessor coordinate packs into the trace byte.
    std::size_t cap_h = 0;
    double gran_h = 0;
    if (bubble > 0) {
        cap_h = static_cast<std::size_t>(
            std::min(off.maxHiddenBuckets, 63));
        gran_h = bubble / static_cast<double>(cap_h);
    }

    const std::size_t dim_l = cap_l + 1;
    const std::size_t dim_h = cap_h + 1;
    const std::size_t n_states = (cap_m + 1) * dim_l * dim_h;
    const auto state = [dim_l, dim_h](std::size_t m, std::size_t l,
                                      std::size_t h) {
        return (m * dim_l + l) * dim_h + h;
    };
    constexpr double kInf = std::numeric_limits<double>::infinity();

    // Per-unit quantised costs and exact penalties.
    const std::size_t K = opt_idx.size();
    std::vector<std::size_t> cost_m(K), cost_l(K), cost_h(K);
    std::vector<Seconds> replay(K), exposed(K);
    for (std::size_t k = 0; k < K; ++k) {
        const UnitProfile &u = units[opt_idx[k]];
        cost_m[k] = static_cast<std::size_t>(
            (static_cast<std::int64_t>(u.memSaved) + gran_m - 1) /
            gran_m);
        replay[k] = u.timeFwd;
        exposed[k] = off.evictCost(u.memSaved);
        // Link occupancy rounds to the nearest bucket: a transfer
        // above half a bucket claims a whole contention slot, while
        // tiny transfers (a fast link) round to zero instead of
        // hitting an artificial cap of maxLinkBuckets offloaded
        // units. Quantisation error is at most half a bucket per
        // unit; instances whose link times are exact bucket
        // multiples quantise exactly (the oracle-test domain).
        const Seconds lt = off.linkTime(u.memSaved);
        cost_l[k] =
            gran_l > 0
                ? static_cast<std::size_t>(
                      std::floor(lt / gran_l + 0.5))
                : dim_l; // no link budget: offload never fits
        cost_h[k] =
            gran_h > 0
                ? std::min(cap_h,
                           static_cast<std::size_t>(std::max(
                               1.0,
                               std::ceil(u.timeFwd / gran_h - 1e-9))))
                : 0;
    }

    // Zero-cost units (memSaved == 0, outside the knapsack) are
    // replayed regardless of the mask; their replay eats into the
    // bubble first, so the start state is pre-charged with them.
    Seconds fixed_replay = 0;
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (!units[i].alwaysSaved && units[i].memSaved == 0)
            fixed_replay += units[i].timeFwd;
    }
    std::size_t h0 = 0;
    if (gran_h > 0 && fixed_replay > 0)
        h0 = std::min(cap_h,
                      static_cast<std::size_t>(std::max(
                          1.0,
                          std::ceil(fixed_replay / gran_h - 1e-9))));

    // Trace byte per (unit, state-after): choice in the low 2 bits
    // (0 recompute / 1 save / 2 offload), predecessor hidden-replay
    // coordinate in the high 6 bits; 0xFF = unreachable.
    std::vector<double> prev(n_states, kInf), next(n_states, kInf);
    prev[state(0, 0, h0)] = std::max<Seconds>(fixed_replay - bubble, 0);
    std::vector<std::vector<std::uint8_t>> trace(
        K, std::vector<std::uint8_t>(n_states, 0xFF));

    std::int64_t cells = 0;
    for (std::size_t k = 0; k < K; ++k) {
        std::fill(next.begin(), next.end(), kInf);
        std::vector<std::uint8_t> &tr = trace[k];
        for (std::size_t m = 0; m <= cap_m; ++m) {
            for (std::size_t l = 0; l <= cap_l; ++l) {
                for (std::size_t h = 0; h <= cap_h; ++h) {
                    const double base = prev[state(m, l, h)];
                    if (base == kInf)
                        continue;
                    ++cells;
                    const auto ph = static_cast<std::uint8_t>(h << 2);
                    // Recompute: replay eats bubble first, the rest
                    // is exposed (bubble = 0 makes it all exposed).
                    {
                        const std::size_t h2 =
                            std::min(h + cost_h[k], cap_h);
                        const Seconds already =
                            static_cast<double>(h) * gran_h;
                        const double add = std::max(
                            0.0, already + replay[k] - bubble);
                        const std::size_t s2 = state(m, l, h2);
                        if (base + add < next[s2]) {
                            next[s2] = base + add;
                            tr[s2] = static_cast<std::uint8_t>(0 | ph);
                        }
                    }
                    // Save: spend memory, no penalty.
                    if (m + cost_m[k] <= cap_m) {
                        const std::size_t s2 =
                            state(m + cost_m[k], l, h);
                        if (base < next[s2]) {
                            next[s2] = base;
                            tr[s2] = static_cast<std::uint8_t>(1 | ph);
                        }
                    }
                    // Offload: spend shared link, pay the exposed
                    // transfer share (never bubble-discounted).
                    if (cost_l[k] <= cap_l && l + cost_l[k] <= cap_l) {
                        const std::size_t s2 =
                            state(m, l + cost_l[k], h);
                        if (base + exposed[k] < next[s2]) {
                            next[s2] = base + exposed[k];
                            tr[s2] = static_cast<std::uint8_t>(2 | ph);
                        }
                    }
                }
            }
        }
        prev.swap(next);
    }
    ADAPIPE_OBS_COUNT("recompute_dp.cells", cells);

    // Best final state: minimal exposed penalty; the m-asc, l-asc
    // scan with strict < ties toward the least memory, then the
    // least link occupancy (cheapest resource usage).
    std::size_t best_m = 0, best_l = 0, best_h = 0;
    double best = kInf;
    for (std::size_t m = 0; m <= cap_m; ++m) {
        for (std::size_t l = 0; l <= cap_l; ++l) {
            for (std::size_t h = 0; h <= cap_h; ++h) {
                const double v = prev[state(m, l, h)];
                if (v < best) {
                    best = v;
                    best_m = m;
                    best_l = l;
                    best_h = h;
                }
            }
        }
    }
    ADAPIPE_ASSERT(best < kInf, "tri-choice DP lost the "
                                "all-recompute baseline state");

    // Backtrack the decision path.
    std::size_t m = best_m, l = best_l, h = best_h;
    for (std::size_t k = K; k-- > 0;) {
        const std::uint8_t tr = trace[k][state(m, l, h)];
        ADAPIPE_ASSERT(tr != 0xFF, "tri-choice DP backtrack hit an "
                                   "unreachable state");
        const std::uint8_t ch = tr & 0x3;
        h = static_cast<std::size_t>(tr >> 2);
        if (ch == 1) {
            result.saved[opt_idx[k]] = true;
            m -= cost_m[k];
        } else if (ch == 2) {
            result.offloaded[opt_idx[k]] = true;
            l -= cost_l[k];
        }
    }

    finalize(units, result, bubble, &off);
    return result;
}

} // namespace

RecomputePlanResult
solveRecomputeKnapsack(const std::vector<UnitProfile> &units,
                       std::int64_t budget_per_mb,
                       const RecomputeDpOptions &opts)
{
    ADAPIPE_ASSERT(opts.maxBuckets > 0, "maxBuckets must be positive");
    ADAPIPE_OBS_COUNT("recompute_dp.runs", 1);
    ADAPIPE_OBS_COUNT("recompute_dp.units", units.size());

    if (opts.offload.enabled)
        return solveTriChoice(units, budget_per_mb, opts);
    // Offload disabled: the classic 1D knapsack below runs unchanged
    // (bit-identical plans; result.offloaded stays empty).

    RecomputePlanResult result;
    result.saved.assign(units.size(), false);
    for (std::size_t i = 0; i < units.size(); ++i)
        result.saved[i] = units[i].alwaysSaved;

    const std::vector<std::size_t> opt_idx = optionalUnits(units);
    const std::int64_t budget = std::max<std::int64_t>(budget_per_mb, 0);
    const Seconds bubble = std::max<Seconds>(opts.overlapBubble, 0);
    if (opt_idx.empty() || budget == 0) {
        finalize(units, result, bubble);
        return result;
    }

    // Granularity: GCD of the unit costs (Sec. 5.3), floored so the
    // DP table never exceeds maxBuckets entries. Rounding unit costs
    // up and the budget down keeps every DP solution feasible.
    std::int64_t gcd = 0;
    std::int64_t total_cost = 0;
    Seconds total_value = 0;
    for (std::size_t i : opt_idx) {
        const auto cost = static_cast<std::int64_t>(units[i].memSaved);
        gcd = std::gcd(gcd, cost);
        total_cost += cost;
        total_value += units[i].timeFwd;
    }
    if (bubble <= 0 && total_cost <= budget) {
        // Everything fits; skip the DP entirely. (With a bubble
        // budget this shortcut is wrong: saving everything can waste
        // memory on replay that would have hidden for free.)
        ADAPIPE_OBS_COUNT("recompute_dp.fastpath", 1);
        for (std::size_t i : opt_idx)
            result.saved[i] = true;
        finalize(units, result, bubble);
        return result;
    }
    // Discounted objective: only enough forward time needs to be
    // *saved* that the leftover replay fits the bubble. Replay of
    // zero-cost units (memSaved == 0, outside the knapsack) eats
    // into the bubble first.
    Seconds t_need = 0; // meaningful only when bubble > 0
    if (bubble > 0) {
        Seconds fixed_replay = 0;
        for (std::size_t i = 0; i < units.size(); ++i) {
            if (!units[i].alwaysSaved && units[i].memSaved == 0)
                fixed_replay += units[i].timeFwd;
        }
        t_need = fixed_replay + total_value - bubble;
        if (t_need <= 0) {
            // The bubble swallows every optional replay: save nothing
            // optional and spend no memory at all.
            ADAPIPE_OBS_COUNT("recompute_dp.bubble_free", 1);
            finalize(units, result, bubble);
            return result;
        }
    }
    if (!opts.useGcd)
        gcd = 1;
    const std::int64_t min_gran =
        (budget + opts.maxBuckets - 1) / opts.maxBuckets;
    const std::int64_t gran = std::max<std::int64_t>(gcd, min_gran);

    const auto cap = static_cast<std::size_t>(budget / gran);
    if (cap == 0) {
        finalize(units, result, bubble);
        return result;
    }

    // 0/1 knapsack maximising saved forward time. dp[m] = best value
    // using at most m buckets; choice[k][m] records whether optional
    // unit k is taken at budget m on the optimal path.
    std::vector<Seconds> dp(cap + 1, 0.0);
    std::vector<std::vector<bool>> choice(
        opt_idx.size(), std::vector<bool>(cap + 1, false));

    std::int64_t cells = 0; // flushed once; hot loop stays clean
    for (std::size_t k = 0; k < opt_idx.size(); ++k) {
        const UnitProfile &u = units[opt_idx[k]];
        const auto cost = static_cast<std::size_t>(
            (static_cast<std::int64_t>(u.memSaved) + gran - 1) / gran);
        if (cost > cap)
            continue;
        cells += static_cast<std::int64_t>(cap - cost + 1);
        for (std::size_t m = cap; m >= cost; --m) {
            const Seconds candidate = dp[m - cost] + u.timeFwd;
            if (candidate > dp[m]) {
                dp[m] = candidate;
                choice[k][m] = true;
            }
        }
    }
    ADAPIPE_OBS_COUNT("recompute_dp.cells", cells);

    // Backtrack the decision path. Without a bubble, the best value
    // sits at the full budget. With one, take the *smallest* budget
    // whose value already covers t_need — same critical replay
    // (zero), minimal saved bytes; if no budget covers it, the full
    // budget's maximal value minimises the leftover critical replay.
    std::size_t pick = cap;
    if (bubble > 0) {
        for (std::size_t m2 = 0; m2 <= cap; ++m2) {
            if (dp[m2] >= t_need) {
                pick = m2;
                break;
            }
        }
    }
    std::size_t m = pick;
    for (std::size_t k = opt_idx.size(); k-- > 0;) {
        if (choice[k][m]) {
            result.saved[opt_idx[k]] = true;
            const UnitProfile &u = units[opt_idx[k]];
            const auto cost = static_cast<std::size_t>(
                (static_cast<std::int64_t>(u.memSaved) + gran - 1) /
                gran);
            m -= cost;
        }
    }

    finalize(units, result, bubble);
    return result;
}

RecomputePlanResult
bruteForceRecompute(const std::vector<UnitProfile> &units,
                    std::int64_t budget_per_mb, Seconds overlap_bubble)
{
    const std::vector<std::size_t> opt_idx = optionalUnits(units);
    ADAPIPE_ASSERT(opt_idx.size() <= 24,
                   "brute force limited to 24 optional units, got ",
                   opt_idx.size());

    const Seconds bubble = std::max<Seconds>(overlap_bubble, 0);
    Seconds fixed_replay = 0; // recomputed regardless of the mask
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (!units[i].alwaysSaved && units[i].memSaved == 0)
            fixed_replay += units[i].timeFwd;
    }

    RecomputePlanResult best;
    best.saved.assign(units.size(), false);
    for (std::size_t i = 0; i < units.size(); ++i)
        best.saved[i] = units[i].alwaysSaved;
    finalize(units, best, bubble);

    Seconds opt_total = 0;
    for (std::size_t i : opt_idx)
        opt_total += units[i].timeFwd;

    const std::int64_t budget = std::max<std::int64_t>(budget_per_mb, 0);
    const std::size_t combos = std::size_t{1} << opt_idx.size();
    for (std::size_t mask = 1; mask < combos; ++mask) {
        std::int64_t cost = 0;
        Seconds value = 0;
        for (std::size_t k = 0; k < opt_idx.size(); ++k) {
            if (mask & (std::size_t{1} << k)) {
                cost += static_cast<std::int64_t>(
                    units[opt_idx[k]].memSaved);
                value += units[opt_idx[k]].timeFwd;
            }
        }
        if (cost > budget)
            continue;
        bool improves;
        if (bubble > 0) {
            // Lexicographic: minimal critical replay, then minimal
            // saved bytes, then maximal saved forward time.
            const Seconds critical = std::max<Seconds>(
                fixed_replay + opt_total - value - bubble, 0);
            const Seconds best_critical = best.criticalReplayTime;
            improves =
                critical < best_critical ||
                (critical == best_critical &&
                 (cost < static_cast<std::int64_t>(best.savedBytes) ||
                  (cost == static_cast<std::int64_t>(best.savedBytes) &&
                   value > best.savedFwdTime)));
        } else {
            improves = value > best.savedFwdTime;
        }
        if (improves) {
            RecomputePlanResult cand;
            cand.saved.assign(units.size(), false);
            for (std::size_t i = 0; i < units.size(); ++i)
                cand.saved[i] = units[i].alwaysSaved;
            for (std::size_t k = 0; k < opt_idx.size(); ++k) {
                if (mask & (std::size_t{1} << k))
                    cand.saved[opt_idx[k]] = true;
            }
            finalize(units, cand, bubble);
            best = std::move(cand);
        }
    }
    return best;
}

RecomputePlanResult
bruteForceTriChoice(const std::vector<UnitProfile> &units,
                    std::int64_t budget_per_mb,
                    const RecomputeDpOptions &opts)
{
    const std::vector<std::size_t> opt_idx = optionalUnits(units);
    ADAPIPE_ASSERT(opt_idx.size() <= 14,
                   "tri-choice brute force limited to 14 optional "
                   "units, got ",
                   opt_idx.size());
    const OffloadOptions &off = opts.offload;
    const std::string off_err = off.validate();
    ADAPIPE_ASSERT(off_err.empty(), "offload options: ", off_err);

    const Seconds bubble = std::max<Seconds>(opts.overlapBubble, 0);
    const std::int64_t budget = std::max<std::int64_t>(budget_per_mb, 0);
    const Seconds link_budget = std::max<Seconds>(off.linkBudgetPerMb, 0);

    Seconds fixed_replay = 0; // recomputed regardless of the mask
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (!units[i].alwaysSaved && units[i].memSaved == 0)
            fixed_replay += units[i].timeFwd;
    }

    const std::size_t K = opt_idx.size();
    std::size_t combos = 1;
    for (std::size_t k = 0; k < K; ++k)
        combos *= 3;

    // Exact objective in seconds (no bucket quantisation): minimal
    // exposed penalty C = critical replay + non-overlapped offload
    // transfer, tie-broken by (saved bytes, link time, -saved fwd).
    bool have_best = false;
    std::size_t best_assign = 0;
    Seconds best_c = 0, best_link = 0, best_value = 0;
    std::int64_t best_bytes = 0;
    std::vector<std::size_t> digit(K);
    for (std::size_t a = 0; a < combos; ++a) {
        std::size_t rem = a;
        std::int64_t bytes = 0;
        Seconds value = 0, replay_sum = 0, link = 0, exposed = 0;
        for (std::size_t k = 0; k < K; ++k) {
            digit[k] = rem % 3; // 0 recompute / 1 save / 2 offload
            rem /= 3;
            const UnitProfile &u = units[opt_idx[k]];
            if (digit[k] == 0) {
                replay_sum += u.timeFwd;
            } else if (digit[k] == 1) {
                bytes += static_cast<std::int64_t>(u.memSaved);
                value += u.timeFwd;
            } else {
                link += off.linkTime(u.memSaved);
                exposed += off.evictCost(u.memSaved);
            }
        }
        if (bytes > budget || link > link_budget + 1e-12)
            continue;
        const Seconds critical = std::max<Seconds>(
            fixed_replay + replay_sum - bubble, 0);
        const Seconds c = critical + exposed;
        const bool improves =
            !have_best || c < best_c ||
            (c == best_c &&
             (bytes < best_bytes ||
              (bytes == best_bytes &&
               (link < best_link ||
                (link == best_link && value > best_value)))));
        if (improves) {
            have_best = true;
            best_assign = a;
            best_c = c;
            best_bytes = bytes;
            best_link = link;
            best_value = value;
        }
    }
    ADAPIPE_ASSERT(have_best, "tri-choice brute force lost the "
                              "all-recompute assignment");

    RecomputePlanResult best;
    best.saved.assign(units.size(), false);
    best.offloaded.assign(units.size(), false);
    for (std::size_t i = 0; i < units.size(); ++i)
        best.saved[i] = units[i].alwaysSaved;
    std::size_t rem = best_assign;
    for (std::size_t k = 0; k < K; ++k) {
        const std::size_t d = rem % 3;
        rem /= 3;
        if (d == 1)
            best.saved[opt_idx[k]] = true;
        else if (d == 2)
            best.offloaded[opt_idx[k]] = true;
    }
    finalize(units, best, bubble, &off);
    return best;
}

} // namespace adapipe
