#include "core/profiled_model.h"

#include "util/logging.h"

namespace adapipe {

Seconds
ProfiledLayer::timeFwdAll() const
{
    Seconds total = 0;
    for (const auto &u : units)
        total += u.timeFwd;
    return total;
}

Seconds
ProfiledLayer::timeBwdAll() const
{
    Seconds total = 0;
    for (const auto &u : units)
        total += u.timeBwd;
    return total;
}

Bytes
ProfiledLayer::memSavedAll() const
{
    Bytes total = 0;
    for (const auto &u : units)
        total += u.memSaved;
    return total;
}

Bytes
ProfiledLayer::memAlwaysSaved() const
{
    Bytes total = 0;
    for (const auto &u : units) {
        if (u.alwaysSaved)
            total += u.memSaved;
    }
    return total;
}

Seconds
ProfiledLayer::timeFwdRecomputable() const
{
    Seconds total = 0;
    for (const auto &u : units) {
        if (!u.alwaysSaved)
            total += u.timeFwd;
    }
    return total;
}

std::uint64_t
ProfiledModel::rangeParams(int first, int last) const
{
    ADAPIPE_ASSERT(first >= 0 && last < numLayers() && first <= last,
                   "bad layer range [", first, ", ", last, "]");
    std::uint64_t total = 0;
    for (int i = first; i <= last; ++i)
        total += layers[i].params;
    return total;
}

ProfiledModel
buildProfiledModel(const ModelConfig &model, const TrainConfig &train,
                   const ParallelConfig &par, const ClusterSpec &cluster,
                   OptimizerConfig opt)
{
    ProfiledModel pm;
    pm.model = model;
    pm.train = train;
    pm.par = par;
    pm.optimizer = opt;
    pm.rawLayers = buildLayerSequence(model, train, par);

    OperatorProfiler profiler(cluster, par);
    pm.layers.reserve(pm.rawLayers.size());
    for (const Layer &layer : pm.rawLayers) {
        ProfiledLayer pl;
        pl.kind = layer.kind;
        pl.index = layer.index;
        pl.params = layer.params;
        pl.units = profiler.profileLayer(layer);
        pm.layers.push_back(std::move(pl));
    }

    MemoryModel mem(model, train, par, opt);
    pm.stageInputBytes = mem.stageInputBytes();
    pm.p2pTime = profiler.p2pTime(pm.stageInputBytes);
    pm.p2pBandwidth = cluster.numNodes > 1
                          ? cluster.interNodeBandwidth
                          : cluster.intraNodeBandwidth;
    pm.memCapacity = cluster.device.usableCapacity();
    return pm;
}

ProfileTable
extractProfileTable(const ProfiledModel &pm)
{
    ProfileTable table;
    table.source = "roofline:" + pm.model.name;
    table.layers.reserve(pm.layers.size());
    for (const ProfiledLayer &layer : pm.layers)
        table.layers.push_back(layer.units);
    return table;
}

void
applyProfileTable(ProfiledModel &pm, const ProfileTable &table)
{
    ParseStatus status = tryApplyProfileTable(pm, table);
    if (!status.ok())
        ADAPIPE_FATAL(status.error());
}

ParseStatus
tryApplyProfileTable(ProfiledModel &pm, const ProfileTable &table)
{
    // Validate the full structure before mutating anything so a
    // mismatching table leaves the model intact.
    if (table.layers.size() != pm.layers.size()) {
        return ParseStatus::failure(
            "profile table has " + std::to_string(table.layers.size()) +
            " layers, model has " + std::to_string(pm.layers.size()));
    }
    for (std::size_t l = 0; l < pm.layers.size(); ++l) {
        const auto &units = pm.layers[l].units;
        const auto &replacement = table.layers[l];
        if (replacement.size() != units.size()) {
            return ParseStatus::failure(
                "layer " + std::to_string(l) + ": profile table has " +
                std::to_string(replacement.size()) +
                " units, model has " + std::to_string(units.size()));
        }
        for (std::size_t u = 0; u < units.size(); ++u) {
            if (replacement[u].name != units[u].name) {
                return ParseStatus::failure(
                    "layer " + std::to_string(l) + " unit " +
                    std::to_string(u) + ": name mismatch '" +
                    replacement[u].name + "' vs '" + units[u].name +
                    "'");
            }
        }
    }
    for (std::size_t l = 0; l < pm.layers.size(); ++l) {
        auto &units = pm.layers[l].units;
        const auto &replacement = table.layers[l];
        for (std::size_t u = 0; u < units.size(); ++u)
            units[u] = replacement[u];
        // Raw-layer memory stays authoritative for baselines; keep
        // the two views consistent.
        auto &raw = pm.rawLayers[l].units;
        for (std::size_t u = 0; u < raw.size(); ++u) {
            raw[u].memSaved = replacement[u].memSaved;
            raw[u].alwaysSaved = replacement[u].alwaysSaved;
        }
    }
    return parseOk();
}

} // namespace adapipe
