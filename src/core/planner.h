/**
 * @file
 * Planner facade: produce a complete PipelinePlan for one method
 * (AdaPipe, Even Partitioning, DAPPLE-Full, DAPPLE-Non) on one
 * profiled model.
 */

#ifndef ADAPIPE_CORE_PLANNER_H
#define ADAPIPE_CORE_PLANNER_H

#include "core/plan.h"
#include "core/profiled_model.h"
#include "core/stage_cost.h"

namespace adapipe {

/**
 * Build the plan of @p method for @p pm.
 *
 * AdaPipe runs both DP levels; Even Partitioning runs only the
 * recomputation DP on the baseline layer split; the DAPPLE baselines
 * use the same split with uniform full/no recomputation. All four go
 * through the identical Sec. 5.1 cost model so their iteration times
 * are comparable.
 *
 * @param pm profiled model (carries t, p, d and the workload)
 * @param method planning method
 * @param opts stage-cost options (memory budget fraction, knobs)
 * @return a feasible plan or an OOM diagnosis
 */
PlanResult makePlan(const ProfiledModel &pm, PlanMethod method,
                    StageCostOptions opts = {});

} // namespace adapipe

#endif // ADAPIPE_CORE_PLANNER_H
