#include "core/knapsack_memo.h"

#include <cstring>

namespace adapipe {

namespace {

/** Append @p value's raw bytes to @p key. */
template <typename T>
void
appendBytes(std::string &key, T value)
{
    char buf[sizeof(T)];
    std::memcpy(buf, &value, sizeof(T));
    key.append(buf, sizeof(T));
}

/**
 * Exact solver-input key: budget, knobs, then per unit the fields
 * the DP actually reads. Doubles go in as bit patterns, so two times
 * key equal only when they are bit-identical — exactly the condition
 * for the DP to behave identically.
 */
std::string
memoKey(const std::vector<UnitProfile> &units,
        std::int64_t budget_per_mb, const RecomputeDpOptions &opts)
{
    std::string key;
    key.reserve(24 + units.size() * 17);
    appendBytes(key, budget_per_mb);
    appendBytes(key, static_cast<std::int32_t>(opts.maxBuckets));
    key.push_back(opts.useGcd ? 1 : 0);
    appendBytes(key, opts.overlapBubble);
    key.push_back(opts.offload.enabled ? 1 : 0);
    if (opts.offload.enabled) {
        appendBytes(key, opts.offload.bandwidth);
        appendBytes(key, opts.offload.overlapFraction);
        appendBytes(key, opts.offload.linkBudgetPerMb);
        appendBytes(key,
                    static_cast<std::int32_t>(opts.offload.maxLinkBuckets));
        appendBytes(key, static_cast<std::int32_t>(
                             opts.offload.maxOffloadMemBuckets));
        appendBytes(key, static_cast<std::int32_t>(
                             opts.offload.maxHiddenBuckets));
    }
    for (const UnitProfile &u : units) {
        appendBytes(key, u.timeFwd);
        appendBytes(key, static_cast<std::uint64_t>(u.memSaved));
        key.push_back(u.alwaysSaved ? 1 : 0);
    }
    return key;
}

} // namespace

RecomputePlanResult
KnapsackMemo::solve(const std::vector<UnitProfile> &units,
                    std::int64_t budget_per_mb,
                    const RecomputeDpOptions &opts, bool *hit)
{
    const std::string key = memoKey(units, budget_per_mb, opts);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = table_.find(key);
        if (it != table_.end()) {
            ++hits_;
            if (hit)
                *hit = true;
            return it->second;
        }
        ++misses_;
    }
    // Solve outside the lock: concurrent first requests for the same
    // key may race to solve, but the solver is deterministic, so the
    // losing insert is a harmless duplicate.
    RecomputePlanResult result =
        solveRecomputeKnapsack(units, budget_per_mb, opts);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        table_.emplace(key, result);
    }
    if (hit)
        *hit = false;
    return result;
}

KnapsackMemoStats
KnapsackMemo::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    KnapsackMemoStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.entries = static_cast<std::int64_t>(table_.size());
    return s;
}

void
KnapsackMemo::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    table_.clear();
}

} // namespace adapipe
