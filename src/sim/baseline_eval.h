/**
 * @file
 * End-to-end evaluation of plans and baseline schedules.
 *
 * This is the experiment-level glue used by the benchmark
 * harnesses: it executes a plan (or a Chimera/GPipe baseline) in the
 * event-driven simulator and combines the resulting activation
 * in-flight counts with the memory model into per-device peak
 * memory, mirroring how the paper measures iteration time and peak
 * allocation on the real clusters.
 */

#ifndef ADAPIPE_SIM_BASELINE_EVAL_H
#define ADAPIPE_SIM_BASELINE_EVAL_H

#include <string>
#include <vector>

#include "core/plan.h"
#include "core/profiled_model.h"
#include "core/stage_cost.h"
#include "sim/pipeline_sim.h"

namespace adapipe {

/** Which baseline schedule to run. */
enum class BaselineSchedule {
    Dapple,  ///< 1F1B (DAPPLE / Megatron-LM)
    GPipe,   ///< all-forward-then-all-backward
    Chimera, ///< bidirectional pipelines
    ChimeraD ///< Chimera with forward doubling
};

/** @return display name ("DAPPLE", "Chimera", ...). */
const char *baselineScheduleName(BaselineSchedule sched);

/**
 * Result of one end-to-end evaluation.
 */
struct EndToEndResult
{
    bool feasible = false;
    std::string oomReason;
    /** Simulated iteration time. */
    Seconds iterationTime = 0;
    /** Peak memory per device. */
    std::vector<Bytes> deviceMem;
    /** Peak in-flight micro-batch activations per device. */
    std::vector<int> peakAlive;
    /** Per-position micro-step time F_s + B_s (Fig. 9's metric). */
    std::vector<Seconds> microStepTime;
    /** Total bubble time across devices. */
    Seconds bubbleTime = 0;
};

/**
 * Execute a planner-produced plan (AdaPipe, Even Partitioning or a
 * DAPPLE baseline) under the 1F1B schedule.
 */
EndToEndResult simulatePlan(const ProfiledModel &pm,
                            const PipelinePlan &plan);

/**
 * Execute a baseline schedule with the uniform even partition and a
 * uniform recomputation policy. Chimera variants duplicate stage
 * parameters on every device and account both chains' activations.
 *
 * @param pm profiled model (carries t, p, d)
 * @param sched baseline schedule
 * @param mode uniform recomputation policy of every stage
 * @param opts stage-cost options (p2p accounting)
 */
EndToEndResult evaluateBaseline(const ProfiledModel &pm,
                                BaselineSchedule sched,
                                RecomputeBaseline mode,
                                StageCostOptions opts = {});

/** Convenience overload: true = full, false = no recomputation. */
inline EndToEndResult
evaluateBaseline(const ProfiledModel &pm, BaselineSchedule sched,
                 bool full_recompute, StageCostOptions opts = {})
{
    return evaluateBaseline(pm, sched,
                            full_recompute ? RecomputeBaseline::Full
                                           : RecomputeBaseline::None,
                            opts);
}

/**
 * Evaluate a BPipe-style memory-balanced 1F1B (related work,
 * Sec. 8): device s pairs with device p-1-s and evicts overflowing
 * activations to its partner's spare memory, paying two inter-node
 * transfers per evicted byte per micro-batch. Feasible when every
 * pair's combined activation demand fits the pair's combined budget
 * — the first stage must share a node path with the last, which is
 * why BPipe constrains the tensor-parallel size (paper Sec. 8).
 *
 * @param pm profiled model
 * @param mode uniform recomputation policy of every stage
 * @param opts stage-cost options
 */
EndToEndResult evaluateBPipe(const ProfiledModel &pm,
                             RecomputeBaseline mode,
                             StageCostOptions opts = {});

/**
 * Execute Megatron's interleaved 1F1B with v virtual chunks per
 * device under a uniform recomputation policy (background system of
 * Sec. 2.1; an extension experiment here). Each device's memory
 * charges its v chunks' static state and the simulator's in-flight
 * chunk activations.
 *
 * @param pm profiled model
 * @param v virtual chunks per device (v >= 1; L must split into
 *        v * p chunk boundaries)
 * @param mode uniform recomputation policy
 * @param opts stage-cost options
 */
EndToEndResult evaluateInterleaved(const ProfiledModel &pm, int v,
                                   RecomputeBaseline mode,
                                   StageCostOptions opts = {});

} // namespace adapipe

#endif // ADAPIPE_SIM_BASELINE_EVAL_H
