/**
 * @file
 * Event-driven execution of pipeline schedules.
 *
 * The simulator plays a Schedule against per-stage forward/backward
 * durations and a point-to-point transfer cost, honouring data
 * dependencies (a forward needs the previous position's forward of
 * the same micro-batch, a backward needs the next position's
 * backward and its own forward) and device exclusivity. Static
 * schedules execute their per-device order verbatim; bidirectional
 * schedules are ordered greedily (earliest-start, then scheduling
 * unit, backward first).
 *
 * This is the "execution engine" stand-in: iteration times reported
 * by the paper's measurements correspond to this simulation, while
 * the Sec. 5.1 closed form corresponds to core/cost_model.h. Tests
 * verify the two agree for 1F1B.
 */

#ifndef ADAPIPE_SIM_PIPELINE_SIM_H
#define ADAPIPE_SIM_PIPELINE_SIM_H

#include <string>
#include <vector>

#include "core/cost_model.h"
#include "robust/fault_spec.h"
#include "sim/schedule.h"
#include "util/units.h"

namespace adapipe {

/** Simulator options. */
struct SimOptions
{
    /** Transfer time between adjacent positions of a chain. */
    Seconds p2pTime = 0;
    /**
     * Fault scenario to inject (slowdowns, stalls, p2p jitter, hard
     * failure). Default-constructed spec injects nothing. All draws
     * are counter-based on FaultSpec::seed, so a fixed seed yields a
     * bit-for-bit identical simulation on every run.
     */
    FaultSpec faults;
};

/** Scheduled execution of one op. */
struct OpRecord
{
    Seconds start = -1;
    Seconds end = -1;

    bool done() const { return end >= 0; }
};

/**
 * Result of simulating one iteration.
 */
struct SimResult
{
    std::string scheduleName;
    /** Completion time of the last op. */
    Seconds iterationTime = 0;
    /** Start/end per op, parallel to Schedule::ops. */
    std::vector<OpRecord> records;
    /** Busy time per device. */
    std::vector<Seconds> deviceBusy;
    /** Last op end per device. */
    std::vector<Seconds> deviceFinish;
    /**
     * Peak number of micro-batch activations alive per device (from
     * the end of a micro-batch's forward to the end of its
     * backward). For 1F1B at stage s this is exactly p - s.
     */
    std::vector<int> peakAlive;
    /**
     * False when a hard device failure left ops unexecuted; the
     * iteration never finishes and iterationTime covers only the ops
     * that did run.
     */
    bool completed = true;
    /** Device whose failure stopped the iteration, or -1. */
    int failedDevice = -1;
    /** Total retry/backoff delay injected by transient stalls. */
    Seconds stallTime = 0;

    /** @return idle time inside the device's active span. */
    Seconds bubbleTime(int device) const;

    /** @return total bubble time across devices. */
    Seconds totalBubbleTime() const;
};

/**
 * Simulate @p sched.
 *
 * @param sched schedule to execute
 * @param stage_times F/B durations indexed by chain position (all
 *        chains share the same per-position times; bidirectional
 *        schedules use the baseline even partition where this holds)
 * @param opts simulator options
 */
SimResult simulate(const Schedule &sched,
                   const std::vector<StageTimes> &stage_times,
                   const SimOptions &opts = {});

} // namespace adapipe

#endif // ADAPIPE_SIM_PIPELINE_SIM_H
