/**
 * @file
 * Pipeline schedules: the op sets and per-device orders executed by
 * the simulator.
 *
 * A schedule is a set of forward/backward ops over (micro-batch,
 * chain position) pairs. Unidirectional schedules (GPipe, 1F1B) have
 * one chain whose position k runs on device k and come with a fixed
 * per-device execution order. Bidirectional schedules (Chimera,
 * ChimeraD) have two chains mapped to devices in opposite directions
 * and are ordered dynamically by the simulator's greedy scheduler,
 * which reproduces their characteristic behaviour: fewer bubbles
 * when n == p, concatenation bubbles when n > p, and doubled
 * parameter memory.
 */

#ifndef ADAPIPE_SIM_SCHEDULE_H
#define ADAPIPE_SIM_SCHEDULE_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/parse_result.h"

namespace adapipe {

/** Direction of one pipeline op. */
enum class OpKind { Forward, Backward };

/**
 * One forward or backward pass of one micro-batch at one pipeline
 * position.
 */
struct PipeOp
{
    /** Executing device. */
    int device = 0;
    /** Position along the op's chain (0 = first stage of chain). */
    int pos = 0;
    /** Chain id: 0 = down pipeline, 1 = up pipeline (Chimera). */
    int chain = 0;
    /** First micro-batch id covered by this op (chain-local). */
    int microBatch = 0;
    /** Micro-batches processed together (2 = forward doubling). */
    int samples = 1;
    OpKind kind = OpKind::Forward;
};

/**
 * A complete schedule of one training iteration.
 */
struct Schedule
{
    std::string name;
    /** Devices participating (= pipeline-parallel size). */
    int numDevices = 0;
    /**
     * Positions per chain. Equal to numDevices for the single-chunk
     * schedules (GPipe, 1F1B, Chimera variants); interleaved 1F1B
     * has chainLength = v * numDevices, position g on device
     * g % numDevices. Consumers must index per-position state
     * (stage times, PipeOp::pos) by chainLength and per-device state
     * by numDevices — the two only coincide when v = 1.
     */
    int chainLength = 0;
    /** Total micro-batches across chains. */
    int numMicroBatches = 0;
    /** Micro-batches per chain (index = chain id). */
    std::vector<int> chainMicroBatches;
    /** Chains duplicate model parameters on their devices. */
    int numChains = 1;
    /** All ops of the iteration. */
    std::vector<PipeOp> ops;
    /**
     * Fixed execution order per device as indices into @ref ops;
     * empty when the simulator should schedule greedily.
     */
    std::vector<std::vector<std::size_t>> deviceOrder;
    /**
     * Greedy priority: ops with smaller unit index are preferred
     * when several are ready (Chimera concatenates scheduling units
     * of p micro-batches). 0 for static schedules.
     */
    int unitSize = 0;
};

/** GPipe: all forwards, then all backwards (Fig. 2a). */
Schedule buildGPipe(int p, int n);

/** 1F1B / DAPPLE: warmup, steady one-forward-one-backward, ending
 *  (Fig. 2b). */
Schedule build1F1B(int p, int n);

/**
 * Megatron-LM's interleaved 1F1B: each device hosts v model chunks
 * (virtual stages), shrinking the bubble ratio by ~v at the cost of
 * more in-flight activations and communication (Sec. 2.1). The
 * chain has v*p positions; position g runs on device g % p.
 * Requires n % p == 0 when v > 1 (Megatron's constraint). With
 * v = 1 this is plain 1F1B.
 *
 * @param p pipeline-parallel size (devices)
 * @param n micro-batches
 * @param v virtual chunks per device
 *
 * This overload terminates the process (exit 1, with the same
 * diagnostic tryBuildInterleaved1F1B reports) on an invalid
 * configuration; callers with user-reachable inputs should use the
 * recoverable variant below.
 */
Schedule buildInterleaved1F1B(int p, int n, int v);

/**
 * Recoverable variant of buildInterleaved1F1B: invalid configurations
 * (p, n or v < 1; n not divisible by p when v > 1) come back as
 * errors naming the offending field (pipeline / micro_batches /
 * virtual_stages) instead of aborting, so CLIs and the planner can
 * exit cleanly.
 */
ParseResult<Schedule> tryBuildInterleaved1F1B(int p, int n, int v);

/**
 * Chimera: two bidirectional pipelines, micro-batches split evenly;
 * requires even p and even n.
 */
Schedule buildChimera(int p, int n);

/**
 * Chimera with forward doubling: forward passes process two
 * micro-batches back-to-back; requires even p and n divisible by 4.
 */
Schedule buildChimeraD(int p, int n);

} // namespace adapipe

#endif // ADAPIPE_SIM_SCHEDULE_H
