#include "sim/timeline.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/logging.h"

namespace adapipe {

std::string
renderTimeline(const Schedule &sched, const SimResult &result,
               int width)
{
    ADAPIPE_ASSERT(width > 10, "timeline width too small");
    ADAPIPE_ASSERT(result.records.size() == sched.ops.size(),
                   "result does not match schedule");

    const double scale = result.iterationTime > 0
                             ? width / result.iterationTime
                             : 0.0;
    std::vector<std::string> rows(sched.numDevices,
                                  std::string(width, '.'));

    for (std::size_t i = 0; i < sched.ops.size(); ++i) {
        const PipeOp &op = sched.ops[i];
        const OpRecord &rec = result.records[i];
        int c0 = static_cast<int>(rec.start * scale);
        int c1 = static_cast<int>(rec.end * scale);
        c0 = std::clamp(c0, 0, width - 1);
        c1 = std::clamp(c1, c0 + 1, width);
        const char glyph =
            op.kind == OpKind::Forward
                ? static_cast<char>('0' + op.microBatch % 10)
                : static_cast<char>('a' + op.microBatch % 26);
        for (int c = c0; c < c1; ++c)
            rows[op.device][c] = glyph;
    }

    std::ostringstream oss;
    oss << sched.name << " (p=" << sched.numDevices
        << ", n=" << sched.numMicroBatches << ")\n";
    for (int dev = 0; dev < sched.numDevices; ++dev)
        oss << "dev" << dev << " |" << rows[dev] << "|\n";
    return oss.str();
}

} // namespace adapipe
