#include "sim/trace_export.h"

#include "obs/sinks.h"
#include "util/json.h"
#include "util/logging.h"

namespace adapipe {

namespace {

JsonValue
traceRoot(const Schedule &sched, JsonValue events)
{
    JsonValue root = JsonValue::object();
    root.set("traceEvents", std::move(events));
    root.set("displayTimeUnit", JsonValue::string("ms"));
    root.set("otherData",
             [&] {
                 JsonValue o = JsonValue::object();
                 o.set("schedule", JsonValue::string(sched.name));
                 return o;
             }());
    return root;
}

JsonValue
scheduleEvents(const Schedule &sched, const SimResult &result)
{
    ADAPIPE_ASSERT(result.records.size() == sched.ops.size(),
                   "result does not match schedule");

    JsonValue events = JsonValue::array();
    for (std::size_t i = 0; i < sched.ops.size(); ++i) {
        const PipeOp &op = sched.ops[i];
        const OpRecord &rec = result.records[i];

        JsonValue ev = JsonValue::object();
        std::string name =
            (op.kind == OpKind::Forward ? "F" : "B") +
            std::to_string(op.microBatch);
        if (op.samples > 1) {
            name += "-" +
                    std::to_string(op.microBatch + op.samples - 1);
        }
        ev.set("name", JsonValue::string(std::move(name)));
        ev.set("cat", JsonValue::string(
                          op.kind == OpKind::Forward ? "forward"
                                                     : "backward"));
        ev.set("ph", JsonValue::string("X"));
        // Trace timestamps are microseconds.
        ev.set("ts", JsonValue::number(rec.start * 1e6));
        ev.set("dur", JsonValue::number((rec.end - rec.start) * 1e6));
        ev.set("pid", JsonValue::integer(0));
        ev.set("tid", JsonValue::integer(op.device));

        JsonValue args = JsonValue::object();
        args.set("chain", JsonValue::integer(op.chain));
        args.set("position", JsonValue::integer(op.pos));
        args.set("micro_batch", JsonValue::integer(op.microBatch));
        ev.set("args", std::move(args));
        events.push(std::move(ev));
    }

    // Thread names so rows read "device N" in the viewer.
    for (int d = 0; d < sched.numDevices; ++d) {
        JsonValue meta = JsonValue::object();
        meta.set("name", JsonValue::string("thread_name"));
        meta.set("ph", JsonValue::string("M"));
        meta.set("pid", JsonValue::integer(0));
        meta.set("tid", JsonValue::integer(d));
        JsonValue args = JsonValue::object();
        args.set("name",
                 JsonValue::string("device " + std::to_string(d)));
        meta.set("args", std::move(args));
        events.push(std::move(meta));
    }
    return events;
}

} // namespace

std::string
toChromeTrace(const Schedule &sched, const SimResult &result)
{
    return traceRoot(sched, scheduleEvents(sched, result)).dump(0);
}

std::string
toChromeTrace(const Schedule &sched, const SimResult &result,
              const obs::Registry &metrics)
{
    JsonValue events = scheduleEvents(sched, result);
    // Search spans go under pid 1 so the viewer groups them apart
    // from the simulated devices (pid 0).
    obs::appendSpanTraceEvents(metrics, events, 1);
    JsonValue root = traceRoot(sched, std::move(events));
    return root.dump(0);
}

} // namespace adapipe
