#include "sim/schedule.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace adapipe {

namespace {

/** Append one op and return its index. */
std::size_t
addOp(Schedule &sched, int device, int pos, int chain, int mb,
      OpKind kind, int samples = 1)
{
    PipeOp op;
    op.device = device;
    op.pos = pos;
    op.chain = chain;
    op.microBatch = mb;
    op.samples = samples;
    op.kind = kind;
    sched.ops.push_back(op);
    return sched.ops.size() - 1;
}

} // namespace

Schedule
buildGPipe(int p, int n)
{
    ADAPIPE_ASSERT(p >= 1 && n >= 1, "invalid GPipe configuration");
    Schedule sched;
    sched.name = "GPipe";
    sched.numDevices = p;
    sched.chainLength = p;
    sched.numMicroBatches = n;
    sched.chainMicroBatches = {n};
    sched.numChains = 1;
    sched.deviceOrder.resize(p);

    for (int s = 0; s < p; ++s) {
        for (int mb = 0; mb < n; ++mb) {
            sched.deviceOrder[s].push_back(
                addOp(sched, s, s, 0, mb, OpKind::Forward));
        }
        for (int mb = 0; mb < n; ++mb) {
            sched.deviceOrder[s].push_back(
                addOp(sched, s, s, 0, mb, OpKind::Backward));
        }
    }
    return sched;
}

Schedule
build1F1B(int p, int n)
{
    ADAPIPE_ASSERT(p >= 1 && n >= 1, "invalid 1F1B configuration");
    Schedule sched;
    sched.name = "1F1B";
    sched.numDevices = p;
    sched.chainLength = p;
    sched.numMicroBatches = n;
    sched.chainMicroBatches = {n};
    sched.numChains = 1;
    sched.deviceOrder.resize(p);

    for (int s = 0; s < p; ++s) {
        // Warmup: p - s - 1 forwards, capped by n.
        const int warm = std::min(p - s - 1, n);
        auto &order = sched.deviceOrder[s];
        for (int mb = 0; mb < warm; ++mb)
            order.push_back(addOp(sched, s, s, 0, mb, OpKind::Forward));
        // Steady: alternate forward of mb k with backward of k - warm.
        for (int mb = warm; mb < n; ++mb) {
            order.push_back(addOp(sched, s, s, 0, mb, OpKind::Forward));
            order.push_back(
                addOp(sched, s, s, 0, mb - warm, OpKind::Backward));
        }
        // Ending: drain the remaining warm backwards.
        for (int mb = n - warm; mb < n; ++mb)
            order.push_back(addOp(sched, s, s, 0, mb, OpKind::Backward));
    }
    return sched;
}

Schedule
buildInterleaved1F1B(int p, int n, int v)
{
    ParseResult<Schedule> r = tryBuildInterleaved1F1B(p, n, v);
    if (!r.ok())
        ADAPIPE_FATAL(r.error());
    return std::move(r).value();
}

ParseResult<Schedule>
tryBuildInterleaved1F1B(int p, int n, int v)
{
    // Reject bad configurations with the field names used by the
    // plan/CLI schema so the diagnostic points at the input to fix.
    if (p < 1) {
        return ParseResult<Schedule>::failure(
            "interleaved 1F1B: parallel.pipeline must be >= 1, got " +
            std::to_string(p));
    }
    if (n < 1) {
        return ParseResult<Schedule>::failure(
            "interleaved 1F1B: micro_batches must be >= 1, got " +
            std::to_string(n));
    }
    if (v < 1) {
        return ParseResult<Schedule>::failure(
            "interleaved 1F1B: virtual_stages must be >= 1, got " +
            std::to_string(v));
    }
    if (v > 1 && n % p != 0) {
        return ParseResult<Schedule>::failure(
            "interleaved 1F1B: micro_batches (" + std::to_string(n) +
            ") must be divisible by parallel.pipeline (" +
            std::to_string(p) + ") when virtual_stages > 1");
    }
    if (v == 1)
        return ParseResult<Schedule>::success(build1F1B(p, n));

    Schedule sched;
    sched.name = "Interleaved1F1B(v=" + std::to_string(v) + ")";
    sched.numDevices = p;
    sched.chainLength = v * p;
    sched.numMicroBatches = n;
    sched.chainMicroBatches = {n};
    sched.numChains = 1;
    sched.deviceOrder.resize(p);

    // Megatron's step enumeration: forward step k on a rank maps to
    // local chunk (k / p) % v and micro-batch (k / (p v)) p + k % p;
    // backward steps walk the chunks in reverse.
    const int total = n * v;
    auto fwd_of = [&](int k) {
        const int group = k / p;
        const int chunk = group % v;
        const int mb = (group / v) * p + k % p;
        return std::pair<int, int>(chunk, mb);
    };
    auto bwd_of = [&](int k) {
        const int group = k / p;
        const int chunk = v - 1 - group % v;
        const int mb = (group / v) * p + k % p;
        return std::pair<int, int>(chunk, mb);
    };

    for (int r = 0; r < p; ++r) {
        auto &order = sched.deviceOrder[r];
        const int warmup =
            std::min((p - r - 1) * 2 + (v - 1) * p, total);
        auto add_fwd = [&](int k) {
            const auto [chunk, mb] = fwd_of(k);
            order.push_back(addOp(sched, r, chunk * p + r, 0, mb,
                                  OpKind::Forward));
        };
        auto add_bwd = [&](int k) {
            const auto [chunk, mb] = bwd_of(k);
            order.push_back(addOp(sched, r, chunk * p + r, 0, mb,
                                  OpKind::Backward));
        };
        for (int k = 0; k < warmup; ++k)
            add_fwd(k);
        for (int k = warmup; k < total; ++k) {
            add_fwd(k);
            add_bwd(k - warmup);
        }
        for (int k = total - warmup; k < total; ++k)
            add_bwd(k);
    }
    return ParseResult<Schedule>::success(std::move(sched));
}

Schedule
buildChimera(int p, int n)
{
    ADAPIPE_ASSERT(p >= 2 && p % 2 == 0,
                   "Chimera requires an even pipeline size, got ", p);
    ADAPIPE_ASSERT(n >= 2 && n % 2 == 0,
                   "Chimera requires an even micro-batch count, got ",
                   n);
    Schedule sched;
    sched.name = "Chimera";
    sched.numDevices = p;
    sched.chainLength = p;
    sched.numMicroBatches = n;
    sched.chainMicroBatches = {n / 2, n / 2};
    sched.numChains = 2;
    sched.unitSize = p / 2; // p micro-batches per scheduling unit

    // Down chain: position k on device k; up chain: position k on
    // device p-1-k. The greedy scheduler decides the order.
    for (int chain = 0; chain < 2; ++chain) {
        for (int mb = 0; mb < n / 2; ++mb) {
            for (int k = 0; k < p; ++k) {
                const int device = chain == 0 ? k : p - 1 - k;
                addOp(sched, device, k, chain, mb, OpKind::Forward);
                addOp(sched, device, k, chain, mb, OpKind::Backward);
            }
        }
    }
    return sched;
}

Schedule
buildChimeraD(int p, int n)
{
    ADAPIPE_ASSERT(p >= 2 && p % 2 == 0,
                   "ChimeraD requires an even pipeline size, got ", p);
    ADAPIPE_ASSERT(n >= 4 && n % 4 == 0,
                   "ChimeraD requires n divisible by 4, got ", n);
    Schedule sched;
    sched.name = "ChimeraD";
    sched.numDevices = p;
    sched.chainLength = p;
    sched.numMicroBatches = n;
    sched.chainMicroBatches = {n / 2, n / 2};
    sched.numChains = 2;
    sched.unitSize = p / 2;

    for (int chain = 0; chain < 2; ++chain) {
        for (int mb = 0; mb < n / 2; mb += 2) {
            for (int k = 0; k < p; ++k) {
                const int device = chain == 0 ? k : p - 1 - k;
                // Doubled forward covers micro-batches mb and mb+1.
                addOp(sched, device, k, chain, mb, OpKind::Forward, 2);
                addOp(sched, device, k, chain, mb, OpKind::Backward);
                addOp(sched, device, k, chain, mb + 1,
                      OpKind::Backward);
            }
        }
    }
    return sched;
}

} // namespace adapipe
