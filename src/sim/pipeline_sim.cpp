#include "sim/pipeline_sim.h"

#include <algorithm>
#include <limits>
#include <map>
#include <tuple>

#include "obs/macros.h"
#include "util/logging.h"

namespace adapipe {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Dependency resolver: maps (chain, pos, micro-batch, kind) to op
 * indices, with forward-doubling ops registered for every covered
 * micro-batch.
 */
class OpIndex
{
  public:
    explicit OpIndex(const Schedule &sched) : sched_(sched)
    {
        for (std::size_t i = 0; i < sched.ops.size(); ++i) {
            const PipeOp &op = sched.ops[i];
            for (int k = 0; k < op.samples; ++k) {
                const Key key{op.chain, op.pos, op.microBatch + k,
                              op.kind == OpKind::Forward};
                const bool inserted = map_.emplace(key, i).second;
                ADAPIPE_ASSERT(inserted, "duplicate op in schedule ",
                               sched.name);
            }
        }
    }

    /** @return op index or -1 when absent. */
    std::ptrdiff_t
    find(int chain, int pos, int mb, bool forward) const
    {
        auto it = map_.find(Key{chain, pos, mb, forward});
        return it == map_.end() ? -1
                                : static_cast<std::ptrdiff_t>(it->second);
    }

    /** Dependencies of op @p i (indices into Schedule::ops). */
    std::vector<std::size_t>
    deps(std::size_t i) const
    {
        const PipeOp &op = sched_.ops[i];
        std::vector<std::size_t> out;
        auto push = [&](std::ptrdiff_t idx) {
            ADAPIPE_ASSERT(idx >= 0, "missing dependency for op in ",
                           sched_.name);
            if (static_cast<std::size_t>(idx) != i)
                out.push_back(static_cast<std::size_t>(idx));
        };
        if (op.kind == OpKind::Forward) {
            if (op.pos > 0) {
                for (int k = 0; k < op.samples; ++k)
                    push(find(op.chain, op.pos - 1, op.microBatch + k,
                              true));
            }
        } else {
            if (op.pos < sched_.chainLength - 1) {
                push(find(op.chain, op.pos + 1, op.microBatch, false));
            }
            push(find(op.chain, op.pos, op.microBatch, true));
        }
        // Forward-doubled deps can repeat; dedupe.
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        return out;
    }

  private:
    using Key = std::tuple<int, int, int, bool>;
    const Schedule &sched_;
    std::map<Key, std::size_t> map_;
};

Seconds
opDuration(const PipeOp &op, const std::vector<StageTimes> &stage_times)
{
    const StageTimes &st = stage_times[op.pos];
    if (op.kind == OpKind::Forward)
        return st.fwd * op.samples;
    return st.bwd * op.samples;
}

/** Stable fault identity of @p op. */
std::uint64_t
opFaultId(const PipeOp &op)
{
    return faultOpId(op.chain, op.pos, op.microBatch,
                     op.kind == OpKind::Forward);
}

/**
 * Duration under fault injection: slowdown scales the compute,
 * transient stalls add retry/backoff delay (reported via
 * @p stall_out).
 */
Seconds
faultedDuration(const PipeOp &op,
                const std::vector<StageTimes> &stage_times,
                const FaultSpec &faults, Seconds &stall_out)
{
    Seconds duration =
        opDuration(op, stage_times) * faults.slowdownFactor(op.device);
    stall_out = faults.stallDelay(opFaultId(op));
    return duration + stall_out;
}

/** Earliest start honouring dependencies and communication. */
Seconds
readyTime(const Schedule &sched,
          const std::vector<std::vector<std::size_t>> &deps,
          const std::vector<OpRecord> &records, std::size_t i,
          const SimOptions &opts)
{
    Seconds ready = 0;
    const PipeOp &op = sched.ops[i];
    for (std::size_t dep : deps[i]) {
        if (!records[dep].done())
            return kInf;
        Seconds t = records[dep].end;
        if (sched.ops[dep].device != op.device) {
            Seconds p2p = opts.p2pTime;
            if (opts.faults.p2pJitter > 0) {
                p2p *= opts.faults.jitterFactor(
                    faultEdgeId(opFaultId(sched.ops[dep]),
                                opFaultId(op)));
            }
            t += p2p;
        }
        ready = std::max(ready, t);
    }
    return ready;
}

void
computeStats(const Schedule &sched, SimResult &result)
{
    const int p = sched.numDevices;
    result.deviceBusy.assign(p, 0.0);
    result.deviceFinish.assign(p, 0.0);
    result.peakAlive.assign(p, 0);
    result.iterationTime = 0;

    for (std::size_t i = 0; i < sched.ops.size(); ++i) {
        const PipeOp &op = sched.ops[i];
        const OpRecord &rec = result.records[i];
        if (!rec.done())
            continue;
        result.deviceBusy[op.device] += rec.end - rec.start;
        result.deviceFinish[op.device] =
            std::max(result.deviceFinish[op.device], rec.end);
        result.iterationTime = std::max(result.iterationTime, rec.end);
    }

    // Alive-activation sweep per device: +samples at forward end,
    // -1 at each micro-batch's backward end.
    for (int dev = 0; dev < p; ++dev) {
        std::vector<std::pair<Seconds, int>> events;
        for (std::size_t i = 0; i < sched.ops.size(); ++i) {
            const PipeOp &op = sched.ops[i];
            if (op.device != dev)
                continue;
            const OpRecord &rec = result.records[i];
            if (!rec.done())
                continue;
            if (op.kind == OpKind::Forward)
                events.emplace_back(rec.end, op.samples);
            else
                events.emplace_back(rec.end, -op.samples);
        }
        // Process releases before allocations at equal timestamps.
        std::sort(events.begin(), events.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first < b.first;
                      return a.second < b.second;
                  });
        int alive = 0;
        int peak = 0;
        for (const auto &[t, delta] : events) {
            alive += delta;
            peak = std::max(peak, alive);
        }
        // An interrupted iteration legitimately leaves forwards
        // without their backward.
        ADAPIPE_ASSERT(alive == 0 || !result.completed,
                       "unbalanced activation events on device ", dev);
        result.peakAlive[dev] = peak;
    }
}

} // namespace

Seconds
SimResult::bubbleTime(int device) const
{
    return deviceFinish[device] - deviceBusy[device];
}

Seconds
SimResult::totalBubbleTime() const
{
    Seconds total = 0;
    for (std::size_t d = 0; d < deviceBusy.size(); ++d)
        total += bubbleTime(static_cast<int>(d));
    return total;
}

SimResult
simulate(const Schedule &sched, const std::vector<StageTimes> &stage_times,
         const SimOptions &opts)
{
    ADAPIPE_ASSERT(static_cast<int>(stage_times.size()) >=
                       sched.chainLength,
                   "need stage times for every chain position");
    ADAPIPE_OBS_SPAN(obs_span, "sim.simulate");
    ADAPIPE_OBS_COUNT("sim.runs", 1);
    ADAPIPE_OBS_COUNT("sim.events", sched.ops.size());

    OpIndex index(sched);
    // Dependencies are precomputed once: the scheduling loops below
    // probe them O(ops^2) times.
    std::vector<std::vector<std::size_t>> deps(sched.ops.size());
    std::int64_t edges = 0;
    for (std::size_t i = 0; i < sched.ops.size(); ++i) {
        deps[i] = index.deps(i);
        edges += static_cast<std::int64_t>(deps[i].size());
    }
    ADAPIPE_OBS_COUNT("sim.dependency_edges", edges);

    SimResult result;
    result.scheduleName = sched.name;
    result.records.assign(sched.ops.size(), OpRecord{});

    std::vector<Seconds> device_free(sched.numDevices, 0.0);

    const DeviceFailure &failure = opts.faults.failure;
    auto failure_blocks = [&](const PipeOp &op, Seconds start) {
        return op.device == failure.device && start >= failure.at;
    };

    if (!sched.deviceOrder.empty()) {
        // Static mode: run each device's list in order; round-robin
        // until every pointer is exhausted.
        std::vector<std::size_t> cursor(sched.numDevices, 0);
        std::size_t remaining = sched.ops.size();
        while (remaining > 0) {
            bool progress = false;
            for (int dev = 0; dev < sched.numDevices; ++dev) {
                while (cursor[dev] < sched.deviceOrder[dev].size()) {
                    const std::size_t i =
                        sched.deviceOrder[dev][cursor[dev]];
                    const Seconds ready =
                        readyTime(sched, deps, result.records, i,
                                  opts);
                    if (ready == kInf)
                        break;
                    const Seconds start =
                        std::max(ready, device_free[dev]);
                    // A dead device starts nothing more; its later
                    // ops only start later, so stop its cursor for
                    // good.
                    if (failure_blocks(sched.ops[i], start))
                        break;
                    Seconds stall = 0;
                    result.records[i].start = start;
                    result.records[i].end =
                        start + faultedDuration(sched.ops[i],
                                                stage_times,
                                                opts.faults, stall);
                    result.stallTime += stall;
                    device_free[dev] = result.records[i].end;
                    ++cursor[dev];
                    --remaining;
                    progress = true;
                }
            }
            if (!progress && failure.device >= 0) {
                result.completed = false;
                result.failedDevice = failure.device;
                break;
            }
            ADAPIPE_ASSERT(progress, "deadlock in static schedule ",
                           sched.name);
        }
    } else {
        // Greedy mode: repeatedly schedule the ready op that can
        // start earliest; ties prefer earlier scheduling units, then
        // backwards, then lower micro-batch ids.
        //
        // Bidirectional schedules concatenate scheduling units of p
        // micro-batches (Sec. 2.1 / 7.2): gradient buffers are
        // committed unit by unit, so a device may not run a backward
        // of unit u+1 before finishing every backward of unit u.
        // Forwards are free to fill the trailing bubbles (Chimera's
        // forward occupation / doubling). This constraint is what
        // produces the inter-unit bubbles the paper reports.
        std::vector<bool> scheduled(sched.ops.size(), false);
        const int unit = std::max(1, sched.unitSize);
        std::vector<std::vector<int>> bwd_remaining;
        {
            int max_unit = 0;
            for (const auto &op : sched.ops)
                max_unit = std::max(max_unit, op.microBatch / unit);
            bwd_remaining.assign(
                sched.numDevices,
                std::vector<int>(max_unit + 1, 0));
            for (const auto &op : sched.ops) {
                if (op.kind == OpKind::Backward)
                    ++bwd_remaining[op.device][op.microBatch / unit];
            }
        }
        auto backward_allowed = [&](const PipeOp &op) {
            if (op.kind != OpKind::Backward)
                return true;
            const int u = op.microBatch / unit;
            for (int earlier = 0; earlier < u; ++earlier) {
                if (bwd_remaining[op.device][earlier] > 0)
                    return false;
            }
            return true;
        };
        // 1F1B-style activation bound per chain: a device admits a
        // new forward at position k only while fewer than
        // chainLength - k micro-batches of that chain are in flight
        // (Chimera keeps per-pipeline memory bounded exactly like
        // 1F1B; unbounded prefetch would degenerate into GPipe).
        std::vector<std::vector<int>> alive(
            sched.numDevices, std::vector<int>(sched.numChains, 0));
        auto forward_allowed = [&](const PipeOp &op) {
            if (op.kind != OpKind::Forward)
                return true;
            // Forward doubling admits two micro-batches per slot, so
            // its in-flight allowance doubles — the memory doubling
            // the paper reports for ChimeraD-Non.
            return alive[op.device][op.chain] <
                   (sched.chainLength - op.pos) * op.samples;
        };
        for (std::size_t done = 0; done < sched.ops.size(); ++done) {
            std::size_t best = sched.ops.size();
            Seconds best_start = kInf;
            std::tuple<int, int, int, int> best_prio{};
            for (std::size_t i = 0; i < sched.ops.size(); ++i) {
                if (scheduled[i])
                    continue;
                if (!backward_allowed(sched.ops[i]) ||
                    !forward_allowed(sched.ops[i]))
                    continue;
                const Seconds ready =
                    readyTime(sched, deps, result.records, i, opts);
                if (ready == kInf)
                    continue;
                const PipeOp &op = sched.ops[i];
                const Seconds start =
                    std::max(ready, device_free[op.device]);
                if (failure_blocks(op, start))
                    continue;
                const std::tuple<int, int, int, int> prio{
                    op.microBatch / unit,
                    op.kind == OpKind::Forward ? 1 : 0, op.microBatch,
                    op.chain};
                if (start < best_start ||
                    (start == best_start && prio < best_prio)) {
                    best = i;
                    best_start = start;
                    best_prio = prio;
                }
            }
            if (best >= sched.ops.size() && failure.device >= 0) {
                result.completed = false;
                result.failedDevice = failure.device;
                break;
            }
            ADAPIPE_ASSERT(best < sched.ops.size(),
                           "deadlock in greedy schedule ", sched.name);
            const PipeOp &op = sched.ops[best];
            Seconds stall = 0;
            result.records[best].start = best_start;
            result.records[best].end =
                best_start + faultedDuration(op, stage_times,
                                             opts.faults, stall);
            result.stallTime += stall;
            device_free[op.device] = result.records[best].end;
            scheduled[best] = true;
            if (op.kind == OpKind::Backward) {
                --bwd_remaining[op.device][op.microBatch / unit];
                alive[op.device][op.chain] -= op.samples;
            } else {
                alive[op.device][op.chain] += op.samples;
            }
        }
    }

    computeStats(sched, result);
    if (!result.completed)
        ADAPIPE_OBS_COUNT("sim.incomplete", 1);
    return result;
}

} // namespace adapipe
