/**
 * @file
 * ASCII rendering of simulated pipeline timelines (used by the
 * schedule-explorer example and the Fig. 2/3 benches).
 */

#ifndef ADAPIPE_SIM_TIMELINE_H
#define ADAPIPE_SIM_TIMELINE_H

#include <string>

#include "sim/pipeline_sim.h"
#include "sim/schedule.h"

namespace adapipe {

/**
 * Render one device row per line. Forward passes print the
 * micro-batch digit (mb % 10), backward passes print a letter
 * ('a' + mb % 26), idle time prints '.'.
 *
 * @param sched the schedule that was simulated
 * @param result simulation result for @p sched
 * @param width number of character columns for the full iteration
 */
std::string renderTimeline(const Schedule &sched,
                           const SimResult &result, int width = 100);

} // namespace adapipe

#endif // ADAPIPE_SIM_TIMELINE_H
