/**
 * @file
 * Planner entry points for interleaved 1F1B (virtual stages).
 *
 * Extends the core planner with the virtual-stage dimension: a plan
 * with virtualStages = v splits the layer sequence into v * p chunks
 * (chunk g on device g % p) and executes them under Megatron's
 * interleaved schedule. The per-chunk recomputation knapsack runs
 * with the *exact* in-flight micro-batch counts read off the
 * interleaved device order (StageCostOptions::inflightOverride) and
 * a per-chunk share of the device memory, then the whole plan is
 * timed by the event-driven simulator — the interleaved schedule has
 * no Sec. 5.1 closed form.
 *
 * These functions live in sim/ (not core/) because they need the
 * schedule builder and simulator; adapipe_sim already links
 * adapipe_core, and the reverse edge would be a cycle.
 */

#ifndef ADAPIPE_SIM_INTERLEAVED_PLANNER_H
#define ADAPIPE_SIM_INTERLEAVED_PLANNER_H

#include "core/planner.h"
#include "sim/schedule.h"

namespace adapipe {

/**
 * Build a plan with @p v virtual chunks per device.
 *
 * v = 1 delegates to makePlan() (plain 1F1B, closed-form timing).
 * For v > 1: AdaPipe runs the adaptive-partition DP over the v * p
 * chunk boundaries (jointly with the per-chunk knapsack); Even
 * Partitioning and the DAPPLE baselines use the even chunk split
 * with their usual recomputation policies. Invalid configurations
 * (n % p != 0, v < 1) and memory-infeasible plans come back as
 * !ok with a diagnostic, never an abort.
 *
 * @param pm profiled model (carries t, p, d and the workload)
 * @param method planning method
 * @param v virtual chunks per device
 * @param opts stage-cost options (memory budget fraction, knobs)
 */
PlanResult makeInterleavedPlan(const ProfiledModel &pm,
                               PlanMethod method, int v,
                               StageCostOptions opts = {});

/**
 * Sweep v over {1, 2, 4} and return the feasible plan with the
 * smallest predicted iteration time (simulator and closed form agree
 * for 1F1B, so the totals are comparable across v). When no v is
 * feasible the result carries the v = 1 diagnosis.
 */
PlanResult makeBestSchedulePlan(const ProfiledModel &pm,
                                PlanMethod method,
                                StageCostOptions opts = {});

/**
 * Two-pass overlapped-recomputation planner.
 *
 * Pass 1 builds the ordinary (lazy-replay) plan via
 * makeInterleavedPlan. Its stage times are then run through the
 * event simulator to read off each device's idle (bubble) time; each
 * chunk gets a per-micro-batch share of its device's bubble as a
 * replay budget (StageCostOptions::overlapBubblePerMb), and pass 2
 * re-plans under the discounted knapsack objective: replay that the
 * runtime can hide inside recv/send waits no longer counts against
 * B_s, so the solver may *save less* (freeing memory) or shift the
 * partition. The returned plan has PipelinePlan::overlap = true and
 * carries the per-stage bubble / hidden / critical annotations the
 * runtime and the predicted-vs-measured tables consume.
 *
 * Only meaningful for PlanMethod::AdaPipe / EvenPartition (the
 * baselines' uniform policies ignore the budget); infeasible
 * configurations report !ok exactly like makeInterleavedPlan.
 */
PlanResult makeOverlapPlan(const ProfiledModel &pm, PlanMethod method,
                           int v, StageCostOptions opts = {});

/**
 * Exact peak in-flight micro-batches per chain position, read off a
 * static schedule's per-device order (+1 at each forward, -1 at each
 * backward of the position). Valid because every position executes
 * entirely on one device in that order. Exposed for tests and the
 * interleaved memory accounting.
 */
std::vector<int> chunkInflightPeaks(const Schedule &sched);

} // namespace adapipe

#endif // ADAPIPE_SIM_INTERLEAVED_PLANNER_H
