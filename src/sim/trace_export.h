/**
 * @file
 * Chrome-trace export of simulated timelines.
 *
 * Emits the Trace Event Format consumed by chrome://tracing and
 * Perfetto: one row per device, one complete ("X") event per
 * simulated forward/backward op. Lets users inspect schedules with
 * the same tooling they use for real profiler output.
 */

#ifndef ADAPIPE_SIM_TRACE_EXPORT_H
#define ADAPIPE_SIM_TRACE_EXPORT_H

#include <string>

#include "obs/registry.h"
#include "sim/pipeline_sim.h"
#include "sim/schedule.h"

namespace adapipe {

/**
 * Render the simulation as a Trace Event Format JSON document.
 *
 * @param sched the executed schedule
 * @param result its simulation result
 * @return JSON string (traceEvents array wrapped in an object)
 */
std::string toChromeTrace(const Schedule &sched,
                          const SimResult &result);

/**
 * As above, but additionally files the observability registry's
 * search spans under a second trace process ("planner"), so the
 * simulated device timeline and where the search spent its time can
 * be inspected in one chrome://tracing / Perfetto view.
 *
 * @param sched the executed schedule
 * @param result its simulation result
 * @param metrics search spans to include (may be empty)
 */
std::string toChromeTrace(const Schedule &sched,
                          const SimResult &result,
                          const obs::Registry &metrics);

} // namespace adapipe

#endif // ADAPIPE_SIM_TRACE_EXPORT_H
