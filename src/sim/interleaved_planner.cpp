#include "sim/interleaved_planner.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "core/partition_dp.h"
#include "obs/macros.h"
#include "sim/pipeline_sim.h"
#include "util/logging.h"
#include "util/units.h"

namespace adapipe {

std::vector<int>
chunkInflightPeaks(const Schedule &sched)
{
    std::vector<int> alive(sched.chainLength, 0);
    std::vector<int> peak(sched.chainLength, 0);
    for (const auto &order : sched.deviceOrder) {
        for (std::size_t idx : order) {
            const PipeOp &op = sched.ops[idx];
            if (op.kind == OpKind::Forward) {
                alive[op.pos] += op.samples;
                peak[op.pos] = std::max(peak[op.pos], alive[op.pos]);
            } else {
                alive[op.pos] -= op.samples;
            }
        }
    }
    return peak;
}

PlanResult
makeInterleavedPlan(const ProfiledModel &pm, PlanMethod method, int v,
                    StageCostOptions opts)
{
    if (v == 1)
        return makePlan(pm, method, opts);

    ADAPIPE_OBS_SPAN(obs_span, "planner.make_interleaved_plan");
    ADAPIPE_OBS_COUNT("planner.plans", 1);
    const int p = pm.par.pipeline;
    const int L = pm.numLayers();
    const int n = pm.train.microBatches(pm.par);
    PlanResult result;

    ParseResult<Schedule> built = tryBuildInterleaved1F1B(p, n, v);
    if (!built.ok()) {
        ADAPIPE_OBS_COUNT("planner.infeasible", 1);
        result.oomReason = built.error();
        return result;
    }
    const Schedule schedule = std::move(built).value();

    // Every chunk needs at least one attention block (same limit the
    // even partitioner has for plain stages).
    const int chunks = v * p;
    const int blocks = (L - 2) / 2;
    if (blocks < chunks) {
        ADAPIPE_OBS_COUNT("planner.infeasible", 1);
        std::ostringstream oss;
        oss << "interleaved partition cannot split " << blocks
            << " attention blocks across " << chunks
            << " virtual chunks (pipeline " << p
            << " * virtual_stages " << v << ")";
        result.oomReason = oss.str();
        return result;
    }

    // Chunk g's in-flight count is not min(p - g, n): read the exact
    // peaks off the interleaved device order. Each chunk plans
    // against 1/v of the device memory so a device's v chunks fit
    // together; the sum is re-checked exactly below.
    const Bytes real_cap = opts.memCapacityOverride > 0
                               ? opts.memCapacityOverride
                               : pm.memCapacity;
    StageCostOptions chunk_opts = opts;
    chunk_opts.inflightOverride = chunkInflightPeaks(schedule);
    chunk_opts.memCapacityOverride =
        std::max<Bytes>(1, real_cap / static_cast<Bytes>(v));

    StageCostCalculator calc(pm, chunks, n, chunk_opts);

#if ADAPIPE_OBS_ENABLED
    struct FlushStageCostStats
    {
        const StageCostCalculator &calc;
        ~FlushStageCostStats()
        {
            ADAPIPE_OBS_COUNT("stage_cost.cache_hits",
                              calc.cacheHits());
            ADAPIPE_OBS_COUNT("stage_cost.evaluations",
                              calc.evaluations());
            ADAPIPE_OBS_COUNT("stage_cost.memo_hits",
                              calc.memoHits());
            ADAPIPE_OBS_COUNT("stage_cost.memo_misses",
                              calc.memoMisses());
        }
    } flush_stats{calc};
#endif

    std::optional<RecomputeBaseline> baseline;
    if (method == PlanMethod::DappleFull)
        baseline = RecomputeBaseline::Full;
    else if (method == PlanMethod::DappleNon)
        baseline = RecomputeBaseline::None;
    else if (method == PlanMethod::DappleSelective)
        baseline = RecomputeBaseline::Selective;

    // AdaPipe partitions the chunk boundaries adaptively (the DP's
    // 1F1B objective over the v*p-position chain is a proxy for the
    // interleaved critical path — the final timing below comes from
    // the simulator). The baselines keep the even chunk split.
    std::vector<std::pair<int, int>> ranges;
    if (method == PlanMethod::AdaPipe) {
        const PartitionDpResult dp =
            solveAdaptivePartition(calc, L, chunks, n);
        if (!dp.feasible) {
            ADAPIPE_OBS_COUNT("planner.infeasible", 1);
            result.oomReason =
                "no memory-feasible interleaved partition";
            return result;
        }
        ranges = dp.ranges;
    } else {
        ranges = evenPartition(L, chunks);
    }

    PipelinePlan plan;
    plan.method = method;
    plan.par = pm.par;
    plan.train = pm.train;
    plan.microBatches = n;
    plan.virtualStages = v;

    std::vector<StageTimes> times(chunks);
    for (int g = 0; g < chunks; ++g) {
        const auto [i, j] = ranges[g];
        const StageCost c = baseline
                                ? calc.baselineCost(g, i, j, *baseline)
                                : calc.cost(g, i, j);
        if (!c.feasible) {
            ADAPIPE_OBS_COUNT("planner.infeasible", 1);
            std::ostringstream oss;
            oss << "chunk " << g << " (device " << g % p << ", layers "
                << i << "-" << j << ") needs " << formatBytes(c.memPeak)
                << " of its " << formatBytes(calc.capacity())
                << " share (capacity / " << v << ")";
            result.oomReason = oss.str();
            return result;
        }
        StagePlan sp;
        sp.firstLayer = i;
        sp.lastLayer = j;
        sp.timeFwd = c.fwd;
        sp.timeBwd = c.bwd;
        sp.memPeak = c.memPeak;
        sp.savedUnits = c.recompute.savedUnits;
        sp.totalUnits = c.totalUnits;
        sp.savedMask = c.recompute.saved;
        sp.overlapBubble = calc.overlapBubble(g);
        sp.timeReplayHidden = c.replayHidden;
        sp.timeReplayCritical = c.replayCritical;
        sp.offloadMask = c.recompute.offloaded;
        sp.offloadBytes = c.offloadBytes;
        sp.offloadFetchUs = c.offloadExposed * 1e6;
        if (c.offloadedUnits > 0)
            plan.offload = true;
        plan.stages.push_back(std::move(sp));
        times[g] = {c.fwd, c.bwd};
    }

    // The per-chunk capacity/v budgeting is conservative, not exact:
    // verify the real constraint — device d's v chunks together fit
    // the device.
    for (int d = 0; d < p; ++d) {
        Bytes total = 0;
        for (int c = 0; c < v; ++c)
            total += plan.stages[c * p + d].memPeak;
        if (total > real_cap) {
            ADAPIPE_OBS_COUNT("planner.infeasible", 1);
            std::ostringstream oss;
            oss << "device " << d << "'s " << v << " chunks need "
                << formatBytes(total) << " of "
                << formatBytes(real_cap);
            result.oomReason = oss.str();
            return result;
        }
    }

    // P2P is already charged inside the stage times (includeP2p), so
    // the simulator runs with zero transfer cost; warmup/ending have
    // no closed form for the interleaved schedule and are folded
    // into total.
    const SimResult sim = simulate(schedule, times, {});
    plan.timing.warmup = 0;
    plan.timing.ending = 0;
    plan.timing.total = sim.iterationTime;
    Seconds steady = 0;
    for (int d = 0; d < p; ++d) {
        Seconds per_mb = 0;
        for (int c = 0; c < v; ++c)
            per_mb += times[c * p + d].fwd + times[c * p + d].bwd;
        steady = std::max(steady, per_mb);
    }
    plan.timing.steadyPerMb = steady;

    result.ok = true;
    result.plan = std::move(plan);
    return result;
}

PlanResult
makeOverlapPlan(const ProfiledModel &pm, PlanMethod method, int v,
                StageCostOptions opts)
{
    ADAPIPE_OBS_SPAN(obs_span, "planner.make_overlap_plan");

    // Pass 1: the lazy plan fixes the stage times the bubble budget
    // is derived from.
    PlanResult lazy = makeInterleavedPlan(pm, method, v, opts);
    if (!lazy.ok)
        return lazy;

    const int p = pm.par.pipeline;
    const int n = lazy.plan.microBatches;
    const int chunks = v * p;

    ParseResult<Schedule> built = tryBuildInterleaved1F1B(p, n, v);
    if (!built.ok()) {
        PlanResult result;
        result.oomReason = built.error();
        return result;
    }
    const Schedule schedule = std::move(built).value();

    std::vector<StageTimes> times(chunks);
    for (int g = 0; g < chunks; ++g)
        times[g] = {lazy.plan.stages[g].timeFwd,
                    lazy.plan.stages[g].timeBwd};
    const SimResult sim = simulate(schedule, times, {});

    // Each device's idle time, spread over its v chunks and the n
    // micro-batches each chunk replays, is the per-micro-batch budget
    // a chunk may hide replay in. The division is conservative — the
    // runtime warms at most one micro-batch per bubble visit anyway.
    StageCostOptions overlap_opts = opts;
    overlap_opts.overlapBubblePerMb.assign(chunks, 0);
    for (int g = 0; g < chunks; ++g) {
        const Seconds idle =
            std::max<Seconds>(0, sim.bubbleTime(g % p));
        overlap_opts.overlapBubblePerMb[g] =
            idle / (static_cast<double>(n) * v);
    }

    // Pass 2: re-plan under the discounted objective. Memory only
    // ever shrinks under the discount (the solver saves a subset of
    // what it would otherwise), so pass 2 cannot become infeasible
    // when pass 1 was feasible — but report honestly if it somehow
    // does.
    PlanResult overlapped =
        makeInterleavedPlan(pm, method, v, overlap_opts);
    if (!overlapped.ok)
        return overlapped;
    overlapped.plan.overlap = true;
    return overlapped;
}

PlanResult
makeBestSchedulePlan(const ProfiledModel &pm, PlanMethod method,
                     StageCostOptions opts)
{
    ADAPIPE_OBS_SPAN(obs_span, "planner.make_best_schedule_plan");
    PlanResult best;
    PlanResult first_failure;
    bool have_failure = false;
    // With offload requested, sweep it {off, on} alongside v: a
    // degenerate host link can make the recompute-only plan faster,
    // and a healthy one can unlock deeper interleaving.
    std::vector<bool> offload_axis = {false};
    if (opts.offload.enabled)
        offload_axis.push_back(true);
    for (int v : {1, 2, 4}) {
        for (bool use_offload : offload_axis) {
            StageCostOptions sweep = opts;
            sweep.offload.enabled = use_offload;
            PlanResult r = makeInterleavedPlan(pm, method, v, sweep);
            if (!r.ok) {
                if (!have_failure) {
                    first_failure = std::move(r);
                    have_failure = true;
                }
                continue;
            }
            if (!best.ok ||
                r.plan.timing.total < best.plan.timing.total)
                best = std::move(r);
        }
    }
    if (best.ok)
        return best;
    return first_failure;
}

} // namespace adapipe
