#include "sim/baseline_eval.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/partition_dp.h"
#include "memory/memory_model.h"
#include "util/logging.h"

namespace adapipe {

namespace {

/** Compose the OOM message for the first over-capacity device. */
std::string
oomMessage(const std::vector<Bytes> &mem, Bytes capacity)
{
    for (std::size_t d = 0; d < mem.size(); ++d) {
        if (mem[d] > capacity) {
            std::ostringstream oss;
            oss << "device " << d << " needs " << formatBytes(mem[d])
                << " of " << formatBytes(capacity);
            return oss.str();
        }
    }
    return "";
}

} // namespace

const char *
baselineScheduleName(BaselineSchedule sched)
{
    switch (sched) {
      case BaselineSchedule::Dapple: return "DAPPLE";
      case BaselineSchedule::GPipe: return "GPipe";
      case BaselineSchedule::Chimera: return "Chimera";
      case BaselineSchedule::ChimeraD: return "ChimeraD";
    }
    return "?";
}

EndToEndResult
simulatePlan(const ProfiledModel &pm, const PipelinePlan &plan)
{
    const int p = static_cast<int>(plan.stages.size());
    ADAPIPE_ASSERT(p == pm.par.pipeline,
                   "plan does not match the profiled model");
    std::vector<StageTimes> times;
    times.reserve(p);
    for (const auto &sp : plan.stages)
        times.push_back({sp.timeFwd, sp.timeBwd});

    // P2P time is already charged inside the stage times by the
    // planner (StageCostOptions::includeP2p), so the simulator runs
    // with zero transfer cost to avoid double counting.
    const SimResult sim =
        simulate(build1F1B(p, plan.microBatches), times, {});

    EndToEndResult result;
    result.feasible = true;
    result.iterationTime = sim.iterationTime;
    result.peakAlive = sim.peakAlive;
    result.bubbleTime = sim.totalBubbleTime();
    for (const auto &sp : plan.stages) {
        result.deviceMem.push_back(sp.memPeak);
        result.microStepTime.push_back(sp.timeFwd + sp.timeBwd);
    }
    return result;
}

namespace {

/** Per-micro-batch saved activations under a uniform policy. */
Bytes
activationsPerMb(const MemoryModel &mem_model, const ProfiledModel &pm,
                 RecomputeBaseline mode, int i, int j)
{
    switch (mode) {
      case RecomputeBaseline::Full:
        return mem_model.fullRecomputeSavedPerMb(pm.rawLayers, i, j);
      case RecomputeBaseline::None:
        return mem_model.noRecomputeSavedPerMb(pm.rawLayers, i, j);
      case RecomputeBaseline::Selective:
        return mem_model.selectiveRecomputeSavedPerMb(pm.rawLayers, i,
                                                      j);
    }
    return 0;
}

/** Rematerialisation buffer under a uniform policy. */
Bytes
bufferBytes(const MemoryModel &mem_model, const ProfiledModel &pm,
            RecomputeBaseline mode, int i, int j)
{
    switch (mode) {
      case RecomputeBaseline::Full:
        return mem_model.recomputeBufferBytes(pm.rawLayers, i, j);
      case RecomputeBaseline::None:
        return 0;
      case RecomputeBaseline::Selective: {
        // Bounded by one layer's recomputed attention internals.
        Bytes buf = 0;
        for (int l = i; l <= j; ++l) {
            Bytes layer = 0;
            for (const auto &u : pm.rawLayers[l].units) {
                if (u.kind == UnitKind::AttnScores ||
                    u.kind == UnitKind::AttnSoftmax ||
                    u.kind == UnitKind::AttnContext) {
                    layer += u.memSaved;
                }
            }
            buf = std::max(buf, layer);
        }
        return buf;
      }
    }
    return 0;
}

} // namespace

EndToEndResult
evaluateBaseline(const ProfiledModel &pm, BaselineSchedule sched,
                 RecomputeBaseline mode, StageCostOptions opts)
{
    const int p = pm.par.pipeline;
    const int n = pm.train.microBatches(pm.par);
    const auto ranges = evenPartition(pm.numLayers(), p);
    StageCostCalculator calc(pm, p, n, opts);
    MemoryModel mem_model(pm.model, pm.train, pm.par, pm.optimizer);

    // Per-stage times and per-micro-batch activation bytes.
    std::vector<StageTimes> times(p);
    std::vector<Bytes> act_per_mb(p);
    std::vector<StaticMemory> static_mem(p);
    std::vector<Bytes> buffer(p, 0);
    for (int s = 0; s < p; ++s) {
        const auto [i, j] = ranges[s];
        const StageCost c = calc.baselineCost(s, i, j, mode);
        times[s] = {c.fwd, c.bwd};
        static_mem[s] =
            mem_model.staticMemory(pm.rangeParams(i, j));
        const Bytes input = (i > 0) ? pm.stageInputBytes : 0;
        act_per_mb[s] =
            input + activationsPerMb(mem_model, pm, mode, i, j);
        buffer[s] = bufferBytes(mem_model, pm, mode, i, j);
    }

    Schedule schedule;
    switch (sched) {
      case BaselineSchedule::Dapple:
        schedule = build1F1B(p, n);
        break;
      case BaselineSchedule::GPipe:
        schedule = buildGPipe(p, n);
        break;
      case BaselineSchedule::Chimera:
        schedule = buildChimera(p, n);
        break;
      case BaselineSchedule::ChimeraD:
        schedule = buildChimeraD(p, n);
        break;
    }

    const SimResult sim = simulate(schedule, times, {pm.p2pTime});

    EndToEndResult result;
    result.iterationTime = sim.iterationTime;
    result.peakAlive = sim.peakAlive;
    result.bubbleTime = sim.totalBubbleTime();
    result.deviceMem.resize(p);
    result.microStepTime.resize(p);
    for (int d = 0; d < p; ++d)
        result.microStepTime[d] = times[d].fwd + times[d].bwd;

    const bool bidirectional = schedule.numChains == 2;
    for (int d = 0; d < p; ++d) {
        Bytes static_total = static_mem[d].total();
        Bytes act = act_per_mb[d];
        Bytes buf = buffer[d];
        if (bidirectional) {
            // Device d also hosts the opposite chain's stage p-1-d:
            // parameters and gradients are duplicated, but the two
            // chains form a data-parallel pair, so ZeRO-1 shards the
            // optimizer states over twice as many ranks. Peak alive
            // counts both chains, so charge the average
            // per-micro-batch footprint.
            const int mirror = p - 1 - d;
            static_total = static_mem[d].params + static_mem[d].grads +
                           static_mem[mirror].params +
                           static_mem[mirror].grads +
                           (static_mem[d].optimizer +
                            static_mem[mirror].optimizer) /
                               2;
            act = (act_per_mb[d] + act_per_mb[mirror]) / 2;
            buf = std::max(buf, buffer[mirror]);
        }
        result.deviceMem[d] =
            static_total + buf +
            static_cast<Bytes>(sim.peakAlive[d]) * act;
    }

    const std::string oom =
        oomMessage(result.deviceMem, pm.memCapacity);
    result.feasible = oom.empty();
    result.oomReason = oom;
    return result;
}

EndToEndResult
evaluateBPipe(const ProfiledModel &pm, RecomputeBaseline mode,
              StageCostOptions opts)
{
    const int p = pm.par.pipeline;
    const int n = pm.train.microBatches(pm.par);
    const auto ranges = evenPartition(pm.numLayers(), p);
    StageCostCalculator calc(pm, p, n, opts);
    MemoryModel mem_model(pm.model, pm.train, pm.par, pm.optimizer);

    // Per-stage activation demand and per-device budget.
    std::vector<StageTimes> times(p);
    std::vector<Bytes> act_per_mb(p);
    std::vector<std::int64_t> act_budget(p);
    std::vector<std::int64_t> overflow(p); // demand - budget
    for (int s = 0; s < p; ++s) {
        const auto [i, j] = ranges[s];
        const StageCost c = calc.baselineCost(s, i, j, mode);
        times[s] = {c.fwd, c.bwd};
        const Bytes input = (i > 0) ? pm.stageInputBytes : 0;
        act_per_mb[s] =
            input + activationsPerMb(mem_model, pm, mode, i, j);
        const Bytes fixed =
            mem_model.staticMemory(pm.rangeParams(i, j)).total() +
            bufferBytes(mem_model, pm, mode, i, j);
        act_budget[s] = static_cast<std::int64_t>(pm.memCapacity) -
                        static_cast<std::int64_t>(fixed);
        const std::int64_t demand =
            static_cast<std::int64_t>(calc.inflight(s)) *
            static_cast<std::int64_t>(act_per_mb[s]);
        overflow[s] = demand - act_budget[s];
    }

    // Balance within pairs (s, p-1-s); eviction adds two inter-node
    // transfers per evicted byte per micro-batch on both partners.
    EndToEndResult result;
    result.feasible = true;
    result.deviceMem.resize(p);
    result.microStepTime.resize(p);
    std::vector<std::int64_t> used_act(p);
    for (int s = 0; s < p; ++s) {
        used_act[s] = static_cast<std::int64_t>(calc.inflight(s)) *
                      static_cast<std::int64_t>(act_per_mb[s]);
    }
    for (int s = 0; s < p / 2; ++s) {
        const int partner = p - 1 - s;
        // The early stage overflows (more in-flight micro-batches);
        // the late one has the spare capacity.
        const std::int64_t spare =
            std::max<std::int64_t>(0, -overflow[partner]);
        const std::int64_t want =
            std::max<std::int64_t>(0, overflow[s]);
        const std::int64_t moved = std::min(want, spare);
        const std::int64_t residual = want - moved;
        if (residual > 0) {
            result.feasible = false;
            std::ostringstream oss;
            oss << "stage " << s << " overflows its pair by "
                << formatBytes(static_cast<Bytes>(residual));
            result.oomReason = oss.str();
        }
        used_act[s] -= moved;
        used_act[partner] += moved;
        if (moved > 0) {
            // Per micro-batch: evict after forward, fetch before
            // backward — two transfers through the inter-stage
            // path, occupying both partners.
            const double per_mb =
                static_cast<double>(moved) / calc.inflight(s);
            const Seconds cost =
                2.0 * (pm.p2pTime + per_mb / pm.p2pBandwidth);
            times[s].fwd += cost / 2;
            times[s].bwd += cost / 2;
            times[partner].fwd += cost / 2;
            times[partner].bwd += cost / 2;
        }
    }
    for (int s = 0; s < p; ++s) {
        const Bytes fixed = static_cast<Bytes>(
            static_cast<std::int64_t>(pm.memCapacity) -
            act_budget[s]);
        result.deviceMem[s] =
            fixed + static_cast<Bytes>(
                        std::max<std::int64_t>(0, used_act[s]));
    }

    const SimResult sim =
        simulate(build1F1B(p, n), times, {pm.p2pTime});
    result.iterationTime = sim.iterationTime;
    result.peakAlive = sim.peakAlive;
    result.bubbleTime = sim.totalBubbleTime();
    for (int d = 0; d < p; ++d)
        result.microStepTime[d] = times[d].fwd + times[d].bwd;
    return result;
}

EndToEndResult
evaluateInterleaved(const ProfiledModel &pm, int v,
                    RecomputeBaseline mode, StageCostOptions opts)
{
    const int p = pm.par.pipeline;
    const int n = pm.train.microBatches(pm.par);

    // Reject invalid (p, n, v) combinations as an infeasible result
    // (with the builder's field-naming diagnostic) instead of
    // aborting — v comes straight from CLI/bench sweeps.
    ParseResult<Schedule> built = tryBuildInterleaved1F1B(p, n, v);
    if (!built.ok()) {
        EndToEndResult result;
        result.feasible = false;
        result.oomReason = built.error();
        return result;
    }

    // Chunk the layer sequence into v * p virtual stages; chunk g
    // runs on device g % p. Every chunk needs at least one attention
    // block for the even split to exist.
    const int chunks = v * p;
    const int blocks = (pm.numLayers() - 2) / 2;
    if (blocks < chunks) {
        EndToEndResult result;
        result.feasible = false;
        std::ostringstream oss;
        oss << "interleaved partition cannot split " << blocks
            << " attention blocks across " << chunks
            << " virtual chunks (pipeline " << p
            << " * virtual_stages " << v << ")";
        result.oomReason = oss.str();
        return result;
    }
    const auto ranges = evenPartition(pm.numLayers(), chunks);
    StageCostCalculator calc(pm, p, n, opts);
    MemoryModel mem_model(pm.model, pm.train, pm.par, pm.optimizer);

    std::vector<StageTimes> times(chunks);
    std::vector<Bytes> act_per_mb(chunks);
    std::vector<Bytes> static_mem(chunks);
    std::vector<Bytes> buffer(chunks, 0);
    for (int g = 0; g < chunks; ++g) {
        const auto [i, j] = ranges[g];
        // Times are position-independent; use stage 0's view.
        const StageCost c = calc.baselineCost(0, i, j, mode);
        times[g] = {c.fwd, c.bwd};
        static_mem[g] =
            mem_model.staticMemory(pm.rangeParams(i, j)).total();
        const Bytes input = (i > 0) ? pm.stageInputBytes : 0;
        act_per_mb[g] =
            input + activationsPerMb(mem_model, pm, mode, i, j);
        buffer[g] = bufferBytes(mem_model, pm, mode, i, j);
    }

    const Schedule schedule = std::move(built).value();
    const SimResult sim = simulate(schedule, times, {pm.p2pTime});

    EndToEndResult result;
    result.iterationTime = sim.iterationTime;
    result.peakAlive = sim.peakAlive;
    result.bubbleTime = sim.totalBubbleTime();
    result.deviceMem.resize(p);
    result.microStepTime.assign(p, 0);
    for (int d = 0; d < p; ++d) {
        Bytes static_total = 0;
        Bytes act_avg = 0;
        Bytes buf = 0;
        for (int c = 0; c < v; ++c) {
            const int g = c * p + d;
            static_total += static_mem[g];
            act_avg += act_per_mb[g];
            buf = std::max(buf, buffer[g]);
            result.microStepTime[d] += times[g].fwd + times[g].bwd;
        }
        act_avg /= v;
        result.deviceMem[d] =
            static_total + buf +
            static_cast<Bytes>(sim.peakAlive[d]) * act_avg;
    }

    const std::string oom =
        oomMessage(result.deviceMem, pm.memCapacity);
    result.feasible = oom.empty();
    result.oomReason = oom;
    return result;
}

} // namespace adapipe
