/**
 * @file
 * Minimal JSON reader/writer (no external dependencies).
 *
 * Produces deterministic, order-preserving JSON for plan export and
 * trace files, and parses the same subset back. User-supplied
 * documents go through tryParse(), which reports malformed input
 * (including duplicate object keys) through ParseResult instead of
 * terminating; parse() is the fatal convenience for trusted,
 * self-produced text.
 */

#ifndef ADAPIPE_UTIL_JSON_H
#define ADAPIPE_UTIL_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/parse_result.h"

namespace adapipe {

/**
 * A JSON value: null, bool, number, string, array or object.
 * Build with the static factories, render with dump().
 */
class JsonValue
{
  public:
    /** @return a JSON null. */
    static JsonValue null();
    /** @return a JSON boolean. */
    static JsonValue boolean(bool value);
    /** @return a JSON number (doubles render shortest-round-trip). */
    static JsonValue number(double value);
    /** @return a JSON integer (rendered without exponent). */
    static JsonValue integer(std::int64_t value);
    /** @return a JSON string (escaped on dump). */
    static JsonValue string(std::string value);
    /** @return an empty JSON array. */
    static JsonValue array();
    /** @return an empty JSON object. */
    static JsonValue object();

    /** Append an element; panics unless this is an array. */
    void push(JsonValue value);

    /** Set a key; panics unless this is an object. */
    void set(const std::string &key, JsonValue value);

    /** @name Introspection (used by the plan reader)
     *  @{
     */
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const
    {
        return kind_ == Kind::Number || kind_ == Kind::Integer;
    }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const;
    double asNumber() const;
    std::int64_t asInteger() const;
    const std::string &asString() const;
    /** Array elements; panics unless array. */
    const std::vector<JsonValue> &elements() const;
    /** Object lookup; panics when missing. */
    const JsonValue &at(const std::string &key) const;
    /** @return whether the object has @p key. */
    bool contains(const std::string &key) const;
    /** Object members in insertion order; panics unless object. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;
    /** @} */

    /**
     * Render to a string.
     * @param indent spaces per level; 0 = compact single line
     */
    std::string dump(int indent = 0) const;

    /**
     * Parse a JSON document (subset: no unicode escapes beyond
     * \\uXXXX pass-through, no comments). ADAPIPE_FATAL on malformed
     * input; use tryParse for untrusted text.
     */
    static JsonValue parse(const std::string &text);

    /**
     * Parse a JSON document without terminating on malformed input.
     * Rejects duplicate object keys. Errors carry the byte offset
     * and what was expected there.
     */
    static ParseResult<JsonValue> tryParse(const std::string &text);

  private:
    enum class Kind {
        Null,
        Bool,
        Number,
        Integer,
        String,
        Array,
        Object,
    };

    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0;
    std::int64_t integer_ = 0;
    std::string string_;
    std::vector<JsonValue> elements_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace adapipe

#endif // ADAPIPE_UTIL_JSON_H
