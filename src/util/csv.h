/**
 * @file
 * CSV writer so bench output can be post-processed (plotting) in
 * addition to the human-readable ASCII tables.
 */

#ifndef ADAPIPE_UTIL_CSV_H
#define ADAPIPE_UTIL_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace adapipe {

/**
 * Streaming CSV writer with RFC-4180 quoting.
 *
 * The writer does not own the stream; callers keep it alive for the
 * writer's lifetime.
 */
class CsvWriter
{
  public:
    /** Bind the writer to @p os and emit the header row. */
    CsvWriter(std::ostream &os, std::vector<std::string> headers);

    /** Write one data row; must match the header column count. */
    void writeRow(const std::vector<std::string> &cells);

    /** @return rows written (excluding the header). */
    std::size_t rowCount() const { return rows_; }

  private:
    void writeCells(const std::vector<std::string> &cells);

    std::ostream &os_;
    std::size_t columns_;
    std::size_t rows_ = 0;
};

/** Quote a single CSV field per RFC 4180 when necessary. */
std::string csvQuote(const std::string &field);

} // namespace adapipe

#endif // ADAPIPE_UTIL_CSV_H
