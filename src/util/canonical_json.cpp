#include "util/canonical_json.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

namespace adapipe {

JsonValue
canonicalJson(const JsonValue &value)
{
    if (value.isArray()) {
        JsonValue out = JsonValue::array();
        for (const JsonValue &element : value.elements())
            out.push(canonicalJson(element));
        return out;
    }
    if (value.isObject()) {
        // Sort the keys and rebuild the object in sorted order.
        // Duplicate keys cannot occur: the parser rejects them and
        // set() overwrites.
        std::vector<std::string> keys;
        keys.reserve(value.members().size());
        for (const auto &[key, member] : value.members()) {
            (void)member;
            keys.push_back(key);
        }
        std::sort(keys.begin(), keys.end());
        JsonValue out = JsonValue::object();
        for (const std::string &key : keys)
            out.set(key, canonicalJson(value.at(key)));
        return out;
    }
    return value;
}

std::string
canonicalJsonString(const JsonValue &value)
{
    return canonicalJson(value).dump(0);
}

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t h = 14695981039346656037ULL; // FNV offset basis
    for (char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL; // FNV prime
    }
    return h;
}

std::string
hex16(std::uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return std::string(buf);
}

std::string
jsonFingerprint(const JsonValue &value)
{
    return hex16(fnv1a64(canonicalJsonString(value)));
}

} // namespace adapipe
