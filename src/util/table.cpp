#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace adapipe {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    ADAPIPE_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    ADAPIPE_ASSERT(cells.size() <= headers_.size(),
                   "row has ", cells.size(), " cells but table has ",
                   headers_.size(), " columns");
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << " " << cells[c]
               << std::string(widths[c] - cells[c].size(), ' ') << " |";
        }
        os << "\n";
    };

    print_row(headers_);
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

std::string
Table::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

} // namespace adapipe
