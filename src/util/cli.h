/**
 * @file
 * Tiny command-line flag parser for the examples and tools.
 *
 * Supports "--name value" and "--name=value" long flags plus bare
 * "--switch" booleans. Unknown flags are fatal (user error), so
 * typos do not silently fall through to defaults.
 */

#ifndef ADAPIPE_UTIL_CLI_H
#define ADAPIPE_UTIL_CLI_H

#include <map>
#include <string>
#include <vector>

namespace adapipe {

/**
 * Declarative flag set.
 *
 * @code
 *   CliParser cli("export_plan");
 *   cli.addString("model", "gpt3", "model preset");
 *   cli.addInt("seq", 8192, "sequence length");
 *   cli.addFlag("verbose", "print progress");
 *   cli.parse(argc, argv);
 *   int seq = cli.getInt("seq");
 * @endcode
 */
class CliParser
{
  public:
    /** @param program name shown in the usage text. */
    explicit CliParser(std::string program);

    /** Declare a string flag with a default. */
    void addString(const std::string &name, std::string def,
                   std::string help);

    /** Declare an integer flag with a default. */
    void addInt(const std::string &name, long long def,
                std::string help);

    /** Declare a boolean switch (default false). */
    void addFlag(const std::string &name, std::string help);

    /**
     * Parse argv. "--help" prints usage and exits(0). Unknown flags,
     * missing values and non-numeric integers are fatal.
     */
    void parse(int argc, const char *const *argv);

    /** @return value of a declared string flag. */
    const std::string &getString(const std::string &name) const;

    /** @return value of a declared integer flag. */
    long long getInt(const std::string &name) const;

    /** @return whether a declared switch was given. */
    bool getFlag(const std::string &name) const;

    /** @return positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** @return the usage text. */
    std::string usage() const;

  private:
    enum class Kind { String, Int, Flag };

    struct Option
    {
        Kind kind;
        std::string value;
        std::string def;
        std::string help;
        bool flag_set = false;
        /** Range-checked numeral, stored at parse time (Int only). */
        long long int_value = 0;
    };

    const Option &find(const std::string &name, Kind kind) const;

    std::string program_;
    std::vector<std::string> order_;
    std::map<std::string, Option> options_;
    std::vector<std::string> positional_;
};

} // namespace adapipe

#endif // ADAPIPE_UTIL_CLI_H
