/**
 * @file
 * Expected-style result type for recoverable input errors.
 *
 * Everything reachable from user-supplied files or flags (JSON
 * documents, plan/profile/fault-spec loaders) reports malformed
 * input through ParseResult instead of ADAPIPE_FATAL, so a CLI can
 * print one clean diagnostic and exit nonzero, and a long-running
 * service embedding the library never aborts on bad input. Error
 * messages carry a dotted field path ("plan.stages[2].mem_peak: ...")
 * so the user can find the offending byte without a debugger.
 */

#ifndef ADAPIPE_UTIL_PARSE_RESULT_H
#define ADAPIPE_UTIL_PARSE_RESULT_H

#include <string>
#include <utility>

#include "util/logging.h"

namespace adapipe {

/**
 * Either a parsed value or an error message; never both.
 *
 * @code
 *   ParseResult<PipelinePlan> r = tryPlanFromJsonString(text);
 *   if (!r.ok()) {
 *       std::cerr << prog << ": error: " << r.error() << "\n";
 *       return 1;
 *   }
 *   use(r.value());
 * @endcode
 */
template <typename T>
class [[nodiscard]] ParseResult
{
  public:
    /** @return a successful result owning @p value. */
    static ParseResult
    success(T value)
    {
        ParseResult r;
        r.ok_ = true;
        r.value_ = std::move(value);
        return r;
    }

    /** @return a failed result carrying @p message. */
    static ParseResult
    failure(std::string message)
    {
        ParseResult r;
        r.error_ = std::move(message);
        return r;
    }

    /** @return whether a value is present. */
    bool ok() const { return ok_; }
    explicit operator bool() const { return ok_; }

    /** @return the value; panics when !ok() (caller must check). */
    const T &
    value() const &
    {
        ADAPIPE_ASSERT(ok_, "value() on failed ParseResult: ", error_);
        return value_;
    }

    /** @return the value by move; panics when !ok(). */
    T &&
    value() &&
    {
        ADAPIPE_ASSERT(ok_, "value() on failed ParseResult: ", error_);
        return std::move(value_);
    }

    /** @return the error message; panics when ok(). */
    const std::string &
    error() const
    {
        ADAPIPE_ASSERT(!ok_, "error() on successful ParseResult");
        return error_;
    }

  private:
    bool ok_ = false;
    T value_{};
    std::string error_;
};

/** Value for ParseResult<> uses that carry no payload. */
struct Nothing
{};

/** Result of a validation-only operation (apply, write, ...). */
using ParseStatus = ParseResult<Nothing>;

/** @return a successful ParseStatus. */
inline ParseStatus
parseOk()
{
    return ParseStatus::success(Nothing{});
}

} // namespace adapipe

#endif // ADAPIPE_UTIL_PARSE_RESULT_H
