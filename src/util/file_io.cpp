#include "util/file_io.h"

#include <fstream>
#include <sstream>

namespace adapipe {

ParseResult<std::string>
readTextFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        return ParseResult<std::string>::failure(
            path + ": cannot open file for reading");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        return ParseResult<std::string>::failure(
            path + ": read error");
    }
    return ParseResult<std::string>::success(buffer.str());
}

ParseStatus
writeTextFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out.good())
        return ParseStatus::failure(path +
                                    ": cannot open file for writing");
    out << content;
    out.flush();
    if (!out.good())
        return ParseStatus::failure(path + ": write error");
    return parseOk();
}

} // namespace adapipe
