#include "util/units.h"

#include <array>
#include <cstdio>

namespace adapipe {

std::string
formatBytes(Bytes bytes, int precision)
{
    static const std::array<const char *, 5> suffixes = {
        "B", "KiB", "MiB", "GiB", "TiB"};
    double value = static_cast<double>(bytes);
    std::size_t idx = 0;
    while (value >= 1024.0 && idx + 1 < suffixes.size()) {
        value /= 1024.0;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f %s", precision, value,
                  suffixes[idx]);
    return buf;
}

std::string
formatSeconds(Seconds seconds, int precision)
{
    const char *suffix = "s";
    double value = seconds;
    if (seconds < 1e-6) {
        value = seconds * 1e9;
        suffix = "ns";
    } else if (seconds < 1e-3) {
        value = seconds * 1e6;
        suffix = "us";
    } else if (seconds < 1.0) {
        value = seconds * 1e3;
        suffix = "ms";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f %s", precision, value, suffix);
    return buf;
}

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

} // namespace adapipe
