#include "util/cli.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.h"

namespace adapipe {

namespace {

/**
 * Bad command lines are user errors, not library bugs: print a
 * conventional "prog: error: ..." diagnostic and exit nonzero
 * without the ADAPIPE_FATAL file/line noise.
 */
[[noreturn]] void
usageError(const std::string &program, const std::string &msg)
{
    std::fprintf(stderr, "%s: error: %s\n", program.c_str(),
                 msg.c_str());
    std::exit(1);
}

} // namespace

CliParser::CliParser(std::string program)
    : program_(std::move(program))
{}

void
CliParser::addString(const std::string &name, std::string def,
                     std::string help)
{
    ADAPIPE_ASSERT(!options_.count(name), "duplicate flag --", name);
    options_[name] =
        Option{Kind::String, def, std::move(def), std::move(help)};
    order_.push_back(name);
}

void
CliParser::addInt(const std::string &name, long long def,
                  std::string help)
{
    ADAPIPE_ASSERT(!options_.count(name), "duplicate flag --", name);
    const std::string text = std::to_string(def);
    Option opt{Kind::Int, text, text, std::move(help)};
    opt.int_value = def;
    options_[name] = std::move(opt);
    order_.push_back(name);
}

void
CliParser::addFlag(const std::string &name, std::string help)
{
    ADAPIPE_ASSERT(!options_.count(name), "duplicate flag --", name);
    options_[name] =
        Option{Kind::Flag, "false", "false", std::move(help)};
    order_.push_back(name);
}

std::string
CliParser::usage() const
{
    std::ostringstream oss;
    oss << "usage: " << program_ << " [options]\n";
    for (const std::string &name : order_) {
        const Option &opt = options_.at(name);
        oss << "  --" << name;
        if (opt.kind != Kind::Flag)
            oss << " <" << (opt.kind == Kind::Int ? "int" : "str")
                << ">";
        oss << "  " << opt.help;
        if (opt.kind != Kind::Flag)
            oss << " (default: " << opt.def << ")";
        oss << "\n";
    }
    return oss.str();
}

void
CliParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(std::move(arg));
            continue;
        }
        arg = arg.substr(2);
        if (arg == "help") {
            std::fputs(usage().c_str(), stdout);
            std::exit(0);
        }
        std::string value;
        bool has_value = false;
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_value = true;
        }
        auto it = options_.find(arg);
        if (it == options_.end())
            usageError(program_,
                       "unknown flag --" + arg + "\n" + usage());
        Option &opt = it->second;
        if (opt.kind == Kind::Flag) {
            if (has_value)
                usageError(program_,
                           "switch --" + arg + " takes no value");
            opt.flag_set = true;
            opt.value = "true";
            continue;
        }
        if (!has_value) {
            if (i + 1 >= argc)
                usageError(program_,
                           "flag --" + arg + " needs a value");
            value = argv[++i];
        }
        if (opt.kind == Kind::Int) {
            // strtoll reports overflow through errno only: the end
            // pointer still consumes every digit of "1" followed by
            // 25 nines, so an unchecked parse would hand getInt() a
            // numeral that std::stoll aborts on.
            char *end = nullptr;
            errno = 0;
            const long long parsed =
                std::strtoll(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0')
                usageError(program_, "flag --" + arg +
                                         " needs an integer, got '" +
                                         value + "'");
            if (errno == ERANGE)
                usageError(program_,
                           "flag --" + arg +
                               " is out of range for a 64-bit "
                               "integer: '" +
                               value + "'");
            opt.int_value = parsed;
        }
        opt.value = std::move(value);
    }
}

const CliParser::Option &
CliParser::find(const std::string &name, Kind kind) const
{
    auto it = options_.find(name);
    ADAPIPE_ASSERT(it != options_.end(), "undeclared flag --", name);
    ADAPIPE_ASSERT(it->second.kind == kind, "flag --", name,
                   " accessed with the wrong type");
    return it->second;
}

const std::string &
CliParser::getString(const std::string &name) const
{
    return find(name, Kind::String).value;
}

long long
CliParser::getInt(const std::string &name) const
{
    return find(name, Kind::Int).int_value;
}

bool
CliParser::getFlag(const std::string &name) const
{
    return find(name, Kind::Flag).flag_set;
}

} // namespace adapipe
