/**
 * @file
 * Deterministic pseudo-random number generator (SplitMix64 seeded
 * xoshiro256**). adapipe never uses the global C++ RNG facilities so
 * that every experiment is reproducible bit-for-bit.
 */

#ifndef ADAPIPE_UTIL_RNG_H
#define ADAPIPE_UTIL_RNG_H

#include <array>
#include <cstdint>

namespace adapipe {

/**
 * xoshiro256** generator with SplitMix64 seeding.
 *
 * Satisfies UniformRandomBitGenerator so it can be used with the
 * <random> distributions, though adapipe mostly uses the direct
 * helpers below.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** @return next raw 64-bit output. */
    result_type operator()();

    /** @return uniform double in [0, 1). */
    double uniform();

    /** @return uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** @return standard normal sample (Box-Muller, no caching). */
    double normal();

    /** @return normal sample with given mean and standard deviation. */
    double normal(double mean, double stddev);

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace adapipe

#endif // ADAPIPE_UTIL_RNG_H
