/**
 * @file
 * Canonical JSON form and fingerprinting.
 *
 * Two JSON documents that differ only in object key order (or in
 * surrounding whitespace) describe the same value, but hash to
 * different bytes. The canonical form fixes that: object members are
 * sorted by key recursively and the document is rendered compactly,
 * so semantically equal documents produce byte-identical canonical
 * text. Fingerprints are the FNV-1a-64 hash of that text, rendered
 * as 16 lowercase hex digits — stable across processes, runs and
 * platforms (the writer renders doubles with %.17g, which
 * round-trips bit-exactly).
 *
 * This is the keying machinery of the plan service: a plan request's
 * fingerprint keys the plan cache, and a plan's fingerprint is the
 * provenance link carried by degraded-replan documents (replan_io).
 */

#ifndef ADAPIPE_UTIL_CANONICAL_JSON_H
#define ADAPIPE_UTIL_CANONICAL_JSON_H

#include <cstdint>
#include <string>

#include "util/json.h"

namespace adapipe {

/**
 * @return a deep copy of @p value with every object's members sorted
 * by key (arrays keep their element order — it is significant).
 */
JsonValue canonicalJson(const JsonValue &value);

/** @return the compact rendering of canonicalJson(@p value). */
std::string canonicalJsonString(const JsonValue &value);

/** @return FNV-1a-64 hash of @p text. */
std::uint64_t fnv1a64(const std::string &text);

/** @return @p hash as 16 lowercase hex digits. */
std::string hex16(std::uint64_t hash);

/**
 * @return 16-hex-digit FNV-1a-64 fingerprint of @p value's canonical
 * form; key order of the input does not affect the result.
 */
std::string jsonFingerprint(const JsonValue &value);

} // namespace adapipe

#endif // ADAPIPE_UTIL_CANONICAL_JSON_H
