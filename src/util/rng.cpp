#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace adapipe {

namespace {

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    for (auto &s : state_)
        s = splitMix64(seed);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    ADAPIPE_ASSERT(lo <= hi, "empty integer range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>((*this)());
    return lo + static_cast<std::int64_t>((*this)() % span);
}

double
Rng::normal()
{
    // Box-Muller transform; u1 is kept away from zero for log().
    double u1 = 0.0;
    while (u1 <= 1e-12)
        u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

} // namespace adapipe
