/**
 * @file
 * Minimal ASCII table printer used by the benchmark harnesses to
 * reproduce the rows of the paper's tables and figures.
 */

#ifndef ADAPIPE_UTIL_TABLE_H
#define ADAPIPE_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace adapipe {

/**
 * Column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"Method", "Time", "Speedup"});
 *   t.addRow({"DAPPLE-Full", "76.8 s", "1.00"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Construct a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /**
     * Append one row.
     *
     * @param cells one string per column; short rows are padded with
     *        empty cells, long rows are a caller bug and panic.
     */
    void addRow(std::vector<std::string> cells);

    /** @return number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Render the table (headers, rule, rows) to @p os. */
    void print(std::ostream &os) const;

    /** Render the table to a string (used by tests). */
    std::string toString() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace adapipe

#endif // ADAPIPE_UTIL_TABLE_H
