/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for user-caused
 * conditions the program cannot continue from (bad configuration),
 * and warn()/inform() report non-fatal conditions.
 */

#ifndef ADAPIPE_UTIL_LOGGING_H
#define ADAPIPE_UTIL_LOGGING_H

#include <sstream>
#include <string>

namespace adapipe {

/** Severity of a log message. */
enum class LogLevel {
    Inform,
    Warn,
    Fatal,
    Panic,
};

namespace detail {

/**
 * Emit a formatted message to stderr and, for Fatal/Panic levels,
 * terminate the process (exit(1) resp. abort()).
 *
 * @param level severity of the message
 * @param file source file of the call site
 * @param line source line of the call site
 * @param msg fully formatted message body
 */
[[noreturn]] void
terminate(LogLevel level, const char *file, int line,
          const std::string &msg);

/** Emit a non-fatal message to stderr. */
void emit(LogLevel level, const std::string &msg);

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Global verbosity switch; when false, inform() is suppressed. */
void setVerboseLogging(bool enabled);

/** @return whether inform() messages are currently printed. */
bool verboseLogging();

} // namespace adapipe

/**
 * Report an internal invariant violation and abort. Use only for
 * conditions that indicate a bug in adapipe itself.
 */
#define ADAPIPE_PANIC(...)                                              \
    ::adapipe::detail::terminate(::adapipe::LogLevel::Panic, __FILE__, \
                                 __LINE__,                              \
                                 ::adapipe::detail::concat(__VA_ARGS__))

/**
 * Report a user-caused unrecoverable condition (bad configuration,
 * impossible request) and exit.
 */
#define ADAPIPE_FATAL(...)                                              \
    ::adapipe::detail::terminate(::adapipe::LogLevel::Fatal, __FILE__, \
                                 __LINE__,                              \
                                 ::adapipe::detail::concat(__VA_ARGS__))

/** Report a suspicious but survivable condition. */
#define ADAPIPE_WARN(...)                                               \
    ::adapipe::detail::emit(::adapipe::LogLevel::Warn,                  \
                            ::adapipe::detail::concat(__VA_ARGS__))

/** Report normal operating status (suppressed unless verbose). */
#define ADAPIPE_INFORM(...)                                             \
    do {                                                                \
        if (::adapipe::verboseLogging()) {                              \
            ::adapipe::detail::emit(                                    \
                ::adapipe::LogLevel::Inform,                            \
                ::adapipe::detail::concat(__VA_ARGS__));                \
        }                                                               \
    } while (false)

/** Assert an internal invariant; panics with the message on failure. */
#define ADAPIPE_ASSERT(cond, ...)                                       \
    do {                                                                \
        if (!(cond)) {                                                  \
            ADAPIPE_PANIC("assertion '" #cond "' failed: ",             \
                          ::adapipe::detail::concat(__VA_ARGS__));      \
        }                                                               \
    } while (false)

#endif // ADAPIPE_UTIL_LOGGING_H
