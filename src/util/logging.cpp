#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace adapipe {

namespace {

std::atomic<bool> verbose_enabled{false};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
setVerboseLogging(bool enabled)
{
    verbose_enabled.store(enabled, std::memory_order_relaxed);
}

bool
verboseLogging()
{
    return verbose_enabled.load(std::memory_order_relaxed);
}

namespace detail {

void
emit(LogLevel level, const std::string &msg)
{
    std::fprintf(stderr, "[adapipe:%s] %s\n", levelName(level),
                 msg.c_str());
}

void
terminate(LogLevel level, const char *file, int line,
          const std::string &msg)
{
    std::fprintf(stderr, "[adapipe:%s] %s:%d: %s\n", levelName(level),
                 file, line, msg.c_str());
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace adapipe
