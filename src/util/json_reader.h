/**
 * @file
 * Checked JSON navigation for the loaders.
 *
 * A JsonReader wraps a JsonValue plus the dotted path that reached
 * it ("plan.stages[2].mem_peak"). Every accessor validates presence
 * and kind and reports violations with that path, so loader code
 * stays linear while malformed input produces a field-level message
 * instead of a panic.
 *
 * Errors propagate as a JsonReader::Error exception strictly inside
 * the loader translation unit; readJson() is the catch boundary that
 * converts them into a ParseResult. No exception escapes the public
 * loader API.
 */

#ifndef ADAPIPE_UTIL_JSON_READER_H
#define ADAPIPE_UTIL_JSON_READER_H

#include <cmath>
#include <cstddef>
#include <string>
#include <utility>

#include "util/json.h"
#include "util/parse_result.h"

namespace adapipe {

/**
 * Path-tracking cursor over a parsed JsonValue.
 *
 * @code
 *   auto r = readJson<PipelinePlan>(root, "plan", [](JsonReader plan) {
 *       PipelinePlan out;
 *       out.microBatches =
 *           static_cast<int>(plan.key("micro_batches").asInteger());
 *       ...
 *       return out;
 *   });
 * @endcode
 */
class JsonReader
{
  public:
    /** Failure signal; message already carries the field path. */
    struct Error
    {
        std::string message;
    };

    JsonReader(const JsonValue &value, std::string path)
        : value_(&value), path_(std::move(path))
    {}

    /** @return the dotted path of this node. */
    const std::string &path() const { return path_; }

    /** @return the wrapped value (for round-trip helpers). */
    const JsonValue &raw() const { return *value_; }

    /** Throw an Error anchored at this node's path. */
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw Error{path_ + ": " + why};
    }

    /** @return whether this object node has @p name. */
    bool
    has(const std::string &name) const
    {
        requireObject();
        return value_->contains(name);
    }

    /** Descend into a required object member. */
    JsonReader
    key(const std::string &name) const
    {
        requireObject();
        if (!value_->contains(name))
            fail("missing required field '" + name + "'");
        return JsonReader(value_->at(name), path_ + "." + name);
    }

    /** Descend into array element @p index. */
    JsonReader
    at(std::size_t index) const
    {
        requireArray();
        if (index >= value_->elements().size())
            fail("array index " + std::to_string(index) +
                 " out of range");
        return JsonReader(value_->elements()[index],
                          path_ + "[" + std::to_string(index) + "]");
    }

    /** @return element count of this array node. */
    std::size_t
    size() const
    {
        requireArray();
        return value_->elements().size();
    }

    bool
    asBool() const
    {
        if (!value_->isBool())
            fail("expected a boolean");
        return value_->asBool();
    }

    double
    asNumber() const
    {
        if (!value_->isNumber())
            fail("expected a number");
        return value_->asNumber();
    }

    std::int64_t
    asInteger() const
    {
        if (!value_->isNumber())
            fail("expected an integer");
        const double d = value_->asNumber();
        if (d != std::floor(d))
            fail("expected an integer, got a fraction");
        // A numeral too wide for int64 parses as a double; casting
        // it back to int64 would be UB. 2^63 is exactly
        // representable as a double, so these bounds are precise.
        if (d < -9223372036854775808.0 ||
            d >= 9223372036854775808.0)
            fail("integer out of range");
        // Exact for integer-kind values (no double round-trip).
        return value_->asInteger();
    }

    const std::string &
    asString() const
    {
        if (!value_->isString())
            fail("expected a string");
        return value_->asString();
    }

  private:
    void
    requireObject() const
    {
        if (!value_->isObject())
            fail("expected an object");
    }

    void
    requireArray() const
    {
        if (!value_->isArray())
            fail("expected an array");
    }

    const JsonValue *value_;
    std::string path_;
};

/**
 * Run @p fn over @p root with path tracking, converting any
 * JsonReader::Error into a failed ParseResult.
 *
 * @param root parsed document
 * @param root_path name of the document in error messages
 * @param fn callable JsonReader -> T
 */
template <typename T, typename Fn>
ParseResult<T>
readJson(const JsonValue &root, std::string root_path, Fn &&fn)
{
    try {
        return ParseResult<T>::success(
            fn(JsonReader(root, std::move(root_path))));
    } catch (const JsonReader::Error &e) {
        return ParseResult<T>::failure(e.message);
    }
}

} // namespace adapipe

#endif // ADAPIPE_UTIL_JSON_READER_H
