#include "util/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace adapipe {

JsonValue
JsonValue::null()
{
    return JsonValue{};
}

JsonValue
JsonValue::boolean(bool value)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = value;
    return v;
}

JsonValue
JsonValue::number(double value)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = value;
    return v;
}

JsonValue
JsonValue::integer(std::int64_t value)
{
    JsonValue v;
    v.kind_ = Kind::Integer;
    v.integer_ = value;
    return v;
}

JsonValue
JsonValue::string(std::string value)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(value);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

void
JsonValue::push(JsonValue value)
{
    ADAPIPE_ASSERT(kind_ == Kind::Array, "push on non-array");
    elements_.push_back(std::move(value));
}

void
JsonValue::set(const std::string &key, JsonValue value)
{
    ADAPIPE_ASSERT(kind_ == Kind::Object, "set on non-object");
    for (auto &[k, v] : members_) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    members_.emplace_back(key, std::move(value));
}

bool
JsonValue::asBool() const
{
    ADAPIPE_ASSERT(kind_ == Kind::Bool, "not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ == Kind::Integer)
        return static_cast<double>(integer_);
    ADAPIPE_ASSERT(kind_ == Kind::Number, "not a number");
    return number_;
}

std::int64_t
JsonValue::asInteger() const
{
    if (kind_ == Kind::Number) {
        ADAPIPE_ASSERT(number_ == std::floor(number_),
                       "number is not an integer");
        return static_cast<std::int64_t>(number_);
    }
    ADAPIPE_ASSERT(kind_ == Kind::Integer, "not an integer");
    return integer_;
}

const std::string &
JsonValue::asString() const
{
    ADAPIPE_ASSERT(kind_ == Kind::String, "not a string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::elements() const
{
    ADAPIPE_ASSERT(kind_ == Kind::Array, "not an array");
    return elements_;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    ADAPIPE_ASSERT(kind_ == Kind::Object, "not an object");
    for (const auto &[k, v] : members_) {
        if (k == key)
            return v;
    }
    ADAPIPE_FATAL("missing JSON key '", key, "'");
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    ADAPIPE_ASSERT(kind_ == Kind::Object, "not an object");
    return members_;
}

bool
JsonValue::contains(const std::string &key) const
{
    ADAPIPE_ASSERT(kind_ == Kind::Object, "not an object");
    for (const auto &[k, v] : members_) {
        (void)v;
        if (k == key)
            return true;
    }
    return false;
}

namespace {

void
escapeInto(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Integer: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(integer_));
        out += buf;
        break;
      }
      case Kind::Number: {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
        out += buf;
        break;
      }
      case Kind::String:
        escapeInto(out, string_);
        break;
      case Kind::Array: {
        out += '[';
        for (std::size_t i = 0; i < elements_.size(); ++i) {
            if (i)
                out += ',';
            newlineIndent(out, indent, depth + 1);
            elements_[i].dumpTo(out, indent, depth + 1);
        }
        if (!elements_.empty())
            newlineIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ',';
            newlineIndent(out, indent, depth + 1);
            escapeInto(out, members_[i].first);
            out += indent > 0 ? ": " : ":";
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!members_.empty())
            newlineIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/**
 * Internal failure signal of the recursive-descent parser. Thrown on
 * the first malformed byte, caught at the tryParse boundary; never
 * escapes this translation unit.
 */
struct ParseFailure
{
    std::string message;
};

[[noreturn]] void
failAt(std::size_t offset, std::string what)
{
    throw ParseFailure{"JSON offset " + std::to_string(offset) + ": " +
                       std::move(what)};
}

/** Recursive-descent parser over the writer's subset. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            failAt(pos_, "trailing characters after the document");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            failAt(pos_, "unexpected end of document");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            failAt(pos_, std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(const std::string &word)
    {
        skipWs();
        if (text_.compare(pos_, word.size(), word) == 0) {
            pos_ += word.size();
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        const char c = peek();
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return JsonValue::string(string());
        if (consume("true"))
            return JsonValue::boolean(true);
        if (consume("false"))
            return JsonValue::boolean(false);
        if (consume("null"))
            return JsonValue::null();
        return number();
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                failAt(pos_, "unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                break;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    failAt(pos_, "unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        failAt(pos_, "bad unicode escape");
                    int code = 0;
                    for (int k = 0; k < 4; ++k) {
                        const char h = text_[pos_ + k];
                        if (!std::isxdigit(
                                static_cast<unsigned char>(h)))
                            failAt(pos_ + k, "bad unicode escape");
                        code = code * 16 +
                               (std::isdigit(
                                    static_cast<unsigned char>(h))
                                    ? h - '0'
                                    : (std::tolower(h) - 'a') + 10);
                    }
                    pos_ += 4;
                    // ASCII-only escapes are produced by the writer.
                    out += static_cast<char>(code);
                    break;
                  }
                  default:
                    failAt(pos_ - 1,
                           std::string("bad escape '\\") + e + "'");
                }
            } else {
                out += c;
            }
        }
        return out;
    }

    JsonValue
    number()
    {
        skipWs();
        const std::size_t start = pos_;
        bool is_integer = true;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                is_integer = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start ||
            (pos_ == start + 1 && text_[start] == '-'))
            failAt(start, "expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        // strtoll/strtod reject mixed-sign garbage like "1-2" (via
        // the end pointer) and report out-of-range magnitudes via
        // errno instead of aborting the process the way an unguarded
        // std::stoll would. Policy for out-of-range numerals:
        //  - integers wider than int64 re-parse as doubles (the
        //    field readers then reject them with the field's name);
        //  - doubles overflowing to +-inf are parse errors;
        //  - underflow to zero/subnormal is accepted as written.
        const char *cstr = token.c_str();
        char *end = nullptr;
        if (is_integer) {
            errno = 0;
            const long long v = std::strtoll(cstr, &end, 10);
            if (end != cstr + token.size())
                failAt(start, "malformed number '" + token + "'");
            if (errno != ERANGE)
                return JsonValue::integer(v);
        }
        errno = 0;
        const double d = std::strtod(cstr, &end);
        if (end != cstr + token.size())
            failAt(start, "malformed number '" + token + "'");
        if (errno == ERANGE && !(d > -HUGE_VAL && d < HUGE_VAL))
            failAt(start, "number out of range '" + token + "'");
        return JsonValue::number(d);
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue out = JsonValue::array();
        if (peek() == ']') {
            ++pos_;
            return out;
        }
        while (true) {
            out.push(value());
            const char c = peek();
            if (c != ']' && c != ',')
                failAt(pos_, "expected ',' or ']' in array");
            ++pos_;
            if (c == ']')
                break;
        }
        return out;
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue out = JsonValue::object();
        if (peek() == '}') {
            ++pos_;
            return out;
        }
        while (true) {
            if (peek() != '"')
                failAt(pos_, "expected a key string in object");
            const std::size_t key_at = pos_;
            const std::string key = string();
            if (out.contains(key))
                failAt(key_at, "duplicate key '" + key + "'");
            expect(':');
            out.set(key, value());
            const char c = peek();
            if (c != '}' && c != ',')
                failAt(pos_, "expected ',' or '}' in object");
            ++pos_;
            if (c == '}')
                break;
        }
        return out;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    ParseResult<JsonValue> r = tryParse(text);
    if (!r.ok())
        ADAPIPE_FATAL("malformed JSON: ", r.error());
    return std::move(r).value();
}

ParseResult<JsonValue>
JsonValue::tryParse(const std::string &text)
{
    try {
        return ParseResult<JsonValue>::success(Parser(text).parse());
    } catch (const ParseFailure &f) {
        return ParseResult<JsonValue>::failure(f.message);
    }
}

} // namespace adapipe
