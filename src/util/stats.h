/**
 * @file
 * Small streaming-statistics helpers used by the simulator (bubble
 * accounting, utilisation) and the convergence benches.
 */

#ifndef ADAPIPE_UTIL_STATS_H
#define ADAPIPE_UTIL_STATS_H

#include <cstddef>
#include <vector>

namespace adapipe {

/**
 * Streaming accumulator for count / mean / variance / extrema
 * (Welford's algorithm).
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double value);

    /** @return number of observations so far. */
    std::size_t count() const { return count_; }

    /** @return arithmetic mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** @return sample variance (0 with fewer than two samples). */
    double variance() const;

    /** @return sample standard deviation. */
    double stddev() const;

    /** @return smallest observation (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** @return largest observation (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /** @return sum of all observations. */
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * @return the @p q quantile (0 <= q <= 1) of @p values using linear
 * interpolation; panics on an empty vector.
 */
double quantile(std::vector<double> values, double q);

/** @return geometric mean of @p values (all must be positive). */
double geometricMean(const std::vector<double> &values);

} // namespace adapipe

#endif // ADAPIPE_UTIL_STATS_H
