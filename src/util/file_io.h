/**
 * @file
 * Recoverable whole-file reads and writes for the CLIs and loaders.
 *
 * Missing or unreadable paths are reported through ParseResult so
 * callers can print a diagnostic and exit nonzero instead of
 * aborting mid-stream.
 */

#ifndef ADAPIPE_UTIL_FILE_IO_H
#define ADAPIPE_UTIL_FILE_IO_H

#include <string>

#include "util/parse_result.h"

namespace adapipe {

/**
 * Read an entire file into a string.
 *
 * @param path file to read
 * @return the contents, or an error naming the path
 */
ParseResult<std::string> readTextFile(const std::string &path);

/**
 * Write @p content to @p path, replacing any existing file.
 *
 * @return success, or an error naming the path
 */
ParseStatus writeTextFile(const std::string &path,
                          const std::string &content);

} // namespace adapipe

#endif // ADAPIPE_UTIL_FILE_IO_H
