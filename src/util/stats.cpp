#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace adapipe {

void
RunningStats::add(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
quantile(std::vector<double> values, double q)
{
    ADAPIPE_ASSERT(!values.empty(), "quantile of empty vector");
    ADAPIPE_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range: ", q);
    // NaNs make operator< a non-strict-weak-ordering: std::sort's
    // result (and with it every percentile in a report) would be
    // unspecified. Drop them; a sample set that is all NaN has no
    // quantiles and is a caller bug.
    values.erase(std::remove_if(values.begin(), values.end(),
                                [](double v) { return std::isnan(v); }),
                 values.end());
    ADAPIPE_ASSERT(!values.empty(), "quantile of all-NaN samples");
    std::sort(values.begin(), values.end());
    const double pos = q * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
geometricMean(const std::vector<double> &values)
{
    ADAPIPE_ASSERT(!values.empty(), "geometric mean of empty vector");
    double log_sum = 0.0;
    for (double v : values) {
        ADAPIPE_ASSERT(v > 0.0, "geometric mean needs positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace adapipe
