/**
 * @file
 * Strongly named unit helpers for bytes, seconds and FLOP counts.
 *
 * The cost models in adapipe pass around a lot of raw quantities;
 * these helpers keep magnitudes readable (GiB(80)) and give a single
 * place for human-readable formatting used by the benches and the
 * table printer.
 */

#ifndef ADAPIPE_UTIL_UNITS_H
#define ADAPIPE_UTIL_UNITS_H

#include <cstdint>
#include <string>

namespace adapipe {

/** Bytes are tracked as unsigned 64-bit integers. */
using Bytes = std::uint64_t;

/** Simulated durations are tracked in seconds as double. */
using Seconds = double;

/** Floating-point operation counts. */
using Flops = double;

/** @return @p n kibibytes expressed in bytes. */
constexpr Bytes KiB(double n) { return static_cast<Bytes>(n * 1024.0); }

/** @return @p n mebibytes expressed in bytes. */
constexpr Bytes
MiB(double n)
{
    return static_cast<Bytes>(n * 1024.0 * 1024.0);
}

/** @return @p n gibibytes expressed in bytes. */
constexpr Bytes
GiB(double n)
{
    return static_cast<Bytes>(n * 1024.0 * 1024.0 * 1024.0);
}

/** @return @p n tera-FLOPs. */
constexpr Flops teraFlops(double n) { return n * 1e12; }

/** @return @p n giga-FLOPs. */
constexpr Flops gigaFlops(double n) { return n * 1e9; }

/** @return @p n microseconds expressed in seconds. */
constexpr Seconds microseconds(double n) { return n * 1e-6; }

/** @return @p n milliseconds expressed in seconds. */
constexpr Seconds milliseconds(double n) { return n * 1e-3; }

/**
 * Format a byte count with a binary suffix, e.g. "68.3 GiB".
 *
 * @param bytes quantity to format
 * @param precision digits after the decimal point
 */
std::string formatBytes(Bytes bytes, int precision = 1);

/**
 * Format a duration with an adaptive suffix, e.g. "12.4 ms".
 *
 * @param seconds quantity to format
 * @param precision digits after the decimal point
 */
std::string formatSeconds(Seconds seconds, int precision = 2);

/** Format a raw double with fixed @p precision, e.g. "1.32". */
std::string formatDouble(double value, int precision = 2);

} // namespace adapipe

#endif // ADAPIPE_UTIL_UNITS_H
