#include "util/csv.h"

#include "util/logging.h"

namespace adapipe {

std::string
csvQuote(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

CsvWriter::CsvWriter(std::ostream &os, std::vector<std::string> headers)
    : os_(os), columns_(headers.size())
{
    ADAPIPE_ASSERT(columns_ > 0, "csv needs at least one column");
    writeCells(headers);
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    ADAPIPE_ASSERT(cells.size() == columns_,
                   "csv row has ", cells.size(), " cells, expected ",
                   columns_);
    writeCells(cells);
    ++rows_;
}

void
CsvWriter::writeCells(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            os_ << ",";
        os_ << csvQuote(cells[i]);
    }
    os_ << "\n";
}

} // namespace adapipe
