/**
 * @file
 * TCP front end of the plan service.
 *
 * Plain POSIX sockets, newline-delimited JSON (see protocol.h). One
 * acceptor thread hands connections to a fixed worker pool over a
 * queue; each worker owns a connection for its lifetime, answering
 * request lines in order until the peer disconnects or the service
 * handles a shutdown request. Workers install per-thread obs
 * registries and merge them on join, following the repo's
 * merge-on-join discipline, so service.* counters are exact
 * regardless of the worker count.
 */

#ifndef ADAPIPE_SERVICE_SERVER_H
#define ADAPIPE_SERVICE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "service/handlers.h"
#include "util/parse_result.h"

namespace adapipe {

/** Server configuration. */
struct PlanServerOptions
{
    /** Bind address. */
    std::string host = "127.0.0.1";
    /** Bind port; 0 picks an ephemeral port (see PlanServer::port). */
    int port = 0;
    /** Worker threads (each owns one connection at a time). */
    int threads = 4;
    /** Handler/cache configuration. */
    PlanServiceOptions service;
};

/**
 * Threaded TCP plan server.
 *
 * Lifecycle: construct, start(), then wait() until a shutdown
 * request arrives (or call stop() from another thread). start() is
 * recoverable — bind failures come back as a ParseStatus error, not
 * an abort.
 */
class PlanServer
{
  public:
    explicit PlanServer(PlanServerOptions opts = {});
    ~PlanServer();

    PlanServer(const PlanServer &) = delete;
    PlanServer &operator=(const PlanServer &) = delete;

    /** Bind, listen and spawn the acceptor + workers. */
    ParseStatus start();

    /** @return the bound port (resolves port = 0 after start()). */
    int port() const { return port_; }

    /** Block until the server has stopped. */
    void wait();

    /** Initiate shutdown and join all threads (idempotent). */
    void stop();

    /** The underlying service (for tests and stats). */
    PlanService &service() { return service_; }

    /** Obs registry with all workers' counters merged (post-stop). */
    const obs::Registry &metrics() const { return metrics_; }

  private:
    void acceptLoop();
    void workerLoop(std::size_t index);
    void handleConnection(int fd);
    void closeListener();

    PlanServerOptions opts_;
    PlanService service_;
    int listen_fd_ = -1;
    int port_ = 0;
    std::atomic<bool> stopping_{false};

    std::thread acceptor_;
    std::vector<std::thread> workers_;
    std::vector<obs::Registry> worker_metrics_;
    obs::Registry metrics_;

    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<int> pending_;

    std::mutex active_mutex_;
    std::vector<int> active_fds_;

    std::mutex join_mutex_;
    bool joined_ = false;
};

} // namespace adapipe

#endif // ADAPIPE_SERVICE_SERVER_H
