#include "service/plan_cache.h"

#include "util/file_io.h"

namespace adapipe {

PlanCache::PlanCache(std::size_t capacity_bytes,
                     std::string persist_dir)
    : capacity_(capacity_bytes), persist_dir_(std::move(persist_dir))
{}

std::size_t
PlanCache::entryBytes(const Entry &entry) const
{
    return entry.key.size() + entry.value.size();
}

bool
PlanCache::get(const std::string &key, std::string *value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        return false;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    if (value)
        *value = it->second->value;
    return true;
}

void
PlanCache::put(const std::string &key, const std::string &value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        bytes_ -= entryBytes(*it->second);
        it->second->value = value;
        bytes_ += entryBytes(*it->second);
        lru_.splice(lru_.begin(), lru_, it->second);
    } else {
        lru_.push_front(Entry{key, value});
        index_[key] = lru_.begin();
        bytes_ += entryBytes(lru_.front());
    }
    evictToFitLocked();
}

void
PlanCache::evictToFitLocked()
{
    while (bytes_ > capacity_ && !lru_.empty()) {
        const Entry &victim = lru_.back();
        bytes_ -= entryBytes(victim);
        index_.erase(victim.key);
        lru_.pop_back();
        ++evictions_;
    }
}

bool
PlanCache::putDocument(const std::string &fingerprint,
                       const std::string &document)
{
    if (persist_dir_.empty())
        return true;
    return writeTextFile(persist_dir_ + "/" + fingerprint + ".json",
                         document)
        .ok();
}

bool
PlanCache::getDocument(const std::string &fingerprint,
                       std::string *document)
{
    if (persist_dir_.empty())
        return false;
    ParseResult<std::string> text =
        readTextFile(persist_dir_ + "/" + fingerprint + ".json");
    if (!text.ok())
        return false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++disk_hits_;
    }
    if (document)
        *document = std::move(text).value();
    return true;
}

PlanCacheStats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    PlanCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.diskHits = disk_hits_;
    s.entries = static_cast<std::int64_t>(lru_.size());
    s.bytes = static_cast<std::int64_t>(bytes_);
    s.capacityBytes = static_cast<std::int64_t>(capacity_);
    return s;
}

} // namespace adapipe
