/**
 * @file
 * Wire protocol of the plan service.
 *
 * The service speaks newline-delimited JSON over a plain TCP stream:
 * one request object per line, one response object per line, in
 * order. Five request kinds:
 *
 *   {"kind": "plan",    "plan": {...}}            -> a pipeline plan
 *   {"kind": "explain", "plan": {...}}            -> per-stage table
 *   {"kind": "replan",  "plan": {...},
 *                       "fault": {...}}           -> degraded plan
 *   {"kind": "stats"}                             -> service counters
 *   {"kind": "shutdown"}                          -> orderly stop
 *
 * The "plan" object names a model/cluster preset and the training
 * configuration (see PlanRequest); "fault" mirrors the degraded
 * scenario of robust/replan.h. Responses always carry "ok" and
 * "kind"; failures carry "error" with a dotted field path rooted at
 * "service" (e.g. "service.plan.model: unknown model 'x'"), the same
 * diagnostic style as every other loader in the repo.
 *
 * Requests are normalised before fingerprinting: defaults are filled
 * in and the canonical (key-sorted) JSON form is hashed, so two
 * requests differing only in key order, whitespace or spelled-out
 * defaults share one cache entry.
 */

#ifndef ADAPIPE_SERVICE_PROTOCOL_H
#define ADAPIPE_SERVICE_PROTOCOL_H

#include <string>

#include "core/plan.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "model/parallel.h"
#include "robust/replan.h"
#include "util/json.h"
#include "util/parse_result.h"

namespace adapipe {

/** What a request asks the service to do. */
enum class RequestKind { Plan, Explain, Replan, Stats, Shutdown };

/** @return the wire name of @p kind ("plan", "explain", ...). */
const char *requestKindName(RequestKind kind);

/**
 * A planning problem: which model on which cluster under which
 * training configuration, planned how. Every field has a wire
 * default, so minimal requests stay short.
 */
struct PlanRequest
{
    /** Model preset: gpt3|llama2|gpt3-13b|gpt3-6.7b|llama2-13b|
     *  tiny-test. */
    std::string model = "gpt3-13b";
    /** Cluster preset: "a" (DGX-A100) or "b" (Atlas 800). */
    std::string clusterName = "a";
    /** Node count of the cluster. */
    int clusterNodes = 1;
    TrainConfig train;
    ParallelConfig par;
    /** Planning method (adapipe|even|dapple-full|dapple-non). */
    PlanMethod method = PlanMethod::AdaPipe;
    /** Schedule family: 1f1b | interleaved | best. */
    std::string scheduleFamily = "1f1b";
    /** Virtual stages per device (interleaved family only). */
    int virtualStages = 2;
    /** Device-memory fraction the planner may commit. */
    double memBudgetFraction = 0.875;
    /** Allow the tri-choice knapsack to host-offload activations. */
    bool offload = false;
    /** Host-link bandwidth, bytes/s (wire: offload.bandwidth). */
    double offloadBandwidth = 25.0e9;
    /** Transfer fraction hidden under compute, in [0, 1]. */
    double offloadOverlapFraction = 0.5;

    /** @return the named model preset; model must be valid. */
    ModelConfig modelConfig() const;
    /** @return the named cluster preset; clusterName must be valid. */
    ClusterSpec clusterSpec() const;
};

/**
 * One parsed request line.
 */
struct ServiceRequest
{
    RequestKind kind = RequestKind::Stats;
    /** Planning problem (Plan/Explain/Replan kinds). */
    PlanRequest plan;
    /** Degradation to replan for (Replan kind). */
    DegradedScenario fault;
};

/**
 * Parse and validate one request line. Unknown kinds, unknown
 * presets, non-positive sizes, indivisible batch configurations and
 * tensor sizes the presets cannot support are all reported here — a
 * request that parses can be planned without tripping a fatal
 * assertion further down.
 */
ParseResult<ServiceRequest>
tryServiceRequestFromJsonString(const std::string &line);

/**
 * Normalised JSON form of a plan request: every field emitted, wire
 * defaults filled in. Input to the request fingerprint.
 */
JsonValue planRequestToJson(const PlanRequest &request);

/**
 * Cache identity of a plan request: FNV-1a-64 of the canonical
 * (key-sorted, compact) dump of planRequestToJson(), as 16 lowercase
 * hex digits.
 */
std::string requestFingerprint(const PlanRequest &request);

/** Normalised JSON form of a fault report (for replan cache keys). */
JsonValue faultToJson(const DegradedScenario &fault);

/** @name Response builders (compact single-line JSON)
 *  @{
 */

/** Failure response: {"ok": false, "kind": ..., "error": ...}. */
std::string errorResponse(const std::string &kind,
                          const std::string &error);

/** Success envelope with "ok": true and "kind" preset; callers add
 *  payload fields then dump(0). */
JsonValue successEnvelope(const std::string &kind);

/** @} */

} // namespace adapipe

#endif // ADAPIPE_SERVICE_PROTOCOL_H
