/**
 * @file
 * Fingerprint-keyed response cache of the plan service.
 *
 * Values are fully rendered response lines, so a warm request is one
 * hash probe plus a write() — no re-planning, no re-serialisation,
 * and warm responses are byte-identical to the cold ones they were
 * rendered from (the service_test asserts exactly this).
 *
 * Eviction is LRU under a byte budget (keys + values). With a
 * persistence directory configured, plan documents additionally land
 * on disk as <fingerprint>.json via plan_io, so a restarted server
 * answers repeat requests without re-planning even after the
 * in-memory cache is gone; the handlers check putDocument/getDocument
 * for that path.
 */

#ifndef ADAPIPE_SERVICE_PLAN_CACHE_H
#define ADAPIPE_SERVICE_PLAN_CACHE_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace adapipe {

/** Point-in-time counters of a PlanCache. */
struct PlanCacheStats
{
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::int64_t diskHits = 0;
    std::int64_t entries = 0;
    std::int64_t bytes = 0;
    std::int64_t capacityBytes = 0;
};

/**
 * Thread-safe LRU string cache with a byte budget and optional disk
 * persistence of plan documents.
 */
class PlanCache
{
  public:
    /**
     * @param capacity_bytes byte budget over keys + values; an entry
     *        larger than the whole budget is simply not cached
     * @param persist_dir directory for <fingerprint>.json documents;
     *        empty disables persistence (must exist when set)
     */
    explicit PlanCache(std::size_t capacity_bytes,
                       std::string persist_dir = "");

    /**
     * Look up @p key, refreshing its LRU position.
     * @return whether found; @p value untouched on miss
     */
    bool get(const std::string &key, std::string *value);

    /** Insert/overwrite @p key, evicting LRU entries to fit. */
    void put(const std::string &key, const std::string &value);

    /**
     * Persist @p document (a pretty-printed plan JSON) for
     * @p fingerprint. No-op without a persistence directory.
     * @return whether the write succeeded (or was a no-op)
     */
    bool putDocument(const std::string &fingerprint,
                     const std::string &document);

    /**
     * Load the persisted document of @p fingerprint, if any.
     * Counted as a disk hit on success.
     */
    bool getDocument(const std::string &fingerprint,
                     std::string *document);

    /** @return counters (consistent snapshot). */
    PlanCacheStats stats() const;

  private:
    struct Entry
    {
        std::string key;
        std::string value;
    };

    std::size_t entryBytes(const Entry &entry) const;
    void evictToFitLocked();

    const std::size_t capacity_;
    const std::string persist_dir_;
    mutable std::mutex mutex_;
    /** Most-recently used at the front. */
    std::list<Entry> lru_;
    std::unordered_map<std::string, std::list<Entry>::iterator> index_;
    std::size_t bytes_ = 0;
    std::int64_t hits_ = 0;
    std::int64_t misses_ = 0;
    std::int64_t evictions_ = 0;
    std::int64_t disk_hits_ = 0;
};

} // namespace adapipe

#endif // ADAPIPE_SERVICE_PLAN_CACHE_H
