/**
 * @file
 * Minimal client for the plan service: connect, send request lines,
 * read response lines. Shared by the plan_client example, the
 * service bench and the service tests, so the framing logic (exactly
 * one '\n'-terminated response per request) lives in one place.
 */

#ifndef ADAPIPE_SERVICE_CLIENT_H
#define ADAPIPE_SERVICE_CLIENT_H

#include <string>

#include "util/parse_result.h"

namespace adapipe {

/**
 * A connected plan-service client. Not thread-safe; use one client
 * per thread (the server handles concurrent connections).
 */
class PlanClient
{
  public:
    PlanClient() = default;
    ~PlanClient();

    PlanClient(const PlanClient &) = delete;
    PlanClient &operator=(const PlanClient &) = delete;

    /** Connect to @p host:@p port (recoverable). */
    ParseStatus connect(const std::string &host, int port);

    /**
     * Send one request line and read the matching response line.
     * @param line request JSON without the trailing newline
     * @return the response line (newline stripped)
     */
    ParseResult<std::string> request(const std::string &line);

    /** Close the connection (safe to call repeatedly). */
    void close();

    /** @return whether the client is connected. */
    bool connected() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    std::string buffer_;
};

/**
 * One-shot convenience: connect, send @p line, read one response,
 * disconnect.
 */
ParseResult<std::string> serviceRequest(const std::string &host,
                                        int port,
                                        const std::string &line);

} // namespace adapipe

#endif // ADAPIPE_SERVICE_CLIENT_H
