#include "service/handlers.h"

#include <chrono>
#include <utility>

#include "core/plan_io.h"
#include "core/planner.h"
#include "obs/macros.h"
#include "robust/replan_io.h"
#include "sim/interleaved_planner.h"
#include "util/canonical_json.h"
#include "util/stats.h"

namespace adapipe {

namespace {

double
nowMicros()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Quantile summary of a latency sample as a JSON object. */
JsonValue
latencyJson(const std::vector<double> &sample)
{
    JsonValue out = JsonValue::object();
    out.set("count",
            JsonValue::integer(
                static_cast<std::int64_t>(sample.size())));
    if (sample.empty()) {
        out.set("p50", JsonValue::number(0));
        out.set("p99", JsonValue::number(0));
    } else {
        out.set("p50", JsonValue::number(quantile(sample, 0.5)));
        out.set("p99", JsonValue::number(quantile(sample, 0.99)));
    }
    return out;
}

/** Per-stage explanation table of a plan. */
JsonValue
explainJson(const PipelinePlan &plan)
{
    JsonValue out = JsonValue::object();
    out.set("method",
            JsonValue::string(planMethodName(plan.method)));
    out.set("micro_batches", JsonValue::integer(plan.microBatches));
    out.set("virtual_stages",
            JsonValue::integer(plan.virtualStages));
    JsonValue timing = JsonValue::object();
    timing.set("warmup", JsonValue::number(plan.timing.warmup));
    timing.set("ending", JsonValue::number(plan.timing.ending));
    timing.set("steady_per_mb",
               JsonValue::number(plan.timing.steadyPerMb));
    timing.set("total", JsonValue::number(plan.timing.total));
    out.set("timing", std::move(timing));
    JsonValue stages = JsonValue::array();
    int bottleneck = 0;
    double bottleneck_time = -1;
    for (std::size_t s = 0; s < plan.stages.size(); ++s) {
        const StagePlan &sp = plan.stages[s];
        JsonValue row = JsonValue::object();
        row.set("stage",
                JsonValue::integer(static_cast<std::int64_t>(s)));
        row.set("first_layer", JsonValue::integer(sp.firstLayer));
        row.set("last_layer", JsonValue::integer(sp.lastLayer));
        row.set("time_fwd", JsonValue::number(sp.timeFwd));
        row.set("time_bwd", JsonValue::number(sp.timeBwd));
        row.set("mem_peak",
                JsonValue::integer(
                    static_cast<std::int64_t>(sp.memPeak)));
        row.set("saved_units", JsonValue::integer(sp.savedUnits));
        row.set("total_units", JsonValue::integer(sp.totalUnits));
        stages.push(std::move(row));
        if (sp.timeFwd + sp.timeBwd > bottleneck_time) {
            bottleneck_time = sp.timeFwd + sp.timeBwd;
            bottleneck = static_cast<int>(s);
        }
    }
    out.set("stages", std::move(stages));
    out.set("bottleneck_stage", JsonValue::integer(bottleneck));
    return out;
}

} // namespace

PlanService::PlanService(PlanServiceOptions opts)
    : opts_(opts), cache_(opts.cacheBytes, opts.persistDir)
{}

std::string
PlanService::handleLine(const std::string &line)
{
    const double start_us = nowMicros();
    requests_.fetch_add(1, std::memory_order_relaxed);
    ADAPIPE_OBS_COUNT("service.requests", 1);

    ParseResult<ServiceRequest> parsed =
        tryServiceRequestFromJsonString(line);
    if (!parsed.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ADAPIPE_OBS_COUNT("service.errors", 1);
        return errorResponse("", parsed.error());
    }
    const ServiceRequest &req = parsed.value();

    switch (req.kind) {
      case RequestKind::Stats:
        stats_requests_.fetch_add(1, std::memory_order_relaxed);
        return handleStats();
      case RequestKind::Shutdown:
        shutdown_.store(true, std::memory_order_release);
        ADAPIPE_OBS_COUNT("service.shutdowns", 1);
        return successEnvelope("shutdown").dump(0);
      case RequestKind::Plan: {
        plan_requests_.fetch_add(1, std::memory_order_relaxed);
        const std::string key =
            "plan:" + requestFingerprint(req.plan);
        std::string warm_response;
        if (cache_.get(key, &warm_response)) {
            ADAPIPE_OBS_COUNT("service.cache_hits", 1);
            recordLatency(nowMicros() - start_us, true);
            return warm_response;
        }
        ADAPIPE_OBS_COUNT("service.cache_misses", 1);
        const std::string response = handlePlan(req.plan);
        recordLatency(nowMicros() - start_us, false);
        return response;
      }
      case RequestKind::Explain: {
        explain_requests_.fetch_add(1, std::memory_order_relaxed);
        const std::string key =
            "explain:" + requestFingerprint(req.plan);
        std::string warm_response;
        if (cache_.get(key, &warm_response)) {
            ADAPIPE_OBS_COUNT("service.cache_hits", 1);
            recordLatency(nowMicros() - start_us, true);
            return warm_response;
        }
        ADAPIPE_OBS_COUNT("service.cache_misses", 1);
        const std::string response = handleExplain(req.plan);
        recordLatency(nowMicros() - start_us, false);
        return response;
      }
      case RequestKind::Replan: {
        replan_requests_.fetch_add(1, std::memory_order_relaxed);
        const std::string key =
            "replan:" + requestFingerprint(req.plan) + ":" +
            jsonFingerprint(faultToJson(req.fault));
        std::string warm_response;
        if (cache_.get(key, &warm_response)) {
            ADAPIPE_OBS_COUNT("service.cache_hits", 1);
            recordLatency(nowMicros() - start_us, true);
            return warm_response;
        }
        ADAPIPE_OBS_COUNT("service.cache_misses", 1);
        const std::string response =
            handleReplan(req.plan, req.fault);
        recordLatency(nowMicros() - start_us, false);
        return response;
      }
    }
    ADAPIPE_FATAL("unhandled request kind");
}

PlanResult
PlanService::solve(const PlanRequest &request)
{
    ADAPIPE_OBS_SPAN(obs_span, "service.solve");
    const ModelConfig model = request.modelConfig();
    const ClusterSpec cluster = request.clusterSpec();
    const ProfiledModel pm = buildProfiledModel(
        model, request.train, request.par, cluster);
    StageCostOptions opts;
    opts.memBudgetFraction = request.memBudgetFraction;
    opts.knapsackMemo = &memo_;
    opts.offload.enabled = request.offload;
    opts.offload.bandwidth = request.offloadBandwidth;
    opts.offload.overlapFraction = request.offloadOverlapFraction;
    if (request.scheduleFamily == "interleaved") {
        return makeInterleavedPlan(pm, request.method,
                                   request.virtualStages, opts);
    }
    if (request.scheduleFamily == "best")
        return makeBestSchedulePlan(pm, request.method, opts);
    return makePlan(pm, request.method, opts);
}

PlanResult
PlanService::basePlan(const PlanRequest &request,
                      std::string *response)
{
    const std::string fp = requestFingerprint(request);
    const std::string key = "plan:" + fp;

    std::string cached;
    if (cache_.get(key, &cached)) {
        // Recover the plan struct from the cached response line; the
        // round-trip is exact (golden_plan_test pins it).
        PlanResult result;
        const JsonValue root = JsonValue::parse(cached);
        ParseResult<PipelinePlan> plan =
            tryPlanFromJson(root.at("plan"));
        if (plan.ok()) {
            result.ok = true;
            result.plan = std::move(plan).value();
            if (response)
                *response = std::move(cached);
            return result;
        }
        // Unparseable cache entry: fall through and replan.
    }

    std::string document;
    if (cache_.getDocument(fp, &document)) {
        ParseResult<PipelinePlan> plan =
            tryPlanFromJsonString(document);
        if (plan.ok()) {
            PlanResult result;
            result.ok = true;
            result.plan = std::move(plan).value();
            JsonValue envelope = successEnvelope("plan");
            envelope.set("fingerprint", JsonValue::string(fp));
            envelope.set("plan", planToJson(result.plan));
            const std::string line = envelope.dump(0);
            cache_.put(key, line);
            if (response)
                *response = line;
            return result;
        }
    }

    PlanResult result = solve(request);
    if (!result.ok) {
        ADAPIPE_OBS_COUNT("service.infeasible", 1);
        if (response) {
            *response = errorResponse(
                "plan", "plan infeasible: " + result.oomReason);
        }
        return result;
    }
    JsonValue envelope = successEnvelope("plan");
    envelope.set("fingerprint", JsonValue::string(fp));
    envelope.set("plan", planToJson(result.plan));
    const std::string line = envelope.dump(0);
    cache_.put(key, line);
    cache_.putDocument(fp, planToJsonString(result.plan, 2) + "\n");
    if (response)
        *response = line;
    return result;
}

std::string
PlanService::handlePlan(const PlanRequest &request)
{
    std::string response;
    basePlan(request, &response);
    return response;
}

std::string
PlanService::handleExplain(const PlanRequest &request)
{
    const std::string fp = requestFingerprint(request);
    PlanResult base = basePlan(request, nullptr);
    if (!base.ok) {
        return errorResponse("explain",
                             "plan infeasible: " + base.oomReason);
    }
    JsonValue envelope = successEnvelope("explain");
    envelope.set("fingerprint", JsonValue::string(fp));
    envelope.set("explain", explainJson(base.plan));
    const std::string line = envelope.dump(0);
    cache_.put("explain:" + fp, line);
    return line;
}

std::string
PlanService::handleReplan(const PlanRequest &request,
                          const DegradedScenario &fault)
{
    const std::string fp = requestFingerprint(request);
    PlanResult base = basePlan(request, nullptr);
    if (!base.ok) {
        return errorResponse("replan",
                             "base plan infeasible: " +
                                 base.oomReason);
    }

    const ModelConfig model = request.modelConfig();
    const ClusterSpec cluster = request.clusterSpec();
    const ProfiledModel pm = buildProfiledModel(
        model, request.train, request.par, cluster);
    StageCostOptions opts;
    opts.memBudgetFraction = request.memBudgetFraction;
    opts.knapsackMemo = &memo_;
    opts.offload.enabled = request.offload;
    opts.offload.bandwidth = request.offloadBandwidth;
    opts.offload.overlapFraction = request.offloadOverlapFraction;
    const ReplanResult replanned =
        replanDegradedIncremental(pm, fault, base.plan, opts);
    if (!replanned.ok) {
        ADAPIPE_OBS_COUNT("service.infeasible", 1);
        return errorResponse("replan",
                             "replan infeasible: " +
                                 replanned.reason);
    }

    DegradedPlanDoc doc;
    doc.plan = replanned.plan;
    doc.scenario = fault;
    doc.originalFingerprint = planFingerprint(base.plan);
    doc.degradedCapacity = replanned.degradedCapacity;

    JsonValue envelope = successEnvelope("replan");
    envelope.set("fingerprint", JsonValue::string(fp));
    envelope.set("degraded_plan", degradedPlanToJson(doc));
    const std::string line = envelope.dump(0);
    cache_.put("replan:" + fp + ":" +
                   jsonFingerprint(faultToJson(fault)),
               line);
    return line;
}

std::string
PlanService::handleStats()
{
    JsonValue envelope = successEnvelope("stats");

    JsonValue requests = JsonValue::object();
    requests.set("total", JsonValue::integer(requests_.load()));
    requests.set("plan", JsonValue::integer(plan_requests_.load()));
    requests.set("explain",
                 JsonValue::integer(explain_requests_.load()));
    requests.set("replan",
                 JsonValue::integer(replan_requests_.load()));
    requests.set("stats",
                 JsonValue::integer(stats_requests_.load()));
    requests.set("errors", JsonValue::integer(errors_.load()));
    envelope.set("requests", std::move(requests));

    const PlanCacheStats cs = cache_.stats();
    JsonValue cache = JsonValue::object();
    cache.set("hits", JsonValue::integer(cs.hits));
    cache.set("misses", JsonValue::integer(cs.misses));
    cache.set("evictions", JsonValue::integer(cs.evictions));
    cache.set("disk_hits", JsonValue::integer(cs.diskHits));
    cache.set("entries", JsonValue::integer(cs.entries));
    cache.set("bytes", JsonValue::integer(cs.bytes));
    cache.set("capacity_bytes",
              JsonValue::integer(cs.capacityBytes));
    envelope.set("cache", std::move(cache));

    const KnapsackMemoStats ms = memo_.stats();
    JsonValue memo = JsonValue::object();
    memo.set("hits", JsonValue::integer(ms.hits));
    memo.set("misses", JsonValue::integer(ms.misses));
    memo.set("entries", JsonValue::integer(ms.entries));
    envelope.set("memo", std::move(memo));

    std::vector<double> cold;
    std::vector<double> warm;
    {
        std::lock_guard<std::mutex> lock(latency_mutex_);
        cold = cold_us_;
        warm = warm_us_;
    }
    JsonValue latency = JsonValue::object();
    latency.set("cold", latencyJson(cold));
    latency.set("warm", latencyJson(warm));
    envelope.set("latency_us", std::move(latency));

    return envelope.dump(0);
}

void
PlanService::recordLatency(double us, bool warm)
{
    std::lock_guard<std::mutex> lock(latency_mutex_);
    (warm ? warm_us_ : cold_us_).push_back(us);
}

} // namespace adapipe
